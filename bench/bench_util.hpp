// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sftbft/harness/scenario.hpp"
#include "sftbft/harness/table.hpp"

namespace sftbft::bench {

/// The shared command-line contract of every tab_* bench:
///   --smoke          shortened CI configuration
///   --seed <n>       overrides the scenario seed (reproducibility)
///   --json <path>    writes the result tables as a JSON artifact
///   --jobs <n>       runs the sweep's independent scenarios on n threads
/// Unknown flags abort loudly — a typo silently ignored is a wasted run.
struct BenchArgs {
  bool smoke = false;
  std::uint64_t seed = 0;  ///< 0 = keep the bench's default seed
  std::string json_path;
  std::uint32_t jobs = 1;  ///< sweep parallelism (1 = serial)
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  const auto usage = [argv]() {
    std::fprintf(stderr,
                 "usage: %s [--smoke] [--seed <n>] [--json <path>] "
                 "[--jobs <n>]\n",
                 argv[0]);
    std::exit(2);
  };
  const auto parse_positive = [&usage](const char* flag, const char* text) {
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || value == 0) {
      std::fprintf(stderr, "%s wants a positive integer, got '%s'\n", flag,
                   text);
      usage();
    }
    return value;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = parse_positive("--seed", argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const std::uint64_t jobs = parse_positive("--jobs", argv[++i]);
      if (jobs > 0xffffffffULL) {
        std::fprintf(stderr, "--jobs value out of range\n");
        usage();
      }
      args.jobs = static_cast<std::uint32_t>(jobs);
    } else {
      usage();
    }
  }
  return args;
}

/// Runs `fn(0) .. fn(count-1)` on up to `jobs` threads (`jobs <= 1` =
/// inline, no threads spawned). Callers write each task's result into a
/// pre-sized slot at its index and render output AFTER the sweep, so
/// table/JSON ordering is byte-identical to the serial run regardless of
/// completion order.
///
/// Safe because a Scenario run is hermetic: every run_scenario call builds
/// its own Deployment (scheduler, PKI, transport, engines, storage
/// backends) from value-typed config, and the library's only process-wide
/// mutable state is the logger, which is thread-safe (common/logging).
/// tests/conformance_test pins this with a concurrent-vs-serial
/// determinism check.
inline void parallel_sweep(std::uint32_t jobs, std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  // A throwing task (Deployment validation, bad_alloc on a huge cell) must
  // not std::terminate from a worker; capture the first exception and
  // rethrow after the join, matching the serial path's behaviour.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::uint32_t workers =
      static_cast<std::uint32_t>(std::min<std::size_t>(jobs, count));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs every scenario of a sweep (deterministic, independent runs) with
/// `jobs`-way parallelism; results come back in input order.
inline std::vector<harness::ScenarioResult> run_scenarios(
    const std::vector<harness::Scenario>& scenarios, std::uint32_t jobs) {
  std::vector<harness::ScenarioResult> results(scenarios.size());
  parallel_sweep(jobs, scenarios.size(), [&](std::size_t i) {
    results[i] = run_scenario(scenarios[i]);
  });
  return results;
}

/// Writes the bench artifact: metadata + one named JSON section per result
/// table (Table::render_json). `manifests` (label -> RunManifest JSON, one
/// per distinct scenario family in the sweep) makes the artifact
/// self-describing — bench/perf_gate refuses to compare artifacts whose
/// manifests differ. Returns false (with a message) on I/O error.
inline bool write_json_artifact(
    const std::string& path, const std::string& bench, std::uint64_t seed,
    bool smoke,
    const std::vector<std::pair<std::string, harness::Table>>& sections,
    const std::vector<std::pair<std::string, std::string>>& manifests = {}) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"seed\": %llu,\n"
               "  \"smoke\": %s,\n",
               bench.c_str(), static_cast<unsigned long long>(seed),
               smoke ? "true" : "false");
  if (!manifests.empty()) {
    std::fprintf(out, "  \"manifests\": {");
    for (std::size_t i = 0; i < manifests.size(); ++i) {
      std::fprintf(out, "%s\n    \"%s\": %s", i > 0 ? "," : "",
                   manifests[i].first.c_str(), manifests[i].second.c_str());
    }
    std::fprintf(out, "\n  },\n");
  }
  std::fprintf(out, "  \"sections\": {");
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::fprintf(out, "%s\n    \"%s\": %s", i > 0 ? "," : "",
                 sections[i].first.c_str(),
                 sections[i].second.render_json().c_str());
  }
  std::fprintf(out, "\n  }\n}\n");
  // A truncated artifact (disk full, quota) must fail the bench, not ship a
  // corrupt file under a success message.
  const bool ok = std::ferror(out) == 0;
  if (std::fclose(out) != 0 || !ok) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// The paper's geo calibration (see README.md "Calibration"): lean leader processing,
/// per-replica heterogeneity, moderate per-message jitter. Absolute
/// latencies are ~5x below the paper's Diem deployment; shapes match.
inline harness::Scenario geo_scenario() {
  harness::Scenario s;
  s.n = 100;
  s.leader_processing = millis(80);
  s.jitter = millis(40);
  s.jitter_frac = 0.25;
  s.hetero_fast_max = millis(35);
  s.hetero_medium_fraction = 0.25;
  s.hetero_medium_lo = millis(40);
  s.hetero_medium_hi = millis(60);
  s.max_batch = 100;        // records; each block models ~450 KB
  s.txn_size_bytes = 4500;
  s.verify_signatures = false;  // crypto cost does not affect latency shape
  s.duration = seconds(150);
  s.warmup = seconds(5);
  s.tail = seconds(45);
  s.seed = 42;
  return s;
}

/// Formats an x-strong level as a multiple of f ("1.3f").
inline std::string level_label(std::uint32_t level, std::uint32_t f) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1ff",
                static_cast<double>(level) / static_cast<double>(f));
  return buf;
}

/// "not achieved" marker for levels with insufficient replica coverage
/// (e.g. beyond the Fig. 7b 1.7f cap).
inline std::string latency_cell(
    const harness::StrengthLatencyTracker::LevelStats& stats) {
  if (stats.coverage < 0.5) return "--";
  return harness::Table::num(stats.mean_latency_s, 3);
}

}  // namespace sftbft::bench
