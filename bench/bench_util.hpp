// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "sftbft/harness/scenario.hpp"
#include "sftbft/harness/table.hpp"

namespace sftbft::bench {

/// The shared command-line contract of every tab_* bench:
///   --smoke          shortened CI configuration
///   --seed <n>       overrides the scenario seed (reproducibility)
///   --json <path>    writes the result tables as a JSON artifact
/// Unknown flags abort loudly — a typo silently ignored is a wasted run.
struct BenchArgs {
  bool smoke = false;
  std::uint64_t seed = 0;  ///< 0 = keep the bench's default seed
  std::string json_path;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  const auto usage = [argv]() {
    std::fprintf(stderr,
                 "usage: %s [--smoke] [--seed <n>] [--json <path>]\n",
                 argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      const char* text = argv[++i];
      char* end = nullptr;
      args.seed = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || args.seed == 0) {
        std::fprintf(stderr, "--seed wants a positive integer, got '%s'\n",
                     text);
        usage();
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else {
      usage();
    }
  }
  return args;
}

/// Writes the bench artifact: metadata + one named JSON section per result
/// table (Table::render_json). Returns false (with a message) on I/O error.
inline bool write_json_artifact(
    const std::string& path, const std::string& bench, std::uint64_t seed,
    bool smoke,
    const std::vector<std::pair<std::string, harness::Table>>& sections) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"seed\": %llu,\n"
               "  \"smoke\": %s,\n  \"sections\": {",
               bench.c_str(), static_cast<unsigned long long>(seed),
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::fprintf(out, "%s\n    \"%s\": %s", i > 0 ? "," : "",
                 sections[i].first.c_str(),
                 sections[i].second.render_json().c_str());
  }
  std::fprintf(out, "\n  }\n}\n");
  // A truncated artifact (disk full, quota) must fail the bench, not ship a
  // corrupt file under a success message.
  const bool ok = std::ferror(out) == 0;
  if (std::fclose(out) != 0 || !ok) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// The paper's geo calibration (see README.md "Calibration"): lean leader processing,
/// per-replica heterogeneity, moderate per-message jitter. Absolute
/// latencies are ~5x below the paper's Diem deployment; shapes match.
inline harness::Scenario geo_scenario() {
  harness::Scenario s;
  s.n = 100;
  s.leader_processing = millis(80);
  s.jitter = millis(40);
  s.jitter_frac = 0.25;
  s.hetero_fast_max = millis(35);
  s.hetero_medium_fraction = 0.25;
  s.hetero_medium_lo = millis(40);
  s.hetero_medium_hi = millis(60);
  s.max_batch = 100;        // records; each block models ~450 KB
  s.txn_size_bytes = 4500;
  s.verify_signatures = false;  // crypto cost does not affect latency shape
  s.duration = seconds(150);
  s.warmup = seconds(5);
  s.tail = seconds(45);
  s.seed = 42;
  return s;
}

/// Formats an x-strong level as a multiple of f ("1.3f").
inline std::string level_label(std::uint32_t level, std::uint32_t f) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1ff",
                static_cast<double>(level) / static_cast<double>(f));
  return buf;
}

/// "not achieved" marker for levels with insufficient replica coverage
/// (e.g. beyond the Fig. 7b 1.7f cap).
inline std::string latency_cell(
    const harness::StrengthLatencyTracker::LevelStats& stats) {
  if (stats.coverage < 0.5) return "--";
  return harness::Table::num(stats.mean_latency_s, 3);
}

}  // namespace sftbft::bench
