// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sftbft/harness/scenario.hpp"
#include "sftbft/harness/table.hpp"

namespace sftbft::bench {

/// The paper's geo calibration (see README.md "Calibration"): lean leader processing,
/// per-replica heterogeneity, moderate per-message jitter. Absolute
/// latencies are ~5x below the paper's Diem deployment; shapes match.
inline harness::Scenario geo_scenario() {
  harness::Scenario s;
  s.n = 100;
  s.leader_processing = millis(80);
  s.jitter = millis(40);
  s.jitter_frac = 0.25;
  s.hetero_fast_max = millis(35);
  s.hetero_medium_fraction = 0.25;
  s.hetero_medium_lo = millis(40);
  s.hetero_medium_hi = millis(60);
  s.max_batch = 100;        // records; each block models ~450 KB
  s.txn_size_bytes = 4500;
  s.verify_signatures = false;  // crypto cost does not affect latency shape
  s.duration = seconds(150);
  s.warmup = seconds(5);
  s.tail = seconds(45);
  s.seed = 42;
  return s;
}

/// Formats an x-strong level as a multiple of f ("1.3f").
inline std::string level_label(std::uint32_t level, std::uint32_t f) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1ff",
                static_cast<double>(level) / static_cast<double>(f));
  return buf;
}

/// "not achieved" marker for levels with insufficient replica coverage
/// (e.g. beyond the Fig. 7b 1.7f cap).
inline std::string latency_cell(
    const harness::StrengthLatencyTracker::LevelStats& stats) {
  if (stats.coverage < 0.5) return "--";
  return harness::Table::num(stats.mean_latency_s, 3);
}

}  // namespace sftbft::bench
