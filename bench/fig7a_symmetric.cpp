// Figure 7a: strong commit latency vs x-strong level, symmetric
// geo-distribution (paper Sec. 4.1).
//
// Setup per the paper: n = 100 (f = 33), replicas split 34/33/33 into three
// regions, inter-region delay δ ∈ {100 ms, 200 ms}. Reported: mean latency
// from block creation to x-strong commit, averaged over all blocks and all
// replicas, for x = 1.0f .. 2.0f.
//
// Expected shape (paper): a jump at 1.1f (one extra round-trip for a fresh
// strong-QC), slow near-linear growth through 1.9f (strong-QC diversity),
// and a distinctly higher 2f point (stragglers only enter QCs when their
// region leads or by jitter luck).
#include <cstdio>

#include "bench_util.hpp"

using namespace sftbft;
using namespace sftbft::bench;

int main() {
  std::printf("== Figure 7a: strong commit latency, symmetric "
              "geo-distribution (n=100, f=33) ==\n\n");

  harness::Table table({"x-strong", "latency(s) d=100ms", "latency(s) d=200ms"});

  std::vector<harness::ScenarioResult> results;
  for (const SimDuration delta : {millis(100), millis(200)}) {
    harness::Scenario s = geo_scenario();
    s.name = "fig7a";
    s.topo = harness::Scenario::Topo::Symmetric3;
    s.delta = delta;
    results.push_back(run_scenario(s));
  }

  const std::uint32_t f = geo_scenario().f();
  for (std::size_t i = 0; i < results[0].latency.size(); ++i) {
    table.add_row({level_label(results[0].latency[i].level, f),
                   latency_cell(results[0].latency[i]),
                   latency_cell(results[1].latency[i])});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("blocks measured: %llu (d=100ms), %llu (d=200ms)\n",
              static_cast<unsigned long long>(results[0].window_blocks),
              static_cast<unsigned long long>(results[1].window_blocks));
  std::printf("regular commit latency: %.3fs (d=100ms), %.3fs (d=200ms)\n",
              results[0].summary.mean_regular_latency_s,
              results[1].summary.mean_regular_latency_s);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
