// Figure 7b: strong commit latency vs x-strong level, asymmetric
// geo-distribution (paper Sec. 4.1).
//
// Setup per the paper: regions A (45), B (45), C (10); A<->B delay 20 ms;
// C<->{A,B} delay δ ∈ {100 ms, 200 ms}. Expected shape:
//  * δ = 100 ms — levels up to ~1.7f are cheap (endorsers from A∪B only);
//    1.8f and above need region-C strong-votes, which enter strong-QCs only
//    when a C replica leads (10 rounds out of 100) — significantly higher;
//  * δ = 200 ms — C leaders cannot finish a round within the pacemaker
//    budget: they time out and are replaced, no strong-QC in the chain ever
//    contains a C strong-vote, and the achievable strength caps at
//    2f − 10 = 1.7f ("--" rows below).
#include <cstdio>

#include "bench_util.hpp"

using namespace sftbft;
using namespace sftbft::bench;

namespace {

harness::Scenario asym_scenario(SimDuration delta) {
  harness::Scenario s = geo_scenario();
  s.name = "fig7b";
  s.topo = harness::Scenario::Topo::Asymmetric3;
  s.delta = delta;
  s.ab_delay = millis(20);
  // The asymmetric experiment is about *regional* exclusion; keep
  // per-replica noise mild so the region mechanism stays legible, and pin
  // the pacemaker to the calibrated budget that region-C leaders miss at
  // δ = 200 ms but meet at δ = 100 ms (README.md "Calibration").
  s.jitter = millis(15);
  s.jitter_frac = 0.1;
  s.hetero_fast_max = millis(8);
  s.hetero_medium_fraction = 0;
  s.base_timeout = millis(200);
  return s;
}

}  // namespace

int main() {
  std::printf("== Figure 7b: strong commit latency, asymmetric "
              "geo-distribution (n=100: A=45, B=45, C=10) ==\n\n");

  std::vector<harness::ScenarioResult> results;
  for (const SimDuration delta : {millis(100), millis(200)}) {
    results.push_back(run_scenario(asym_scenario(delta)));
  }

  harness::Table table({"x-strong", "latency(s) d=100ms", "latency(s) d=200ms"});
  const std::uint32_t f = geo_scenario().f();
  for (std::size_t i = 0; i < results[0].latency.size(); ++i) {
    table.add_row({level_label(results[0].latency[i].level, f),
                   latency_cell(results[0].latency[i]),
                   latency_cell(results[1].latency[i])});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("'--' = level not achieved (coverage < 50%% of block-replica "
              "pairs).\nAt d=200ms region-C leaders time out and are "
              "replaced, capping strength at 1.7f (paper Sec. 4.1).\n");
  std::printf("blocks measured: %llu (d=100ms), %llu (d=200ms)\n",
              static_cast<unsigned long long>(results[0].window_blocks),
              static_cast<unsigned long long>(results[1].window_blocks));
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
