// Figure 8: tradeoff between regular commit latency and strong commit
// latency (paper Sec. 4.2).
//
// Mechanism: after collecting 2f + 1 strong-votes, the leader waits an extra
// period W and folds any further votes into the strong-QC ("QC diversity").
// Each W yields one point per curve: x-axis = regular commit latency (grows
// with W), y = x-strong commit latency (drops as stragglers enter QCs).
// Expected shape (paper): a small regular-latency sacrifice slashes the
// 2f-strong latency (about 2x in the paper); each x-strong curve eventually
// *merges* with the regular line — once the leader packs Q >= x + f + 1
// votes per QC, the regular 3-chain commit IS an x-strong commit.
#include <cstdio>

#include "bench_util.hpp"

using namespace sftbft;
using namespace sftbft::bench;

int main() {
  std::printf("== Figure 8: regular vs strong commit latency tradeoff "
              "(symmetric, d=100ms, sweep leader extra-wait W) ==\n\n");

  const std::uint32_t f = geo_scenario().f();
  const std::vector<std::uint32_t> curve_levels = {
      static_cast<std::uint32_t>(1.2 * f), static_cast<std::uint32_t>(1.4 * f),
      static_cast<std::uint32_t>(1.6 * f), static_cast<std::uint32_t>(1.8 * f),
      2 * f};

  harness::Table table({"W(ms)", "regular(s)", "1.2f(s)", "1.4f(s)", "1.6f(s)",
                        "1.8f(s)", "2.0f(s)"});

  for (const SimDuration wait :
       {millis(0), millis(40), millis(80), millis(120), millis(160),
        millis(240), millis(320)}) {
    harness::Scenario s = geo_scenario();
    s.name = "fig8";
    s.topo = harness::Scenario::Topo::Symmetric3;
    s.delta = millis(100);
    s.extra_wait = wait;
    // The extra wait lengthens every round; give the pacemaker headroom so
    // the sweep changes QC diversity, not the timeout behaviour.
    s.base_timeout = s.default_timeout() + wait;
    const harness::ScenarioResult result = run_scenario(s);

    std::vector<std::string> row = {
        harness::Table::num(to_millis(wait), 0),
        harness::Table::num(result.summary.mean_regular_latency_s, 3)};
    for (const std::uint32_t level : curve_levels) {
      for (const auto& stats : result.latency) {
        if (stats.level == level) {
          row.push_back(latency_cell(stats));
          break;
        }
      }
    }
    table.add_row(std::move(row));
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Read as Fig. 8: each row is one extra-wait setting; curves "
              "merge with the regular column once every QC holds >= x+f+1 "
              "votes.\n");
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
