// Micro-benchmarks for the Sec. 3.2 "marginal bookkeeping overhead" claim:
// the per-vote cost of SFT (marker computation, interval computation,
// endorser updates) against the baseline costs every BFT implementation
// already pays (hashing, signing, QC digests).
#include <benchmark/benchmark.h>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/common/interval_set.hpp"
#include "sftbft/core/strength.hpp"
#include "sftbft/core/vote_history.hpp"
#include "sftbft/crypto/sha256.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/crypto/verify_cache.hpp"
#include "sftbft/net/envelope.hpp"
#include "sftbft/types/proposal.hpp"

namespace {

using namespace sftbft;

Bytes make_bytes(std::size_t size) {
  Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return data;
}

void BM_Sha256_64B(benchmark::State& state) {
  const Bytes data = make_bytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_450KB(benchmark::State& state) {
  const Bytes data = make_bytes(450 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          450 * 1024);
}
BENCHMARK(BM_Sha256_450KB);

void BM_SignVote(benchmark::State& state) {
  crypto::KeyRegistry registry(4, 1);
  const crypto::Signer signer = registry.signer_for(0);
  const Bytes msg = make_bytes(96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.sign(msg));
  }
}
BENCHMARK(BM_SignVote);

void BM_VerifyVote(benchmark::State& state) {
  crypto::KeyRegistry registry(4, 1);
  const Bytes msg = make_bytes(96);
  const crypto::Signature sig = registry.signer_for(0).sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.verify(sig, msg));
  }
}
BENCHMARK(BM_VerifyVote);

/// Builds a linear chain of `length` blocks on a tree.
chain::BlockTree make_chain(std::size_t length,
                            std::vector<types::BlockId>* ids = nullptr) {
  chain::BlockTree tree;
  types::BlockId parent = tree.genesis_id();
  for (std::size_t i = 1; i <= length; ++i) {
    types::Block block;
    block.parent_id = parent;
    block.round = i;
    block.height = i;
    block.proposer = static_cast<ReplicaId>(i % 4);
    block.qc.block_id = parent;
    block.qc.round = i - 1;
    block.seal();
    tree.insert(block);
    if (ids) ids->push_back(block.id);
    parent = block.id;
  }
  return tree;
}

/// The marker computation the paper adds to every vote (Fig. 4).
void BM_MarkerComputation(benchmark::State& state) {
  std::vector<types::BlockId> ids;
  chain::BlockTree tree = make_chain(64, &ids);
  core::VoteHistory history(tree);
  const types::Block* tip = tree.get(ids.back());
  // Vote along the chain so the frontier is realistic.
  for (std::size_t i = 0; i + 1 < ids.size(); i += 2) {
    history.record_vote(*tree.get(ids[i]));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.marker_for(*tip));
  }
}
BENCHMARK(BM_MarkerComputation);

/// The Sec. 3.4 interval-set computation (generalized strong-vote).
void BM_IntervalComputation(benchmark::State& state) {
  std::vector<types::BlockId> ids;
  chain::BlockTree tree = make_chain(64, &ids);
  core::VoteHistory history(tree);
  const types::Block* tip = tree.get(ids.back());
  for (std::size_t i = 0; i + 1 < ids.size(); i += 2) {
    history.record_vote(*tree.get(ids[i]));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.intervals_for(*tip, 0));
  }
}
BENCHMARK(BM_IntervalComputation);

/// Endorser-set update for one strong-QC of 2f+1 votes (n = 100): the
/// "whenever a replica receives a new strong-QC" bookkeeping.
void BM_EndorsementProcessQc(benchmark::State& state) {
  const std::uint32_t n = 100, f = 33;
  crypto::KeyRegistry registry(n, 1);
  std::vector<types::BlockId> ids;
  chain::BlockTree tree = make_chain(16, &ids);

  types::QuorumCert qc;
  qc.block_id = ids.back();
  qc.round = ids.size();
  qc.parent_id = ids[ids.size() - 2];
  qc.parent_round = ids.size() - 1;
  for (ReplicaId voter = 0; voter < 2 * f + 1; ++voter) {
    types::Vote vote;
    vote.block_id = ids.back();
    vote.round = ids.size();
    vote.voter = voter;
    vote.mode = types::VoteMode::Marker;
    vote.marker = 0;
    vote.sig = registry.signer_for(voter).sign(vote.signing_bytes());
    qc.add_vote(vote);
  }
  qc.canonicalize();
  for (auto _ : state) {
    state.PauseTiming();
    core::StrengthTracker tracker(tree, n, f);
    state.ResumeTiming();
    benchmark::DoNotOptimize(tracker.process_qc(qc));
  }
}
BENCHMARK(BM_EndorsementProcessQc);

types::QuorumCert make_wide_qc() {
  types::QuorumCert qc;
  qc.round = 4;
  // Digest benches only look at voter + meta, so structural assembly
  // (no signatures) keeps the setup cheap.
  for (ReplicaId voter = 0; voter < 67; ++voter) {
    qc.votes.push_back({voter, types::VoteMeta{}});
    qc.agg.signers.set(voter);
  }
  qc.canonicalize();
  return qc;
}

/// QC digest, cold: what every digest() call cost before memoization (the
/// canonicalize() busts the memo, modelling a freshly assembled QC). A
/// canonical QC's digest is taken 3-4x per replica per round (block-id
/// sealing, strength-tracker dedupe, commit-log keying) — the "before" of
/// the digest-memoization satellite.
void BM_QcDigestCold(benchmark::State& state) {
  types::QuorumCert qc = make_wide_qc();
  for (auto _ : state) {
    qc.canonicalize();  // memo refresh point: forces the full encode + hash
    benchmark::DoNotOptimize(qc.digest());
  }
}
BENCHMARK(BM_QcDigestCold);

/// ...and warm: every repeat call on the same (or a copied) QC object now
/// returns the memo — the "after".
void BM_QcDigestMemoized(benchmark::State& state) {
  types::QuorumCert qc = make_wide_qc();
  benchmark::DoNotOptimize(qc.digest());  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc.digest());
  }
}
BENCHMARK(BM_QcDigestMemoized);

/// A quorum-sized signed QC at scale n, plus the standalone per-vote
/// signatures the pre-aggregate scheme would have shipped alongside it.
struct SignedQcFixture {
  crypto::KeyRegistry registry;
  types::QuorumCert qc;
  std::vector<types::Vote> votes;  // quorum's worth, fully signed
  std::uint32_t quorum;

  explicit SignedQcFixture(std::uint32_t n)
      : registry(n, 1), quorum(2 * ((n - 1) / 3) + 1) {
    qc.round = 7;
    for (ReplicaId voter = 0; voter < quorum; ++voter) {
      types::Vote vote;
      vote.round = 7;
      vote.voter = voter;
      vote.mode = types::VoteMode::Marker;
      vote.marker = 2;
      vote.sig = registry.signer_for(voter).sign(vote.signing_bytes());
      votes.push_back(vote);
      qc.add_vote(vote);
    }
    qc.canonicalize();
  }
};

/// Per-vote certificates, encode side: the 2f+1 x 36 B signature vector the
/// old wire format carried (signer u32 + 32 B MAC each) — the "before" of
/// the aggregate-signature tentpole. Arg = n.
void BM_CertEncodePerVote(benchmark::State& state) {
  const SignedQcFixture fx(static_cast<std::uint32_t>(state.range(0)));
  std::size_t sig_bytes = 0;
  for (auto _ : state) {
    Encoder enc;
    for (const types::Vote& vote : fx.votes) vote.sig.encode(enc);
    sig_bytes = enc.data().size();
    benchmark::DoNotOptimize(enc.data().data());
  }
  state.counters["sig_bytes"] = static_cast<double>(sig_bytes);
}
BENCHMARK(BM_CertEncodePerVote)->Arg(16)->Arg(31)->Arg(100);

/// ...and the aggregate "after": one ⌈n/8⌉-byte bitmap + one 32 B tag,
/// regardless of quorum size.
void BM_CertEncodeAggregate(benchmark::State& state) {
  const SignedQcFixture fx(static_cast<std::uint32_t>(state.range(0)));
  std::size_t sig_bytes = 0;
  for (auto _ : state) {
    Encoder enc;
    fx.qc.agg.encode(enc);
    sig_bytes = enc.data().size();
    benchmark::DoNotOptimize(enc.data().data());
  }
  state.counters["sig_bytes"] = static_cast<double>(sig_bytes);
}
BENCHMARK(BM_CertEncodeAggregate)->Arg(16)->Arg(31)->Arg(100);

/// Verify side, per-vote scheme: 2f+1 independent MAC recomputations, the
/// cost every receiver paid per certificate before aggregation.
void BM_CertVerifyPerVote(benchmark::State& state) {
  const SignedQcFixture fx(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    bool ok = true;
    for (const types::Vote& vote : fx.votes) {
      ok &= fx.registry.verify(vote.sig, vote.signing_bytes());
    }
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_CertVerifyPerVote)->Arg(16)->Arg(31)->Arg(100);

/// Aggregate verify, cold: the full refold (one MAC recomputation per
/// bitmap signer) a receiver pays the first time it sees a certificate.
void BM_CertVerifyAggregateCold(benchmark::State& state) {
  const SignedQcFixture fx(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.qc.verify(fx.registry, fx.quorum));
  }
}
BENCHMARK(BM_CertVerifyAggregateCold)->Arg(16)->Arg(31)->Arg(100);

/// ...and memoized: the VerifyCache hit path for a certificate this replica
/// has already verified (the chained pipeline re-verifies the same QC on
/// proposal validation, sync, and commit paths).
void BM_CertVerifyAggregateMemoized(benchmark::State& state) {
  const SignedQcFixture fx(static_cast<std::uint32_t>(state.range(0)));
  crypto::VerifyCache cache(nullptr, 0);
  benchmark::DoNotOptimize(fx.qc.verify(fx.registry, fx.quorum, &cache));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.qc.verify(fx.registry, fx.quorum, &cache));
  }
}
BENCHMARK(BM_CertVerifyAggregateMemoized)->Arg(16)->Arg(31)->Arg(100);

/// Vote admission with a warm vote-MAC memo: the dedupe/revalidate path
/// when the same vote arrives again (gossip, retransmit).
void BM_VoteVerifyMemoized(benchmark::State& state) {
  const SignedQcFixture fx(31);
  crypto::VerifyCache cache(nullptr, 0);
  const types::Vote& vote = fx.votes.front();
  benchmark::DoNotOptimize(
      fx.registry.verify(vote.sig, vote.signing_bytes(), &cache));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.registry.verify(vote.sig, vote.signing_bytes(), &cache));
  }
}
BENCHMARK(BM_VoteVerifyMemoized);

/// A paper-calibrated proposal: 100 transactions x 4.5 KB -> ~450 KB frame.
types::Proposal make_block_proposal() {
  types::Proposal proposal;
  proposal.block.parent_id = {};
  proposal.block.round = 10;
  proposal.block.height = 9;
  proposal.block.proposer = 1;
  for (std::uint64_t i = 0; i < 100; ++i) {
    proposal.block.payload.txns.push_back(
        {.id = i, .submitted_at = 0, .size_bytes = 4500});
  }
  proposal.block.seal();
  return proposal;
}

/// Sealing a block whose payload digest is cold (100-record re-encode +
/// hash) — the "before" of the payload-digest memo on the proposer path.
void BM_BlockSealColdPayload(benchmark::State& state) {
  types::Proposal proposal = make_block_proposal();
  for (auto _ : state) {
    state.PauseTiming();
    // A copy with a fresh payload (clears the memo via reconstruction).
    types::Block block = proposal.block;
    types::Payload cold;
    cold.txns = block.payload.txns;
    block.payload = std::move(cold);
    state.ResumeTiming();
    block.seal();
    benchmark::DoNotOptimize(block.id);
  }
}
BENCHMARK(BM_BlockSealColdPayload);

/// Re-sealing with a warm payload memo — the equivocation-twin / re-seal
/// path after memoization: only the small header re-hashes.
void BM_BlockSealWarmPayload(benchmark::State& state) {
  types::Proposal proposal = make_block_proposal();
  types::Block block = proposal.block;
  block.seal();  // primes the payload records memo
  for (auto _ : state) {
    block.created_at += 1;  // the twin recipe
    block.seal();
    benchmark::DoNotOptimize(block.id);
  }
}
BENCHMARK(BM_BlockSealWarmPayload);

/// The broadcast hot path: one canonical encode of a ~450 KB proposal
/// envelope (Encoder::reserve sizes the buffer exactly — compare with the
/// _NoReserve variant below for the before/after of that satellite fix).
void BM_EnvelopeEncodeProposal450KB(benchmark::State& state) {
  const types::Proposal proposal = make_block_proposal();
  std::size_t frame_bytes = 0;
  for (auto _ : state) {
    const net::Envelope env =
        net::Envelope::pack(net::WireType::kProposal, 1, proposal);
    const Bytes frame = env.encode();
    frame_bytes = frame.size();
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame_bytes));
}
BENCHMARK(BM_EnvelopeEncodeProposal450KB);

/// Receiver-side cost per delivery: frame validation (CRC) + typed decode.
void BM_EnvelopeDecodeProposal450KB(benchmark::State& state) {
  const net::Envelope env =
      net::Envelope::pack(net::WireType::kProposal, 1, make_block_proposal());
  const Bytes frame = env.encode();
  for (auto _ : state) {
    const net::Envelope decoded = net::Envelope::decode(BytesView(frame));
    benchmark::DoNotOptimize(decoded.unpack<types::Proposal>());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_EnvelopeDecodeProposal450KB);

/// The encode-once broadcast win: what the old per-recipient path would
/// have paid to re-serialize one proposal for 99 peers. Compare one
/// iteration here against 99x BM_EnvelopeEncodeProposal450KB — the
/// transport now pays the latter exactly once per broadcast and shares the
/// frame buffer (SimTransport::broadcast), which micro-benches as a ~99x
/// reduction in serialization work per proposal round at n = 100.
void BM_EnvelopeEncodePerPeer99(benchmark::State& state) {
  const types::Proposal proposal = make_block_proposal();
  for (auto _ : state) {
    std::size_t total = 0;
    for (int peer = 0; peer < 99; ++peer) {
      const net::Envelope env =
          net::Envelope::pack(net::WireType::kProposal, 1, proposal);
      total += env.encode().size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EnvelopeEncodePerPeer99);

/// Encoder growth with the exact pre-reserve (the shipped behaviour)...
void BM_EncoderAppendReserved(benchmark::State& state) {
  const Bytes chunk = make_bytes(4500);
  for (auto _ : state) {
    Encoder enc;
    enc.reserve(100 * chunk.size());
    for (int i = 0; i < 100; ++i) enc.raw(BytesView(chunk));
    benchmark::DoNotOptimize(enc.data().data());
  }
}
BENCHMARK(BM_EncoderAppendReserved);

/// ...versus the old behaviour (no reserve: repeated reallocation while a
/// message-sized buffer grows). The delta is the satellite fix's win on
/// the broadcast hot path.
void BM_EncoderAppendNoReserve(benchmark::State& state) {
  const Bytes chunk = make_bytes(4500);
  for (auto _ : state) {
    Encoder enc;
    for (int i = 0; i < 100; ++i) enc.raw(BytesView(chunk));
    benchmark::DoNotOptimize(enc.data().data());
  }
}
BENCHMARK(BM_EncoderAppendNoReserve);

void BM_IntervalSetOps(benchmark::State& state) {
  for (auto _ : state) {
    IntervalSet set = IntervalSet::single(1, 1000);
    for (Round r = 10; r < 1000; r += 50) {
      set.subtract(r, r + 20);
    }
    benchmark::DoNotOptimize(set.contains(517));
  }
}
BENCHMARK(BM_IntervalSetOps);

}  // namespace

BENCHMARK_MAIN();
