// CI perf-regression gate CLI (see src/sftbft/harness/perf_gate.hpp).
//
//   perf_gate --baselines bench/baselines BENCH_throughput.json ...
//
// Each candidate artifact is matched to <baselines>/<basename> and compared
// under the default rule set for its "bench" field. Exit codes: 0 = all
// gates pass, 1 = at least one violation, 2 = usage/IO/parse error (an
// unreadable gate must fail CI loudly, not pass by accident).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sftbft/harness/perf_gate.hpp"

namespace {

using sftbft::harness::GateReport;
using sftbft::harness::JsonValue;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baselines_dir;
  std::vector<std::string> artifacts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baselines") == 0 && i + 1 < argc) {
      baselines_dir = argv[++i];
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      artifacts.emplace_back(argv[i]);
    }
  }
  if (baselines_dir.empty() || artifacts.empty()) {
    std::fprintf(stderr,
                 "usage: %s --baselines <dir> <artifact.json>...\n", argv[0]);
    return 2;
  }

  GateReport report;
  for (const std::string& path : artifacts) {
    const std::string name = basename_of(path);
    std::string cand_text;
    if (!read_file(path, cand_text)) {
      std::fprintf(stderr, "cannot read candidate %s\n", path.c_str());
      return 2;
    }
    const std::string baseline_path = baselines_dir + "/" + name;
    std::string base_text;
    if (!read_file(baseline_path, base_text)) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    const auto candidate = JsonValue::parse(cand_text);
    const auto baseline = JsonValue::parse(base_text);
    if (!candidate || !baseline) {
      std::fprintf(stderr, "%s: %s does not parse as JSON\n", name.c_str(),
                   candidate ? "baseline" : "candidate");
      return 2;
    }
    const JsonValue* bench = candidate->find("bench");
    if (bench == nullptr || bench->type != JsonValue::Type::String) {
      std::fprintf(stderr, "%s: missing \"bench\" field\n", name.c_str());
      return 2;
    }
    const auto rules = sftbft::harness::default_rules(bench->string);
    if (rules.empty()) {
      // An ungated artifact passed to the gate is a CI wiring mistake.
      std::fprintf(stderr, "%s: no gate rules for bench \"%s\"\n",
                   name.c_str(), bench->string.c_str());
      return 2;
    }
    compare_artifact(name, *baseline, *candidate, rules, report);
  }

  std::fputs(report.describe().c_str(), stdout);
  return report.ok() ? 0 : 1;
}
