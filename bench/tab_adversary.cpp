// Beyond-figure scenario for the paper's core claim (Theorem 1 under live
// attack): a programmable Byzantine coalition (sftbft::adversary) runs the
// Appendix-C playbook — EquivocatingLeader forks + AmnesiaVoter forged
// histories — through the *real* engines, on all three engines (DiemBFT, chained
// HotStuff, Streamlet),
// while a global SafetyAuditor checks every honest commit claim and every
// verified light-client proof against the ground-truth VoteHistory rule.
//
// The sweep is coalition size c × commit strength threshold x, under both
// counting rules:
//
//   * CountingRule::Sft (the paper's VoteHistory rule) must stay clean: zero
//     conflicting / unsound x-strong commits for every threshold x >= c.
//   * CountingRule::NaiveAllIndirect (the Appendix-C strawman) must break:
//     honest replicas claim strengths their own cross-fork voters' truthful
//     markers deny — the auditor catches the claims live, reproducing the
//     Fig. 9 safety violation inside a running deployment instead of a
//     hand-scripted vote schedule (that script survives as
//     tests/naive_counter_test.cpp, the legacy regression guard).
//
// Exit status is the acceptance verdict: 0 iff every Sft cell is clean at
// its coalition size and every Naive cell is caught.
//
// Flags: --smoke (CI-sized), --seed <n>, --json <path> (defaults to
// BENCH_adversary.json — the bench trajectory's first artifact).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sftbft/engine/deployment.hpp"
#include "sftbft/harness/auditor.hpp"
#include "sftbft/harness/scenario.hpp"
#include "sftbft/harness/table.hpp"
#include "sftbft/lightclient/light_client.hpp"

using namespace sftbft;

namespace {

struct BenchConfig {
  std::uint32_t n = 13;  ///< f = 4
  SimDuration duration = seconds(60);
  std::vector<std::uint32_t> coalition_sizes;  ///< filled from f below
  std::uint64_t seed = 42;
};

struct CellResult {
  std::uint32_t c = 0;
  std::uint64_t claims = 0;
  std::uint32_t max_claimed = 0;
  std::uint64_t equivocations = 0;
  std::uint64_t forged_votes = 0;
  std::uint64_t proofs_fed = 0;
  std::uint64_t unsound_proofs = 0;
  std::vector<std::uint64_t> violations_at;  ///< per threshold f..2f
  bool clean_at_c = false;
  Height tip = 0;
};

harness::Scenario cell_scenario(engine::Protocol protocol,
                                consensus::CountingRule rule, std::uint32_t c,
                                const BenchConfig& bench) {
  harness::Scenario s;
  s.name = "tab_adversary";
  s.protocol = protocol;
  s.n = bench.n;
  s.mode = consensus::CoreMode::SftMarker;
  s.counting = rule;
  s.topo = harness::Scenario::Topo::Uniform;
  s.delta = millis(20);
  s.jitter = millis(5);
  s.jitter_frac = 0;
  s.leader_processing = millis(10);
  s.streamlet_delta_bound = millis(50);
  // The echo stays ON: it is how fork-side replicas recover the winning
  // block within the round, and their direct votes for the next block are
  // precisely what opens the strawman's overclaim window (Appendix C).
  s.streamlet_echo = true;
  s.verify_signatures = false;
  s.max_batch = 20;
  s.txn_size_bytes = 450;
  s.duration = bench.duration;
  s.seed = bench.seed;
  s.byzantine_count = c;
  s.byzantine.strategies = {adversary::Strategy::EquivocatingLeader,
                            adversary::Strategy::AmnesiaVoter};
  return s;
}

CellResult run_cell(engine::Protocol protocol, consensus::CountingRule rule,
                    std::uint32_t c, const BenchConfig& bench) {
  const harness::Scenario s = cell_scenario(protocol, rule, c, bench);

  harness::SafetyAuditor auditor({protocol, s.n});
  engine::AuditTaps taps = auditor.taps();

  engine::Deployment deployment(
      s.to_deployment_config(),
      [&auditor](ReplicaId replica, const types::Block& block,
                 std::uint32_t strength, SimTime now) {
        auditor.on_commit(replica, block, strength, now);
      },
      std::move(taps));

  CellResult result;
  result.c = c;

  // Sec. 5 trust path, audited live: an honest full node periodically
  // builds StrongCommitProofs for its freshest strong commits; every proof
  // that verifies (the client would accept it!) is fed to the auditor. With
  // naive counting the certified Log itself carries the overclaim — the
  // proof verifies and the auditor flags the claim it certifies. The Log
  // machinery is chained-kernel level, so the probe runs on DiemBFT and
  // HotStuff alike.
  lightclient::LightClient client(deployment.registry(), s.n);
  std::function<void()> probe_proofs;
  if (engine::is_chained(protocol)) {
    probe_proofs = [&] {
      const auto& core = deployment.chained_core(0);
      const auto entries = core.ledger().snapshot();
      const std::size_t from = entries.size() > 8 ? entries.size() - 8 : 0;
      for (std::size_t i = from; i < entries.size(); ++i) {
        if (entries[i].strength <= s.f()) continue;
        const auto proof = lightclient::build_proof(
            core, entries[i].block_id, entries[i].strength);
        if (!proof || !client.verify(*proof)) continue;
        ++result.proofs_fed;
        if (auditor.supported_strength(proof->target) < proof->strength) {
          ++result.unsound_proofs;
        }
        auditor.on_proof(*proof, deployment.scheduler().now());
      }
      deployment.scheduler().schedule_after(seconds(2), probe_proofs);
    };
    deployment.scheduler().schedule_after(seconds(2), probe_proofs);
  }

  deployment.start();
  deployment.run_for(s.duration);

  result.claims = auditor.claims();
  result.max_claimed = auditor.max_claimed();
  if (const adversary::Coalition* coalition = deployment.coalition()) {
    result.equivocations = coalition->stats().equivocations;
    result.forged_votes = coalition->stats().forged_votes;
  }
  for (std::uint32_t x = s.f(); x <= 2 * s.f(); ++x) {
    result.violations_at.push_back(auditor.violations_at(x));
  }
  result.clean_at_c = auditor.clean_at(c);
  result.tip = deployment.ledger(0).tip().value_or(0);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  BenchConfig bench;
  if (args.smoke) {
    bench.n = 7;  // f = 2
    bench.duration = seconds(20);
  }
  if (args.seed != 0) bench.seed = args.seed;
  const std::uint32_t f = (bench.n - 1) / 3;
  bench.coalition_sizes = args.smoke
                              ? std::vector<std::uint32_t>{1, f}
                              : std::vector<std::uint32_t>{1, f, 2 * f};

  std::printf("== tab_adversary: Byzantine coalitions (EquivocatingLeader + "
              "AmnesiaVoter) vs the counting rules%s ==\n"
              "n=%u (f=%u), seed=%llu; auditor checks every honest commit "
              "and every verified light-client proof\n\n",
              args.smoke ? " [smoke]" : "", bench.n, f,
              static_cast<unsigned long long>(bench.seed));

  std::vector<std::string> headers{"c", "equivocations", "forged_votes",
                                   "claims", "max_x", "proofs", "unsound_proofs"};
  for (std::uint32_t x = f; x <= 2 * f; ++x) {
    headers.push_back("viol@x>=" + std::to_string(x));
  }
  headers.push_back("verdict");

  // The full cell grid: engine x counting rule x coalition size. Each cell
  // is a hermetic deployment + auditor, so --jobs N runs them on a thread
  // pool; tables/JSON render afterwards in grid order, so stdout and the
  // artifact are byte-identical to the serial sweep. (The stderr progress
  // lines below are diagnostics and appear in claim order under --jobs.)
  struct CellJob {
    engine::Protocol protocol;
    consensus::CountingRule rule;
    std::uint32_t c;
  };
  std::vector<CellJob> grid;
  for (const engine::Protocol protocol : engine::kAllProtocols) {
    for (const consensus::CountingRule rule :
         {consensus::CountingRule::Sft,
          consensus::CountingRule::NaiveAllIndirect}) {
      for (const std::uint32_t c : bench.coalition_sizes) {
        grid.push_back({protocol, rule, c});
      }
    }
  }
  std::vector<CellResult> cells(grid.size());
  bench::parallel_sweep(args.jobs, grid.size(), [&](std::size_t i) {
    const CellJob& job = grid[i];
    std::fprintf(stderr, "[tab_adversary] %s/%s c=%u...\n",
                 engine::protocol_name(job.protocol),
                 job.rule == consensus::CountingRule::NaiveAllIndirect
                     ? "naive"
                     : "votehistory",
                 job.c);
    cells[i] = run_cell(job.protocol, job.rule, job.c, bench);
  });

  int failures = 0;
  std::vector<std::pair<std::string, harness::Table>> sections;
  std::size_t index = 0;
  for (const engine::Protocol protocol : engine::kAllProtocols) {
    for (const consensus::CountingRule rule :
         {consensus::CountingRule::Sft,
          consensus::CountingRule::NaiveAllIndirect}) {
      const bool naive = rule == consensus::CountingRule::NaiveAllIndirect;
      harness::Table table(headers);
      for (std::size_t k = 0; k < bench.coalition_sizes.size();
           ++k, ++index) {
        // The render nesting must mirror the grid construction above; fail
        // loudly if someone edits one loop without the other.
        const CellJob& job = grid[index];
        if (job.protocol != protocol || job.rule != rule ||
            job.c != bench.coalition_sizes[k]) {
          std::fprintf(stderr,
                       "tab_adversary: render order out of sync with the "
                       "cell grid at index %zu\n",
                       index);
          return 2;
        }
        const CellResult& cell = cells[index];
        // Acceptance: VoteHistory stays clean at every threshold >= c; the
        // strawman must be caught red-handed.
        const std::uint64_t total =
            cell.violations_at.empty() ? 0 : cell.violations_at.front();
        const bool ok = naive ? total > 0 : cell.clean_at_c;
        if (!ok) ++failures;

        std::vector<std::string> row{
            std::to_string(cell.c), std::to_string(cell.equivocations),
            std::to_string(cell.forged_votes), std::to_string(cell.claims),
            std::to_string(cell.max_claimed), std::to_string(cell.proofs_fed),
            std::to_string(cell.unsound_proofs)};
        for (const std::uint64_t v : cell.violations_at) {
          row.push_back(std::to_string(v));
        }
        row.push_back(ok ? (naive ? "violation detected" : "clean")
                         : (naive ? "FAIL: strawman undetected"
                                  : "FAIL: safety violated"));
        table.add_row(std::move(row));
      }
      const std::string name = std::string(engine::protocol_name(protocol)) +
                               (naive ? "_naive" : "_votehistory");
      std::printf("-- %s / %s counting --\n%s\n",
                  engine::protocol_name(protocol),
                  naive ? "NaiveAllIndirect (Appendix-C strawman)"
                        : "VoteHistory (Fig. 4 / Fig. 11)",
                  table.render().c_str());
      sections.emplace_back(name, std::move(table));
    }
  }

  const std::string json_path =
      args.json_path.empty() ? "BENCH_adversary.json" : args.json_path;
  std::vector<std::pair<std::string, std::string>> manifests;
  for (const CellJob& job : grid) {
    const bool naive = job.rule == consensus::CountingRule::NaiveAllIndirect;
    manifests.emplace_back(
        std::string(engine::protocol_name(job.protocol)) +
            (naive ? "_naive" : "_votehistory") + "_c" + std::to_string(job.c),
        cell_scenario(job.protocol, job.rule, job.c, bench)
            .manifest()
            .render_json());
  }
  if (!bench::write_json_artifact(json_path, "tab_adversary", bench.seed,
                                  args.smoke, sections, manifests)) {
    ++failures;
  }

  std::printf("\nacceptance: %s\n",
              failures == 0 ? "all cells passed" : "FAILED");
  return failures == 0 ? 0 : 1;
}
