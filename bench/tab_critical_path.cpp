// Commit critical-path attribution across the three engines (obs v2
// tentpole): run each engine traced on the symmetric geo setup, walk every
// committed block's causal graph backwards (obs::CriticalPathAnalyzer), and
// report where commit latency actually goes — proposal transit, dissem
// availability wait, vote gathering, straggler wait, QC formation,
// pacemaker idle, commit delivery.
//
// The per-block segments sum exactly to the measured commit latency
// (tests/critical_path_test pins this), so the "share" table is a true
// partition: the paper's strength/latency tradeoff (Fig. 7/8) read as a
// budget breakdown instead of a single end-to-end number.
#include <cstdio>

#include "bench_util.hpp"
#include "sftbft/obs/critical_path.hpp"

using namespace sftbft;
using namespace sftbft::bench;

namespace {

harness::Scenario cp_scenario(engine::Protocol protocol, bool smoke) {
  harness::Scenario s = geo_scenario();
  s.name = "tab_critical_path";
  s.protocol = protocol;
  s.topo = harness::Scenario::Topo::Symmetric3;
  s.n = 16;
  s.delta = millis(100);
  // Streamlet's lock-step rounds need Delta >= the real network delay.
  s.streamlet_delta_bound = millis(200);
  s.obs.enabled = true;
  s.obs.trace = true;
  if (smoke) {
    s.duration = seconds(30);
    s.tail = seconds(10);
  } else {
    s.duration = seconds(120);
    s.tail = seconds(30);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  std::printf("== Commit critical-path attribution (traced, symmetric "
              "d=100ms, n=16) ==\n\n");

  std::vector<harness::Scenario> sweep;
  for (const engine::Protocol protocol : engine::kAllProtocols) {
    harness::Scenario s = cp_scenario(protocol, args.smoke);
    if (args.seed != 0) s.seed = args.seed;
    sweep.push_back(std::move(s));
  }
  const std::uint64_t seed = sweep.front().seed;

  const std::vector<harness::ScenarioResult> results =
      run_scenarios(sweep, args.jobs);

  harness::Table summary({"engine", "blocks", "mean commit (ms)",
                          "p99 commit (ms)", "dominant", "residual max (%)"});
  std::vector<std::string> seg_headers{"engine"};
  for (std::size_t i = 0; i < obs::kSegmentCount; ++i) {
    seg_headers.push_back(
        std::string(obs::segment_name(static_cast<obs::Segment>(i))) +
        " (ms)");
  }
  harness::Table segments(seg_headers);
  std::vector<std::string> share_headers{"engine"};
  for (std::size_t i = 0; i < obs::kSegmentCount; ++i) {
    share_headers.push_back(
        std::string(obs::segment_name(static_cast<obs::Segment>(i))) + " (%)");
  }
  harness::Table shares(share_headers);

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const char* engine = engine::protocol_name(sweep[i].protocol);
    const obs::CriticalPathResult& cp = results[i].critical_path;
    const double blocks = static_cast<double>(cp.blocks.size());
    const double mean_ms =
        blocks > 0 ? static_cast<double>(cp.total_latency) / blocks / 1000.0
                   : 0.0;
    summary.add_row(
        {engine, harness::Table::num(blocks, 0),
         harness::Table::num(mean_ms, 2),
         harness::Table::num(
             static_cast<double>(results[i].commit_latency.p99) / 1000.0, 2),
         obs::segment_name(cp.dominant()),
         harness::Table::num(cp.max_residual_frac() * 100.0, 1)});
    std::vector<std::string> seg_row{engine};
    std::vector<std::string> share_row{engine};
    for (std::size_t k = 0; k < obs::kSegmentCount; ++k) {
      const auto segment = static_cast<obs::Segment>(k);
      seg_row.push_back(harness::Table::num(cp.mean_us(segment) / 1000.0, 2));
      share_row.push_back(harness::Table::num(cp.share(segment) * 100.0, 1));
    }
    segments.add_row(std::move(seg_row));
    shares.add_row(std::move(share_row));
  }

  std::printf("%s\n", summary.render().c_str());
  std::printf("-- mean per committed block --\n%s\n", segments.render().c_str());
  std::printf("-- share of total commit latency --\n%s\n",
              shares.render().c_str());
  std::printf(
      "Expected: the chained engines split latency between proposal transit "
      "and vote gathering (responsive path), while Streamlet's lock-step "
      "rounds shift weight to pacemaker idle; per-block segments sum "
      "exactly to the measured commit latency.\n");

  std::vector<std::pair<std::string, std::string>> manifests;
  for (const harness::Scenario& s : sweep) {
    manifests.emplace_back(engine::protocol_name(s.protocol),
                           s.manifest().render_json());
  }
  if (!args.json_path.empty() &&
      !write_json_artifact(args.json_path, "tab_critical_path", seed,
                           args.smoke,
                           {{"summary", summary},
                            {"segments", segments},
                            {"shares", shares}},
                           manifests)) {
    return 1;
  }
  return 0;
}
