// Payload dissemination scale-out (sftbft::dissem): engine x n x
// {inline, digest} sweep.
//
// The leader-bandwidth claim made measurable: in inline mode every proposal
// carries the full ~450 KB block, so the round leader must push
// block x (n-1) bytes through one NIC on the consensus critical path. In
// dissemination mode replicas stream content-addressed batches continuously
// off the critical path and proposals carry only digest lists, so the bytes
// a leader sends *as leader* collapse to the header + QC while committed
// throughput rises (one block can reference many batches).
//
// Reported per cell:
//   - mean proposal frame bytes (traffic_by_type["proposal"], exact wire
//     accounting) and proposal bytes per committed txn — the leader-egress
//     metric; the inline/digest ratio per (engine, n) gets its own table.
//   - batch-push traffic and max per-replica egress — the data plane is NOT
//     free (every txn still travels to every replica once); it is *spread*,
//     which is the point.
//   - a canonical-payload table: exact encoded bytes of a full inline
//     payload (100 x 4.5 KB txns) vs a digest payload at the reference cap —
//     452,005 B vs 517 B, independent of any run.
//
// Streamlet runs with the O(n^3) echo off: the relay cost is a separate
// axis, measured by tab_msg_complexity, and would drown the dissemination
// signal here.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "sftbft/common/codec.hpp"
#include "sftbft/types/transaction.hpp"

namespace sftbft::bench {
namespace {

harness::Scenario dissem_scenario(engine::Protocol protocol, std::uint32_t n,
                                  bool dissemination, const BenchArgs& args) {
  harness::Scenario s;
  s.name = std::string("dissem_") + engine::protocol_name(protocol) + "_n" +
           std::to_string(n) + (dissemination ? "_digest" : "_inline");
  s.protocol = protocol;
  s.n = n;
  s.topo = harness::Scenario::Topo::Symmetric3;
  s.delta = millis(100);
  s.jitter = millis(40);
  s.jitter_frac = 0.25;
  s.leader_processing = millis(80);
  s.max_batch = 100;  // the paper's ~450 KB block
  s.txn_size_bytes = 4500;
  s.verify_signatures = false;
  s.streamlet_delta_bound = millis(200);  // covers delta + jitter
  s.streamlet_echo = false;               // see the header comment
  // Sustained Poisson arrivals (100 txn/s per replica) keep the inline
  // leader's pool at its target for the whole window, so inline proposals
  // stay block-sized — the comparison needs full blocks, not the one-shot
  // top-up that drains after the first few rounds.
  s.mean_interarrival = millis(10);
  s.dissemination = dissemination;
  // Data plane sizing: block-scale batches (250 txns ~ 1.1 MB) packed once
  // per second, with admission rate-limited to 50 clients x 5 txn/s =
  // 250 txn/s per replica. Production (1 batch/s/replica) then stays inside
  // the <= 16-batches-per-proposal reference budget even at n = 50, so the
  // batch backlog is bounded and digest payloads stay a few hundred bytes.
  s.dissem.batch_max_txns = 250;
  s.dissem.batch_interval = seconds(1);
  s.dissem.clients = 50;
  s.dissem.client_rate_limit = 5;
  s.duration = args.smoke ? seconds(20) : seconds(60);
  s.warmup = seconds(4);
  s.tail = seconds(4);
  s.seed = args.seed != 0 ? args.seed : 42;
  return s;
}

struct Cell {
  engine::Protocol protocol;
  std::uint32_t n = 0;
  bool dissemination = false;
};

/// Exact encoded size of a representative payload in each mode (no run
/// needed): inline = max_batch full transactions with synthetic bodies,
/// digest = the max_batches_per_proposal reference list.
std::pair<std::size_t, std::size_t> canonical_payload_bytes(
    const harness::Scenario& s) {
  types::Payload inline_payload;
  for (std::uint64_t i = 0; i < s.max_batch; ++i) {
    inline_payload.txns.push_back(types::Transaction{
        .id = i, .submitted_at = 0, .size_bytes = s.txn_size_bytes});
  }
  types::Payload digest_payload = types::Payload::referencing(
      std::vector<crypto::Sha256Digest>(s.dissem.max_batches_per_proposal));
  Encoder inline_enc;
  inline_payload.encode(inline_enc);
  Encoder digest_enc;
  digest_payload.encode(digest_enc);
  return {inline_enc.data().size(), digest_enc.data().size()};
}

struct CellMetrics {
  double prop_frame_bytes = 0;   ///< mean proposal frame size
  double prop_bytes_per_txn = 0; ///< leader-egress metric
};

}  // namespace
}  // namespace sftbft::bench

int main(int argc, char** argv) {
  using namespace sftbft;
  using namespace sftbft::bench;

  const BenchArgs args = parse_args(argc, argv);
  const std::vector<std::uint32_t> sizes =
      args.smoke ? std::vector<std::uint32_t>{7, 50}
                 : std::vector<std::uint32_t>{7, 25, 50};

  std::vector<harness::Scenario> sweep;
  std::vector<Cell> cells;
  for (const std::uint32_t n : sizes) {
    for (const engine::Protocol protocol : engine::kAllProtocols) {
      for (const bool dissemination : {false, true}) {
        sweep.push_back(dissem_scenario(protocol, n, dissemination, args));
        cells.push_back(Cell{protocol, n, dissemination});
      }
    }
  }

  const std::vector<harness::ScenarioResult> results =
      run_scenarios(sweep, args.jobs);

  harness::Table table(
      {"engine", "n", "payload", "blocks", "txn/s", "commit_s", "prop_frames",
       "prop_frame_B", "prop_B/txn", "push_MB", "max_egress_MB",
       "egress_B/txn"});
  std::vector<CellMetrics> metrics(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const harness::ScenarioResult& r = results[i];
    const auto type_stats = [&](const char* label) {
      const auto it = r.traffic_by_type.find(label);
      return it != r.traffic_by_type.end() ? it->second
                                           : net::MessageStats::TypeStats{};
    };
    const net::MessageStats::TypeStats prop = type_stats("proposal");
    const net::MessageStats::TypeStats push = type_stats("batch_push");
    const double txns =
        static_cast<double>(std::max<std::uint64_t>(1, r.summary.committed_txns));
    metrics[i].prop_frame_bytes =
        prop.count > 0 ? static_cast<double>(prop.bytes) /
                             static_cast<double>(prop.count)
                       : 0;
    metrics[i].prop_bytes_per_txn = static_cast<double>(prop.bytes) / txns;
    table.add_row({engine::protocol_name(cell.protocol),
                   std::to_string(cell.n),
                   cell.dissemination ? "digest" : "inline",
                   std::to_string(r.summary.committed_blocks),
                   harness::Table::num(r.summary.txns_per_sec, 0),
                   harness::Table::num(r.summary.mean_regular_latency_s, 3),
                   std::to_string(prop.count),
                   harness::Table::num(metrics[i].prop_frame_bytes, 0),
                   harness::Table::num(metrics[i].prop_bytes_per_txn, 1),
                   harness::Table::num(
                       static_cast<double>(push.bytes) / 1e6, 1),
                   harness::Table::num(
                       static_cast<double>(r.max_egress_bytes) / 1e6, 1),
                   harness::Table::num(
                       static_cast<double>(r.total_message_bytes) / txns, 0)});
  }
  std::printf("-- dissemination sweep (engine x n x payload mode) --\n%s\n",
              table.render().c_str());

  // Leader-egress ratio per (engine, n): inline vs digest proposal bytes
  // per committed txn — the acceptance criterion is >= 10x at n = 50.
  harness::Table ratio_table({"engine", "n", "inline_prop_B/txn",
                              "digest_prop_B/txn", "ratio"});
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const CellMetrics& inline_m = metrics[i];
    const CellMetrics& digest_m = metrics[i + 1];
    const double ratio = digest_m.prop_bytes_per_txn > 0
                             ? inline_m.prop_bytes_per_txn /
                                   digest_m.prop_bytes_per_txn
                             : 0;
    ratio_table.add_row({engine::protocol_name(cells[i].protocol),
                         std::to_string(cells[i].n),
                         harness::Table::num(inline_m.prop_bytes_per_txn, 1),
                         harness::Table::num(digest_m.prop_bytes_per_txn, 1),
                         harness::Table::num(ratio, 1)});
  }
  std::printf("-- leader egress per committed txn, inline / digest --\n%s\n",
              ratio_table.render().c_str());

  const auto [inline_bytes, digest_bytes] =
      canonical_payload_bytes(sweep.front());
  harness::Table payload_table({"payload", "encoded_B"});
  payload_table.add_row({"inline_100x4500", std::to_string(inline_bytes)});
  payload_table.add_row({"digest_16_batches", std::to_string(digest_bytes)});
  std::printf("-- canonical payload encodings --\n%s\n",
              payload_table.render().c_str());

  if (!args.json_path.empty()) {
    const std::uint64_t seed = args.seed != 0 ? args.seed : 42;
    std::vector<std::pair<std::string, std::string>> manifests;
    for (const harness::Scenario& s : sweep) {
      manifests.emplace_back(std::string(engine::protocol_name(s.protocol)) +
                                 "_n" + std::to_string(s.n) +
                                 (s.dissemination ? "_digest" : "_inline"),
                             s.manifest().render_json());
    }
    if (!write_json_artifact(args.json_path, "tab_dissemination", seed,
                             args.smoke,
                             {{"dissemination", table},
                              {"leader_egress_ratio", ratio_table},
                              {"canonical_payload", payload_table}},
                             manifests)) {
      return 1;
    }
  }
  return 0;
}
