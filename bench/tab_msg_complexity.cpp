// Message-complexity claim (paper Sec. 3.2 and Appendix B): SFT-DiemBFT
// keeps DiemBFT's linear (O(n)) amortized messages per block decision, while
// adapting FBFT to DiemBFT costs O(n^2) — the leader must multicast up to f
// extra votes that arrive after the 2f+1-vote QC was sealed.
//
// This bench measures messages per committed block over a sweep of n. SFT
// should track ~3n (proposal multicast + votes + timeout noise); FBFT grows
// quadratically as stragglers' late votes are rebroadcast to everyone.
//
// Since the Envelope refactor the byte numbers here are *exact*: every
// message is charged its canonical encoded frame size. The wire accounting
// runs on ALL THREE engines (DiemBFT, chained HotStuff, Streamlet — the
// HotStuff 0x2x tags included), and --smoke writes it as BENCH_wire.json
// for CI to archive. Sweep cells are independent deterministic runs;
// --jobs N executes them on a thread pool with stable output ordering.
#include <cstdio>
#include <utility>

#include "bench_util.hpp"
#include "sftbft/types/quorum_cert.hpp"
#include "sftbft/types/timeout.hpp"

using namespace sftbft;
using namespace sftbft::bench;

namespace {

/// Exact per-certificate wire bytes at scale n (quorum = 2f+1 signers):
/// one aggregate-signature QC and one TimeoutCert (which carries a single
/// high QC, not one per sender). Structural assembly is enough — encoded
/// size depends only on the certificate's shape, not its MACs. These are
/// the bytes the perf gate pins: a change that reintroduces O(n)
/// signature vectors shows up here before it shows up in traffic.
std::pair<std::size_t, std::size_t> certificate_bytes(std::uint32_t n) {
  const std::uint32_t quorum = 2 * ((n - 1) / 3) + 1;
  types::QuorumCert qc;
  for (ReplicaId voter = 0; voter < quorum; ++voter) {
    qc.votes.push_back({voter, types::VoteMeta{}});
    qc.agg.signers.set(voter);
  }
  qc.canonicalize();
  Encoder qc_enc;
  qc.encode(qc_enc);
  types::TimeoutCert tc;
  tc.high_qc = qc;
  for (ReplicaId sender = 0; sender < quorum; ++sender) {
    tc.hqc_rounds.push_back(0);
    tc.agg.signers.set(sender);
  }
  Encoder tc_enc;
  tc.encode(tc_enc);
  return {qc_enc.data().size(), tc_enc.data().size()};
}

harness::Scenario complexity_scenario(engine::Protocol protocol,
                                      std::uint32_t n, bool fbft,
                                      const BenchArgs& args) {
  harness::Scenario s = geo_scenario();
  s.name = "tab_msg_complexity";
  s.protocol = protocol;
  s.n = n;
  s.topo = harness::Scenario::Topo::Symmetric3;
  s.delta = millis(100);
  s.fbft = fbft;
  // Streamlet is lock-step: give rounds a realistic Δ and keep the echo on
  // (its O(n^3) is the point of measuring it).
  s.streamlet_delta_bound = millis(120);
  // Metrics (not tracing): the transport's per-WireType transit/queueing
  // histograms feed the delay columns of the per-type wire tables.
  s.obs.enabled = true;
  // Heterogeneity scaled to keep a comparable straggler share at every n.
  s.duration = args.smoke ? seconds(40) : seconds(90);
  s.tail = args.smoke ? seconds(10) : seconds(30);
  if (args.seed != 0) s.seed = args.seed;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  std::printf("== Messages per committed block: SFT-DiemBFT (linear) vs "
              "FBFT-on-DiemBFT (quadratic, Appendix B) ==\n\n");

  harness::Table table({"n", "SFT msgs/block", "SFT /n", "FBFT msgs/block",
                        "FBFT /n", "FBFT extra votes/block"});

  const std::vector<std::uint32_t> sizes =
      args.smoke ? std::vector<std::uint32_t>{16u, 31u}
                 : std::vector<std::uint32_t>{16u, 31u, 61u, 100u};
  const std::uint32_t wire_n = sizes.back();

  // The whole grid up front: (sft, fbft) per n, plus one exact-wire run at
  // n = wire_n for the OTHER engines — the DiemBFT wire section reuses the
  // largest SFT complexity cell instead of re-simulating it. All cells are
  // independent and --jobs parallelizable.
  std::vector<harness::Scenario> sweep;
  for (const std::uint32_t n : sizes) {
    sweep.push_back(
        complexity_scenario(engine::Protocol::DiemBft, n, false, args));
    sweep.push_back(
        complexity_scenario(engine::Protocol::DiemBft, n, true, args));
  }
  const std::size_t wire_base = sweep.size();
  for (const engine::Protocol protocol : engine::kAllProtocols) {
    if (protocol == engine::Protocol::DiemBft) continue;  // reuse SFT cell
    sweep.push_back(complexity_scenario(protocol, wire_n, false, args));
  }
  // One digest-mode cell at n = 100 (always, smoke included): the dissem
  // data plane turns proposals into digest references, so certificate bytes
  // dominate the remaining traffic — the configuration where the aggregate
  // signature collapse is most visible on the wire. SFT-DiemBFT only (the
  // paper's linear engine): a Streamlet n = 100 cell is O(n^3) echo
  // traffic and would dominate the whole smoke run's wall clock.
  const std::size_t digest_index = sweep.size();
  constexpr std::uint32_t kDigestN = 100;
  {
    harness::Scenario s =
        complexity_scenario(engine::Protocol::DiemBft, kDigestN, false, args);
    s.dissemination = true;
    // This cell accounts certificate bytes, not batch throughput — at
    // n = 100 the saturating default data plane (64 clients, 250x4.5 KB
    // batches every 20 ms, each pushed to 99 peers) swamps a single-core
    // CI runner's memory and wall clock. Trim the payload side so the
    // control-plane frames (proposal/vote/timeout + certificates) dominate
    // the table, which is the point of digest mode here.
    s.txn_size_bytes = 450;
    s.max_batch = 25;
    s.dissem.clients = 8;
    s.dissem.batch_max_txns = 25;
    s.dissem.batch_interval = millis(100);
    s.duration = args.smoke ? seconds(20) : seconds(60);
    s.tail = seconds(5);
    sweep.push_back(std::move(s));
  }
  const std::vector<harness::ScenarioResult> results =
      run_scenarios(sweep, args.jobs);

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::uint32_t n = sizes[i];
    const harness::ScenarioResult& sft = results[2 * i];
    const harness::ScenarioResult& fbft = results[2 * i + 1];

    // Extra-vote traffic is the quadratic term; report it separately.
    const double fbft_blocks =
        fbft.messages_per_block > 0
            ? static_cast<double>(fbft.total_messages) / fbft.messages_per_block
            : 1.0;
    table.add_row({std::to_string(n),
                   harness::Table::num(sft.messages_per_block, 0),
                   harness::Table::num(sft.messages_per_block / n, 2),
                   harness::Table::num(fbft.messages_per_block, 0),
                   harness::Table::num(fbft.messages_per_block / n, 2),
                   harness::Table::num(
                       static_cast<double>(fbft.extra_vote_messages) /
                           fbft_blocks,
                       0)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Expected: 'SFT /n' stays ~flat (linear per decision); "
              "'FBFT /n' grows with n (quadratic per decision).\n");

  // Byte-level wire accounting (SFT runs at n = wire_n, one per engine):
  // per-type frame bytes are EXACT canonical Envelope sizes — the HotStuff
  // stack's 0x2x tags included — and the broadcast path encodes each frame
  // once for all recipients.
  std::vector<std::pair<std::string, harness::Table>> sections;
  sections.emplace_back("complexity", table);
  // decode_drops must read 0 on every clean run: any frame a replica could
  // not decode back to the message it encoded is a codec bug, not noise.
  harness::Table broadcast_table({"engine", "n", "charged bytes", "qc bytes",
                                  "tc bytes", "encode-once saved bytes",
                                  "saved/charged", "decode drops"});
  // Adds one per-type section + one broadcast row for a wire cell. `label`
  // doubles as the gate's row key, so each cell needs a distinct one.
  const auto add_wire_cell = [&](const std::string& label, std::uint32_t n,
                                 const harness::ScenarioResult& wire_run) {
    harness::Table wire_table({"type", "frames", "total bytes",
                               "avg frame bytes", "transit p50 (ms)",
                               "transit p99 (ms)"});
    for (const auto& [type, stats] : wire_run.traffic_by_type) {
      // Transit percentiles (send -> delivery, micros in the histogram):
      // self-delivered frames are not on the wire, so a type that only ever
      // loops back (or never got delivered) reads "--".
      std::string p50 = "--";
      std::string p99 = "--";
      if (const auto it = wire_run.wire_delays.find(type);
          it != wire_run.wire_delays.end() && it->second.transit.count > 0) {
        p50 = harness::Table::num(
            static_cast<double>(it->second.transit.p50) / 1000.0, 1);
        p99 = harness::Table::num(
            static_cast<double>(it->second.transit.p99) / 1000.0, 1);
      }
      wire_table.add_row(
          {type, std::to_string(stats.count), std::to_string(stats.bytes),
           harness::Table::num(
               stats.count > 0
                   ? static_cast<double>(stats.bytes) /
                         static_cast<double>(stats.count)
                   : 0.0,
               1),
           std::move(p50), std::move(p99)});
    }
    const auto [qc_bytes, tc_bytes] = certificate_bytes(n);
    broadcast_table.add_row(
        {label, std::to_string(n),
         std::to_string(wire_run.total_message_bytes),
         std::to_string(qc_bytes), std::to_string(tc_bytes),
         std::to_string(wire_run.broadcast_saved_bytes),
         harness::Table::num(
             wire_run.total_message_bytes > 0
                 ? static_cast<double>(wire_run.broadcast_saved_bytes) /
                       static_cast<double>(wire_run.total_message_bytes)
                 : 0.0,
             3),
         std::to_string(wire_run.decode_drops)});
    std::printf("-- %s --\n%s\n", label.c_str(), wire_table.render().c_str());
    sections.emplace_back("per_type_" + label, std::move(wire_table));
  };

  std::printf("\n== On-wire bytes (exact, SFT n=%u, all engines) ==\n",
              wire_n);
  std::size_t extra_wire = 0;
  for (const engine::Protocol protocol : engine::kAllProtocols) {
    const harness::ScenarioResult& wire_run =
        protocol == engine::Protocol::DiemBft
            ? results[2 * (sizes.size() - 1)]  // the largest SFT cell
            : results[wire_base + extra_wire++];
    add_wire_cell(engine::protocol_name(protocol), wire_n, wire_run);
  }
  std::printf("\n== Digest-mode wire bytes (dissem data plane, n=%u) ==\n",
              kDigestN);
  add_wire_cell(
      std::string(engine::protocol_name(engine::Protocol::DiemBft)) + "+digest",
      kDigestN, results[digest_index]);
  std::printf("%s\n", broadcast_table.render().c_str());
  sections.emplace_back("broadcast", broadcast_table);

  // One manifest per sweep cell, keyed engine/n/variant (FBFT cells are a
  // different config digest than SFT at the same n — that is the point).
  std::vector<std::pair<std::string, std::string>> manifests;
  for (const harness::Scenario& s : sweep) {
    manifests.emplace_back(std::string(engine::protocol_name(s.protocol)) +
                               "_n" + std::to_string(s.n) +
                               (s.fbft ? "_fbft" : ""),
                           s.manifest().render_json());
  }
  if (!args.json_path.empty() &&
      !write_json_artifact(args.json_path, "tab_msg_complexity",
                           args.seed != 0 ? args.seed : 42, args.smoke,
                           sections, manifests)) {
    return 1;
  }
  // CI archives the exact wire accounting next to BENCH_adversary.json —
  // all three engines' sections included.
  if (args.smoke) {
    std::vector<std::pair<std::string, harness::Table>> wire_sections(
        sections.begin() + 1, sections.end());
    if (!write_json_artifact("BENCH_wire.json", "wire",
                             args.seed != 0 ? args.seed : 42, args.smoke,
                             wire_sections, manifests)) {
      return 1;
    }
  }
  return 0;
}
