// Message-complexity claim (paper Sec. 3.2 and Appendix B): SFT-DiemBFT
// keeps DiemBFT's linear (O(n)) amortized messages per block decision, while
// adapting FBFT to DiemBFT costs O(n^2) — the leader must multicast up to f
// extra votes that arrive after the 2f+1-vote QC was sealed.
//
// This bench measures messages per committed block for both protocols over
// a sweep of n. SFT should track ~3n (proposal multicast + votes + timeout
// noise); FBFT grows quadratically as stragglers' late votes are
// rebroadcast to everyone.
//
// Since the Envelope refactor the byte numbers here are *exact*: every
// message is charged its canonical encoded frame size, and --smoke
// additionally writes BENCH_wire.json (per-type on-wire bytes from the SFT
// run plus the broadcast encode-once savings) for CI to archive.
#include <cstdio>

#include "bench_util.hpp"

using namespace sftbft;
using namespace sftbft::bench;

namespace {

harness::Scenario complexity_scenario(std::uint32_t n, bool fbft,
                                      const BenchArgs& args) {
  harness::Scenario s = geo_scenario();
  s.name = "tab_msg_complexity";
  s.n = n;
  s.topo = harness::Scenario::Topo::Symmetric3;
  s.delta = millis(100);
  s.fbft = fbft;
  // Heterogeneity scaled to keep a comparable straggler share at every n.
  s.duration = args.smoke ? seconds(40) : seconds(90);
  s.tail = args.smoke ? seconds(10) : seconds(30);
  if (args.seed != 0) s.seed = args.seed;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  std::printf("== Messages per committed block: SFT-DiemBFT (linear) vs "
              "FBFT-on-DiemBFT (quadratic, Appendix B) ==\n\n");

  harness::Table table({"n", "SFT msgs/block", "SFT /n", "FBFT msgs/block",
                        "FBFT /n", "FBFT extra votes/block"});

  const std::vector<std::uint32_t> sizes =
      args.smoke ? std::vector<std::uint32_t>{16u, 31u}
                 : std::vector<std::uint32_t>{16u, 31u, 61u, 100u};
  // Exact on-wire accounting from the largest SFT run (see BENCH_wire.json).
  const std::uint32_t wire_n = sizes.back();
  harness::ScenarioResult wire_run;
  for (const std::uint32_t n : sizes) {
    const harness::ScenarioResult sft =
        run_scenario(complexity_scenario(n, false, args));
    if (n == sizes.back()) wire_run = sft;
    const harness::ScenarioResult fbft =
        run_scenario(complexity_scenario(n, true, args));

    // Extra-vote traffic is the quadratic term; report it separately.
    const double fbft_blocks =
        fbft.messages_per_block > 0
            ? static_cast<double>(fbft.total_messages) / fbft.messages_per_block
            : 1.0;
    table.add_row({std::to_string(n),
                   harness::Table::num(sft.messages_per_block, 0),
                   harness::Table::num(sft.messages_per_block / n, 2),
                   harness::Table::num(fbft.messages_per_block, 0),
                   harness::Table::num(fbft.messages_per_block / n, 2),
                   harness::Table::num(
                       static_cast<double>(fbft.extra_vote_messages) /
                           fbft_blocks,
                       0)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Expected: 'SFT /n' stays ~flat (linear per decision); "
              "'FBFT /n' grows with n (quadratic per decision).\n");

  // Byte-level wire accounting (SFT run at n = sizes.back()): per-type
  // frame bytes are EXACT canonical Envelope sizes, not estimates, and the
  // broadcast path encodes each frame once for all recipients.
  harness::Table wire_table(
      {"type", "frames", "total bytes", "avg frame bytes"});
  for (const auto& [type, stats] : wire_run.traffic_by_type) {
    wire_table.add_row(
        {type, std::to_string(stats.count), std::to_string(stats.bytes),
         harness::Table::num(
             stats.count > 0
                 ? static_cast<double>(stats.bytes) /
                       static_cast<double>(stats.count)
                 : 0.0,
             1)});
  }
  harness::Table broadcast_table(
      {"n", "charged bytes", "encode-once saved bytes", "saved/charged"});
  broadcast_table.add_row(
      {std::to_string(wire_n),
       std::to_string(wire_run.total_message_bytes),
       std::to_string(wire_run.broadcast_saved_bytes),
       harness::Table::num(
           wire_run.total_message_bytes > 0
               ? static_cast<double>(wire_run.broadcast_saved_bytes) /
                     static_cast<double>(wire_run.total_message_bytes)
               : 0.0,
           3)});
  std::printf("\n== On-wire bytes (exact, SFT n=%u) ==\n%s\n%s\n",
              wire_n, wire_table.render().c_str(),
              broadcast_table.render().c_str());

  if (!args.json_path.empty() &&
      !write_json_artifact(args.json_path, "tab_msg_complexity",
                           args.seed != 0 ? args.seed : 42, args.smoke,
                           {{"complexity", table},
                            {"per_type", wire_table},
                            {"broadcast", broadcast_table}})) {
    return 1;
  }
  // CI archives the exact wire accounting next to BENCH_adversary.json.
  if (args.smoke &&
      !write_json_artifact("BENCH_wire.json", "wire", args.seed != 0
                                                          ? args.seed
                                                          : 42,
                           args.smoke,
                           {{"per_type", wire_table},
                            {"broadcast", broadcast_table}})) {
    return 1;
  }
  return 0;
}
