// Observability bench (sftbft::obs): two jobs, one binary.
//
//  * default mode — runs the SAME smoke scenario on all three engines with
//    tracing on, writes each run's Chrome-trace JSON (TRACE_<engine>.json,
//    Perfetto-loadable), checks the merged counter snapshots expose an
//    identical key set across engines (the conformance property the enum
//    vocabulary guarantees by construction — this is the executable pin),
//    and ships the counters + latency percentiles as BENCH_obs.json.
//
//  * --overhead mode — the "near-zero-cost when off" guard: medians of
//    interleaved repeats of the identical scenario with observability off
//    (no Observer, every site a null test) vs on (metrics + flight
//    recorder, trace off). Fails if the instrumented run exceeds the
//    baseline by more than 5% plus a small absolute slack for timer noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace sftbft;
using namespace sftbft::bench;

namespace {

harness::Scenario obs_scenario(engine::Protocol protocol,
                               const BenchArgs& args) {
  harness::Scenario s = geo_scenario();
  s.name = "tab_obs";
  s.protocol = protocol;
  s.n = 16;
  s.topo = harness::Scenario::Topo::Symmetric3;
  s.delta = millis(100);
  // Streamlet's lock-step Δ must cover the worst one-way delay (δ=100ms +
  // 40ms jitter + distance-proportional jitter), or no vote lands in its
  // round and nothing ever commits.
  s.streamlet_delta_bound = millis(200);
  s.duration = args.smoke ? seconds(30) : seconds(60);
  s.tail = seconds(10);
  if (args.seed != 0) s.seed = args.seed;
  return s;
}

double wall_seconds(const harness::Scenario& s) {
  const auto start = std::chrono::steady_clock::now();
  (void)harness::run_scenario(s);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int run_overhead(const BenchArgs& args) {
  std::printf("== Observability overhead guard: off (null checks) vs on "
              "(metrics + flight, no trace) ==\n\n");
  harness::Scenario off = obs_scenario(engine::Protocol::DiemBft, args);
  harness::Scenario on = off;
  on.obs.enabled = true;
  on.obs.trace = false;

  // Interleave the repeats so machine-load drift hits both variants alike.
  constexpr int kRepeats = 5;
  std::vector<double> off_samples, on_samples;
  (void)wall_seconds(off);  // warm caches/allocator outside the measurement
  for (int i = 0; i < kRepeats; ++i) {
    off_samples.push_back(wall_seconds(off));
    on_samples.push_back(wall_seconds(on));
  }
  const double off_median = median(off_samples);
  const double on_median = median(on_samples);
  const double overhead =
      off_median > 0 ? (on_median - off_median) / off_median : 0.0;
  std::printf("off median: %.3fs   on median: %.3fs   overhead: %+.1f%%\n",
              off_median, on_median, overhead * 100.0);
  // 5% relative plus 50ms absolute: short smoke runs put single-scheduler
  // ticks within timer noise, and the absolute term keeps CI honest without
  // flaking on a 20ms blip.
  if (on_median > off_median * 1.05 + 0.05) {
    std::fprintf(stderr,
                 "FAIL: observability-on run exceeds the 5%% overhead "
                 "budget\n");
    return 1;
  }
  std::printf("OK: within the 5%% budget\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our one extra flag before the shared parser (which aborts on
  // unknown flags by contract).
  bool overhead = false;
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--overhead") == 0) {
      overhead = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const BenchArgs args = parse_args(static_cast<int>(rest.size()), rest.data());
  if (overhead) return run_overhead(args);

  std::printf("== Traced conformance smoke: one scenario, three engines, "
              "identical metric vocabulary ==\n\n");

  std::uint64_t seed = 42;
  std::vector<harness::Scenario> sweep;
  for (const engine::Protocol protocol : engine::kAllProtocols) {
    harness::Scenario s = obs_scenario(protocol, args);
    s.obs.enabled = true;
    s.obs.trace = true;
    s.trace_path =
        std::string("TRACE_") + engine::protocol_name(protocol) + ".json";
    seed = s.seed;
    sweep.push_back(std::move(s));
  }
  const std::vector<harness::ScenarioResult> results =
      run_scenarios(sweep, args.jobs);

  // The executable conformance pin: every engine's merged snapshot carries
  // the full vocabulary, so the key sets must be byte-identical.
  for (std::size_t i = 1; i < results.size(); ++i) {
    auto keys = [](const harness::ScenarioResult& r) {
      std::vector<std::string> out;
      for (const auto& [name, value] : r.counters) out.push_back(name);
      return out;
    };
    if (keys(results[i]) != keys(results[0])) {
      std::fprintf(stderr, "FAIL: metric key sets differ between %s and %s\n",
                   engine::protocol_name(sweep[0].protocol),
                   engine::protocol_name(sweep[i].protocol));
      return 1;
    }
  }

  harness::Table counters_table({"metric", "DiemBFT", "HotStuff", "Streamlet"});
  for (const auto& [name, value] : results[0].counters) {
    std::vector<std::string> row{name};
    for (const harness::ScenarioResult& r : results) {
      row.push_back(std::to_string(r.counters.at(name)));
    }
    counters_table.add_row(std::move(row));
  }

  harness::Table latency_table({"engine", "commit p50 (s)", "commit p99 (s)",
                                "strongest p50 (s)", "strongest p99 (s)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const harness::ScenarioResult& r = results[i];
    const obs::HistogramSummary strongest =
        r.latency.empty() ? obs::HistogramSummary{} : r.latency.back().hist;
    latency_table.add_row(
        {engine::protocol_name(sweep[i].protocol),
         harness::Table::num(to_seconds(r.commit_latency.p50), 3),
         harness::Table::num(to_seconds(r.commit_latency.p99), 3),
         harness::Table::num(to_seconds(strongest.p50), 3),
         harness::Table::num(to_seconds(strongest.p99), 3)});
  }

  std::printf("%s\n%s\n", counters_table.render().c_str(),
              latency_table.render().c_str());
  std::printf("Wrote TRACE_<engine>.json for each run — load them in "
              "Perfetto (ui.perfetto.dev) or chrome://tracing.\n");
  std::vector<std::pair<std::string, std::string>> manifests;
  for (const harness::Scenario& s : sweep) {
    manifests.emplace_back(engine::protocol_name(s.protocol),
                           s.manifest().render_json());
  }
  if (!args.json_path.empty() &&
      !write_json_artifact(args.json_path, "tab_obs", seed, args.smoke,
                           {{"counters", counters_table},
                            {"latency", latency_table}},
                           manifests)) {
    return 1;
  }
  return 0;
}
