// Beyond-paper scenario tied to Theorem 2: crash-*recovery* churn.
//
// The paper's benign-fault story (Theorem 2) covers replicas that crash and
// stay down; production replicas restart. This bench runs both engines
// through a churn of FaultSpec::CrashRestart cycles — each bounced replica
// recovers from its durable ReplicaStore (WAL + snapshot, sftbft::storage)
// and re-syncs missed blocks from peers — and reports, per recovery:
//
//   * blocks behind at the moment of restart (the catch-up debt),
//   * recovery latency: restart -> first fresh commit at that replica,
//   * the caught-up ledger tip vs the cluster tip at the end,
//
// while verifying the safety claims: recovered replicas never equivocate
// (any conflicting commit throws chain::LedgerConflict) and strong commits
// made before a crash survive it.
//
// `--smoke` runs a shortened configuration for CI.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "sftbft/engine/deployment.hpp"
#include "sftbft/harness/scenario.hpp"
#include "sftbft/harness/table.hpp"

using namespace sftbft;

namespace {

struct BenchConfig {
  std::uint32_t n = 16;
  SimDuration duration = seconds(60);
  SimTime first_crash = seconds(10);
  SimDuration downtime = seconds(6);
  SimDuration stagger = seconds(10);
  std::uint32_t churn = 3;
  std::uint64_t seed = 42;
};

struct RecoveryRow {
  ReplicaId id = 0;
  SimTime crash_at = 0;
  SimTime restart_at = 0;
  Height behind_at_restart = 0;   ///< cluster tip - own tip when restarting
  SimTime first_commit_after = 0; ///< 0 = never recovered
  Height final_tip = 0;
};

int run_protocol(engine::Protocol protocol, const BenchConfig& bench,
                 std::vector<std::pair<std::string, harness::Table>>& sections,
                 std::vector<std::pair<std::string, std::string>>& manifests) {
  harness::Scenario s;
  s.name = "tab_recovery";
  s.protocol = protocol;
  s.n = bench.n;
  s.mode = consensus::CoreMode::SftMarker;
  s.topo = harness::Scenario::Topo::Uniform;
  s.delta = millis(20);
  s.jitter = millis(5);
  s.jitter_frac = 0;
  s.leader_processing = millis(10);
  s.streamlet_delta_bound = millis(50);
  s.streamlet_echo = false;  // keep the bench about recovery, not echo load
  s.verify_signatures = false;
  s.max_batch = 50;
  s.txn_size_bytes = 450;
  s.seed = bench.seed;
  s.crash_restart_count = bench.churn;
  s.crash_restart_first = bench.first_crash;
  s.crash_restart_downtime = bench.downtime;
  s.crash_restart_stagger = bench.stagger;
  s.snapshot_interval_blocks = 32;

  std::map<ReplicaId, RecoveryRow> rows;
  const auto faults = s.effective_faults();
  for (ReplicaId id = 0; id < s.n; ++id) {
    const auto& fault = faults[id];
    if (fault.kind != engine::FaultSpec::Kind::CrashRestart) continue;
    rows[id] = {id, fault.crash_at, fault.restart_at, 0, 0, 0};
  }

  engine::Deployment deployment(
      s.to_deployment_config(),
      [&rows](ReplicaId replica, const types::Block&, std::uint32_t,
              SimTime now) {
        auto it = rows.find(replica);
        if (it == rows.end()) return;
        RecoveryRow& row = it->second;
        if (row.first_commit_after == 0 && now > row.restart_at) {
          row.first_commit_after = now;
        }
      });

  // Pre-crash strong-commit capture + restart-time debt probes.
  std::map<ReplicaId, std::vector<chain::Ledger::Entry>> pre_crash;
  for (auto& [id, row] : rows) {
    const ReplicaId replica = id;
    deployment.scheduler().schedule_at(row.crash_at - 1, [&, replica] {
      pre_crash[replica] = deployment.ledger(replica).snapshot();
    });
    deployment.scheduler().schedule_at(row.restart_at - 1, [&, replica] {
      const Height cluster_tip = deployment.ledger(0).tip().value_or(0);
      const Height own_tip = deployment.ledger(replica).tip().value_or(0);
      rows.at(replica).behind_at_restart =
          cluster_tip > own_tip ? cluster_tip - own_tip : 0;
    });
  }

  deployment.start();
  deployment.run_for(bench.duration);  // throws LedgerConflict on any equivocation

  int failures = 0;
  const Height cluster_tip = deployment.ledger(0).tip().value_or(0);
  harness::Table table({"replica", "crash(s)", "restart(s)", "behind(blocks)",
                        "recovery(s)", "tip/cluster"});
  for (auto& [id, row] : rows) {
    row.final_tip = deployment.ledger(id).tip().value_or(0);
    const bool recovered = row.first_commit_after > 0;
    table.add_row(
        {std::to_string(id), harness::Table::num(to_seconds(row.crash_at), 0),
         harness::Table::num(to_seconds(row.restart_at), 0),
         std::to_string(row.behind_at_restart),
         recovered
             ? harness::Table::num(
                   to_seconds(row.first_commit_after - row.restart_at), 3)
             : "--",
         std::to_string(row.final_tip) + "/" + std::to_string(cluster_tip)});
    if (!recovered) {
      std::printf("FAIL: replica %u never committed after restart\n", id);
      ++failures;
    }
    if (row.final_tip + 10 < cluster_tip) {
      std::printf("FAIL: replica %u still %llu blocks behind\n", id,
                  static_cast<unsigned long long>(cluster_tip - row.final_tip));
      ++failures;
    }
    // Strong commits made before the crash survive it, strength intact.
    for (const auto& entry : pre_crash[id]) {
      const auto& ledger = deployment.ledger(id);
      if (!ledger.is_committed(entry.height) ||
          ledger.at(entry.height).block_id != entry.block_id ||
          ledger.at(entry.height).strength < entry.strength) {
        std::printf("FAIL: replica %u lost pre-crash commit at height %llu\n",
                    id, static_cast<unsigned long long>(entry.height));
        ++failures;
        break;
      }
    }
  }
  // Cross-replica agreement (the ledgers never conflict on the common prefix).
  for (ReplicaId id = 1; id < s.n; ++id) {
    const auto& ledger0 = deployment.ledger(0);
    const auto& ledger = deployment.ledger(id);
    const Height common =
        std::min(ledger0.tip().value_or(0), ledger.tip().value_or(0));
    for (Height h = 1; h <= common; ++h) {
      if (ledger0.at(h).block_id != ledger.at(h).block_id) {
        std::printf("FAIL: ledgers conflict at height %llu (replica %u)\n",
                    static_cast<unsigned long long>(h), id);
        ++failures;
        break;
      }
    }
  }

  std::printf("== %s: n=%u, %u crash/restart cycles, %.0fs downtime each ==\n",
              engine::protocol_name(protocol), s.n, bench.churn,
              to_seconds(bench.downtime));
  std::printf("%s", table.render().c_str());
  std::printf("cluster tip at end: %llu blocks; safety checks: %s\n\n",
              static_cast<unsigned long long>(cluster_tip),
              failures == 0 ? "all passed" : "FAILED");
  sections.emplace_back(engine::protocol_name(protocol), std::move(table));
  manifests.emplace_back(engine::protocol_name(protocol),
                         s.manifest().render_json());
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  BenchConfig bench;
  if (args.smoke) {
    bench.n = 7;
    bench.duration = seconds(24);
    bench.first_crash = seconds(5);
    bench.downtime = seconds(4);
    bench.stagger = seconds(8);
    bench.churn = 2;
  }
  if (args.seed != 0) bench.seed = args.seed;

  std::printf("== tab_recovery: crash-recovery churn (beyond-paper, "
              "Theorem 2 with restarts)%s ==\n\n",
              args.smoke ? " [smoke]" : "");
  int failures = 0;
  std::vector<std::pair<std::string, harness::Table>> sections;
  std::vector<std::pair<std::string, std::string>> manifests;
  failures += run_protocol(engine::Protocol::DiemBft, bench, sections, manifests);
  failures += run_protocol(engine::Protocol::Streamlet, bench, sections, manifests);
  if (!args.json_path.empty() &&
      !bench::write_json_artifact(args.json_path, "tab_recovery", bench.seed,
                                  args.smoke, sections, manifests)) {
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
