// Appendix D: SFT-Streamlet — strong commit latencies under the lock-step
// pacemaker, plus the D.4 long-range-attack comparison against SFT-DiemBFT.
//
// Streamlet trades performance for simplicity: lock-step 2Δ rounds (not
// responsive) and O(n^3) messages per round with the echo mechanism — both
// measured below. D.4's point: to revert an x-strong committed block h
// blocks deep, an adversary must corrupt > x replicas for ~h rounds in
// SFT-Streamlet (honest replicas only vote for the longest certified chain,
// so a competitive fork must be grown to a similar length), versus a single
// round in SFT-DiemBFT (one higher-round certified block unlocks honest
// replicas onto the fork).
#include <cstdio>

#include "bench_util.hpp"
#include "sftbft/harness/metrics.hpp"
#include "sftbft/streamlet/streamlet_cluster.hpp"

using namespace sftbft;
using namespace sftbft::bench;

int main() {
  std::printf("== Appendix D: SFT-Streamlet (n=16, f=5, lock-step 2-delta "
              "rounds, echo on) ==\n\n");

  const std::uint32_t n = 16;
  const std::uint32_t f = (n - 1) / 3;

  streamlet::StreamletClusterConfig config;
  config.n = n;
  config.core.n = n;
  config.core.delta_bound = millis(50);
  config.core.sft = true;
  config.core.echo = true;
  config.core.verify_signatures = false;
  config.core.max_batch = 100;
  config.topology = net::Topology::uniform(n, millis(20));
  config.net.jitter = millis(10);
  config.workload.txn_size_bytes = 4500;
  config.workload.target_pool_size = 400;
  config.seed = 42;

  std::vector<std::uint32_t> levels;
  for (std::uint32_t x = f; x <= 2 * f; ++x) levels.push_back(x);
  harness::StrengthLatencyTracker tracker(n, levels);

  streamlet::StreamletCluster cluster(
      config, [&tracker](ReplicaId replica, const types::Block& block,
                         std::uint32_t strength, SimTime now) {
        tracker.on_commit(replica, block, strength, now);
      });
  cluster.start();
  const SimDuration duration = seconds(60);
  cluster.run_for(duration);
  tracker.set_window(seconds(2), duration - seconds(15));

  harness::Table table({"x-strong", "latency(s)", "coverage"});
  for (const auto& stats : tracker.results()) {
    table.add_row({level_label(stats.level, f), latency_cell(stats),
                   harness::Table::num(stats.coverage, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto& stats = cluster.network().stats();
  const auto blocks = cluster.core(0).ledger().committed_blocks();
  std::printf("committed blocks: %llu;  messages/block: %.0f "
              "(echo makes this O(n^3) per round: measured %.1f x n^2)\n",
              static_cast<unsigned long long>(blocks),
              blocks ? static_cast<double>(stats.total_count()) /
                           static_cast<double>(blocks)
                     : 0.0,
              blocks ? static_cast<double>(stats.total_count()) /
                           static_cast<double>(blocks) / (n * n)
                     : 0.0);

  std::printf("\n== D.4: rounds of >x corruption needed to revert an "
              "x-strong commit buried h blocks deep ==\n\n");
  harness::Table attack({"depth h", "SFT-DiemBFT", "SFT-Streamlet"});
  for (const int depth : {1, 10, 100}) {
    // DiemBFT: one certified higher-round block on a fork unlocks honest
    // replicas (their r_lock admits it) — 1 round of > x corruption.
    // Streamlet: honest replicas vote only for the longest certified chain;
    // the fork must reach a comparable length — ~h rounds of corruption.
    attack.add_row({std::to_string(depth), "1 round",
                    std::to_string(depth) +
                        (depth == 1 ? " round" : " rounds")});
  }
  std::printf("%s\n", attack.render().c_str());
  std::printf("(Derived from the protocols' voting rules — see Appendix D.4 "
              "and tests/sft_streamlet_test.cpp for the mechanised "
              "fork-resistance check.)\n");
  return 0;
}
