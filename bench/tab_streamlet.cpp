// Appendix D: SFT-Streamlet — strong commit latencies under the lock-step
// pacemaker, plus the D.4 long-range-attack comparison against SFT-DiemBFT.
//
// Streamlet trades performance for simplicity: lock-step 2Δ rounds (not
// responsive) and O(n^3) messages per round with the echo mechanism — both
// measured below. D.4's point: to revert an x-strong committed block h
// blocks deep, an adversary must corrupt > x replicas for ~h rounds in
// SFT-Streamlet (honest replicas only vote for the longest certified chain,
// so a competitive fork must be grown to a similar length), versus a single
// round in SFT-DiemBFT (one higher-round certified block unlocks honest
// replicas onto the fork).
#include <cstdio>

#include "bench_util.hpp"
#include "sftbft/harness/metrics.hpp"

using namespace sftbft;
using namespace sftbft::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  std::printf("== Appendix D: SFT-Streamlet (n=16, f=5, lock-step 2-delta "
              "rounds, echo on) ==\n\n");

  const std::uint32_t n = 16;
  const std::uint32_t f = (n - 1) / 3;

  // The same Scenario machinery as every DiemBFT bench — only the engine
  // selector differs (the unified-deployment API at work).
  harness::Scenario s;
  s.name = "tab_streamlet";
  s.protocol = engine::Protocol::Streamlet;
  s.n = n;
  s.mode = consensus::CoreMode::SftMarker;  // any SFT mode = SFT-Streamlet
  s.topo = harness::Scenario::Topo::Uniform;
  s.delta = millis(20);
  s.jitter = millis(10);
  s.jitter_frac = 0;
  s.streamlet_delta_bound = millis(50);
  s.streamlet_echo = true;
  s.verify_signatures = false;
  s.max_batch = 100;
  s.txn_size_bytes = 4500;
  s.duration = args.smoke ? seconds(20) : seconds(60);
  s.warmup = seconds(2);
  s.tail = args.smoke ? seconds(5) : seconds(15);
  s.seed = args.seed != 0 ? args.seed : 42;

  const harness::ScenarioResult result = run_scenario(s);

  harness::Table table({"x-strong", "latency(s)", "coverage"});
  for (const auto& stats : result.latency) {
    table.add_row({level_label(stats.level, f), latency_cell(stats),
                   harness::Table::num(stats.coverage, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("committed blocks in measurement window: %llu;  "
              "messages/block over the whole run: %.0f "
              "(echo makes this O(n^3) per round: measured %.1f x n^2)\n",
              static_cast<unsigned long long>(result.summary.committed_blocks),
              result.messages_per_block,
              result.messages_per_block / (n * n));

  std::printf("\n== D.4: rounds of >x corruption needed to revert an "
              "x-strong commit buried h blocks deep ==\n\n");
  harness::Table attack({"depth h", "SFT-DiemBFT", "SFT-Streamlet"});
  for (const int depth : {1, 10, 100}) {
    // DiemBFT: one certified higher-round block on a fork unlocks honest
    // replicas (their r_lock admits it) — 1 round of > x corruption.
    // Streamlet: honest replicas vote only for the longest certified chain;
    // the fork must reach a comparable length — ~h rounds of corruption.
    attack.add_row({std::to_string(depth), "1 round",
                    std::to_string(depth) +
                        (depth == 1 ? " round" : " rounds")});
  }
  std::printf("%s\n", attack.render().c_str());
  std::printf("(Derived from the protocols' voting rules — see Appendix D.4 "
              "and tests/sft_streamlet_test.cpp for the mechanised "
              "fork-resistance check.)\n");
  if (!args.json_path.empty() &&
      !write_json_artifact(args.json_path, "tab_streamlet", s.seed, args.smoke,
                           {{"latency", table}, {"d4_attack", attack}},
                           {{engine::protocol_name(s.protocol),
                             s.manifest().render_json()}})) {
    return 1;
  }
  return 0;
}
