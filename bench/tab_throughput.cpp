// Throughput/overhead claim (paper Sec. 4, text): "Since strong-vote adds
// very small overhead (one integer) to message size, as expected, we found
// that the throughput of SFT-DiemBFT is almost identical to that of the
// original DiemBFT protocol in all our experiments."
//
// The paper omits the numbers; this bench regenerates the comparison and —
// since the SFT machinery is one kernel shared by every chained engine —
// extends it along the engine axis: DiemBFT and chained HotStuff each run
// plain vs SFT (marker) vs SFT (interval votes, Sec. 3.4) on the symmetric
// geo setup. Block payloads model the paper's ~450 KB / ~1000-txn batches
// with 100 records of 4.5 KB.
//
// The sweep's cells are independent deterministic runs; --jobs N executes
// them on a thread pool with byte-identical output ordering.
#include <cstdio>

#include "bench_util.hpp"

using namespace sftbft;
using namespace sftbft::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  std::printf("== Throughput & regular-commit latency: plain vs SFT across "
              "the chained engines (symmetric, d=100ms) ==\n\n");

  struct Variant {
    const char* name;
    engine::Protocol protocol;
    consensus::CoreMode mode;
  };
  const Variant variants[] = {
      {"DiemBFT (plain)", engine::Protocol::DiemBft,
       consensus::CoreMode::Plain},
      {"SFT-DiemBFT (marker)", engine::Protocol::DiemBft,
       consensus::CoreMode::SftMarker},
      {"SFT-DiemBFT (intervals)", engine::Protocol::DiemBft,
       consensus::CoreMode::SftIntervals},
      {"HotStuff (plain)", engine::Protocol::HotStuff,
       consensus::CoreMode::Plain},
      {"SFT-HotStuff (marker)", engine::Protocol::HotStuff,
       consensus::CoreMode::SftMarker},
      {"SFT-HotStuff (intervals)", engine::Protocol::HotStuff,
       consensus::CoreMode::SftIntervals},
  };

  harness::Table table({"protocol", "blocks/s", "txn/s", "regular lat (s)",
                        "commit p50 (s)", "commit p99 (s)", "wire MB/s",
                        "msgs/block"});
  // Percentile companion to the Fig. 7 means: the creation->reach latency
  // distribution at the weakest (1.0f) and strongest (2.0f) levels.
  harness::Table strength_table({"protocol", "level", "mean (s)", "p50 (s)",
                                 "p90 (s)", "p99 (s)", "samples"});

  std::uint64_t seed = 42;
  std::vector<harness::Scenario> sweep;
  for (const Variant& variant : variants) {
    harness::Scenario s = geo_scenario();
    s.name = "tab_throughput";
    s.protocol = variant.protocol;
    s.topo = harness::Scenario::Topo::Symmetric3;
    s.delta = millis(100);
    s.mode = variant.mode;
    if (args.smoke) {
      s.n = 31;
      s.duration = seconds(40);
      s.tail = seconds(10);
    }
    if (args.seed != 0) s.seed = args.seed;
    seed = s.seed;
    sweep.push_back(std::move(s));
  }

  const std::vector<harness::ScenarioResult> results =
      run_scenarios(sweep, args.jobs);

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const harness::Scenario& s = sweep[i];
    const harness::ScenarioResult& r = results[i];
    const double secs = to_seconds(s.duration - s.warmup - s.tail);
    table.add_row(
        {variants[i].name,
         harness::Table::num(static_cast<double>(r.summary.committed_blocks) / secs, 2),
         harness::Table::num(static_cast<double>(r.summary.committed_txns) / secs, 1),
         harness::Table::num(r.summary.mean_regular_latency_s, 3),
         harness::Table::num(to_seconds(r.commit_latency.p50), 3),
         harness::Table::num(to_seconds(r.commit_latency.p99), 3),
         harness::Table::num(static_cast<double>(r.total_message_bytes) /
                                 to_seconds(s.duration) / 1e6,
                             1),
         harness::Table::num(r.messages_per_block, 1)});
    if (!r.latency.empty()) {
      const std::uint32_t f = s.f();
      for (const auto* level : {&r.latency.front(), &r.latency.back()}) {
        strength_table.add_row(
            {variants[i].name, level_label(level->level, f),
             harness::Table::num(level->mean_latency_s, 3),
             harness::Table::num(to_seconds(level->hist.p50), 3),
             harness::Table::num(to_seconds(level->hist.p90), 3),
             harness::Table::num(to_seconds(level->hist.p99), 3),
             harness::Table::num(static_cast<double>(level->hist.count), 0)});
      }
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("%s\n", strength_table.render().c_str());
  std::printf("Expected: near-identical columns within each engine — the "
              "SFT machinery costs one marker (or a short interval list) per "
              "vote — and closely matched numbers across the two chained "
              "engines (one kernel, two rule sets).\nNote: each block "
              "carries 100 txn records of 4.5 KB modelling the paper's "
              "~1000-txn / ~450 KB batches.\n");
  std::vector<std::pair<std::string, std::string>> manifests;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    manifests.emplace_back(variants[i].name, sweep[i].manifest().render_json());
  }
  if (!args.json_path.empty() &&
      !write_json_artifact(args.json_path, "tab_throughput", seed, args.smoke,
                           {{"throughput", table},
                            {"strength_latency", strength_table}},
                           manifests)) {
    return 1;
  }
  return 0;
}
