// Throughput/overhead claim (paper Sec. 4, text): "Since strong-vote adds
// very small overhead (one integer) to message size, as expected, we found
// that the throughput of SFT-DiemBFT is almost identical to that of the
// original DiemBFT protocol in all our experiments."
//
// The paper omits the numbers; this bench regenerates the comparison:
// DiemBFT (plain) vs SFT-DiemBFT (marker) vs SFT-DiemBFT (interval votes,
// Sec. 3.4) on the symmetric geo setup. Block payloads model the paper's
// ~450 KB / ~1000-txn batches with 100 records of 4.5 KB.
#include <cstdio>

#include "bench_util.hpp"

using namespace sftbft;
using namespace sftbft::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);
  std::printf("== Throughput & regular-commit latency: DiemBFT vs "
              "SFT-DiemBFT (symmetric, d=100ms, n=100) ==\n\n");

  struct Variant {
    const char* name;
    consensus::CoreMode mode;
  };
  const Variant variants[] = {
      {"DiemBFT (plain)", consensus::CoreMode::Plain},
      {"SFT-DiemBFT (marker)", consensus::CoreMode::SftMarker},
      {"SFT-DiemBFT (intervals)", consensus::CoreMode::SftIntervals},
  };

  harness::Table table({"protocol", "blocks/s", "txn/s", "regular lat (s)",
                        "wire MB/s", "msgs/block"});

  std::uint64_t seed = 42;
  for (const Variant& variant : variants) {
    harness::Scenario s = geo_scenario();
    s.name = "tab_throughput";
    s.topo = harness::Scenario::Topo::Symmetric3;
    s.delta = millis(100);
    s.mode = variant.mode;
    if (args.smoke) {
      s.n = 31;
      s.duration = seconds(40);
      s.tail = seconds(10);
    }
    if (args.seed != 0) s.seed = args.seed;
    seed = s.seed;
    const harness::ScenarioResult r = run_scenario(s);

    const double secs = to_seconds(s.duration - s.warmup - s.tail);
    table.add_row(
        {variant.name,
         harness::Table::num(static_cast<double>(r.summary.committed_blocks) / secs, 2),
         harness::Table::num(static_cast<double>(r.summary.committed_txns) / secs, 1),
         harness::Table::num(r.summary.mean_regular_latency_s, 3),
         harness::Table::num(static_cast<double>(r.total_message_bytes) /
                                 to_seconds(s.duration) / 1e6,
                             1),
         harness::Table::num(r.messages_per_block, 1)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Expected: near-identical columns across the three rows — the "
              "SFT machinery costs one marker (or a short interval list) per "
              "vote.\nNote: each block carries 100 txn records of 4.5 KB "
              "modelling the paper's ~1000-txn / ~450 KB batches.\n");
  if (!args.json_path.empty() &&
      !write_json_artifact(args.json_path, "tab_throughput", seed, args.smoke,
                           {{"throughput", table}})) {
    return 1;
  }
  return 0;
}
