file(REMOVE_RECURSE
  "CMakeFiles/block_tree_test.dir/tests/block_tree_test.cpp.o"
  "CMakeFiles/block_tree_test.dir/tests/block_tree_test.cpp.o.d"
  "block_tree_test"
  "block_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
