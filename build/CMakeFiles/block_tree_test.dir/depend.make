# Empty dependencies file for block_tree_test.
# This may be replaced when dependencies are built.
