file(REMOVE_RECURSE
  "CMakeFiles/diembft_core_test.dir/tests/diembft_core_test.cpp.o"
  "CMakeFiles/diembft_core_test.dir/tests/diembft_core_test.cpp.o.d"
  "diembft_core_test"
  "diembft_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diembft_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
