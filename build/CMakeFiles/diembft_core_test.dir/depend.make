# Empty dependencies file for diembft_core_test.
# This may be replaced when dependencies are built.
