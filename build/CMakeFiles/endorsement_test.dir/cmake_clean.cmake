file(REMOVE_RECURSE
  "CMakeFiles/endorsement_test.dir/tests/endorsement_test.cpp.o"
  "CMakeFiles/endorsement_test.dir/tests/endorsement_test.cpp.o.d"
  "endorsement_test"
  "endorsement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endorsement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
