# Empty dependencies file for endorsement_test.
# This may be replaced when dependencies are built.
