file(REMOVE_RECURSE
  "CMakeFiles/equivocation_test.dir/tests/equivocation_test.cpp.o"
  "CMakeFiles/equivocation_test.dir/tests/equivocation_test.cpp.o.d"
  "equivocation_test"
  "equivocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
