# Empty dependencies file for equivocation_test.
# This may be replaced when dependencies are built.
