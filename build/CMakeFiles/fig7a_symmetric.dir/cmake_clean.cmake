file(REMOVE_RECURSE
  "CMakeFiles/fig7a_symmetric.dir/bench/fig7a_symmetric.cpp.o"
  "CMakeFiles/fig7a_symmetric.dir/bench/fig7a_symmetric.cpp.o.d"
  "bench/fig7a_symmetric"
  "bench/fig7a_symmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
