# Empty dependencies file for fig7a_symmetric.
# This may be replaced when dependencies are built.
