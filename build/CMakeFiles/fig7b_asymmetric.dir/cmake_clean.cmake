file(REMOVE_RECURSE
  "CMakeFiles/fig7b_asymmetric.dir/bench/fig7b_asymmetric.cpp.o"
  "CMakeFiles/fig7b_asymmetric.dir/bench/fig7b_asymmetric.cpp.o.d"
  "bench/fig7b_asymmetric"
  "bench/fig7b_asymmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
