# Empty dependencies file for fig7b_asymmetric.
# This may be replaced when dependencies are built.
