file(REMOVE_RECURSE
  "CMakeFiles/fig8_tradeoff.dir/bench/fig8_tradeoff.cpp.o"
  "CMakeFiles/fig8_tradeoff.dir/bench/fig8_tradeoff.cpp.o.d"
  "bench/fig8_tradeoff"
  "bench/fig8_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
