# Empty dependencies file for fig8_tradeoff.
# This may be replaced when dependencies are built.
