file(REMOVE_RECURSE
  "CMakeFiles/fork_attack.dir/examples/fork_attack.cpp.o"
  "CMakeFiles/fork_attack.dir/examples/fork_attack.cpp.o.d"
  "examples/fork_attack"
  "examples/fork_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fork_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
