# Empty dependencies file for fork_attack.
# This may be replaced when dependencies are built.
