file(REMOVE_RECURSE
  "CMakeFiles/geo_commerce.dir/examples/geo_commerce.cpp.o"
  "CMakeFiles/geo_commerce.dir/examples/geo_commerce.cpp.o.d"
  "examples/geo_commerce"
  "examples/geo_commerce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_commerce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
