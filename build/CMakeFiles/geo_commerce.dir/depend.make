# Empty dependencies file for geo_commerce.
# This may be replaced when dependencies are built.
