file(REMOVE_RECURSE
  "CMakeFiles/interval_set_test.dir/tests/interval_set_test.cpp.o"
  "CMakeFiles/interval_set_test.dir/tests/interval_set_test.cpp.o.d"
  "interval_set_test"
  "interval_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
