file(REMOVE_RECURSE
  "CMakeFiles/light_client.dir/examples/light_client.cpp.o"
  "CMakeFiles/light_client.dir/examples/light_client.cpp.o.d"
  "examples/light_client"
  "examples/light_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/light_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
