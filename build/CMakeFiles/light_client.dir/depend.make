# Empty dependencies file for light_client.
# This may be replaced when dependencies are built.
