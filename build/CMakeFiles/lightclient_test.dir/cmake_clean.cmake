file(REMOVE_RECURSE
  "CMakeFiles/lightclient_test.dir/tests/lightclient_test.cpp.o"
  "CMakeFiles/lightclient_test.dir/tests/lightclient_test.cpp.o.d"
  "lightclient_test"
  "lightclient_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightclient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
