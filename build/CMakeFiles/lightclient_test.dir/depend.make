# Empty dependencies file for lightclient_test.
# This may be replaced when dependencies are built.
