file(REMOVE_RECURSE
  "CMakeFiles/micro_overhead.dir/bench/micro_overhead.cpp.o"
  "CMakeFiles/micro_overhead.dir/bench/micro_overhead.cpp.o.d"
  "bench/micro_overhead"
  "bench/micro_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
