file(REMOVE_RECURSE
  "CMakeFiles/naive_counter_test.dir/tests/naive_counter_test.cpp.o"
  "CMakeFiles/naive_counter_test.dir/tests/naive_counter_test.cpp.o.d"
  "naive_counter_test"
  "naive_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
