# Empty dependencies file for naive_counter_test.
# This may be replaced when dependencies are built.
