file(REMOVE_RECURSE
  "CMakeFiles/pacemaker_test.dir/tests/pacemaker_test.cpp.o"
  "CMakeFiles/pacemaker_test.dir/tests/pacemaker_test.cpp.o.d"
  "pacemaker_test"
  "pacemaker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacemaker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
