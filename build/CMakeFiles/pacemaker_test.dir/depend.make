# Empty dependencies file for pacemaker_test.
# This may be replaced when dependencies are built.
