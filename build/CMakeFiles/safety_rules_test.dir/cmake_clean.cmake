file(REMOVE_RECURSE
  "CMakeFiles/safety_rules_test.dir/tests/safety_rules_test.cpp.o"
  "CMakeFiles/safety_rules_test.dir/tests/safety_rules_test.cpp.o.d"
  "safety_rules_test"
  "safety_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
