# Empty dependencies file for safety_rules_test.
# This may be replaced when dependencies are built.
