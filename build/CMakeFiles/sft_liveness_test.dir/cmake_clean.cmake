file(REMOVE_RECURSE
  "CMakeFiles/sft_liveness_test.dir/tests/sft_liveness_test.cpp.o"
  "CMakeFiles/sft_liveness_test.dir/tests/sft_liveness_test.cpp.o.d"
  "sft_liveness_test"
  "sft_liveness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sft_liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
