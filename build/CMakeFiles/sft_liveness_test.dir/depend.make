# Empty dependencies file for sft_liveness_test.
# This may be replaced when dependencies are built.
