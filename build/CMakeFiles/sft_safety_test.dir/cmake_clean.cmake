file(REMOVE_RECURSE
  "CMakeFiles/sft_safety_test.dir/tests/sft_safety_test.cpp.o"
  "CMakeFiles/sft_safety_test.dir/tests/sft_safety_test.cpp.o.d"
  "sft_safety_test"
  "sft_safety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sft_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
