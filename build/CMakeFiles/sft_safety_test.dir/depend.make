# Empty dependencies file for sft_safety_test.
# This may be replaced when dependencies are built.
