file(REMOVE_RECURSE
  "CMakeFiles/sft_streamlet_test.dir/tests/sft_streamlet_test.cpp.o"
  "CMakeFiles/sft_streamlet_test.dir/tests/sft_streamlet_test.cpp.o.d"
  "sft_streamlet_test"
  "sft_streamlet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sft_streamlet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
