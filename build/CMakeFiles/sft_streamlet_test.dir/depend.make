# Empty dependencies file for sft_streamlet_test.
# This may be replaced when dependencies are built.
