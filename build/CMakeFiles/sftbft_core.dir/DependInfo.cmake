
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sftbft/chain/block_tree.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/chain/block_tree.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/chain/block_tree.cpp.o.d"
  "/root/repo/src/sftbft/chain/ledger.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/chain/ledger.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/chain/ledger.cpp.o.d"
  "/root/repo/src/sftbft/common/bytes.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/common/bytes.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/common/bytes.cpp.o.d"
  "/root/repo/src/sftbft/common/codec.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/common/codec.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/common/codec.cpp.o.d"
  "/root/repo/src/sftbft/common/interval_set.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/common/interval_set.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/common/interval_set.cpp.o.d"
  "/root/repo/src/sftbft/common/logging.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/common/logging.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/common/logging.cpp.o.d"
  "/root/repo/src/sftbft/common/rng.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/common/rng.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/common/rng.cpp.o.d"
  "/root/repo/src/sftbft/common/types.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/common/types.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/common/types.cpp.o.d"
  "/root/repo/src/sftbft/consensus/diembft.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/consensus/diembft.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/consensus/diembft.cpp.o.d"
  "/root/repo/src/sftbft/consensus/endorsement.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/consensus/endorsement.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/consensus/endorsement.cpp.o.d"
  "/root/repo/src/sftbft/consensus/pacemaker.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/consensus/pacemaker.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/consensus/pacemaker.cpp.o.d"
  "/root/repo/src/sftbft/consensus/vote_history.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/consensus/vote_history.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/consensus/vote_history.cpp.o.d"
  "/root/repo/src/sftbft/crypto/sha256.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/crypto/sha256.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/crypto/sha256.cpp.o.d"
  "/root/repo/src/sftbft/crypto/signature.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/crypto/signature.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/crypto/signature.cpp.o.d"
  "/root/repo/src/sftbft/engine/deployment.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/engine/deployment.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/engine/deployment.cpp.o.d"
  "/root/repo/src/sftbft/engine/diem_engine.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/engine/diem_engine.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/engine/diem_engine.cpp.o.d"
  "/root/repo/src/sftbft/engine/streamlet_engine.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/engine/streamlet_engine.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/engine/streamlet_engine.cpp.o.d"
  "/root/repo/src/sftbft/harness/metrics.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/harness/metrics.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/harness/metrics.cpp.o.d"
  "/root/repo/src/sftbft/harness/scenario.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/harness/scenario.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/harness/scenario.cpp.o.d"
  "/root/repo/src/sftbft/harness/table.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/harness/table.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/harness/table.cpp.o.d"
  "/root/repo/src/sftbft/lightclient/light_client.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/lightclient/light_client.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/lightclient/light_client.cpp.o.d"
  "/root/repo/src/sftbft/mempool/mempool.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/mempool/mempool.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/mempool/mempool.cpp.o.d"
  "/root/repo/src/sftbft/net/topology.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/net/topology.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/net/topology.cpp.o.d"
  "/root/repo/src/sftbft/replica/replica.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/replica/replica.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/replica/replica.cpp.o.d"
  "/root/repo/src/sftbft/sim/scheduler.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/sim/scheduler.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/sim/scheduler.cpp.o.d"
  "/root/repo/src/sftbft/streamlet/streamlet.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/streamlet/streamlet.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/streamlet/streamlet.cpp.o.d"
  "/root/repo/src/sftbft/types/block.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/types/block.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/types/block.cpp.o.d"
  "/root/repo/src/sftbft/types/proposal.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/types/proposal.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/types/proposal.cpp.o.d"
  "/root/repo/src/sftbft/types/quorum_cert.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/types/quorum_cert.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/types/quorum_cert.cpp.o.d"
  "/root/repo/src/sftbft/types/timeout.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/types/timeout.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/types/timeout.cpp.o.d"
  "/root/repo/src/sftbft/types/transaction.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/types/transaction.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/types/transaction.cpp.o.d"
  "/root/repo/src/sftbft/types/vote.cpp" "CMakeFiles/sftbft_core.dir/src/sftbft/types/vote.cpp.o" "gcc" "CMakeFiles/sftbft_core.dir/src/sftbft/types/vote.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
