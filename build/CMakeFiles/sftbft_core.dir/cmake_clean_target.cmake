file(REMOVE_RECURSE
  "libsftbft_core.a"
)
