# Empty dependencies file for sftbft_core.
# This may be replaced when dependencies are built.
