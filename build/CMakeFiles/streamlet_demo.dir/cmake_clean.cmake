file(REMOVE_RECURSE
  "CMakeFiles/streamlet_demo.dir/examples/streamlet_demo.cpp.o"
  "CMakeFiles/streamlet_demo.dir/examples/streamlet_demo.cpp.o.d"
  "examples/streamlet_demo"
  "examples/streamlet_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlet_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
