# Empty dependencies file for streamlet_demo.
# This may be replaced when dependencies are built.
