file(REMOVE_RECURSE
  "CMakeFiles/streamlet_test.dir/tests/streamlet_test.cpp.o"
  "CMakeFiles/streamlet_test.dir/tests/streamlet_test.cpp.o.d"
  "streamlet_test"
  "streamlet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamlet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
