# Empty dependencies file for streamlet_test.
# This may be replaced when dependencies are built.
