file(REMOVE_RECURSE
  "CMakeFiles/tab_msg_complexity.dir/bench/tab_msg_complexity.cpp.o"
  "CMakeFiles/tab_msg_complexity.dir/bench/tab_msg_complexity.cpp.o.d"
  "bench/tab_msg_complexity"
  "bench/tab_msg_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_msg_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
