# Empty dependencies file for tab_msg_complexity.
# This may be replaced when dependencies are built.
