file(REMOVE_RECURSE
  "CMakeFiles/tab_streamlet.dir/bench/tab_streamlet.cpp.o"
  "CMakeFiles/tab_streamlet.dir/bench/tab_streamlet.cpp.o.d"
  "bench/tab_streamlet"
  "bench/tab_streamlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_streamlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
