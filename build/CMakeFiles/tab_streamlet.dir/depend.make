# Empty dependencies file for tab_streamlet.
# This may be replaced when dependencies are built.
