file(REMOVE_RECURSE
  "CMakeFiles/tab_throughput.dir/bench/tab_throughput.cpp.o"
  "CMakeFiles/tab_throughput.dir/bench/tab_throughput.cpp.o.d"
  "bench/tab_throughput"
  "bench/tab_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
