# Empty dependencies file for tab_throughput.
# This may be replaced when dependencies are built.
