file(REMOVE_RECURSE
  "CMakeFiles/vote_history_test.dir/tests/vote_history_test.cpp.o"
  "CMakeFiles/vote_history_test.dir/tests/vote_history_test.cpp.o.d"
  "vote_history_test"
  "vote_history_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vote_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
