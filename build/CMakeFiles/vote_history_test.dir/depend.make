# Empty dependencies file for vote_history_test.
# This may be replaced when dependencies are built.
