// Appendix C, live: why counting *all* indirect votes is unsafe, and how the
// SFT marker fixes it.
//
// We rebuild Figure 9's fork by hand against the endorsement layer:
// f + 1 Byzantine replicas (b1..b_{f+1}) and 2f honest ones (h1..h_{2f}).
// A Byzantine round-(r+1) leader equivocates, producing blocks B_{r+1}
// (extending B_r) and B'_{r+1} (extending B_{r-1}). Honest replica h_{f+1}
// votes first for B'_{r+1}, then — legally, per the DiemBFT voting rule —
// for B_{r+2} on the main branch.
//
// The naive counter credits h_{f+1}'s indirect vote to B_r, reporting the
// 3-chain B_r, B_{r+1}, B_{r+2} as (f+1)-strong. But h_{f+1} already helped
// certify the conflicting fork, which the adversary can extend into a
// *conflicting* (f+1)-strong commit — a safety violation. The SFT
// strong-vote carries marker = r+1 (the conflicting vote's round), so it
// does NOT endorse B_r, and the false (f+1)-strong commit never happens.
#include <cstdio>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/consensus/endorsement.hpp"

using namespace sftbft;
using namespace sftbft::consensus;

namespace {

constexpr std::uint32_t kF = 2;          // f
constexpr std::uint32_t kN = 3 * kF + 1; // n = 7

types::Block make_block(const types::Block& parent, Round round) {
  types::Block block;
  block.parent_id = parent.id;
  block.round = round;
  block.height = parent.height + 1;
  block.proposer = static_cast<ReplicaId>(round % kN);
  block.qc.block_id = parent.id;
  block.qc.round = parent.round;
  block.seal();
  return block;
}

types::Vote make_vote(const types::Block& block, ReplicaId voter,
                      Round marker) {
  types::Vote vote;
  vote.block_id = block.id;
  vote.round = block.round;
  vote.voter = voter;
  vote.mode = types::VoteMode::Marker;
  vote.marker = marker;
  return vote;
}

types::QuorumCert make_qc(const types::Block& block,
                          const std::vector<types::Vote>& votes) {
  types::QuorumCert qc;
  qc.block_id = block.id;
  qc.round = block.round;
  qc.parent_id = block.parent_id;
  qc.parent_round = block.qc.round;
  qc.votes = votes;
  qc.canonicalize();
  return qc;
}

// Replica cast: h1..h2f are honest = ids 0..2f-1; b1..b_{f+1} = ids 2f..3f.
constexpr ReplicaId h(std::uint32_t i) { return i - 1; }          // h1 -> 0
constexpr ReplicaId b(std::uint32_t i) { return 2 * kF + i - 1; } // b1 -> 4

}  // namespace

int main() {
  std::printf("Appendix C counter-example, f=%u (n=%u): Byzantine replicas "
              "b1..b%u, honest h1..h%u\n\n",
              kF, kN, kF + 1, 2 * kF);

  // --- Build the Figure 9 fork -------------------------------------------
  chain::BlockTree tree;
  const types::Block genesis = tree.genesis();
  const types::Block b_rm1 = make_block(genesis, 1);   // B_{r-1}
  const types::Block b_r = make_block(b_rm1, 2);       // B_r
  const types::Block b_r1 = make_block(b_r, 3);        // B_{r+1}
  const types::Block b_r1p = make_block(b_rm1, 3);     // B'_{r+1} (fork!)
  const types::Block b_r2 = make_block(b_r1, 4);       // B_{r+2}
  for (const types::Block* blk : {&b_rm1, &b_r, &b_r1, &b_r1p, &b_r2}) {
    tree.insert(*blk);
  }

  // Votes per Figure 9. Markers are what each replica would truthfully
  // attach given its own voting history.
  std::vector<types::Vote> votes_r, votes_r1, votes_r1p, votes_r2;
  for (std::uint32_t i = 1; i <= kF; ++i) {           // h1..hf vote main
    votes_r.push_back(make_vote(b_r, h(i), 0));
    votes_r1.push_back(make_vote(b_r1, h(i), 0));
    votes_r2.push_back(make_vote(b_r2, h(i), 0));
  }
  for (std::uint32_t i = 1; i <= kF + 1; ++i) {       // b1..b_{f+1} everywhere
    votes_r.push_back(make_vote(b_r, b(i), 0));
    votes_r1.push_back(make_vote(b_r1, b(i), 0));
    votes_r1p.push_back(make_vote(b_r1p, b(i), 0));
    // Byzantine replicas vote on both forks and lie about their markers
    // (claim 0) — the safety proof never trusts Byzantine markers.
    votes_r2.push_back(make_vote(b_r2, b(i), 0));
  }
  for (std::uint32_t i = kF + 1; i <= 2 * kF; ++i) {  // h_{f+1}..h_{2f} fork
    votes_r1p.push_back(make_vote(b_r1p, h(i), 0));
  }
  // h_{f+1} then votes for B_{r+2} on the main branch — allowed by the
  // voting rule. Its truthful marker is B'_{r+1}.round = 3.
  votes_r2.push_back(make_vote(b_r2, h(kF + 1), 3));

  // --- Count endorsements under both rules --------------------------------
  for (const CountingRule rule :
       {CountingRule::NaiveAllIndirect, CountingRule::Sft}) {
    EndorsementTracker tracker(tree, kN, kF, rule);
    tracker.process_qc(make_qc(b_r, votes_r));
    tracker.process_qc(make_qc(b_r1, votes_r1));
    tracker.process_qc(make_qc(b_r1p, votes_r1p));
    tracker.process_qc(make_qc(b_r2, votes_r2));

    const std::uint32_t count = tracker.endorser_count(b_r.id);
    const std::uint32_t strength = tracker.head_strength(b_r.id);
    std::printf("%-18s endorsers(B_r) = %u  ->  B_r strength = x=%u %s\n",
                rule == CountingRule::Sft ? "SFT marker rule:"
                                          : "naive counting:",
                count, strength,
                strength > kF
                    ? "(claims (f+1)-strong: UNSAFE, fork can equal it!)"
                    : "(stays at f-strong: safe)");
  }

  std::printf(
      "\nThe naive rule credits h%u's vote for B_r+2 to B_r even though\n"
      "h%u helped certify the conflicting B'_{r+1} — the adversary can\n"
      "extend that fork into a second \"(f+1)-strong\" commit (Fig. 9).\n"
      "The marker (= 3, the conflicting round) blocks the false credit.\n",
      kF + 1, kF + 1);
  return 0;
}
