// Appendix C, live — now driven through the adversary subsystem instead of
// a hand-scripted vote schedule (the original type-layer script survives as
// tests/naive_counter_test.cpp, the regression guard for the counting
// rules).
//
// A Byzantine coalition runs the Fig. 9 playbook through the *real* SFT-
// DiemBFT engines: EquivocatingLeader shows conflicting same-round blocks
// to disjoint honest subsets, and AmnesiaVoter forges empty voting
// histories (marker 0) while voting both forks. A global SafetyAuditor
// re-derives every commit claim under the paper's VoteHistory rule:
//
//  * with CountingRule::Sft, the cluster's own claims are exactly as strong
//    as the ground truth — the attack gains nothing;
//  * with CountingRule::NaiveAllIndirect (count every indirect vote, ignore
//    voting history — the Appendix-C strawman), honest replicas publish
//    x-strong claims their own cross-fork voters' truthful markers deny,
//    and the auditor catches the overclaims the adversary could revert.
#include <cstdio>

#include "sftbft/engine/deployment.hpp"
#include "sftbft/harness/auditor.hpp"
#include "sftbft/harness/scenario.hpp"

using namespace sftbft;

namespace {

constexpr std::uint32_t kN = 7;                  // f = 2
constexpr std::uint32_t kF = (kN - 1) / 3;
constexpr std::uint32_t kCoalition = kF;         // c corrupted replicas

struct Outcome {
  std::uint64_t equivocations = 0;
  std::uint64_t forged_votes = 0;
  std::uint64_t claims = 0;
  std::uint32_t max_claimed = 0;
  std::uint64_t violations = 0;
};

Outcome run(consensus::CountingRule rule) {
  harness::Scenario s;
  s.protocol = engine::Protocol::DiemBft;
  s.n = kN;
  s.mode = consensus::CoreMode::SftMarker;
  s.counting = rule;
  s.topo = harness::Scenario::Topo::Uniform;
  s.delta = millis(20);
  s.jitter = millis(5);
  s.jitter_frac = 0;
  s.leader_processing = millis(10);
  s.verify_signatures = false;
  s.max_batch = 10;
  s.duration = seconds(15);
  s.seed = 9;
  s.byzantine_count = kCoalition;
  s.byzantine.strategies = {adversary::Strategy::EquivocatingLeader,
                            adversary::Strategy::AmnesiaVoter};

  harness::SafetyAuditor auditor({s.protocol, s.n});
  engine::AuditTaps taps = auditor.taps();
  engine::Deployment deployment(
      s.to_deployment_config(),
      [&auditor](ReplicaId replica, const types::Block& block,
                 std::uint32_t strength, SimTime now) {
        auditor.on_commit(replica, block, strength, now);
      },
      std::move(taps));
  deployment.start();
  deployment.run_for(s.duration);

  Outcome outcome;
  if (const adversary::Coalition* coalition = deployment.coalition()) {
    outcome.equivocations = coalition->stats().equivocations;
    outcome.forged_votes = coalition->stats().forged_votes;
  }
  outcome.claims = auditor.claims();
  outcome.max_claimed = auditor.max_claimed();
  outcome.violations = auditor.violations().size();

  // Show a concrete caught overclaim, like the old script's B_r printout.
  if (!auditor.violations().empty()) {
    std::printf("    e.g. %s\n",
                auditor.violations().front().describe().c_str());
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "Appendix C live, f=%u (n=%u): a coalition of %u replicas runs\n"
      "EquivocatingLeader + AmnesiaVoter through the real SFT-DiemBFT "
      "engines.\n\n",
      kF, kN, kCoalition);

  for (const consensus::CountingRule rule :
       {consensus::CountingRule::NaiveAllIndirect,
        consensus::CountingRule::Sft}) {
    const bool naive = rule == consensus::CountingRule::NaiveAllIndirect;
    std::printf("%s\n", naive ? "naive counting (Appendix-C strawman):"
                              : "SFT marker rule (VoteHistory):");
    const Outcome outcome = run(rule);
    std::printf(
        "    %llu equivocations staged, %llu votes forged; %llu commit "
        "claims audited, strongest x=%u\n"
        "    auditor verdict: %llu violation(s) -> %s\n\n",
        static_cast<unsigned long long>(outcome.equivocations),
        static_cast<unsigned long long>(outcome.forged_votes),
        static_cast<unsigned long long>(outcome.claims), outcome.max_claimed,
        static_cast<unsigned long long>(outcome.violations),
        outcome.violations > 0
            ? "UNSAFE: claims the adversary can revert (Fig. 9)"
            : "safe: every claim backed by the VoteHistory ground truth");
  }

  std::printf(
      "The naive rule credits cross-fork voters' indirect votes to blocks\n"
      "their truthful markers deny; the marker rule blocks the false "
      "credit.\n");
  return 0;
}
