// Geo-distributed payments scenario (the paper's motivating use case):
// a 100-replica permissioned blockchain across three regions, where a
// *high-value* transaction wants more assurance than a coffee purchase.
//
// Demonstrates the Sec. 4.2 "dynamic tradeoff" strategy: when a block
// carries high-value transactions, the next few leaders extend their round
// latency (extra wait) to pack more strong-votes into their strong-QCs, so
// exactly that block strengthens quickly — everyone else keeps the fast
// regular path.
#include <cstdio>
#include <map>

#include "sftbft/harness/metrics.hpp"
#include "sftbft/engine/deployment.hpp"

using namespace sftbft;

namespace {

engine::DeploymentConfig geo_config(std::function<SimDuration(Round)> wait) {
  engine::DeploymentConfig config;
  config.n = 100;
  config.chained.mode = consensus::CoreMode::SftMarker;
  config.chained.leader_processing = millis(80);
  config.chained.base_timeout = millis(900);
  config.chained.max_batch = 100;
  config.chained.extra_wait = std::move(wait);
  config.chained.verify_signatures = false;  // keep the demo snappy
  config.topology = net::Topology::symmetric3(100, millis(100), millis(1));
  // A handful of slow replicas, like any real deployment has.
  for (ReplicaId id = 10; id < 100; id += 20) {
    config.topology.set_extra_delay(id, millis(50));
  }
  config.net.jitter = millis(40);
  config.net.jitter_frac = 0.25;
  config.seed = 11;
  return config;
}

/// Runs 60s and reports when the round-30 block reaches each strength level.
void run_and_report(const char* label,
                    std::function<SimDuration(Round)> wait) {
  std::map<std::uint32_t, SimTime> reached;  // strength -> first time
  SimTime created = 0;
  Round target_round = 30;

  engine::Deployment cluster(
      geo_config(std::move(wait)),
      [&](ReplicaId replica, const types::Block& block, std::uint32_t strength,
          SimTime now) {
        if (replica != 0 || block.round != target_round) return;
        created = block.created_at;
        reached.try_emplace(strength, now);
      });
  cluster.start();
  cluster.run_for(seconds(60));

  std::printf("%s\n", label);
  if (reached.empty()) {
    std::printf("  (target block not committed)\n");
    return;
  }
  for (const auto& [strength, when] : reached) {
    std::printf("  strength x=%2u (%.2ff) reached after %6.2fs\n", strength,
                static_cast<double>(strength) / 33.0,
                to_seconds(when - created));
  }
}

}  // namespace

int main() {
  std::printf("Scenario: the block proposed in round 30 carries a "
              "high-value settlement.\nHow fast does it strengthen?\n\n");

  // Baseline: no extra wait anywhere.
  run_and_report("[baseline] no extra wait:", nullptr);

  // Sec. 4.2 dynamic strategy: leaders of rounds 30..36 wait an extra
  // 250 ms so their strong-QCs include straggler votes.
  run_and_report(
      "\n[boosted]  rounds 30-36 wait +250ms for QC diversity:",
      [](Round round) -> SimDuration {
        return (round >= 30 && round <= 36) ? millis(250) : 0;
      });

  std::printf(
      "\nThe boosted run strengthens the high-value block several times\n"
      "faster while leaving every other round's latency untouched — the\n"
      "dynamic tradeoff of Sec. 4.2.\n");
  return 0;
}
