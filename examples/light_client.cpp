// Sec. 5: proving strong commits to a light client (e.g. a wallet app that
// does not follow the chain).
//
// Flow: run a small cluster; a wallet asks a full node (replica 0) to PROVE
// that the block holding its transaction is 2f-strong committed. The full
// node assembles a StrongCommitProof from the certified commit Log; the
// wallet verifies it knowing only the PKI — no chain state. We also show
// that doctored proofs are rejected.
#include <cstdio>

#include "sftbft/lightclient/light_client.hpp"
#include "sftbft/engine/deployment.hpp"

using namespace sftbft;

int main() {
  engine::DeploymentConfig config;
  config.n = 7;
  config.chained.mode = consensus::CoreMode::SftMarker;
  config.chained.base_timeout = millis(500);
  config.chained.leader_processing = millis(5);
  config.chained.max_batch = 20;
  config.topology = net::Topology::uniform(7, millis(10));
  config.net.jitter = millis(2);
  config.seed = 3;

  engine::Deployment cluster(config);
  cluster.start();
  cluster.run_for(seconds(8));

  const auto& core = cluster.diem_core(0);
  const auto& ledger = core.ledger();
  std::printf("full node: %llu blocks committed\n",
              static_cast<unsigned long long>(ledger.committed_blocks()));

  // Pick an old block that reached 2f-strong (f = 2 -> x = 4).
  const std::uint32_t want = 2 * core.config().f();
  const chain::Ledger::Entry* target = nullptr;
  for (const auto& entry : ledger.snapshot()) {
    if (entry.strength >= want) {
      target = &entry;
      break;
    }
  }
  if (target == nullptr) {
    std::printf("no 2f-strong block yet — run longer\n");
    return 1;
  }
  std::printf("wallet asks: prove block at height %llu (%s...) is %u-strong\n",
              static_cast<unsigned long long>(target->height),
              target->block_id.short_hex().c_str(), want);

  auto proof = lightclient::build_proof(core, target->block_id, want);
  if (!proof) {
    std::printf("full node could not assemble a proof\n");
    return 1;
  }
  std::printf("full node: proof assembled — carrier block round %llu, "
              "log entry strength %u, ancestry path %zu blocks, "
              "%zu certifying votes\n",
              static_cast<unsigned long long>(proof->carrier.block.round),
              proof->entry.strength, proof->path.size(),
              proof->carrier_qc.votes.size());

  // The wallet: only the PKI and n. (Sec. 5: with <= 2f faults, at least
  // one of the 2f+1 voters behind the carrier QC is honest and checked the
  // Log before voting.)
  lightclient::LightClient wallet(cluster.registry(), config.n);
  std::printf("wallet verifies the proof: %s\n",
              wallet.verify(*proof) ? "ACCEPTED" : "rejected");

  // Tampering attempts must fail.
  auto forged = *proof;
  forged.entry.strength = want + 1;  // claim more than the log says
  std::printf("wallet on proof with inflated claim:   %s\n",
              wallet.verify(forged) ? "ACCEPTED (BUG!)" : "rejected");

  auto wrong_target = *proof;
  wrong_target.target.bytes[0] ^= 0xff;  // different block, same evidence
  std::printf("wallet on proof for a different block: %s\n",
              wallet.verify(wrong_target) ? "ACCEPTED (BUG!)" : "rejected");

  auto thin_qc = *proof;
  thin_qc.carrier_qc.votes.resize(3);  // below quorum
  std::printf("wallet on proof with a thin QC:        %s\n",
              wallet.verify(thin_qc) ? "ACCEPTED (BUG!)" : "rejected");
  return 0;
}
