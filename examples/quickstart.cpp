// Quickstart: run a 4-replica SFT-DiemBFT cluster on the simulated network,
// submit transactions, and watch blocks commit with *increasing* fault
// tolerance — the paper's core idea, at the smallest possible scale.
//
//   build/examples/quickstart
//
// What to look for in the output: every block first commits at the regular
// level (x = f = 1, i.e. it tolerates 1 Byzantine replica), then — as the
// chain grows and more strong-votes endorse it — is upgraded to x = 2
// (= 2f): it now stays safe even if 2 of the 4 replicas later turn
// Byzantine. This is the "strengthened fault tolerance" of the title.
#include <cstdio>

#include "sftbft/engine/deployment.hpp"

using namespace sftbft;

int main() {
  engine::DeploymentConfig config;
  config.n = 4;
  config.chained.mode = consensus::CoreMode::SftMarker;
  config.chained.base_timeout = millis(500);
  config.chained.leader_processing = millis(10);
  config.chained.max_batch = 50;
  config.topology = net::Topology::uniform(4, millis(10));
  config.net.jitter = millis(2);
  config.seed = 7;

  std::printf("n = 4 replicas, f = 1. Strength x means: this commit stays\n"
              "safe even if up to x replicas later become Byzantine.\n\n");

  // Observe commits at replica 0 only (all honest replicas agree).
  engine::Deployment cluster(
      config, [](ReplicaId replica, const types::Block& block,
                 std::uint32_t strength, SimTime now) {
        if (replica != 0 || block.height > 8) return;
        std::printf("  t=%-8s height %-2llu %s  -> committed at strength "
                    "x=%u (%s)\n",
                    format_time(now).c_str(),
                    static_cast<unsigned long long>(block.height),
                    block.id.short_hex().c_str(), strength,
                    strength == 1 ? "regular, f-strong"
                                  : "strengthened, 2f-strong");
      });

  cluster.start();
  cluster.run_for(seconds(3));

  const auto& ledger = cluster.ledger(0);
  std::printf("\ncommitted %llu blocks, %llu transactions in 3s of "
              "simulated time\n",
              static_cast<unsigned long long>(ledger.committed_blocks()),
              static_cast<unsigned long long>(ledger.committed_txns()));

  // Every old-enough block has been strengthened to 2f.
  std::uint64_t strengthened = 0;
  for (const auto& entry : ledger.snapshot()) {
    if (entry.strength == 2) ++strengthened;
  }
  std::printf("blocks strengthened to 2f: %llu\n",
              static_cast<unsigned long long>(strengthened));
  return 0;
}
