// Appendix D: SFT-Streamlet in action — the same strengthened-fault-
// tolerance idea on the textbook-simple Streamlet protocol, plus its extra
// long-range-attack resistance.
//
// Streamlet runs in lock-step rounds of 2Δ and votes by *longest certified
// chain* (height-based) rather than rounds. Strong-votes carry a HEIGHT
// marker; the strong commit rule needs x + f + 1 k-endorsers on all three
// blocks of a consecutive-round triple.
#include <cstdio>

#include "sftbft/engine/deployment.hpp"

using namespace sftbft;
using namespace sftbft::engine;

int main() {
  DeploymentConfig config;
  config.protocol = Protocol::Streamlet;
  config.n = 7;
  config.streamlet.delta_bound = millis(50);  // rounds tick every 100 ms
  config.streamlet.sft = true;
  config.streamlet.echo = true;
  config.streamlet.max_batch = 20;
  config.topology = net::Topology::uniform(7, millis(15));
  config.net.jitter = millis(5);
  config.seed = 21;

  std::printf("SFT-Streamlet, n=7 (f=2), lock-step rounds of 2*50ms\n\n");

  Deployment cluster(
      config, [](ReplicaId replica, const types::Block& block,
                 std::uint32_t strength, SimTime now) {
        if (replica != 0 || block.height > 6) return;
        std::printf("  t=%-8s height %-2llu round %-3llu -> strength x=%u%s\n",
                    format_time(now).c_str(),
                    static_cast<unsigned long long>(block.height),
                    static_cast<unsigned long long>(block.round), strength,
                    strength == 4 ? "  (2f: tolerates a 4/7 corruption!)"
                                  : "");
      });
  cluster.start();
  cluster.run_for(seconds(5));

  const auto& ledger = cluster.ledger(0);
  std::printf("\ncommitted %llu blocks in 5s of simulated time "
              "(lock-step pacing, ~1 block per 100ms round)\n",
              static_cast<unsigned long long>(ledger.committed_blocks()));

  const auto& stats = cluster.net_stats();
  std::printf("messages: %llu total — proposals %llu, votes %llu, echoes "
              "%llu (the echo is Streamlet's O(n^3) simplicity tax)\n",
              static_cast<unsigned long long>(stats.total_count()),
              static_cast<unsigned long long>(stats.for_type("proposal").count),
              static_cast<unsigned long long>(stats.for_type("vote").count),
              static_cast<unsigned long long>(stats.for_type("echo").count));

  std::printf(
      "\nLong-range note (D.4): honest Streamlet replicas vote only for the\n"
      "longest certified chain, so reverting a strong commit buried h blocks\n"
      "deep needs > x corrupted replicas for ~h rounds, not 1 round as in\n"
      "round-locked DiemBFT. Deep history is sticky.\n");
  return 0;
}
