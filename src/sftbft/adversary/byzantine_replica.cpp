#include "sftbft/adversary/byzantine_replica.hpp"

#include <stdexcept>
#include <string>

#include "sftbft/engine/chained_engine.hpp"

namespace sftbft::adversary {

using core::ChainedCore;
using net::Envelope;
using types::Proposal;
using types::Vote;
using types::VoteMode;

ByzantineReplica::ByzantineReplica(
    engine::Protocol protocol, consensus::CoreConfig config,
    net::Transport& transport,
    std::shared_ptr<const crypto::KeyRegistry> registry,
    mempool::WorkloadConfig workload, Rng workload_rng,
    engine::FaultSpec fault, std::shared_ptr<Coalition> coalition,
    replica::Replica::QcTap qc_tap, dissem::DissemConfig dissem)
    : protocol_(protocol),
      wires_(engine::chained_wires_for(protocol)),
      id_(config.id),
      n_(config.n),
      transport_(transport),
      fault_(std::move(fault)),
      coalition_(std::move(coalition)),
      funnel_(config.id, transport, fault_, *coalition_),
      signer_(registry->signer_for(config.id)),
      election_(config.n),
      workload_(transport.scheduler(), pool_, workload, workload_rng),
      dissem_(dissem) {
  workload_.set_id_space(id_);
  coalition_->enlist(id_);
  // The corrupted replica runs the real kernel under the real protocol
  // rules — only its outbound behaviour lies.
  config.rules = engine::chained_rules_for(protocol);

  if (dissem_.enabled) {
    batches_ = std::make_unique<dissem::BatchStore>();
    broadcaster_ = std::make_unique<dissem::BatchBroadcaster>(
        id_, transport_, pool_, *batches_, dissem_,
        [this] { core_->retry_awaiting_payloads(); },
        dissem::BatchBroadcaster::Options{
            .silent = false,
            .withhold_push = fault_.byz.has(Strategy::BatchWithholder)});
    frontend_ = std::make_unique<dissem::AdmissionFrontend>(pool_, dissem_);
    swarm_ = std::make_unique<dissem::ClientSwarm>(
        transport.scheduler(), *frontend_, workload, dissem_,
        workload_rng.fork());
    swarm_->set_id_space(id_);
  }

  ChainedCore::Hooks hooks;
  hooks.send_vote = [this](ReplicaId to, const Vote& vote) {
    Vote out = vote;
    if (fault_.byz.has(Strategy::AmnesiaVoter)) forge_history(out);
    funnel_.send(to, Envelope::pack(wires_.vote, id_, out),
                 /*withholdable=*/false);
  };
  hooks.broadcast_proposal = [this](const Proposal& proposal) {
    if (fault_.byz.has(Strategy::EquivocatingLeader)) {
      equivocate(proposal);
      return;
    }
    funnel_.send_self(Envelope::pack(wires_.proposal, id_, proposal));
    funnel_.send_peers(Envelope::pack(wires_.proposal, id_, proposal),
                       /*withholdable=*/true);
  };
  hooks.broadcast_timeout = [this](const types::TimeoutMsg& msg) {
    // Timeout messages carry qc_high, so WithholdRelease delays them too —
    // otherwise the "private" certificate leaks on the next timeout.
    funnel_.send_self(Envelope::pack(wires_.timeout, id_, msg));
    funnel_.send_peers(Envelope::pack(wires_.timeout, id_, msg),
                       /*withholdable=*/true);
  };
  hooks.broadcast_extra_vote = [this](const Vote& vote) {
    funnel_.send_peers(Envelope::pack(wires_.vote, id_, vote),
                       /*withholdable=*/false, "extra_vote");
  };
  hooks.send_sync_request = [this](ReplicaId to,
                                   const types::SyncRequest& req) {
    funnel_.send(to, Envelope::pack(wires_.sync_request, id_, req),
                 /*withholdable=*/false);
  };
  hooks.send_sync_response = [this](ReplicaId to,
                                    const types::SyncResponse& resp) {
    funnel_.send(to, Envelope::pack(wires_.sync_response, id_, resp),
                 /*withholdable=*/false);
  };
  // No commit observer: a corrupted replica's ledger claims are adversarial
  // by definition; the honest-commit stream is what the auditor audits.
  hooks.on_canonical_qc = std::move(qc_tap);

  if (dissem_.enabled) {
    // The data-plane seams run honestly — the kernel keeps the corrupted
    // replica synced, which is what lets its attacks land. The withholding
    // happens one layer down, in the broadcaster's push suppression.
    hooks.make_payload = [this](std::size_t /*max_batch*/) {
      return batches_->make_payload(dissem_.max_batches_per_proposal,
                                    transport_.scheduler().now(),
                                    dissem_.repropose_after);
    };
    hooks.requeue_payload = [this](const types::Payload& payload) {
      if (payload.is_digests()) {
        batches_->requeue(payload);
      } else {
        pool_.requeue(payload);
      }
    };
    hooks.payload_available = [this](const types::Payload& payload) {
      if (!payload.is_digests()) return true;
      batches_->observe_reference(payload, transport_.scheduler().now());
      return batches_->missing(payload).empty();
    };
    hooks.fetch_payload = [this](const types::Payload& payload) {
      if (!payload.is_digests()) return;
      const auto missing = batches_->missing(payload);
      if (!missing.empty()) broadcaster_->want(missing);
    };
  }

  core_ = std::make_unique<ChainedCore>(config, transport.scheduler(),
                                        std::move(registry), pool_,
                                        std::move(hooks));
  if (dissem_.enabled) {
    core_->attach_batch_store(
        batches_.get(), [this](const std::vector<crypto::Sha256Digest>& m) {
          broadcaster_->want(m);
        });
  }
}

void ByzantineReplica::start() {
  transport_.set_handler(id_, [this](const Envelope& env,
                                     std::size_t frame_bytes) {
    ++inbound_messages_;
    inbound_bytes_ += frame_bytes;
    on_envelope(env);
  });
  if (dissem_.enabled) {
    swarm_->start();
    broadcaster_->start();
  } else {
    workload_.top_up();
    workload_.start();
  }
  core_->start();
}

void ByzantineReplica::stop() {
  core_->stop();
  if (dissem_.enabled) {
    broadcaster_->stop();
    swarm_->stop();
  }
  transport_.disconnect(id_);
}

void ByzantineReplica::restart() {
  throw std::logic_error(
      "ByzantineReplica::restart: Byzantine replicas do not recover");
}

void ByzantineReplica::on_envelope(const Envelope& env) {
  try {
    if (env.type == wires_.proposal) {
      const Proposal proposal = env.unpack<Proposal>();
      if (fault_.byz.has(Strategy::AmnesiaVoter) &&
          proposal.round() >= core_->current_round()) {
        forge_vote_for(proposal.block);
      }
      core_->on_proposal(proposal);
    } else if (env.type == wires_.vote) {
      core_->on_vote(env.unpack<Vote>());
    } else if (env.type == wires_.timeout) {
      core_->on_timeout_msg(env.unpack<types::TimeoutMsg>());
    } else if (env.type == wires_.sync_request) {
      core_->on_sync_request(env.unpack<types::SyncRequest>());
    } else if (env.type == wires_.sync_response) {
      core_->on_sync_response(env.unpack<types::SyncResponse>());
    } else if (broadcaster_ && env.type == net::WireType::kBatchPush) {
      broadcaster_->on_push(env.unpack<dissem::BatchPush>());
    } else if (broadcaster_ && env.type == net::WireType::kBatchRequest) {
      broadcaster_->on_request(env.unpack<dissem::BatchRequest>());
    } else if (broadcaster_ && env.type == net::WireType::kBatchResponse) {
      broadcaster_->on_response(env.unpack<dissem::BatchResponse>());
    } else {
      throw CodecError("ByzantineReplica: wire type not in this stack");
    }
  } catch (const CodecError&) {
    transport_.stats().record_decode_drop();
  }
}

// ------------------------------------------------------------- strategies

void ByzantineReplica::equivocate(const Proposal& proposal) {
  // The twin: identical parent/round/height/payload, distinct id (the
  // creation stamp is part of the sealed header). Honest receivers cannot
  // structurally distinguish it from the original.
  Proposal twin = proposal;
  twin.block.created_at += 1;
  twin.block.seal();
  twin.sig = signer_.sign(twin.signing_bytes());

  coalition_->record_fork(proposal.round(), proposal.block.id, twin.block.id);
  ++coalition_->stats().equivocations;

  // Serialize each fork once; per-recipient sends copy the payload instead
  // of re-running the full (block-sized) canonical encode.
  const Envelope original_env =
      Envelope::pack(wires_.proposal, id_, proposal);
  const Envelope twin_env = Envelope::pack(wires_.proposal, id_, twin);
  for (ReplicaId to = 0; to < n_; ++to) {
    const bool both = coalition_->is_member(to);
    if (to == id_) {
      // Own core sees both forks (it is a coalition member): it votes its
      // own view once; the amnesia path votes the twin as well.
      funnel_.send_self(original_env);
      funnel_.send_self(twin_env);
      continue;
    }
    if (both || to % 2 == 0) {
      funnel_.send(to, original_env, /*withholdable=*/true);
    }
    if (both || to % 2 != 0) {
      funnel_.send(to, twin_env, /*withholdable=*/true);
    }
  }
}

void ByzantineReplica::forge_vote_for(const types::Block& block) {
  if (!forged_for_.insert(block.id).second) return;  // once per block
  Vote vote;
  vote.block_id = block.id;
  vote.round = block.round;
  vote.voter = id_;
  switch (core_->config().mode) {
    case core::CoreMode::Plain:
      vote.mode = VoteMode::Plain;
      break;
    case core::CoreMode::SftMarker:
      vote.mode = VoteMode::Marker;
      vote.marker = 0;  // "I never voted a conflicting fork" — a lie
      break;
    case core::CoreMode::SftIntervals:
      vote.mode = VoteMode::Intervals;
      vote.endorsed = IntervalSet::single(1, block.round);  // endorse all
      break;
  }
  vote.sig = signer_.sign(vote.signing_bytes());
  ++coalition_->stats().forged_votes;
  funnel_.send(election_.leader_of(block.round + 1),
               Envelope::pack(wires_.vote, id_, vote),
               /*withholdable=*/false);
}

void ByzantineReplica::forge_history(Vote& vote) {
  switch (vote.mode) {
    case VoteMode::Plain:
      return;
    case VoteMode::Marker:
      if (vote.marker == 0) return;  // already looks historyless
      vote.marker = 0;
      break;
    case VoteMode::Intervals:
      vote.endorsed = IntervalSet::single(1, vote.round);
      break;
  }
  vote.sig = signer_.sign(vote.signing_bytes());
  ++coalition_->stats().forged_votes;
}

}  // namespace sftbft::adversary
