#include "sftbft/adversary/byzantine_replica.hpp"

#include <stdexcept>
#include <string>

namespace sftbft::adversary {

using consensus::DiemBftCore;
using types::Message;
using types::Proposal;
using types::Vote;
using types::VoteMode;

ByzantineReplica::ByzantineReplica(
    consensus::CoreConfig config, replica::DiemNetwork& network,
    std::shared_ptr<const crypto::KeyRegistry> registry,
    mempool::WorkloadConfig workload, Rng workload_rng,
    engine::FaultSpec fault, std::shared_ptr<Coalition> coalition,
    replica::Replica::QcTap qc_tap)
    : id_(config.id),
      n_(config.n),
      network_(network),
      fault_(std::move(fault)),
      coalition_(std::move(coalition)),
      funnel_(config.id, network, fault_, *coalition_),
      signer_(registry->signer_for(config.id)),
      election_(config.n),
      workload_(network.scheduler(), pool_, workload, std::move(workload_rng)) {
  workload_.set_id_space(id_);
  coalition_->enlist(id_);

  DiemBftCore::Hooks hooks;
  hooks.send_vote = [this](ReplicaId to, const Vote& vote) {
    Vote out = vote;
    if (fault_.byz.has(Strategy::AmnesiaVoter)) forge_history(out);
    funnel_.send(to, "vote", out.wire_size(), Message{out},
                 /*withholdable=*/false);
  };
  hooks.broadcast_proposal = [this](const Proposal& proposal) {
    if (fault_.byz.has(Strategy::EquivocatingLeader)) {
      equivocate(proposal);
      return;
    }
    funnel_.send_self("proposal", proposal.wire_size(), Message{proposal});
    funnel_.send_peers("proposal", proposal.wire_size(), Message{proposal},
                       /*withholdable=*/true);
  };
  hooks.broadcast_timeout = [this](const types::TimeoutMsg& msg) {
    // Timeout messages carry qc_high, so WithholdRelease delays them too —
    // otherwise the "private" certificate leaks on the next timeout.
    funnel_.send_self("timeout", msg.wire_size(), Message{msg});
    funnel_.send_peers("timeout", msg.wire_size(), Message{msg},
                       /*withholdable=*/true);
  };
  hooks.broadcast_extra_vote = [this](const Vote& vote) {
    funnel_.send_peers("extra_vote", vote.wire_size(), Message{vote},
                       /*withholdable=*/false);
  };
  hooks.send_sync_request = [this](ReplicaId to,
                                   const types::SyncRequest& req) {
    funnel_.send(to, "sync_req", req.wire_size(), Message{req},
                 /*withholdable=*/false);
  };
  hooks.send_sync_response = [this](ReplicaId to,
                                    const types::SyncResponse& resp) {
    funnel_.send(to, "sync_resp", resp.wire_size(), Message{resp},
                 /*withholdable=*/false);
  };
  // No commit observer: a corrupted replica's ledger claims are adversarial
  // by definition; the honest-commit stream is what the auditor audits.
  hooks.on_canonical_qc = std::move(qc_tap);

  core_ = std::make_unique<DiemBftCore>(config, network.scheduler(),
                                        std::move(registry), pool_,
                                        std::move(hooks));
}

void ByzantineReplica::start() {
  network_.set_handler(id_, [this](ReplicaId /*from*/, const Message& msg,
                                   std::size_t wire_size) {
    ++inbound_messages_;
    inbound_bytes_ += wire_size;
    on_message(msg);
  });
  workload_.top_up();
  workload_.start();
  core_->start();
}

void ByzantineReplica::stop() {
  core_->stop();
  network_.disconnect(id_);
}

void ByzantineReplica::restart() {
  throw std::logic_error(
      "ByzantineReplica::restart: Byzantine replicas do not recover");
}

void ByzantineReplica::on_message(const Message& msg) {
  if (std::holds_alternative<Proposal>(msg)) {
    const Proposal& proposal = std::get<Proposal>(msg);
    if (fault_.byz.has(Strategy::AmnesiaVoter) &&
        proposal.round() >= core_->current_round()) {
      forge_vote_for(proposal.block);
    }
    core_->on_proposal(proposal);
  } else if (std::holds_alternative<Vote>(msg)) {
    core_->on_vote(std::get<Vote>(msg));
  } else if (std::holds_alternative<types::TimeoutMsg>(msg)) {
    core_->on_timeout_msg(std::get<types::TimeoutMsg>(msg));
  } else if (std::holds_alternative<types::SyncRequest>(msg)) {
    core_->on_sync_request(std::get<types::SyncRequest>(msg));
  } else {
    core_->on_sync_response(std::get<types::SyncResponse>(msg));
  }
}

// ------------------------------------------------------------- strategies

void ByzantineReplica::equivocate(const Proposal& proposal) {
  // The twin: identical parent/round/height/payload, distinct id (the
  // creation stamp is part of the sealed header). Honest receivers cannot
  // structurally distinguish it from the original.
  Proposal twin = proposal;
  twin.block.created_at += 1;
  twin.block.seal();
  twin.sig = signer_.sign(twin.signing_bytes());

  coalition_->record_fork(proposal.round(), proposal.block.id, twin.block.id);
  ++coalition_->stats().equivocations;

  for (ReplicaId to = 0; to < n_; ++to) {
    const bool both = coalition_->is_member(to);
    if (to == id_) {
      // Own core sees both forks (it is a coalition member): it votes its
      // own view once; the amnesia path votes the twin as well.
      funnel_.send_self("proposal", proposal.wire_size(), Message{proposal});
      funnel_.send_self("proposal", twin.wire_size(), Message{twin});
      continue;
    }
    if (both || to % 2 == 0) {
      funnel_.send(to, "proposal", proposal.wire_size(), Message{proposal},
                   /*withholdable=*/true);
    }
    if (both || to % 2 != 0) {
      funnel_.send(to, "proposal", twin.wire_size(), Message{twin},
                   /*withholdable=*/true);
    }
  }
}

void ByzantineReplica::forge_vote_for(const types::Block& block) {
  if (!forged_for_.insert(block.id).second) return;  // once per block
  Vote vote;
  vote.block_id = block.id;
  vote.round = block.round;
  vote.voter = id_;
  switch (core_->config().mode) {
    case consensus::CoreMode::Plain:
      vote.mode = VoteMode::Plain;
      break;
    case consensus::CoreMode::SftMarker:
      vote.mode = VoteMode::Marker;
      vote.marker = 0;  // "I never voted a conflicting fork" — a lie
      break;
    case consensus::CoreMode::SftIntervals:
      vote.mode = VoteMode::Intervals;
      vote.endorsed = IntervalSet::single(1, block.round);  // endorse all
      break;
  }
  vote.sig = signer_.sign(vote.signing_bytes());
  ++coalition_->stats().forged_votes;
  funnel_.send(election_.leader_of(block.round + 1), "vote",
               vote.wire_size(), Message{vote}, /*withholdable=*/false);
}

void ByzantineReplica::forge_history(Vote& vote) {
  switch (vote.mode) {
    case VoteMode::Plain:
      return;
    case VoteMode::Marker:
      if (vote.marker == 0) return;  // already looks historyless
      vote.marker = 0;
      break;
    case VoteMode::Intervals:
      vote.endorsed = IntervalSet::single(1, vote.round);
      break;
  }
  vote.sig = signer_.sign(vote.signing_bytes());
  ++coalition_->stats().forged_votes;
}

}  // namespace sftbft::adversary
