// ByzantineReplica: an actively adversarial chained-kernel replica (DiemBFT
// or HotStuff — the strategies attack the kernel, so one adversary engine
// covers the whole chained family) that plugs into the
// engine::ConsensusEngine replica slot (paper Appendix C / Fig. 9).
//
// The replica runs a *real* ChainedCore — that is what keeps it synced,
// lets it win its leadership rounds, collect votes, and form QCs exactly
// like an honest replica would — but every outbound message passes through
// the Strategy filter of its FaultSpec (see adversary/strategy.hpp):
//
//  * EquivocatingLeader — the core's proposal broadcast is split into twin
//    conflicting proposals (same round/height/parent, distinct ids) shown
//    to disjoint honest peer subsets; coalition members receive both.
//  * AmnesiaVoter — the core's truthful strong-votes are re-signed with a
//    forged empty history (marker 0 / full interval), and the replica
//    additionally votes for every same-round proposal it sees, including
//    staged forks — the exact "vote on both forks and lie about the
//    markers" schedule of Fig. 9.
//  * WithholdRelease — proposals (the carriers of freshly formed QCs) and
//    timeout messages (which leak qc_high) are released withhold_delay
//    late: private certification, delayed disclosure.
//  * SelectiveSender — every outbound message to a suppressed peer is
//    dropped.
//
// Strategies compose; shared attack state (fork registry, stats) lives in
// the Coalition all Byzantine engines of a deployment share. The replica
// never fires the deployment's commit observer: its ledger claims are
// adversarial, and the honest-commit stream is precisely what the
// SafetyAuditor audits.
#pragma once

#include <memory>
#include <unordered_set>

#include "sftbft/adversary/coalition.hpp"
#include "sftbft/adversary/funnel.hpp"
#include "sftbft/consensus/diembft.hpp"
#include "sftbft/consensus/leader_election.hpp"
#include "sftbft/dissem/admission.hpp"
#include "sftbft/dissem/broadcaster.hpp"
#include "sftbft/dissem/config.hpp"
#include "sftbft/engine/engine.hpp"
#include "sftbft/mempool/mempool.hpp"
#include "sftbft/replica/replica.hpp"

namespace sftbft::adversary {

class ByzantineReplica final : public engine::ConsensusEngine {
 public:
  /// `protocol` selects the chained stack to corrupt (rules + wire tags);
  /// `fault.kind` must be Kind::Byzantine with a validated spec;
  /// `coalition` must be shared with every other Byzantine engine of the
  /// deployment. `qc_tap` (optional) feeds the SafetyAuditor.
  /// `dissem.enabled` runs the data plane on the corrupted replica too —
  /// with Strategy::BatchWithholder it packs batches and serves pulls but
  /// never pushes (the lazy disseminator the pull fallback defeats).
  ByzantineReplica(engine::Protocol protocol, consensus::CoreConfig config,
                   net::Transport& transport,
                   std::shared_ptr<const crypto::KeyRegistry> registry,
                   mempool::WorkloadConfig workload, Rng workload_rng,
                   engine::FaultSpec fault,
                   std::shared_ptr<Coalition> coalition,
                   replica::Replica::QcTap qc_tap = nullptr,
                   dissem::DissemConfig dissem = {});

  [[nodiscard]] engine::Protocol protocol() const override {
    return protocol_;
  }
  [[nodiscard]] ReplicaId id() const override { return id_; }
  void start() override;
  void stop() override;
  /// Byzantine replicas have no durable honest state to restore.
  void restart() override;
  [[nodiscard]] storage::ReplicaStore* store() override { return nullptr; }
  [[nodiscard]] const chain::Ledger& ledger() const override {
    return core_->ledger();
  }
  [[nodiscard]] Round current_round() const override {
    return core_->current_round();
  }
  [[nodiscard]] const engine::FaultSpec& fault() const override {
    return fault_;
  }
  [[nodiscard]] std::uint64_t inbound_messages() const override {
    return inbound_messages_;
  }
  [[nodiscard]] std::uint64_t inbound_bytes() const override {
    return inbound_bytes_;
  }

  [[nodiscard]] consensus::DiemBftCore& core() { return *core_; }
  [[nodiscard]] const Coalition& coalition() const { return *coalition_; }

 private:
  void on_envelope(const net::Envelope& env);

  // --- strategy implementations -------------------------------------------
  /// Splits `proposal` into twins and distributes them (EquivocatingLeader).
  void equivocate(const types::Proposal& proposal);
  /// AmnesiaVoter: votes for `block` with a forged empty history, history
  /// and safety rules be damned (at most once per block).
  void forge_vote_for(const types::Block& block);
  /// Rewrites a core-built vote to deny its own history and re-signs.
  void forge_history(types::Vote& vote);

  engine::Protocol protocol_;
  net::ChainedWireSet wires_;
  ReplicaId id_;
  std::uint32_t n_;
  net::Transport& transport_;
  engine::FaultSpec fault_;
  std::shared_ptr<Coalition> coalition_;
  /// Strategy-filtered delivery (shared with the Streamlet engine).
  OutboundFunnel funnel_;
  crypto::Signer signer_;
  consensus::LeaderElection election_;
  std::uint64_t inbound_messages_ = 0;
  std::uint64_t inbound_bytes_ = 0;
  mempool::Mempool pool_;
  mempool::WorkloadGenerator workload_;
  dissem::DissemConfig dissem_;
  /// Data plane (dissem_.enabled only).
  std::unique_ptr<dissem::BatchStore> batches_;
  std::unique_ptr<dissem::BatchBroadcaster> broadcaster_;
  std::unique_ptr<dissem::AdmissionFrontend> frontend_;
  std::unique_ptr<dissem::ClientSwarm> swarm_;
  std::unique_ptr<consensus::DiemBftCore> core_;
  /// Blocks already amnesia-voted (one forged vote per block).
  std::unordered_set<types::BlockId> forged_for_;
};

}  // namespace sftbft::adversary
