#include "sftbft/adversary/byzantine_streamlet.hpp"

#include <stdexcept>
#include <string>

namespace sftbft::adversary {

using net::Envelope;
using net::WireType;
using streamlet::SProposal;
using streamlet::SSyncRequest;
using streamlet::SSyncResponse;
using streamlet::StreamletCore;
using streamlet::SVote;

namespace {

Envelope pack_proposal(ReplicaId sender, const SProposal& proposal) {
  return Envelope::pack(WireType::kSProposal, sender, proposal);
}

Envelope pack_vote(ReplicaId sender, const SVote& vote) {
  return Envelope::pack(WireType::kSVote, sender, vote);
}

}  // namespace

ByzantineStreamlet::ByzantineStreamlet(
    streamlet::StreamletConfig config, net::Transport& transport,
    std::shared_ptr<const crypto::KeyRegistry> registry,
    mempool::WorkloadConfig workload, Rng workload_rng,
    engine::FaultSpec fault, std::shared_ptr<Coalition> coalition,
    engine::StreamletEngine::BlockTap block_tap,
    engine::StreamletEngine::VoteTap vote_tap, dissem::DissemConfig dissem)
    : id_(config.id),
      n_(config.n),
      transport_(transport),
      fault_(std::move(fault)),
      coalition_(std::move(coalition)),
      funnel_(config.id, transport, fault_, *coalition_),
      signer_(registry->signer_for(config.id)),
      workload_(transport.scheduler(), pool_, workload, workload_rng),
      dissem_(dissem) {
  workload_.set_id_space(id_);
  coalition_->enlist(id_);

  if (dissem_.enabled) {
    batches_ = std::make_unique<dissem::BatchStore>();
    broadcaster_ = std::make_unique<dissem::BatchBroadcaster>(
        id_, transport_, pool_, *batches_, dissem_,
        [this] { core_->retry_awaiting_payloads(); },
        dissem::BatchBroadcaster::Options{
            .silent = false,
            .withhold_push = fault_.byz.has(Strategy::BatchWithholder)});
    frontend_ = std::make_unique<dissem::AdmissionFrontend>(pool_, dissem_);
    swarm_ = std::make_unique<dissem::ClientSwarm>(
        transport.scheduler(), *frontend_, workload, dissem_,
        workload_rng.fork());
    swarm_->set_id_space(id_);
  }

  StreamletCore::Hooks hooks;
  hooks.broadcast_proposal = [this](const SProposal& proposal) {
    if (fault_.byz.has(Strategy::EquivocatingLeader)) {
      equivocate(proposal);
      return;
    }
    funnel_.send_self(pack_proposal(id_, proposal));
    funnel_.send_peers(pack_proposal(id_, proposal), /*withholdable=*/true);
  };
  hooks.broadcast_vote = [this](const SVote& vote) {
    SVote out = vote;
    if (fault_.byz.has(Strategy::AmnesiaVoter) && out.marker != 0) {
      out.marker = 0;  // "I never voted a conflicting fork" — a lie
      out.sig = signer_.sign(out.signing_bytes());
      ++coalition_->stats().forged_votes;
    }
    funnel_.send_self(pack_vote(id_, out));
    funnel_.send_peers(pack_vote(id_, out), /*withholdable=*/false);
  };
  hooks.echo = [this](const streamlet::SMessage& msg) {
    funnel_.send_peers(streamlet::to_envelope(id_, msg),
                       /*withholdable=*/false, "echo");
  };
  hooks.send_sync_request = [this](ReplicaId to, const SSyncRequest& req) {
    funnel_.send(to, Envelope::pack(WireType::kSSyncRequest, id_, req),
                 /*withholdable=*/false);
  };
  hooks.send_sync_response = [this](ReplicaId to, const SSyncResponse& resp) {
    funnel_.send(to, Envelope::pack(WireType::kSSyncResponse, id_, resp),
                 /*withholdable=*/false);
  };
  // No commit observer (see ByzantineReplica); the auditor taps stay wired
  // so a global observer still profits from whatever this replica learns.
  hooks.on_block_seen = std::move(block_tap);
  hooks.on_vote_seen = std::move(vote_tap);

  if (dissem_.enabled) {
    hooks.make_payload = [this](std::size_t /*max_batch*/) {
      return batches_->make_payload(dissem_.max_batches_per_proposal,
                                    transport_.scheduler().now(),
                                    dissem_.repropose_after);
    };
    hooks.payload_available = [this](const types::Payload& payload) {
      if (!payload.is_digests()) return true;
      batches_->observe_reference(payload, transport_.scheduler().now());
      return batches_->missing(payload).empty();
    };
    hooks.fetch_payload = [this](const types::Payload& payload) {
      if (!payload.is_digests()) return;
      const auto missing = batches_->missing(payload);
      if (!missing.empty()) broadcaster_->want(missing);
    };
  }

  core_ = std::make_unique<StreamletCore>(config, transport.scheduler(),
                                          std::move(registry), pool_,
                                          std::move(hooks));
  if (dissem_.enabled) {
    core_->attach_batch_store(
        batches_.get(), [this](const std::vector<crypto::Sha256Digest>& m) {
          broadcaster_->want(m);
        });
  }
}

void ByzantineStreamlet::start() {
  transport_.set_handler(id_, [this](const Envelope& env,
                                     std::size_t frame_bytes) {
    ++inbound_messages_;
    inbound_bytes_ += frame_bytes;
    on_envelope(env);
  });
  if (dissem_.enabled) {
    swarm_->start();
    broadcaster_->start();
  } else {
    workload_.top_up();
    workload_.start();
  }
  core_->start();
}

void ByzantineStreamlet::stop() {
  core_->stop();
  if (dissem_.enabled) {
    broadcaster_->stop();
    swarm_->stop();
  }
  transport_.disconnect(id_);
}

void ByzantineStreamlet::restart() {
  throw std::logic_error(
      "ByzantineStreamlet::restart: Byzantine replicas do not recover");
}

void ByzantineStreamlet::on_envelope(const Envelope& env) {
  try {
    switch (env.type) {
      case WireType::kSProposal: {
        const SProposal proposal = env.unpack<SProposal>();
        if (fault_.byz.has(Strategy::AmnesiaVoter) &&
            proposal.block.round + 1 >= core_->current_round()) {
          forge_vote_for(proposal.block);
        }
        core_->on_proposal(proposal);
        break;
      }
      case WireType::kSVote:
        core_->on_vote(env.unpack<SVote>());
        break;
      case WireType::kSSyncRequest:
        core_->on_sync_request(env.unpack<SSyncRequest>());
        break;
      case WireType::kSSyncResponse:
        core_->on_sync_response(env.unpack<SSyncResponse>());
        break;
      case WireType::kBatchPush:
        if (!broadcaster_) throw CodecError("ByzantineStreamlet: dissem off");
        broadcaster_->on_push(env.unpack<dissem::BatchPush>());
        break;
      case WireType::kBatchRequest:
        if (!broadcaster_) throw CodecError("ByzantineStreamlet: dissem off");
        broadcaster_->on_request(env.unpack<dissem::BatchRequest>());
        break;
      case WireType::kBatchResponse:
        if (!broadcaster_) throw CodecError("ByzantineStreamlet: dissem off");
        broadcaster_->on_response(env.unpack<dissem::BatchResponse>());
        break;
      default:
        throw CodecError("ByzantineStreamlet: wire type not in this stack");
    }
  } catch (const CodecError&) {
    transport_.stats().record_decode_drop();
  }
}

void ByzantineStreamlet::equivocate(const SProposal& proposal) {
  SProposal twin = proposal;
  twin.block.created_at += 1;
  twin.block.seal();
  twin.sig = signer_.sign(twin.signing_bytes());

  coalition_->record_fork(proposal.block.round, proposal.block.id,
                          twin.block.id);
  ++coalition_->stats().equivocations;

  // Serialize each fork once; per-recipient sends copy the payload instead
  // of re-running the full (block-sized) canonical encode.
  const Envelope original_env = pack_proposal(id_, proposal);
  const Envelope twin_env = pack_proposal(id_, twin);
  for (ReplicaId to = 0; to < n_; ++to) {
    const bool both = coalition_->is_member(to);
    if (to == id_) {
      funnel_.send_self(original_env);
      funnel_.send_self(twin_env);
      continue;
    }
    if (both || to % 2 == 0) {
      funnel_.send(to, original_env, /*withholdable=*/true);
    }
    if (both || to % 2 != 0) {
      funnel_.send(to, twin_env, /*withholdable=*/true);
    }
  }
}

void ByzantineStreamlet::forge_vote_for(const types::Block& block) {
  if (!forged_for_.insert(block.id).second) return;  // once per block
  SVote vote;
  vote.block_id = block.id;
  vote.round = block.round;
  vote.height = block.height;
  vote.voter = id_;
  vote.marker = 0;
  vote.sig = signer_.sign(vote.signing_bytes());
  ++coalition_->stats().forged_votes;
  funnel_.send_self(pack_vote(id_, vote));
  funnel_.send_peers(pack_vote(id_, vote), /*withholdable=*/false);
}

}  // namespace sftbft::adversary
