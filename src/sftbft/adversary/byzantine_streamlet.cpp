#include "sftbft/adversary/byzantine_streamlet.hpp"

#include <stdexcept>
#include <string>
#include <variant>

namespace sftbft::adversary {

using streamlet::SMessage;
using streamlet::SProposal;
using streamlet::SSyncRequest;
using streamlet::SSyncResponse;
using streamlet::StreamletCore;
using streamlet::SVote;

ByzantineStreamlet::ByzantineStreamlet(
    streamlet::StreamletConfig config, engine::StreamletNetwork& network,
    std::shared_ptr<const crypto::KeyRegistry> registry,
    mempool::WorkloadConfig workload, Rng workload_rng,
    engine::FaultSpec fault, std::shared_ptr<Coalition> coalition,
    engine::StreamletEngine::BlockTap block_tap,
    engine::StreamletEngine::VoteTap vote_tap)
    : id_(config.id),
      n_(config.n),
      network_(network),
      fault_(std::move(fault)),
      coalition_(std::move(coalition)),
      funnel_(config.id, network, fault_, *coalition_),
      signer_(registry->signer_for(config.id)),
      workload_(network.scheduler(), pool_, workload, std::move(workload_rng)) {
  workload_.set_id_space(id_);
  coalition_->enlist(id_);

  StreamletCore::Hooks hooks;
  hooks.broadcast_proposal = [this](const SProposal& proposal) {
    if (fault_.byz.has(Strategy::EquivocatingLeader)) {
      equivocate(proposal);
      return;
    }
    funnel_.send_self("proposal", proposal.wire_size(), SMessage{proposal});
    funnel_.send_peers("proposal", proposal.wire_size(), SMessage{proposal},
                       /*withholdable=*/true);
  };
  hooks.broadcast_vote = [this](const SVote& vote) {
    SVote out = vote;
    if (fault_.byz.has(Strategy::AmnesiaVoter) && out.marker != 0) {
      out.marker = 0;  // "I never voted a conflicting fork" — a lie
      out.sig = signer_.sign(out.signing_bytes());
      ++coalition_->stats().forged_votes;
    }
    funnel_.send_self("vote", out.wire_size(), SMessage{out});
    funnel_.send_peers("vote", out.wire_size(), SMessage{out},
                       /*withholdable=*/false);
  };
  hooks.echo = [this](const SMessage& msg) {
    const std::size_t size =
        std::visit([](const auto& m) { return m.wire_size(); }, msg);
    funnel_.send_peers("echo", size, msg, /*withholdable=*/false);
  };
  hooks.send_sync_request = [this](ReplicaId to, const SSyncRequest& req) {
    funnel_.send(to, "sync_req", req.wire_size(), SMessage{req},
                 /*withholdable=*/false);
  };
  hooks.send_sync_response = [this](ReplicaId to, const SSyncResponse& resp) {
    funnel_.send(to, "sync_resp", resp.wire_size(), SMessage{resp},
                 /*withholdable=*/false);
  };
  // No commit observer (see ByzantineReplica); the auditor taps stay wired
  // so a global observer still profits from whatever this replica learns.
  hooks.on_block_seen = std::move(block_tap);
  hooks.on_vote_seen = std::move(vote_tap);

  core_ = std::make_unique<StreamletCore>(config, network.scheduler(),
                                          std::move(registry), pool_,
                                          std::move(hooks));
}

void ByzantineStreamlet::start() {
  network_.set_handler(id_, [this](ReplicaId /*from*/, const SMessage& msg,
                                   std::size_t wire_size) {
    ++inbound_messages_;
    inbound_bytes_ += wire_size;
    on_message(msg);
  });
  workload_.top_up();
  workload_.start();
  core_->start();
}

void ByzantineStreamlet::stop() {
  core_->stop();
  network_.disconnect(id_);
}

void ByzantineStreamlet::restart() {
  throw std::logic_error(
      "ByzantineStreamlet::restart: Byzantine replicas do not recover");
}

void ByzantineStreamlet::on_message(const SMessage& msg) {
  if (std::holds_alternative<SProposal>(msg)) {
    const SProposal& proposal = std::get<SProposal>(msg);
    if (fault_.byz.has(Strategy::AmnesiaVoter) &&
        proposal.block.round + 1 >= core_->current_round()) {
      forge_vote_for(proposal.block);
    }
    core_->on_proposal(proposal);
  } else if (std::holds_alternative<SVote>(msg)) {
    core_->on_vote(std::get<SVote>(msg));
  } else if (std::holds_alternative<SSyncRequest>(msg)) {
    core_->on_sync_request(std::get<SSyncRequest>(msg));
  } else {
    core_->on_sync_response(std::get<SSyncResponse>(msg));
  }
}

void ByzantineStreamlet::equivocate(const SProposal& proposal) {
  SProposal twin = proposal;
  twin.block.created_at += 1;
  twin.block.seal();
  twin.sig = signer_.sign(twin.signing_bytes());

  coalition_->record_fork(proposal.block.round, proposal.block.id,
                          twin.block.id);
  ++coalition_->stats().equivocations;

  for (ReplicaId to = 0; to < n_; ++to) {
    const bool both = coalition_->is_member(to);
    if (to == id_) {
      funnel_.send_self("proposal", proposal.wire_size(),
                        SMessage{proposal});
      funnel_.send_self("proposal", twin.wire_size(), SMessage{twin});
      continue;
    }
    if (both || to % 2 == 0) {
      funnel_.send(to, "proposal", proposal.wire_size(), SMessage{proposal},
                   /*withholdable=*/true);
    }
    if (both || to % 2 != 0) {
      funnel_.send(to, "proposal", twin.wire_size(), SMessage{twin},
                   /*withholdable=*/true);
    }
  }
}

void ByzantineStreamlet::forge_vote_for(const types::Block& block) {
  if (!forged_for_.insert(block.id).second) return;  // once per block
  SVote vote;
  vote.block_id = block.id;
  vote.round = block.round;
  vote.height = block.height;
  vote.voter = id_;
  vote.marker = 0;
  vote.sig = signer_.sign(vote.signing_bytes());
  ++coalition_->stats().forged_votes;
  funnel_.send_self("vote", vote.wire_size(), SMessage{vote});
  funnel_.send_peers("vote", vote.wire_size(), SMessage{vote},
                     /*withholdable=*/false);
}

}  // namespace sftbft::adversary
