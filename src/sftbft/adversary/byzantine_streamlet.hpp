// ByzantineStreamlet: the Streamlet-side Byzantine engine (paper Appendix
// D.4's adversary, driven by the same Strategy vocabulary as the DiemBFT
// ByzantineReplica — the adversary layer is engine-generic exactly like the
// SFT technique itself).
//
// Same construction as ByzantineReplica: a real StreamletCore keeps the
// replica synced and proposing in its leadership rounds; the Strategy
// filter corrupts its outbound behaviour:
//  * EquivocatingLeader — twin same-round proposals to disjoint subsets
//    (coalition members see both);
//  * AmnesiaVoter — height markers forged to 0, plus votes for every
//    same-round proposal including staged forks (votes are multicast in
//    Streamlet, so the forged double votes are public);
//  * WithholdRelease — proposals released withhold_delay late (in lock-step
//    Streamlet this starves the replica's own round, arriving blocks the
//    longest-chain rule no longer admits);
//  * SelectiveSender — per-peer suppression of every outbound message.
#pragma once

#include <memory>
#include <unordered_set>

#include "sftbft/adversary/coalition.hpp"
#include "sftbft/adversary/funnel.hpp"
#include "sftbft/engine/engine.hpp"
#include "sftbft/engine/streamlet_engine.hpp"
#include "sftbft/mempool/mempool.hpp"
#include "sftbft/streamlet/streamlet.hpp"

namespace sftbft::adversary {

class ByzantineStreamlet final : public engine::ConsensusEngine {
 public:
  /// `fault.kind` must be Kind::Byzantine with a validated spec; the taps
  /// (optional) feed a harness-level SafetyAuditor.
  /// `dissem.enabled` runs the data plane on the corrupted replica too —
  /// with Strategy::BatchWithholder it packs batches and serves pulls but
  /// never pushes proactively.
  ByzantineStreamlet(streamlet::StreamletConfig config,
                     net::Transport& transport,
                     std::shared_ptr<const crypto::KeyRegistry> registry,
                     mempool::WorkloadConfig workload, Rng workload_rng,
                     engine::FaultSpec fault,
                     std::shared_ptr<Coalition> coalition,
                     engine::StreamletEngine::BlockTap block_tap = nullptr,
                     engine::StreamletEngine::VoteTap vote_tap = nullptr,
                     dissem::DissemConfig dissem = {});

  [[nodiscard]] engine::Protocol protocol() const override {
    return engine::Protocol::Streamlet;
  }
  [[nodiscard]] ReplicaId id() const override { return id_; }
  void start() override;
  void stop() override;
  /// Byzantine replicas have no durable honest state to restore.
  void restart() override;
  [[nodiscard]] storage::ReplicaStore* store() override { return nullptr; }
  [[nodiscard]] const chain::Ledger& ledger() const override {
    return core_->ledger();
  }
  [[nodiscard]] Round current_round() const override {
    return core_->current_round();
  }
  [[nodiscard]] const engine::FaultSpec& fault() const override {
    return fault_;
  }
  [[nodiscard]] std::uint64_t inbound_messages() const override {
    return inbound_messages_;
  }
  [[nodiscard]] std::uint64_t inbound_bytes() const override {
    return inbound_bytes_;
  }

  [[nodiscard]] streamlet::StreamletCore& core() { return *core_; }

 private:
  void on_envelope(const net::Envelope& env);
  void equivocate(const streamlet::SProposal& proposal);
  void forge_vote_for(const types::Block& block);

  ReplicaId id_;
  std::uint32_t n_;
  net::Transport& transport_;
  engine::FaultSpec fault_;
  std::shared_ptr<Coalition> coalition_;
  /// Strategy-filtered delivery (shared with the DiemBFT engine).
  OutboundFunnel funnel_;
  crypto::Signer signer_;
  std::uint64_t inbound_messages_ = 0;
  std::uint64_t inbound_bytes_ = 0;
  mempool::Mempool pool_;
  mempool::WorkloadGenerator workload_;
  dissem::DissemConfig dissem_;
  /// Data plane (dissem_.enabled only).
  std::unique_ptr<dissem::BatchStore> batches_;
  std::unique_ptr<dissem::BatchBroadcaster> broadcaster_;
  std::unique_ptr<dissem::AdmissionFrontend> frontend_;
  std::unique_ptr<dissem::ClientSwarm> swarm_;
  std::unique_ptr<streamlet::StreamletCore> core_;
  std::unordered_set<types::BlockId> forged_for_;
};

}  // namespace sftbft::adversary
