#include "sftbft/adversary/coalition.hpp"

#include <algorithm>

namespace sftbft::adversary {

void Coalition::enlist(ReplicaId id) {
  if (!is_member(id)) members_.push_back(id);
}

bool Coalition::is_member(ReplicaId id) const {
  return std::find(members_.begin(), members_.end(), id) != members_.end();
}

void Coalition::record_fork(Round round, const types::BlockId& main,
                            const types::BlockId& twin) {
  forks_.try_emplace(round, main, twin);
}

}  // namespace sftbft::adversary
