// Coalition: the shared brain of all corrupted replicas in one deployment.
//
// The paper's adversary is a single entity controlling up to c replicas
// (Sec. 2, "the adversary corrupts..."), not c independent gamblers. The
// Coalition gives the per-replica Byzantine engines that shared identity:
//
//  * membership — who is corrupted (the auditor and benches read the ground
//    truth from here rather than re-deriving it from fault lists);
//  * fork registry — when an EquivocatingLeader stages a twin proposal it
//    records both block ids per round, so AmnesiaVoter members recognize the
//    staged forks (and the harness can introspect exactly which rounds were
//    attacked);
//  * attack accounting — equivocations staged, history-denying votes forged,
//    messages withheld/suppressed, for the bench tables.
//
// One Coalition instance is created by engine::Deployment when the fault
// list names any Byzantine replica and handed to every Byzantine engine.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sftbft/common/types.hpp"
#include "sftbft/types/vote.hpp"

namespace sftbft::adversary {

class Coalition {
 public:
  Coalition() = default;

  void enlist(ReplicaId id);
  [[nodiscard]] const std::vector<ReplicaId>& members() const {
    return members_;
  }
  [[nodiscard]] bool is_member(ReplicaId id) const;
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(members_.size());
  }

  /// The two conflicting block ids an equivocating member staged for a
  /// round. First writer wins (one fork pair per round keeps the coalition
  /// coherent when several members lead in interleaved rounds).
  void record_fork(Round round, const types::BlockId& main,
                   const types::BlockId& twin);
  [[nodiscard]] bool forked(Round round) const {
    return forks_.contains(round);
  }
  [[nodiscard]] const std::map<Round,
                               std::pair<types::BlockId, types::BlockId>>&
  forks() const {
    return forks_;
  }

  struct Stats {
    std::uint64_t equivocations = 0;    ///< twin proposals staged
    std::uint64_t forged_votes = 0;     ///< history-denying votes sent
    std::uint64_t withheld = 0;         ///< messages delayed by WithholdRelease
    std::uint64_t suppressed = 0;       ///< messages dropped by SelectiveSender
  };
  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::vector<ReplicaId> members_;
  std::map<Round, std::pair<types::BlockId, types::BlockId>> forks_;
  Stats stats_;
};

}  // namespace sftbft::adversary
