// OutboundFunnel: the strategy-filtered delivery path shared by every
// Byzantine engine. Protocol engines keep only their message *crafting*
// (twin proposals, forged votes); the delivery policy — SelectiveSender
// drops, WithholdRelease delays certificate carriers, Coalition accounting
// for both — lives here once, so a fix or a new delivery strategy lands in
// one place for both protocols.
#pragma once

#include <string>
#include <utility>

#include "sftbft/adversary/coalition.hpp"
#include "sftbft/engine/fault.hpp"
#include "sftbft/net/sim_network.hpp"

namespace sftbft::adversary {

template <typename Message>
class OutboundFunnel {
 public:
  /// `fault` and `coalition` must outlive the funnel (both are members of
  /// the owning Byzantine engine / shared deployment state).
  OutboundFunnel(ReplicaId id, net::SimNetwork<Message>& network,
                 const engine::FaultSpec& fault, Coalition& coalition)
      : id_(id), network_(network), fault_(fault), coalition_(coalition) {}

  [[nodiscard]] bool suppressed(ReplicaId to) const {
    if (!fault_.byz.has(Strategy::SelectiveSender)) return false;
    for (const ReplicaId peer : fault_.byz.suppress_to) {
      if (peer == to) return true;
    }
    return false;
  }

  /// Undelayed, unfiltered self-delivery: the replica's own core keeps
  /// seeing its own messages immediately even while withholding from peers
  /// (a withholding leader still certifies privately against its own view).
  void send_self(const char* type, std::size_t wire_size, Message msg) {
    network_.send(id_, id_, type, wire_size, std::move(msg));
  }

  /// Unicast with SelectiveSender filtering; `withholdable` messages (the
  /// carriers of fresh certificates: proposals, and timeouts leaking
  /// qc_high) are additionally delayed by WithholdRelease.
  void send(ReplicaId to, const char* type, std::size_t wire_size,
            Message msg, bool withholdable) {
    if (suppressed(to)) {
      ++coalition_.stats().suppressed;
      return;
    }
    if (withholdable && fault_.byz.has(Strategy::WithholdRelease)) {
      ++coalition_.stats().withheld;
      network_.scheduler().schedule_after(
          fault_.byz.withhold_delay,
          [this, to, type = std::string(type), wire_size,
           msg = std::move(msg)] {
            network_.send(id_, to, type, wire_size, msg);
          });
      return;
    }
    network_.send(id_, to, type, wire_size, std::move(msg));
  }

  /// Filtered fan-out to every peer except self.
  void send_peers(const char* type, std::size_t wire_size, const Message& msg,
                  bool withholdable) {
    for (ReplicaId to = 0; to < network_.topology().size(); ++to) {
      if (to == id_) continue;
      send(to, type, wire_size, msg, withholdable);
    }
  }

 private:
  ReplicaId id_;
  net::SimNetwork<Message>& network_;
  const engine::FaultSpec& fault_;
  Coalition& coalition_;
};

}  // namespace sftbft::adversary
