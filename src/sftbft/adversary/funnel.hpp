// OutboundFunnel: the strategy-filtered delivery path shared by every
// Byzantine engine. Protocol engines keep only their message *crafting*
// (twin proposals, forged votes); the delivery policy — SelectiveSender
// drops, WithholdRelease delays certificate carriers, Coalition accounting
// for both — lives here once, so a fix or a new delivery strategy lands in
// one place for both protocols. Since both stacks speak the same byte-level
// transport, the funnel is a plain class over net::Envelope, not a
// per-message-type template.
#pragma once

#include <utility>

#include "sftbft/adversary/coalition.hpp"
#include "sftbft/engine/fault.hpp"
#include "sftbft/net/transport.hpp"
#include "sftbft/sim/scheduler.hpp"

namespace sftbft::adversary {

class OutboundFunnel {
 public:
  /// `fault` and `coalition` must outlive the funnel (both are members of
  /// the owning Byzantine engine / shared deployment state).
  OutboundFunnel(ReplicaId id, net::Transport& transport,
                 const engine::FaultSpec& fault, Coalition& coalition)
      : id_(id), transport_(transport), fault_(fault), coalition_(coalition) {}

  [[nodiscard]] bool suppressed(ReplicaId to) const {
    if (!fault_.byz.has(Strategy::SelectiveSender)) return false;
    for (const ReplicaId peer : fault_.byz.suppress_to) {
      if (peer == to) return true;
    }
    return false;
  }

  /// Undelayed, unfiltered self-delivery: the replica's own core keeps
  /// seeing its own messages immediately even while withholding from peers
  /// (a withholding leader still certifies privately against its own view).
  void send_self(net::Envelope env, const char* label = nullptr) {
    transport_.send(id_, std::move(env), label);
  }

  /// Unicast with SelectiveSender filtering; `withholdable` messages (the
  /// carriers of fresh certificates: proposals, and timeouts leaking
  /// qc_high) are additionally delayed by WithholdRelease.
  void send(ReplicaId to, net::Envelope env, bool withholdable,
            const char* label = nullptr) {
    if (suppressed(to)) {
      ++coalition_.stats().suppressed;
      return;
    }
    if (withholdable && fault_.byz.has(Strategy::WithholdRelease)) {
      ++coalition_.stats().withheld;
      transport_.scheduler().schedule_after(
          fault_.byz.withhold_delay,
          [this, to, label, env = std::move(env)] {
            transport_.send(to, env, label);
          });
      return;
    }
    transport_.send(to, std::move(env), label);
  }

  /// Filtered fan-out to every peer except self. (The strategy filter is
  /// per-link, so this path sends per peer instead of using the transport's
  /// shared-frame broadcast — adversarial traffic pays its own encoding.)
  void send_peers(const net::Envelope& env, bool withholdable,
                  const char* label = nullptr) {
    for (ReplicaId to = 0; to < transport_.size(); ++to) {
      if (to == id_) continue;
      send(to, env, withholdable, label);
    }
  }

 private:
  ReplicaId id_;
  net::Transport& transport_;
  const engine::FaultSpec& fault_;
  Coalition& coalition_;
};

}  // namespace sftbft::adversary
