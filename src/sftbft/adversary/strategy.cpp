#include "sftbft/adversary/strategy.hpp"

namespace sftbft::adversary {

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::EquivocatingLeader:
      return "equivocating_leader";
    case Strategy::AmnesiaVoter:
      return "amnesia_voter";
    case Strategy::WithholdRelease:
      return "withhold_release";
    case Strategy::SelectiveSender:
      return "selective_sender";
    case Strategy::BatchWithholder:
      return "batch_withholder";
  }
  return "unknown";
}

}  // namespace sftbft::adversary
