// Programmable Byzantine strategies (paper Appendix C / Fig. 9, Sec. 4.1).
//
// The paper's whole point is that x-strong commits survive *more than f*
// active Byzantine faults — so the fault model has to be able to field
// active Byzantine replicas, not just benign crashes. A `ByzantineSpec`
// names the attack behaviours one corrupted replica runs; the adversary
// layer (sftbft::adversary) interprets it against the real engines, and a
// `Coalition` shares state across all corrupted replicas so the strategies
// compose into the paper's attacks:
//
//  * EquivocatingLeader — in its leadership rounds, the replica produces two
//    conflicting blocks for the same round (heights equal, ids distinct) and
//    shows each to a disjoint honest peer subset. This is the fork step of
//    the Fig. 9 / Appendix C counter-example and of the Sec. 2.1 "Byzantine
//    leaders can equivocate" discussion; coalition members learn both forks
//    and vote both (see AmnesiaVoter).
//  * AmnesiaVoter — the replica votes as if it had no voting history: every
//    strong-vote's marker is forged to 0 (interval votes claim the full
//    range), and it additionally votes for conflicting proposals in the same
//    round. This is exactly the "Byzantine replicas vote on both forks and
//    lie about their markers" schedule of Fig. 9 — the attack the
//    VoteHistory rule survives and the NaiveAllIndirect strawman does not.
//  * WithholdRelease — proposals (the messages that carry a freshly formed
//    QC) and timeout messages (which leak qc_high) are held back for
//    `withhold_delay` before release: the replica certifies privately and
//    releases the certificate rounds later, the private-certification step
//    of the Appendix-C fork extension.
//  * SelectiveSender — per-peer suppression: the replica sends nothing to
//    the peers in `suppress_to`, splitting the honest view without any
//    network-level partition.
//
// This header is deliberately dependency-light (plain data + common types)
// so engine::FaultSpec can embed a ByzantineSpec without layering cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "sftbft/common/types.hpp"

namespace sftbft::adversary {

enum class Strategy : std::uint8_t {
  EquivocatingLeader,  ///< conflicting same-round proposals to disjoint subsets
  AmnesiaVoter,        ///< history-denying votes (forged markers, cross-fork)
  WithholdRelease,     ///< certify privately, release the QC later
  SelectiveSender,     ///< per-peer outbound suppression
  BatchWithholder,     ///< dissemination: never push batches, only serve pulls
};

[[nodiscard]] const char* strategy_name(Strategy strategy);

/// The attack programme of one corrupted replica. Validated centrally by
/// engine::validate_faults (empty strategy lists, a WithholdRelease without
/// a delay, or a malformed suppression set are rejected at Deployment
/// construction, not discovered mid-run).
struct ByzantineSpec {
  std::vector<Strategy> strategies;

  /// WithholdRelease: how long formed certificates stay private. Must be
  /// > 0 when the strategy is present (a zero delay is a no-op attack).
  SimDuration withhold_delay = 0;

  /// SelectiveSender: peers this replica never sends to. Must be non-empty,
  /// in-range, and not contain the replica itself when the strategy is
  /// present.
  std::vector<ReplicaId> suppress_to;

  [[nodiscard]] bool has(Strategy strategy) const {
    for (const Strategy s : strategies) {
      if (s == strategy) return true;
    }
    return false;
  }

  [[nodiscard]] bool empty() const { return strategies.empty(); }

  friend bool operator==(const ByzantineSpec&, const ByzantineSpec&) = default;
};

}  // namespace sftbft::adversary
