#include "sftbft/chain/block_tree.hpp"

#include <algorithm>
#include <cassert>

namespace sftbft::chain {

BlockTree::BlockTree(Block genesis_block) {
  assert(genesis_block.round == 0 && genesis_block.height == 0);
  genesis_id_ = genesis_block.id;
  auto node = std::make_unique<Node>();
  node->block = std::move(genesis_block);
  nodes_.emplace(genesis_id_, std::move(node));
}

BlockTree BlockTree::rooted_at(Block root) {
  BlockTree tree;
  tree.nodes_.clear();
  tree.genesis_id_ = root.id;
  auto node = std::make_unique<Node>();
  node->block = std::move(root);
  tree.nodes_.emplace(tree.genesis_id_, std::move(node));
  return tree;
}

const BlockTree::Node* BlockTree::find(const BlockId& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

bool BlockTree::contains(const BlockId& id) const { return find(id) != nullptr; }

const Block* BlockTree::get(const BlockId& id) const {
  const Node* node = find(id);
  return node ? &node->block : nullptr;
}

std::size_t BlockTree::orphan_count() const {
  std::size_t count = 0;
  for (const auto& [parent, blocks] : orphans_) count += blocks.size();
  return count;
}

BlockTree::InsertResult BlockTree::insert(const Block& block) {
  if (contains(block.id)) return InsertResult::Duplicate;
  auto parent_it = nodes_.find(block.parent_id);
  if (parent_it == nodes_.end()) {
    orphans_[block.parent_id].push_back(block);
    return InsertResult::Orphaned;
  }
  return link(block, parent_it->second.get());
}

BlockTree::InsertResult BlockTree::link(const Block& block, Node* parent) {
  // Structural checks: heights chain by one, rounds strictly increase.
  if (block.height != parent->block.height + 1 ||
      block.round <= parent->block.round) {
    return InsertResult::Rejected;
  }
  auto node = std::make_unique<Node>();
  node->block = block;
  node->parent = parent;
  Node* raw = node.get();
  nodes_.emplace(block.id, std::move(node));
  parent->children.push_back(raw);
  adopt_orphans_of(block.id);
  return InsertResult::Inserted;
}

void BlockTree::adopt_orphans_of(const BlockId& parent_id) {
  auto it = orphans_.find(parent_id);
  if (it == orphans_.end()) return;
  const std::vector<Block> waiting = std::move(it->second);
  orphans_.erase(it);
  Node* parent = nodes_.at(parent_id).get();
  for (const Block& block : waiting) {
    if (!contains(block.id)) link(block, parent);
  }
}

bool BlockTree::extends(const BlockId& descendant,
                        const BlockId& ancestor) const {
  const Node* down = find(descendant);
  const Node* up = find(ancestor);
  if (!down || !up) return false;
  // Walk from the deeper node upward to the ancestor's height.
  while (down && down->block.height > up->block.height) down = down->parent;
  return down == up;
}

bool BlockTree::conflicts(const BlockId& a, const BlockId& b) const {
  if (!contains(a) || !contains(b)) return false;
  return !extends(a, b) && !extends(b, a);
}

const Block& BlockTree::common_ancestor(const BlockId& a,
                                        const BlockId& b) const {
  const Node* na = find(a);
  const Node* nb = find(b);
  assert(na && nb);
  while (na->block.height > nb->block.height) na = na->parent;
  while (nb->block.height > na->block.height) nb = nb->parent;
  while (na != nb) {
    na = na->parent;
    nb = nb->parent;
    assert(na && nb);
  }
  return na->block;
}

const Block* BlockTree::parent_of(const BlockId& id) const {
  const Node* node = find(id);
  return (node && node->parent) ? &node->parent->block : nullptr;
}

std::vector<const Block*> BlockTree::children_of(const BlockId& id) const {
  std::vector<const Block*> out;
  if (const Node* node = find(id)) {
    out.reserve(node->children.size());
    for (const Node* child : node->children) out.push_back(&child->block);
  }
  return out;
}

std::vector<const Block*> BlockTree::path(const BlockId& ancestor,
                                          const BlockId& descendant) const {
  std::vector<const Block*> out;
  const Node* down = find(descendant);
  const Node* up = find(ancestor);
  if (!down || !up) return out;
  while (down && down != up) {
    out.push_back(&down->block);
    down = down->parent;
  }
  if (down != up) return {};  // not on one chain
  std::reverse(out.begin(), out.end());
  return out;
}

std::optional<std::pair<const Block*, const Block*>>
BlockTree::three_chain_from(const BlockId& id) const {
  const Node* node = find(id);
  if (!node) return std::nullopt;
  for (const Node* c1 : node->children) {
    if (c1->block.round != node->block.round + 1) continue;
    for (const Node* c2 : c1->children) {
      if (c2->block.round == c1->block.round + 1) {
        return std::make_pair(&c1->block, &c2->block);
      }
    }
  }
  return std::nullopt;
}

std::vector<const Block*> BlockTree::all_blocks() const {
  std::vector<const Block*> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(&node->block);
  return out;
}

}  // namespace sftbft::chain
