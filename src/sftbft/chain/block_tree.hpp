// The block tree: every certified-or-proposed block a replica knows,
// organized by parent links (paper Sec. 2.1 "Block Chaining").
//
// Byzantine leaders can equivocate, so the structure is a tree rooted at
// genesis, not a list. The tree answers the queries the SFT layer needs
// constantly: ancestor/conflict tests, common ancestors (for interval
// computation, Sec. 3.4), and 3-chain detection (commit rules). Blocks whose
// parent has not arrived yet are buffered in an orphan pool and linked in
// when the parent shows up.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sftbft/types/block.hpp"

namespace sftbft::chain {

using types::Block;
using types::BlockId;

class BlockTree {
 public:
  /// Creates a tree holding only `genesis_block` (round 0, height 0).
  explicit BlockTree(Block genesis_block = Block::genesis());

  /// Crash recovery: a tree rooted at an arbitrary *trusted* block (the
  /// persisted snapshot tip). Blocks below the root are pruned — their
  /// commits are final in the restored ledger and never revisited; blocks
  /// above it arrive via peer sync and chain off the root as usual.
  [[nodiscard]] static BlockTree rooted_at(Block root);

  enum class InsertResult {
    Inserted,   ///< linked into the tree
    Duplicate,  ///< already present (no-op)
    Orphaned,   ///< parent unknown; buffered until the parent arrives
    Rejected,   ///< structurally invalid (bad height/round vs parent)
  };

  /// Inserts a block. May recursively adopt buffered orphans.
  InsertResult insert(const Block& block);

  [[nodiscard]] bool contains(const BlockId& id) const;
  [[nodiscard]] const Block* get(const BlockId& id) const;
  /// The tree's root: the genesis block normally, the snapshot tip after a
  /// rooted_at() restore.
  [[nodiscard]] const Block& genesis() const { return nodes_.at(genesis_id_)->block; }
  [[nodiscard]] const BlockId& genesis_id() const { return genesis_id_; }

  /// Number of linked (non-orphan) blocks, including genesis.
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::size_t orphan_count() const;

  /// True iff `ancestor` is an ancestor of `descendant` or the same block.
  /// False if either id is unknown.
  [[nodiscard]] bool extends(const BlockId& descendant,
                             const BlockId& ancestor) const;

  /// True iff both blocks are known and neither extends the other
  /// (paper Sec. 2.1: "conflicting").
  [[nodiscard]] bool conflicts(const BlockId& a, const BlockId& b) const;

  /// Deepest common ancestor of two known blocks (exists: genesis roots all).
  [[nodiscard]] const Block& common_ancestor(const BlockId& a,
                                             const BlockId& b) const;

  /// Parent block, or nullptr for genesis/unknown.
  [[nodiscard]] const Block* parent_of(const BlockId& id) const;

  /// Children of a block (possibly several under equivocation).
  [[nodiscard]] std::vector<const Block*> children_of(const BlockId& id) const;

  /// Blocks on the path from (excluding) `ancestor` to (including)
  /// `descendant`, oldest first. Empty when not on one chain.
  [[nodiscard]] std::vector<const Block*> path(const BlockId& ancestor,
                                               const BlockId& descendant) const;

  /// DiemBFT 3-chain test: returns the two successors (B_{k+1}, B_{k+2}) if
  /// the tree holds a chain block -> c1 -> c2 with consecutive rounds
  /// starting at `id` (Fig. 2 commit rule). Otherwise nullopt.
  [[nodiscard]] std::optional<std::pair<const Block*, const Block*>>
  three_chain_from(const BlockId& id) const;

  /// All blocks, unordered (iteration helper for audits/tests).
  [[nodiscard]] std::vector<const Block*> all_blocks() const;

 private:
  struct Node {
    Block block;
    Node* parent = nullptr;  // null only for genesis
    std::vector<Node*> children;
  };

  [[nodiscard]] const Node* find(const BlockId& id) const;
  InsertResult link(const Block& block, Node* parent);
  void adopt_orphans_of(const BlockId& parent_id);

  BlockId genesis_id_;
  std::unordered_map<BlockId, std::unique_ptr<Node>> nodes_;
  /// parent id -> blocks waiting for that parent.
  std::unordered_map<BlockId, std::vector<Block>> orphans_;
};

}  // namespace sftbft::chain
