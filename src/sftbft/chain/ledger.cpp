#include "sftbft/chain/ledger.hpp"

#include <cassert>

namespace sftbft::chain {

Ledger::CommitResult Ledger::commit(const types::Block& block,
                                    std::uint32_t strength, SimTime now) {
  if (block.height == 0) return CommitResult::NoChange;  // genesis implicit
  if (entries_.size() <= block.height) entries_.resize(block.height + 1);

  std::optional<Entry>& slot = entries_[block.height];
  if (!slot) {
    slot = Entry{.block_id = block.id,
                 .round = block.round,
                 .height = block.height,
                 .strength = strength,
                 .created_at = block.created_at,
                 .first_committed_at = now,
                 .last_strength_update_at = now,
                 .txn_count = block.payload.txns.size()};
    ++committed_count_;
    committed_txns_ += block.payload.txns.size();
    return CommitResult::New;
  }
  if (slot->block_id != block.id) {
    throw LedgerConflict("conflicting commit at height " +
                         std::to_string(block.height));
  }
  if (strength > slot->strength) {
    slot->strength = strength;
    slot->last_strength_update_at = now;
    return CommitResult::Raised;
  }
  return CommitResult::NoChange;
}

const Ledger::Entry& Ledger::at(Height height) const {
  assert(is_committed(height));
  return *entries_[height];
}

std::optional<Height> Ledger::tip() const {
  for (Height h = entries_.size(); h > 0; --h) {
    if (entries_[h - 1].has_value()) return h - 1;
  }
  return std::nullopt;
}

std::vector<Ledger::Entry> Ledger::snapshot() const {
  std::vector<Entry> out;
  out.reserve(committed_count_);
  for (const auto& slot : entries_) {
    if (slot) out.push_back(*slot);
  }
  return out;
}

}  // namespace sftbft::chain
