#include "sftbft/chain/ledger.hpp"

#include <algorithm>
#include <cassert>

namespace sftbft::chain {

Ledger::CommitResult Ledger::commit(const types::Block& block,
                                    std::uint32_t strength, SimTime now) {
  if (block.height == 0) return CommitResult::NoChange;  // genesis implicit
  if (entries_.size() <= block.height) entries_.resize(block.height + 1);

  std::optional<Entry>& slot = entries_[block.height];
  if (!slot) {
    slot = Entry{.block_id = block.id,
                 .round = block.round,
                 .height = block.height,
                 .strength = strength,
                 .created_at = block.created_at,
                 .first_committed_at = now,
                 .last_strength_update_at = now,
                 .txn_count = block.payload.txns.size()};
    ++committed_count_;
    committed_txns_ += block.payload.txns.size();
    return CommitResult::New;
  }
  if (slot->block_id != block.id) {
    throw LedgerConflict("conflicting commit at height " +
                         std::to_string(block.height));
  }
  if (strength > slot->strength) {
    slot->strength = strength;
    slot->last_strength_update_at = now;
    return CommitResult::Raised;
  }
  return CommitResult::NoChange;
}

const Ledger::Entry& Ledger::at(Height height) const {
  assert(is_committed(height));
  return *entries_[height];
}

std::optional<Height> Ledger::tip() const {
  for (Height h = entries_.size(); h > 0; --h) {
    if (entries_[h - 1].has_value()) return h - 1;
  }
  return std::nullopt;
}

std::vector<Ledger::Entry> Ledger::snapshot() const {
  std::vector<Entry> out;
  out.reserve(committed_count_);
  for (const auto& slot : entries_) {
    if (slot) out.push_back(*slot);
  }
  return out;
}

void Ledger::restore(const std::vector<Entry>& entries) {
  entries_.clear();
  committed_count_ = 0;
  committed_txns_ = 0;
  for (const Entry& entry : entries) {
    if (entry.height == 0) continue;
    if (entries_.size() <= entry.height) entries_.resize(entry.height + 1);
    std::optional<Entry>& slot = entries_[entry.height];
    if (slot) {
      if (slot->block_id != entry.block_id) {
        throw LedgerConflict("conflicting entries in restored snapshot at "
                             "height " + std::to_string(entry.height));
      }
      continue;
    }
    slot = entry;
    ++committed_count_;
    committed_txns_ += entry.txn_count;
  }
}

void Ledger::Entry::encode(Encoder& enc) const {
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.u64(height);
  enc.u32(strength);
  enc.i64(created_at);
  enc.i64(first_committed_at);
  enc.i64(last_strength_update_at);
  enc.u64(txn_count);
}

Ledger::Entry Ledger::Entry::decode(Decoder& dec) {
  Entry entry;
  const Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), entry.block_id.bytes.begin());
  entry.round = dec.u64();
  entry.height = dec.u64();
  entry.strength = dec.u32();
  entry.created_at = dec.i64();
  entry.first_committed_at = dec.i64();
  entry.last_strength_update_at = dec.i64();
  entry.txn_count = dec.u64();
  return entry;
}

}  // namespace sftbft::chain
