// The committed ledger of one replica.
//
// Tracks, per height, the committed block and the strongest commit level it
// has reached so far. Strength only ratchets upward (a block that is
// x-strong committed stays x-strong; later strong-QCs can raise it toward
// 2f). The ledger refuses conflicting commits at one height — inside a
// single honest replica that would be a protocol bug, and the tests lean on
// this check.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/types/block.hpp"

namespace sftbft::chain {

/// Raised when the protocol tries to commit conflicting blocks at one
/// height within a single replica — always a bug, never expected.
class LedgerConflict : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

class Ledger {
 public:
  struct Entry {
    types::BlockId block_id{};
    Round round = 0;
    Height height = 0;
    /// Highest strength x such that the block is x-strong committed here.
    std::uint32_t strength = 0;
    SimTime created_at = 0;                  ///< proposer-side creation time
    SimTime first_committed_at = 0;          ///< regular (f-strong) commit
    SimTime last_strength_update_at = 0;
    std::uint64_t txn_count = 0;

    /// Canonical codec (storage snapshots persist entries verbatim).
    void encode(Encoder& enc) const;
    static Entry decode(Decoder& dec);

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  enum class CommitResult {
    New,       ///< first commit of this height
    Raised,    ///< strength ratcheted upward
    NoChange,  ///< already committed at >= strength
  };

  /// Records that `block` is committed with tolerance `strength` at `now`.
  /// Re-commits with higher strength ratchet the level; lower are no-ops.
  /// Throws LedgerConflict on a different block at an occupied height.
  CommitResult commit(const types::Block& block, std::uint32_t strength,
                      SimTime now);

  [[nodiscard]] bool is_committed(Height height) const {
    return height < entries_.size() && entries_[height].has_value();
  }

  /// Entry at `height` (must be committed).
  [[nodiscard]] const Entry& at(Height height) const;

  /// Highest committed height, or nullopt when only genesis exists.
  [[nodiscard]] std::optional<Height> tip() const;

  /// Number of committed blocks (genesis excluded).
  [[nodiscard]] std::uint64_t committed_blocks() const { return committed_count_; }

  /// Total transactions across committed blocks.
  [[nodiscard]] std::uint64_t committed_txns() const { return committed_txns_; }

  /// Every committed entry in height order (gaps impossible by construction:
  /// commits apply to a block and all its ancestors).
  [[nodiscard]] std::vector<Entry> snapshot() const;

  /// Crash recovery: repopulates the ledger from a persisted snapshot().
  /// Replaces all current state; commit times and strengths are preserved
  /// verbatim (the committed prefix is final — it is never re-derived).
  void restore(const std::vector<Entry>& entries);

 private:
  // Height-indexed; index 0 (genesis) stays empty.
  std::vector<std::optional<Entry>> entries_;
  std::uint64_t committed_count_ = 0;
  std::uint64_t committed_txns_ = 0;
};

}  // namespace sftbft::chain
