// Byte-buffer utilities used by serialization, hashing and signatures.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sftbft {

/// Owned byte buffer. All wire messages and digests are carried as Bytes.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over bytes (for hashing / verification inputs).
using BytesView = std::span<const std::uint8_t>;

/// Renders a byte buffer as lowercase hex ("deadbeef").
std::string to_hex(BytesView data);

/// Parses lowercase/uppercase hex into bytes. Throws std::invalid_argument on
/// malformed input (odd length or non-hex characters).
Bytes from_hex(const std::string& hex);

/// Constant-time byte-equality (avoids early exit on mismatch; the simulation
/// does not need timing resistance, but the crypto substrate keeps the same
/// contract a production implementation would have).
bool ct_equal(BytesView a, BytesView b);

}  // namespace sftbft
