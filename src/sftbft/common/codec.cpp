#include "sftbft/common/codec.hpp"

#include <limits>

namespace sftbft {

void Encoder::put_le(std::uint64_t v, int width) {
  for (int i = 0; i < width; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::bytes(BytesView data) {
  if (data.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw CodecError("Encoder::bytes: buffer too large");
  }
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void Encoder::str(const std::string& s) {
  bytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Encoder::raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Decoder::need(std::size_t count) const {
  if (pos_ + count > data_.size()) {
    throw CodecError("Decoder: truncated input");
  }
}

std::uint64_t Decoder::get_le(int width) {
  need(static_cast<std::size_t>(width));
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += static_cast<std::size_t>(width);
  return v;
}

std::uint8_t Decoder::u8() { return static_cast<std::uint8_t>(get_le(1)); }
std::uint16_t Decoder::u16() { return static_cast<std::uint16_t>(get_le(2)); }
std::uint32_t Decoder::u32() { return static_cast<std::uint32_t>(get_le(4)); }
std::uint64_t Decoder::u64() { return get_le(8); }
std::int64_t Decoder::i64() { return static_cast<std::int64_t>(get_le(8)); }

bool Decoder::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw CodecError("Decoder::boolean: invalid value");
  return v == 1;
}

Bytes Decoder::bytes() {
  const std::uint32_t len = u32();
  return raw(len);
}

std::string Decoder::str() {
  const Bytes b = bytes();
  return {b.begin(), b.end()};
}

Bytes Decoder::raw(std::size_t size) {
  need(size);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + size));
  pos_ += size;
  return out;
}

void Decoder::skip(std::size_t size) {
  need(size);
  pos_ += size;
}

std::uint32_t Decoder::count(std::size_t min_element_bytes) {
  const std::uint32_t c = u32();
  if (min_element_bytes > 0 &&
      static_cast<std::uint64_t>(c) * min_element_bytes > remaining()) {
    throw CodecError("Decoder: element count exceeds remaining input");
  }
  return c;
}

}  // namespace sftbft
