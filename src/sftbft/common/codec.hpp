// Canonical binary codec.
//
// Every protocol message has a single canonical encoding (fixed-width
// little-endian integers, length-prefixed containers). Signing and hashing
// operate on these canonical bytes, so two structurally equal messages always
// produce identical digests — a property several tests rely on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sftbft/common/bytes.hpp"

namespace sftbft {

/// Thrown by Decoder on truncated or malformed input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian values to an owned buffer.
class Encoder {
 public:
  Encoder() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v), 8); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) raw bytes.
  void bytes(BytesView data);

  /// Length-prefixed (u32) UTF-8 string.
  void str(const std::string& s);

  /// Raw bytes with no length prefix (for fixed-size digests/signatures).
  void raw(BytesView data);

  /// Pre-reserves capacity for `additional` more bytes. Message-sized
  /// encodes (envelope framing, block payloads) call this with their exact
  /// size so the hot broadcast path appends without reallocating — see
  /// bench/micro_overhead.cpp for the before/after.
  void reserve(std::size_t additional) { buf_.reserve(buf_.size() + additional); }

  /// Appends `count` uninitialized bytes and returns a pointer to them, so
  /// generated content (synthetic transaction bodies) can be written in
  /// place instead of staged in a temporary buffer. The pointer is valid
  /// until the next append.
  [[nodiscard]] std::uint8_t* grow(std::size_t count) {
    buf_.resize(buf_.size() + count);
    return buf_.data() + (buf_.size() - count);
  }

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }

 private:
  void put_le(std::uint64_t v, int width);

  Bytes buf_;
};

/// Reads values back in the order they were encoded; bounds-checked.
class Decoder {
 public:
  explicit Decoder(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  bool boolean();
  Bytes bytes();
  std::string str();
  /// Reads exactly `size` raw bytes (no length prefix).
  Bytes raw(std::size_t size);
  /// Skips `size` bytes (bounds-checked) without materializing them — used
  /// for derived content (transaction bodies) that re-encoding regenerates.
  void skip(std::size_t size);

  /// Reads a u32 element count and rejects counts that could not possibly
  /// fit in the remaining input (each element encodes to at least
  /// `min_element_bytes`). Decoders of untrusted bytes use this before
  /// `reserve(count)` so a garbage count cannot force a huge allocation.
  std::uint32_t count(std::size_t min_element_bytes);

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::uint64_t get_le(int width);
  void need(std::size_t count) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace sftbft
