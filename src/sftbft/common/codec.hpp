// Canonical binary codec.
//
// Every protocol message has a single canonical encoding (fixed-width
// little-endian integers, length-prefixed containers). Signing and hashing
// operate on these canonical bytes, so two structurally equal messages always
// produce identical digests — a property several tests rely on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sftbft/common/bytes.hpp"

namespace sftbft {

/// Thrown by Decoder on truncated or malformed input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian values to an owned buffer.
class Encoder {
 public:
  Encoder() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v), 8); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) raw bytes.
  void bytes(BytesView data);

  /// Length-prefixed (u32) UTF-8 string.
  void str(const std::string& s);

  /// Raw bytes with no length prefix (for fixed-size digests/signatures).
  void raw(BytesView data);

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }

 private:
  void put_le(std::uint64_t v, int width);

  Bytes buf_;
};

/// Reads values back in the order they were encoded; bounds-checked.
class Decoder {
 public:
  explicit Decoder(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  bool boolean();
  Bytes bytes();
  std::string str();
  /// Reads exactly `size` raw bytes (no length prefix).
  Bytes raw(std::size_t size);

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::uint64_t get_le(int width);
  void need(std::size_t count) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace sftbft
