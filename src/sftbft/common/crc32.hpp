// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// One implementation shared by every integrity frame in the system: the
// storage WAL's record framing and the network transport's Envelope framing
// both checksum with this function, so a frame written by one layer is
// checkable with the same primitive everywhere.
#pragma once

#include <cstdint>

#include "sftbft/common/bytes.hpp"

namespace sftbft {

[[nodiscard]] std::uint32_t crc32(BytesView data);

}  // namespace sftbft
