#include "sftbft/common/interval_set.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sftbft {

IntervalSet IntervalSet::single(Round lo, Round hi) {
  IntervalSet s;
  if (lo <= hi) s.intervals_.push_back({lo, hi});
  return s;
}

void IntervalSet::add(Round lo, Round hi) {
  if (lo > hi) return;
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  bool placed = false;
  for (const Interval& iv : intervals_) {
    // iv entirely before the new interval (not even adjacent).
    if (iv.hi + 1 < lo && iv.hi != std::numeric_limits<Round>::max()) {
      out.push_back(iv);
      continue;
    }
    // iv entirely after the new interval (not adjacent).
    if (hi != std::numeric_limits<Round>::max() && hi + 1 < iv.lo) {
      if (!placed) {
        out.push_back({lo, hi});
        placed = true;
      }
      out.push_back(iv);
      continue;
    }
    // Overlapping or adjacent: absorb into [lo, hi].
    lo = std::min(lo, iv.lo);
    hi = std::max(hi, iv.hi);
  }
  if (!placed) out.push_back({lo, hi});
  intervals_ = std::move(out);
}

void IntervalSet::subtract(Round lo, Round hi) {
  if (lo > hi) return;
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const Interval& iv : intervals_) {
    if (iv.hi < lo || iv.lo > hi) {  // disjoint
      out.push_back(iv);
      continue;
    }
    if (iv.lo < lo) out.push_back({iv.lo, lo - 1});  // left remainder
    if (iv.hi > hi) out.push_back({hi + 1, iv.hi});  // right remainder
  }
  intervals_ = std::move(out);
}

void IntervalSet::subtract(const IntervalSet& other) {
  for (const Interval& iv : other.intervals_) subtract(iv.lo, iv.hi);
}

void IntervalSet::clamp(Round lo, Round hi) {
  if (lo > hi) {
    intervals_.clear();
    return;
  }
  if (lo > 0) subtract(0, lo - 1);
  if (hi < std::numeric_limits<Round>::max()) {
    subtract(hi + 1, std::numeric_limits<Round>::max());
  }
}

bool IntervalSet::contains(Round x) const {
  // First interval with lo > x; the candidate is its predecessor.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), x,
      [](Round v, const Interval& iv) { return v < iv.lo; });
  if (it == intervals_.begin()) return false;
  --it;
  return x <= it->hi;
}

std::uint64_t IntervalSet::cardinality() const {
  std::uint64_t total = 0;
  for (const Interval& iv : intervals_) total += iv.hi - iv.lo + 1;
  return total;
}

Round IntervalSet::min() const {
  assert(!intervals_.empty());
  return intervals_.front().lo;
}

Round IntervalSet::max() const {
  assert(!intervals_.empty());
  return intervals_.back().hi;
}

void IntervalSet::encode(Encoder& enc) const {
  enc.u32(static_cast<std::uint32_t>(intervals_.size()));
  for (const Interval& iv : intervals_) {
    enc.u64(iv.lo);
    enc.u64(iv.hi);
  }
}

IntervalSet IntervalSet::decode(Decoder& dec) {
  const std::uint32_t count = dec.u32();
  IntervalSet s;
  Round prev_hi = 0;
  bool first = true;
  for (std::uint32_t i = 0; i < count; ++i) {
    const Round lo = dec.u64();
    const Round hi = dec.u64();
    if (lo > hi) throw CodecError("IntervalSet: inverted interval");
    if (!first && lo <= prev_hi + 1) {
      throw CodecError("IntervalSet: unsorted or overlapping intervals");
    }
    s.intervals_.push_back({lo, hi});
    prev_hi = hi;
    first = false;
  }
  return s;
}

std::string IntervalSet::to_string() const {
  std::string out;
  for (const Interval& iv : intervals_) {
    if (!out.empty()) out += ' ';
    out += '[' + std::to_string(iv.lo) + ',' + std::to_string(iv.hi) + ']';
  }
  if (out.empty()) out = "(empty)";
  return out;
}

}  // namespace sftbft
