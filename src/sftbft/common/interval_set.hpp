// Sorted disjoint closed-interval set over round numbers.
//
// Section 3.4 of the paper generalizes the strong-vote: instead of a single
// `marker`, a vote carries a set of round-number intervals I that it endorses.
// I is computed as [1, r] \ (∪_F D_F) where each fork F the voter ever voted
// on contributes a "do not endorse" interval D_F = [r_l + 1, r_h]. This class
// provides the algebra needed for that computation and for endorsement
// checks, plus canonical serialization so interval votes can be signed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"

namespace sftbft {

/// Closed interval [lo, hi] of round numbers. Invariant: lo <= hi.
struct Interval {
  Round lo = 0;
  Round hi = 0;

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A set of round numbers represented as sorted, disjoint, non-adjacent
/// closed intervals. Adjacent intervals ([1,3] and [4,6]) are merged.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Builds the set containing the single interval [lo, hi]; empty if lo > hi.
  static IntervalSet single(Round lo, Round hi);

  /// Inserts [lo, hi], merging with any overlapping/adjacent intervals.
  void add(Round lo, Round hi);

  /// Removes [lo, hi] from the set (splitting intervals as needed).
  void subtract(Round lo, Round hi);

  /// Removes every round of `other` from this set.
  void subtract(const IntervalSet& other);

  /// Keeps only rounds within [lo, hi] (the Sec. 3.4 "last n rounds" window).
  void clamp(Round lo, Round hi);

  /// True iff round x is a member.
  [[nodiscard]] bool contains(Round x) const;

  /// True iff no rounds are members.
  [[nodiscard]] bool empty() const { return intervals_.empty(); }

  /// Number of disjoint intervals (the wire size driver; the paper notes at
  /// most t intervals are needed under synchrony with t actual faults).
  [[nodiscard]] std::size_t interval_count() const { return intervals_.size(); }

  /// Total number of rounds covered.
  [[nodiscard]] std::uint64_t cardinality() const;

  [[nodiscard]] const std::vector<Interval>& intervals() const {
    return intervals_;
  }

  /// Smallest / largest member. Precondition: !empty().
  [[nodiscard]] Round min() const;
  [[nodiscard]] Round max() const;

  void encode(Encoder& enc) const;
  static IntervalSet decode(Decoder& dec);

  /// Renders as "[1,4] [7,9]" for debugging.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  std::vector<Interval> intervals_;  // sorted by lo; disjoint; non-adjacent
};

}  // namespace sftbft
