#include "sftbft/common/logging.hpp"

namespace sftbft::log {

namespace {
Level g_level = Level::Warn;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

Level level() { return g_level; }
void set_level(Level lvl) { g_level = lvl; }
bool enabled(Level lvl) { return lvl >= g_level && g_level != Level::Off; }

namespace detail {
void emit(Level lvl, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
}
}  // namespace detail

}  // namespace sftbft::log
