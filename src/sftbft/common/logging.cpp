#include "sftbft/common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace sftbft::log {

namespace {
// Thread-safe: bench sweeps run independent scenarios on a thread pool
// (bench_util --jobs), and the logger is the only process-global state the
// library touches. The level is a relaxed atomic (a torn read of an enum
// would be UB; ordering between threads does not matter), and emission
// serializes on a mutex so concurrent warnings never interleave mid-line.
std::atomic<Level> g_level{Level::Warn};
std::mutex g_emit_mutex;

// The current log context (sim time + replica id), thread-local so
// concurrent bench scenarios never see each other's replicas.
struct Context {
  bool active = false;
  SimTime now = 0;
  ReplicaId id = 0;
};
thread_local Context t_context;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

Level level() { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }
bool enabled(Level lvl) {
  const Level current = level();
  return lvl >= current && current != Level::Off;
}

Scope::Scope(SimTime now, ReplicaId id)
    : prev_active_(t_context.active),
      prev_now_(t_context.now),
      prev_id_(t_context.id) {
  t_context = {true, now, id};
}

Scope::~Scope() { t_context = {prev_active_, prev_now_, prev_id_}; }

namespace detail {

void vlogf(Level lvl, const char* fmt, std::va_list args) {
  if (!enabled(lvl)) return;
  char buf[1024];
  const int written = std::vsnprintf(buf, sizeof(buf), fmt, args);
  if (written < 0) return;  // encoding error; nothing sensible to emit
  if (static_cast<std::size_t>(written) >= sizeof(buf)) {
    // Truncated: make it visible instead of silently losing the tail.
    static constexpr char kMarker[] = "...[truncated]";
    std::memcpy(buf + sizeof(buf) - sizeof(kMarker), kMarker, sizeof(kMarker));
  }
  const Context ctx = t_context;  // copy: emission must not race the scope
  const std::scoped_lock lock(g_emit_mutex);
  if (ctx.active) {
    std::fprintf(stderr, "[%s] [%.6fs r%u] %s\n", level_name(lvl),
                 static_cast<double>(ctx.now) / 1e6, ctx.id, buf);
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(lvl), buf);
  }
}

}  // namespace detail

#define SFTBFT_DEFINE_LOG_FN(fn, lvl)            \
  void fn(const char* fmt, ...) {                \
    if (!enabled(lvl)) return;                   \
    std::va_list args;                           \
    va_start(args, fmt);                         \
    detail::vlogf(lvl, fmt, args);               \
    va_end(args);                                \
  }

SFTBFT_DEFINE_LOG_FN(trace, Level::Trace)
SFTBFT_DEFINE_LOG_FN(debug, Level::Debug)
SFTBFT_DEFINE_LOG_FN(info, Level::Info)
SFTBFT_DEFINE_LOG_FN(warn, Level::Warn)

#undef SFTBFT_DEFINE_LOG_FN

}  // namespace sftbft::log
