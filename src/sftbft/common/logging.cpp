#include "sftbft/common/logging.hpp"

#include <atomic>
#include <mutex>

namespace sftbft::log {

namespace {
// Thread-safe: bench sweeps run independent scenarios on a thread pool
// (bench_util --jobs), and the logger is the only process-global state the
// library touches. The level is a relaxed atomic (a torn read of an enum
// would be UB; ordering between threads does not matter), and emission
// serializes on a mutex so concurrent warnings never interleave mid-line.
std::atomic<Level> g_level{Level::Warn};
std::mutex g_emit_mutex;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

Level level() { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }
bool enabled(Level lvl) {
  const Level current = level();
  return lvl >= current && current != Level::Off;
}

namespace detail {
void emit(Level lvl, const std::string& msg) {
  const std::scoped_lock lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
}
}  // namespace detail

}  // namespace sftbft::log
