// Minimal leveled logger.
//
// Each simulation is single-threaded, but bench sweeps run independent
// scenarios concurrently (bench_util --jobs), so the logger — the one
// process-global the library touches — is thread-safe: atomic level,
// mutex-serialized emission. Logging defaults to Warn so tests and benches
// stay quiet; examples turn it up to show protocol progress.
//
// Context: replica code runs inside a log::Scope (installed at envelope
// handlers and timer entry points), which prefixes every line emitted on
// that thread with the current sim time and replica id —
//   [WARN ] [12.345678s r7] cannot propose in round 42, parent missing
// — so interleaved multi-replica output stays attributable. The scope is
// thread-local (concurrent bench scenarios each carry their own), RAII, and
// nestable (an inner handler shadows, then restores, the outer context).
//
// Format safety: the logging functions carry the compiler's printf
// format attribute, so a mismatched format string / argument list is a
// compile-time diagnostic (-Wformat is on by default in GCC/Clang), and
// messages that overflow the formatting buffer are truncated with an
// explicit "...[truncated]" marker instead of silently losing the tail.
#pragma once

#include <cstdarg>

#include "sftbft/common/types.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define SFTBFT_PRINTF(fmt_index, first_arg) \
  __attribute__((format(printf, fmt_index, first_arg)))
#else
#define SFTBFT_PRINTF(fmt_index, first_arg)
#endif

namespace sftbft::log {

enum class Level { Trace = 0, Debug = 1, Info = 2, Warn = 3, Off = 4 };

/// Gets/sets the global log threshold.
Level level();
void set_level(Level level);

/// True when `lvl` would be emitted.
bool enabled(Level lvl);

/// RAII sim-time + replica-id context for log lines (thread-local; nests).
class Scope {
 public:
  Scope(SimTime now, ReplicaId id);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  bool prev_active_;
  SimTime prev_now_;
  ReplicaId prev_id_;
};

namespace detail {
void vlogf(Level lvl, const char* fmt, std::va_list args);
}  // namespace detail

void trace(const char* fmt, ...) SFTBFT_PRINTF(1, 2);
void debug(const char* fmt, ...) SFTBFT_PRINTF(1, 2);
void info(const char* fmt, ...) SFTBFT_PRINTF(1, 2);
void warn(const char* fmt, ...) SFTBFT_PRINTF(1, 2);

}  // namespace sftbft::log
