// Minimal leveled logger.
//
// Each simulation is single-threaded, but bench sweeps run independent
// scenarios concurrently (bench_util --jobs), so the logger — the one
// process-global the library touches — is thread-safe: atomic level,
// mutex-serialized emission. Logging defaults to Warn so tests and benches
// stay quiet; examples turn it up to show protocol progress.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace sftbft::log {

enum class Level { Trace = 0, Debug = 1, Info = 2, Warn = 3, Off = 4 };

/// Gets/sets the global log threshold.
Level level();
void set_level(Level level);

/// True when `lvl` would be emitted.
bool enabled(Level lvl);

namespace detail {
void emit(Level lvl, const std::string& msg);

template <typename... Args>
void logf(Level lvl, const char* fmt, Args&&... args) {
  if (!enabled(lvl)) return;
  char buf[1024];
  std::snprintf(buf, sizeof(buf), fmt, std::forward<Args>(args)...);
  emit(lvl, buf);
}
}  // namespace detail

template <typename... Args>
void trace(const char* fmt, Args&&... args) {
  detail::logf(Level::Trace, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void debug(const char* fmt, Args&&... args) {
  detail::logf(Level::Debug, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void info(const char* fmt, Args&&... args) {
  detail::logf(Level::Info, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(const char* fmt, Args&&... args) {
  detail::logf(Level::Warn, fmt, std::forward<Args>(args)...);
}

}  // namespace sftbft::log
