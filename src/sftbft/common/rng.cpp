#include "sftbft/common/rng.hpp"

#include <cassert>
#include <cmath>

namespace sftbft {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = uniform01();
  if (u <= 0.0) u = 1e-18;  // guard log(0)
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform01() < p; }

Rng Rng::fork() { return Rng(next()); }

}  // namespace sftbft
