// Deterministic pseudo-random number generation for the simulator.
//
// Everything random in an experiment (jitter, workload arrivals, tie-breaks)
// flows from a single seeded generator so runs are exactly reproducible —
// the liveness tests assert theorem bounds ("within n + 2 rounds") that only
// make sense against a deterministic schedule.
#pragma once

#include <cstdint>

namespace sftbft {

/// xoshiro256** — small, fast, high-quality; seeded via SplitMix64 so that
/// any 64-bit seed (including 0) yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponentially distributed value with the given mean (> 0); used for
  /// Poisson client arrivals.
  double exponential(double mean);

  /// Bernoulli trial with probability p of true.
  bool chance(double p);

  /// Derives an independent child generator (e.g. one per replica).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace sftbft
