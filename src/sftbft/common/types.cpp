#include "sftbft/common/types.hpp"

#include <cstdio>

namespace sftbft {

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(t));
  return buf;
}

}  // namespace sftbft
