// Fundamental scalar types shared across the sftbft library.
//
// The paper (arXiv:2101.03715) indexes protocol state by round numbers and
// chain heights and identifies the n = 3f + 1 replicas by small integers.
// Simulated time is kept in integral microseconds so that the discrete-event
// scheduler is exactly reproducible across runs.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace sftbft {

/// Protocol round number (DiemBFT rounds, Streamlet epochs). Round 0 is the
/// genesis round; real proposals start at round 1.
using Round = std::uint64_t;

/// Position of a block in the chain; genesis has height 0.
using Height = std::uint64_t;

/// Replica index in [0, n). Doubles as the index into the PKI registry.
using ReplicaId = std::uint32_t;

/// Sentinel for "no replica" (e.g. an unsigned placeholder vote).
inline constexpr ReplicaId kNoReplica = std::numeric_limits<ReplicaId>::max();

/// Simulated time in microseconds since the start of the run.
using SimTime = std::int64_t;

/// Simulated duration in microseconds.
using SimDuration = std::int64_t;

/// Convenience constructors for durations.
constexpr SimDuration micros(std::int64_t v) { return v; }
constexpr SimDuration millis(std::int64_t v) { return v * 1000; }
constexpr SimDuration seconds(std::int64_t v) { return v * 1'000'000; }

/// Converts a simulated duration to fractional seconds for reporting.
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / 1e6;
}

/// Converts a simulated duration to fractional milliseconds for reporting.
constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d) / 1e3;
}

/// Formats a simulated time as "12.345s" for logs and tables.
std::string format_time(SimTime t);

}  // namespace sftbft
