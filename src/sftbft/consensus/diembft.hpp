// DiemBFT as a rule set over the chained-BFT SFT kernel
// (sftbft::core::ChainedCore).
//
// DiemBFT is the kernel's reference protocol: its Fig. 2 voting rule
// (vote for a round-r block iff r > r_vote and parent.round >= r_lock),
// 2-chain locking rule, and consecutive-round 3-chain commit rule are the
// kernel defaults, so diembft_rules() is the empty rule set. Compare
// hotstuff::rules(), which swaps in the original HotStuff liveness rule —
// everything else (message flow, SFT strong-votes, Sec.-5 logs, storage,
// sync) is shared kernel machinery, which is the paper's genericity claim
// (Secs. 3.2-3.4) made structural.
//
// This header also re-exports the kernel vocabulary under the historical
// consensus:: names so protocol-agnostic call sites keep reading naturally.
#pragma once

#include "sftbft/core/chained_core.hpp"

namespace sftbft::consensus {

using core::CoreConfig;
using core::CoreMode;
using core::CountingRule;
using core::SafetyRules;
using core::StrengthUpdate;
using core::VoteHistory;

/// The single strength-accounting implementation lives in core; DiemBFT's
/// historical name for it remains for callers.
using EndorsementTracker = core::StrengthTracker;

/// A DiemBFT replica core is the chained kernel running the default rules.
using DiemBftCore = core::ChainedCore;

/// DiemBFT's rule set: the kernel defaults (null slots select the Fig. 2
/// rules implemented in core::ChainedCore).
[[nodiscard]] core::ChainedRules diembft_rules();

}  // namespace sftbft::consensus
