#include "sftbft/consensus/diembft.hpp"

namespace sftbft::consensus {

core::ChainedRules diembft_rules() {
  core::ChainedRules rules;
  rules.name = "diembft";
  // The kernel's default rule IS the DiemBFT rule; name it explicitly.
  rules.safe_to_vote = &core::diembft_safe_to_vote;
  return rules;
}

}  // namespace sftbft::consensus
