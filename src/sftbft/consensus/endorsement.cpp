#include "sftbft/consensus/endorsement.hpp"

#include <algorithm>
#include <cassert>

namespace sftbft::consensus {

using types::Block;
using types::BlockId;
using types::QuorumCert;
using types::Vote;

EndorsementTracker::EndorsementTracker(const chain::BlockTree& tree,
                                       std::uint32_t n, std::uint32_t f,
                                       CountingRule rule)
    : tree_(&tree), n_(n), f_(f), rule_(rule) {}

std::vector<StrengthUpdate> EndorsementTracker::process_qc(
    const QuorumCert& qc) {
  std::vector<StrengthUpdate> updates;
  if (qc.is_genesis()) return updates;
  if (!seen_qcs_.insert(qc.digest()).second) return updates;  // idempotent

  std::vector<BlockId> touched;
  for (const Vote& vote : qc.votes) {
    process_vote(vote, touched);
  }

  // Deduplicate before re-evaluating (votes often touch the same ancestors).
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const BlockId& id : touched) {
    reevaluate(id, updates);
  }
  return updates;
}

std::vector<StrengthUpdate> EndorsementTracker::process_extra_vote(
    const Vote& vote) {
  std::vector<StrengthUpdate> updates;
  std::vector<BlockId> touched;
  process_vote(vote, touched);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const BlockId& id : touched) {
    reevaluate(id, updates);
  }
  return updates;
}

void EndorsementTracker::process_vote(const Vote& vote,
                                      std::vector<BlockId>& touched) {
  const Block* block = tree_->get(vote.block_id);
  // QCs are processed after their certified block is linked into the tree;
  // an unknown block here means the caller violated that ordering, and the
  // vote is conservatively ignored (under-counting never harms safety).
  if (block == nullptr) return;

  // Direct endorsement of the voted block itself.
  if (endorsers_[block->id].insert(vote.voter).second) {
    touched.push_back(block->id);
  }

  // Indirect endorsements down the ancestor chain.
  for (const Block* ancestor = tree_->parent_of(block->id);
       ancestor != nullptr && ancestor->height > 0;
       ancestor = tree_->parent_of(ancestor->id)) {
    bool endorses = false;
    switch (rule_) {
      case CountingRule::NaiveAllIndirect:
        endorses = true;  // Appendix C strawman — provably unsafe
        break;
      case CountingRule::Sft:
        endorses = vote.endorses_round(ancestor->round);
        break;
    }
    if (endorses) {
      if (!endorsers_[ancestor->id].insert(vote.voter).second) {
        // The voter already endorsed this ancestor through an earlier vote.
        // A voter's endorsement power only shrinks over time (markers grow,
        // intervals narrow), so that earlier — at least as permissive —
        // vote already covered everything reachable below here. Stopping
        // keeps the walk O(new blocks) amortized: the paper's "marginal
        // bookkeeping overhead" (Sec. 3.2).
        break;
      }
      touched.push_back(ancestor->id);
      continue;
    }
    // Marker mode: rounds strictly decrease toward genesis, so once
    // ancestor.round <= marker every deeper ancestor fails too.
    if (vote.mode == types::VoteMode::Marker) break;
    // Interval mode: gaps are possible, but nothing below the smallest
    // endorsed round can match.
    if (vote.mode == types::VoteMode::Intervals &&
        (vote.endorsed.empty() || ancestor->round < vote.endorsed.min())) {
      break;
    }
    if (vote.mode == types::VoteMode::Plain) break;  // no indirect power
  }
}

void EndorsementTracker::reevaluate(const BlockId& id,
                                    std::vector<StrengthUpdate>& updates) {
  // A count change at `id` can complete 3-chains headed at `id`, its parent,
  // or its grandparent.
  const Block* block = tree_->get(id);
  if (block == nullptr) return;
  evaluate_head(*block, updates);
  if (const Block* parent = tree_->parent_of(id)) {
    if (parent->height > 0) evaluate_head(*parent, updates);
    if (const Block* grandparent = tree_->parent_of(parent->id)) {
      if (grandparent->height > 0) evaluate_head(*grandparent, updates);
    }
  }
}

void EndorsementTracker::evaluate_head(const Block& head,
                                       std::vector<StrengthUpdate>& updates) {
  const std::uint32_t count_head = endorser_count(head.id);
  if (count_head < 2 * f_ + 1) return;  // cannot reach even x = f

  // Enumerate chains head -> c1 -> c2 with consecutive rounds; equivocation
  // can create several, so take the best.
  std::uint32_t best_min = 0;
  for (const Block* c1 : tree_->children_of(head.id)) {
    if (c1->round != head.round + 1) continue;
    const std::uint32_t count1 = endorser_count(c1->id);
    for (const Block* c2 : tree_->children_of(c1->id)) {
      if (c2->round != c1->round + 1) continue;
      const std::uint32_t count2 = endorser_count(c2->id);
      best_min = std::max(best_min, std::min({count_head, count1, count2}));
    }
  }
  if (best_min < f_ + 1) return;
  const std::uint32_t x = std::min(best_min - f_ - 1, 2 * f_);
  if (x < f_) return;  // strong commit rules start at the regular level

  std::uint32_t& recorded = head_strength_[head.id];
  if (x > recorded) {
    recorded = x;
    updates.push_back({head.id, head.round, x});
  }
}

std::uint32_t EndorsementTracker::endorser_count(const BlockId& id) const {
  auto it = endorsers_.find(id);
  return it == endorsers_.end() ? 0
                                : static_cast<std::uint32_t>(it->second.size());
}

std::vector<ReplicaId> EndorsementTracker::endorsers(const BlockId& id) const {
  std::vector<ReplicaId> out;
  auto it = endorsers_.find(id);
  if (it != endorsers_.end()) {
    out.assign(it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
  }
  return out;
}

std::uint32_t EndorsementTracker::head_strength(const BlockId& id) const {
  auto it = head_strength_.find(id);
  return it == head_strength_.end() ? 0 : it->second;
}

std::uint32_t EndorsementTracker::effective_strength(const BlockId& id) const {
  // Max head strength over the block itself and every descendant, found by
  // DFS over children. Used for light-client log validation, where chains
  // are short-lived frontiers; fine for simulation scale.
  std::uint32_t best = head_strength(id);
  for (const Block* child : tree_->children_of(id)) {
    best = std::max(best, effective_strength(child->id));
  }
  return best;
}

}  // namespace sftbft::consensus
