// Endorser tracking and the strong commit rule (paper Fig. 4 / Fig. 5).
//
// A strong-vote ⟨vote, B', r', marker⟩_i endorses a round-r block B iff
// B = B', or B' extends B and marker < r (interval votes: r ∈ I). The
// tracker consumes every strong-QC embedded in the chain, maintains the set
// of endorsers per block, and evaluates the *strong 3-chain rule*: x-strong
// commit B_k when three adjacent blocks B_k, B_k+1, B_k+2 with consecutive
// rounds each have >= x + f + 1 endorsers.
//
// The walk per vote is the paper's "marginal bookkeeping": ancestors are
// visited from the voted block downward and the marker prunes the walk —
// once an ancestor's round drops to <= marker no deeper ancestor can be
// endorsed either (rounds strictly decrease along the chain).
//
// CountingRule::NaiveAllIndirect implements the Appendix-C strawman (count
// every indirect vote, ignore voting history). It exists only to demonstrate
// the safety violation of Fig. 9 in tests/examples — never use it for real.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/types/quorum_cert.hpp"

namespace sftbft::consensus {

enum class CountingRule {
  Sft,               ///< paper Fig. 4: markers/intervals gate endorsements
  NaiveAllIndirect,  ///< Appendix C strawman: every indirect vote counts
};

/// "Block `block_id` (round `round`) is now x-strong committed" — emitted
/// when a 3-chain head first reaches strength x (ancestors follow by rule).
struct StrengthUpdate {
  types::BlockId block_id{};
  Round round = 0;
  std::uint32_t strength = 0;

  friend bool operator==(const StrengthUpdate&, const StrengthUpdate&) = default;
};

class EndorsementTracker {
 public:
  /// `tree` must outlive the tracker. n = 3f + 1.
  EndorsementTracker(const chain::BlockTree& tree, std::uint32_t n,
                     std::uint32_t f, CountingRule rule = CountingRule::Sft);

  /// Ingests a strong-QC (idempotent per identical QC; unions vote sets of
  /// different QCs for the same block). Every voted block must already be in
  /// the tree. Returns the strong-commit levels newly reached, in discovery
  /// order (3-chain heads only; callers propagate to ancestors).
  std::vector<StrengthUpdate> process_qc(const types::QuorumCert& qc);

  /// Ingests a single vote outside any QC — the Appendix-B FBFT baseline,
  /// where leaders multicast votes arriving after the QC was sealed.
  std::vector<StrengthUpdate> process_extra_vote(const types::Vote& vote);

  /// Number of endorsers currently known for a block (0 if unknown).
  [[nodiscard]] std::uint32_t endorser_count(const types::BlockId& id) const;

  /// The endorser set itself (empty if unknown).
  [[nodiscard]] std::vector<ReplicaId> endorsers(const types::BlockId& id) const;

  /// Highest x such that the block was *directly* x-strong committed as a
  /// 3-chain head; 0 if never. (Ancestors inherit the max over descendant
  /// heads — tracked by the ledger, not here.)
  [[nodiscard]] std::uint32_t head_strength(const types::BlockId& id) const;

  /// Strength the block enjoys through itself or any descendant 3-chain head
  /// (the Sec.-5 quantity light-client log entries are validated against).
  [[nodiscard]] std::uint32_t effective_strength(const types::BlockId& id) const;

  [[nodiscard]] CountingRule rule() const { return rule_; }

 private:
  /// Adds `voter`'s endorsements from a vote for `block_id`; records every
  /// block whose endorser set actually grew into `touched`.
  void process_vote(const types::Vote& vote,
                    std::vector<types::BlockId>& touched);

  /// Re-evaluates 3-chains around a block whose count changed.
  void reevaluate(const types::BlockId& id,
                  std::vector<StrengthUpdate>& updates);

  /// Evaluates the 3-chain headed at `head` (if one exists) and records a
  /// strength increase.
  void evaluate_head(const types::Block& head,
                     std::vector<StrengthUpdate>& updates);

  const chain::BlockTree* tree_;
  std::uint32_t n_;
  std::uint32_t f_;
  CountingRule rule_;

  std::unordered_map<types::BlockId, std::unordered_set<ReplicaId>> endorsers_;
  std::unordered_map<types::BlockId, std::uint32_t> head_strength_;
  std::unordered_set<crypto::Sha256Digest> seen_qcs_;
};

}  // namespace sftbft::consensus
