// Round-robin leader election (paper Sec. 2.1: "This paper assumes a
// round-robin rotation for leader elections, which is also assumed in
// [HotStuff, DiemBFT, Streamlet]").
//
// The rotation is what gives every replica — including stragglers — "one
// chance every n rounds to include its strong-votes in some strong-QC"
// (Sec. 4.1), the effect behind the 2f-strong latency tail of Fig. 7a and
// the 1.7f cap of Fig. 7b.
#pragma once

#include "sftbft/common/types.hpp"

namespace sftbft::consensus {

class LeaderElection {
 public:
  explicit LeaderElection(std::uint32_t n) : n_(n) {}

  [[nodiscard]] ReplicaId leader_of(Round round) const {
    return static_cast<ReplicaId>(round % n_);
  }

  [[nodiscard]] std::uint32_t replica_count() const { return n_; }

 private:
  std::uint32_t n_;
};

}  // namespace sftbft::consensus
