#include "sftbft/consensus/pacemaker.hpp"

#include <cassert>
#include <cmath>

#include "sftbft/obs/observer.hpp"

namespace sftbft::consensus {

Pacemaker::Pacemaker(sim::Scheduler& sched, PacemakerConfig config,
                     Callbacks callbacks)
    : sched_(sched), config_(config), callbacks_(std::move(callbacks)) {
  assert(config_.backoff >= 1.0);
}

void Pacemaker::start() {
  assert(round_ == 0);
  enter(1);
}

void Pacemaker::stop() {
  stopped_ = true;
  sched_.cancel(timer_);
  timer_ = sim::kInvalidTimer;
}

void Pacemaker::resume(Round round) {
  stopped_ = false;
  timed_out_ = false;
  consecutive_timeouts_ = 0;
  round_ = round > 0 ? round : 1;
  arm_timer();
  note_round_entered(round_);
  if (callbacks_.on_round_entered) callbacks_.on_round_entered(round_);
}

bool Pacemaker::advance_to(Round round) {
  if (stopped_ || round <= round_) return false;
  enter(round);
  return true;
}

void Pacemaker::enter(Round round) {
  // Entering a round while the previous one never timed out means progress —
  // reset the backoff; a timeout chain keeps growing the timer instead.
  if (!timed_out_) consecutive_timeouts_ = 0;
  round_ = round;
  timed_out_ = false;
  arm_timer();
  note_round_entered(round);
  if (callbacks_.on_round_entered) callbacks_.on_round_entered(round);
}

void Pacemaker::note_round_entered(Round round) {
  obs::Observer* obs = config_.observer;
  if (obs == nullptr) return;
  obs->count(config_.id, obs::Counter::kRoundsEntered);
  obs->gauge(config_.id, obs::Gauge::kRound,
             static_cast<std::int64_t>(round));
  if (obs->recording()) {
    obs->emit(obs::instant_event("pacemaker", "round_enter", config_.id,
                                 sched_.now(), {"round", round}));
  }
  if (obs->tracing()) {
    // Counter track: the round number as a per-replica time series (lagging
    // replicas show up as a visibly lower staircase in Perfetto).
    obs->emit_trace_only(obs::counter_event("pacemaker", "round", config_.id,
                                            sched_.now(), {"round", round}));
  }
}

void Pacemaker::arm_timer() {
  sched_.cancel(timer_);
  const double scale = std::pow(
      config_.backoff,
      std::min(consecutive_timeouts_, config_.max_backoff_steps));
  const auto duration = static_cast<SimDuration>(
      static_cast<double>(config_.base_timeout) * scale);
  timer_ = sched_.schedule_after(duration, [this] {
    timer_ = sim::kInvalidTimer;
    if (stopped_) return;
    timed_out_ = true;
    ++consecutive_timeouts_;
    const Round expired = round_;
    if (obs::Observer* obs = config_.observer) {
      obs->count(config_.id, obs::Counter::kTimeoutsLocal);
      if (obs->recording()) {
        obs->emit(obs::instant_event("pacemaker", "timeout", config_.id,
                                     sched_.now(), {"round", expired}));
      }
    }
    if (callbacks_.on_local_timeout) callbacks_.on_local_timeout(expired);
  });
}

}  // namespace sftbft::consensus
