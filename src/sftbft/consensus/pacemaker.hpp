// Pacemaker: round synchronization (paper Fig. 2, "Synchronization rule" and
// "Timeout").
//
// The replica advances to round r after seeing the QC of a round-(r−1) block
// or 2f + 1 timeout messages of round r−1 (the core observes those and calls
// advance_to). On entering a round the pacemaker arms a timer; on expiry the
// core stops voting in the round and multicasts ⟨timeout, r, qc_high⟩.
// An optional backoff factor grows the timer across consecutive timeouts —
// production pacemakers do this to re-synchronize before GST; the paper's
// experiments use a fixed ("predefined") duration, backoff 1.0.
#pragma once

#include <functional>

#include "sftbft/common/types.hpp"
#include "sftbft/sim/scheduler.hpp"

namespace sftbft::obs {
class Observer;
}  // namespace sftbft::obs

namespace sftbft::consensus {

struct PacemakerConfig {
  SimDuration base_timeout = millis(3000);
  /// Timer multiplier per consecutive timed-out round (>= 1.0).
  double backoff = 1.0;
  /// Cap on the backoff exponent.
  int max_backoff_steps = 6;
  /// Observability (round entries / timeouts, attributed to `id`); null =
  /// off. The Observer outlives the core that owns this pacemaker.
  obs::Observer* observer = nullptr;
  ReplicaId id = 0;
};

class Pacemaker {
 public:
  struct Callbacks {
    /// New round entered (propose here if leader; timer is already armed).
    std::function<void(Round)> on_round_entered;
    /// The round timer expired (multicast a timeout message; the pacemaker
    /// has already recorded the timeout for backoff purposes).
    std::function<void(Round)> on_local_timeout;
  };

  Pacemaker(sim::Scheduler& sched, PacemakerConfig config, Callbacks callbacks);

  /// Enters round 1.
  void start();

  /// Stops all timers (crash / end of experiment).
  void stop();

  /// Crash recovery: re-enters service at `round` (>= 1) after a stop(),
  /// re-arming the timer with a fresh backoff. Unlike advance_to this may
  /// move the round "backward" — the recovered round watermark comes from
  /// durable state, and the cluster's true round is re-learned via sync
  /// (voting safety is guarded separately by SafetyRules' restored r_vote).
  void resume(Round round);

  [[nodiscard]] Round current_round() const { return round_; }

  /// Round-sync rule: called with r = qc.round + 1 or tc.round + 1.
  /// Advances (and re-arms the timer) only forward. Returns true on advance.
  bool advance_to(Round round);

  /// Whether the current round's timer already fired (replica stops voting).
  [[nodiscard]] bool timed_out() const { return timed_out_; }

 private:
  void enter(Round round);
  void arm_timer();
  void note_round_entered(Round round);

  sim::Scheduler& sched_;
  PacemakerConfig config_;
  Callbacks callbacks_;
  Round round_ = 0;
  bool timed_out_ = false;
  int consecutive_timeouts_ = 0;
  sim::TimerId timer_ = sim::kInvalidTimer;
  bool stopped_ = false;
};

}  // namespace sftbft::consensus
