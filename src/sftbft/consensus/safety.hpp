// DiemBFT safety rules (paper Fig. 2: voting rule + locking rule).
//
// State per replica: highest voted round r_vote, highest locked round r_lock,
// highest quorum certificate qc_high. The voting rule — vote for the first
// valid round-r proposal iff r > r_vote and parent.round >= r_lock — plus the
// 2-chain locking rule are what the SFT layer's safety proof (Lemmas 1–2)
// builds on; this class implements them verbatim and nothing else.
#pragma once

#include "sftbft/common/types.hpp"
#include "sftbft/types/block.hpp"
#include "sftbft/types/quorum_cert.hpp"

namespace sftbft::consensus {

class SafetyRules {
 public:
  SafetyRules() = default;

  /// Fig. 2 voting rule: may this replica vote for `block` in round
  /// `block.round` given the parent's round? (`parent_round` comes from the
  /// validated QC embedded in the block.)
  [[nodiscard]] bool can_vote(const types::Block& block) const {
    // block.qc certifies the parent, so qc.round is the parent's round.
    return block.round > voted_round_ &&   // (1) r > r_vote
           block.round > block.qc.round && // structural: rounds increase
           block.qc.round >= locked_round_;  // (2) parent.round >= r_lock
  }

  /// Records that the replica voted in `round` (updates r_vote).
  void record_vote(Round round) {
    if (round > voted_round_) voted_round_ = round;
  }

  /// Fig. 2 locking rule: on any valid QC, lock on the round of the parent
  /// of the certified block, and track the highest QC.
  void observe_qc(const types::QuorumCert& qc) {
    if (qc.parent_round > locked_round_) locked_round_ = qc.parent_round;
    if (qc.round > high_qc_.round) high_qc_ = qc;
  }

  /// Pacemaker hook: stop voting in rounds below `round` (on round entry /
  /// local timeout, Fig. 2 "stops ... voting for round < r").
  void forbid_votes_below(Round round) {
    if (round > 0 && round - 1 > voted_round_) voted_round_ = round - 1;
  }

  /// Seeds qc_high with the genesis QC (round 0, certifying the genesis
  /// block id) so the first leader has a parent to extend.
  void init_high_qc(const types::QuorumCert& genesis_qc) {
    high_qc_ = genesis_qc;
  }

  /// Crash recovery: re-arms the locking rule from the durable watermark.
  /// Restoring the lock from qc_high alone could *regress* it — a
  /// timeout-borne high QC may carry a lower parent round than an earlier
  /// chain QC the replica locked against.
  void restore_locked_round(Round round) {
    if (round > locked_round_) locked_round_ = round;
  }

  [[nodiscard]] Round voted_round() const { return voted_round_; }
  [[nodiscard]] Round locked_round() const { return locked_round_; }
  [[nodiscard]] const types::QuorumCert& high_qc() const { return high_qc_; }

 private:
  Round voted_round_ = 0;
  Round locked_round_ = 0;
  types::QuorumCert high_qc_{};  // genesis QC (round 0)
};

}  // namespace sftbft::consensus
