#include "sftbft/consensus/vote_history.hpp"

#include <algorithm>
#include <cassert>

namespace sftbft::consensus {

void VoteHistory::record_vote(const types::Block& block) {
  assert(tree_->contains(block.id));
  // Drop frontier entries on the same fork (ancestors of the new vote);
  // what remains are the highest voted blocks of *other* forks.
  std::erase_if(frontier_, [&](const FrontierEntry& entry) {
    return tree_->extends(block.id, entry.block_id);
  });
  frontier_.push_back({block.id, block.round});
}

Round VoteHistory::marker_for(const types::Block& block) const {
  Round marker = 0;
  for (const FrontierEntry& entry : frontier_) {
    // An entry conflicts with `block` iff `block` does not extend it (the
    // entry cannot extend `block`: its round is lower than any new vote's).
    if (entry.round > marker && !tree_->extends(block.id, entry.block_id)) {
      marker = entry.round;
    }
  }
  return marker;
}

IntervalSet VoteHistory::intervals_for(const types::Block& block,
                                       Round window) const {
  const Round r = block.round;
  const Round lo = (window == 0 || r <= window) ? 1 : r - window;
  IntervalSet endorsed = IntervalSet::single(lo, r);
  for (const FrontierEntry& entry : frontier_) {
    if (tree_->extends(block.id, entry.block_id)) continue;  // same fork
    // D_F = [r_l + 1, r_h]: r_h = highest voted round on the fork, r_l =
    // round of the common ancestor of `block` and that frontier block.
    const types::Block& ancestor =
        tree_->common_ancestor(block.id, entry.block_id);
    endorsed.subtract(ancestor.round + 1, entry.round);
  }
  return endorsed;
}

}  // namespace sftbft::consensus
