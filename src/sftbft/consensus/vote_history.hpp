// Voting-history bookkeeping for strong-votes (paper Fig. 4 and Sec. 3.4).
//
// "For every fork in the blockchain, the replica additionally keeps the
// highest voted block on that fork." This class maintains exactly that — the
// *frontier* of voted blocks (voted blocks that are not ancestors of other
// voted blocks; one per fork) — and derives from it:
//
//  * marker(B)   = max{B'.round | B' in frontier, B' conflicts with B}
//                  (0 when the replica never voted on a conflicting fork);
//  * intervals(B) = [lo, r] \ ∪_F D_F   with   D_F = [r_l + 1, r_h],
//    where r_h is the highest voted round on fork F and r_l the round of the
//    common ancestor of B and that fork's frontier block (Sec. 3.4). `lo` is
//    1 for full history or r − window for the windowed variant the paper
//    suggests ("the set of intervals for the last n rounds").
//
// Since the voting rule only allows strictly increasing vote rounds, a newly
// voted block can never be an ancestor of a previously voted one, so frontier
// maintenance is: drop entries the new block extends, then append it.
//
// Crash recovery (sftbft::storage): the frontier round-trips through
// to_records()/from_records(). Restored entries may reference blocks the
// rebuilt tree does not contain yet (they arrive via peer sync); until then
// such entries are treated *conservatively* — as conflicting with every
// prospective vote — so a recovered replica's markers/intervals can only
// under-endorse, never over-endorse (safe for Theorem 1, at a temporary cost
// to strong-commit liveness that heals once sync completes and the next
// record_vote collapses the frontier).
#pragma once

#include <vector>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/common/interval_set.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/types/block.hpp"

namespace sftbft::consensus {

class VoteHistory {
 public:
  explicit VoteHistory(const chain::BlockTree& tree) : tree_(&tree) {}

  /// Records a vote for `block` (already inserted into the tree).
  void record_vote(const types::Block& block);

  /// Fig. 4 marker for a prospective vote on `block`.
  [[nodiscard]] Round marker_for(const types::Block& block) const;

  /// Sec. 3.4 endorsed intervals for a prospective vote on `block`.
  /// `window == 0` means full history ([1, r]); otherwise the last `window`
  /// rounds ([r − window, r], clipped at 1).
  [[nodiscard]] IntervalSet intervals_for(const types::Block& block,
                                          Round window) const;

  struct FrontierEntry {
    types::BlockId block_id{};
    Round round = 0;

    friend bool operator==(const FrontierEntry&, const FrontierEntry&) = default;
  };

  [[nodiscard]] const std::vector<FrontierEntry>& frontier() const {
    return frontier_;
  }

  /// Durable export: the frontier as-is (one record per fork).
  [[nodiscard]] std::vector<FrontierEntry> to_records() const {
    return frontier_;
  }

  /// Rebuilds the frontier from persisted records without replaying votes.
  /// Records whose blocks are known to the tree are pruned against each
  /// other (ancestors of another record are dropped); records for unknown
  /// blocks are kept verbatim and treated conservatively (see file header).
  void from_records(std::vector<FrontierEntry> records);

 private:
  const chain::BlockTree* tree_;
  std::vector<FrontierEntry> frontier_;
};

}  // namespace sftbft::consensus
