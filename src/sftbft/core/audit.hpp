// Audit taps: the protocol-agnostic feed every consensus core offers a
// global observer (harness::SafetyAuditor). Each core fires its taps
// *before* its own endorsement bookkeeping consumes the data, so a global
// observer is always at least as informed as the replica whose commit
// claims it is auditing.
//
// Two certificate vocabularies cover every supported engine:
//  * canonical_qc — chained stacks (DiemBFT, HotStuff): every canonical QC
//    a replica processes, with the certified block;
//  * block_seen / vote_seen — lock-step stacks (Streamlet): every block
//    admitted to the tree and every distinct height-marked vote ingested.
#pragma once

#include <functional>

#include "sftbft/common/types.hpp"
#include "sftbft/types/block.hpp"
#include "sftbft/types/quorum_cert.hpp"

namespace sftbft::core {

/// One height-marked strong-vote observation (the protocol-neutral
/// projection of a Streamlet-family vote).
struct VoteSeen {
  types::BlockId block_id{};
  Round round = 0;
  Height height = 0;
  ReplicaId voter = kNoReplica;
  /// Truthful Fig. 11 marker as carried on the wire (the auditor always
  /// counts truthfully, whatever counting rule the replicas run).
  Height marker = 0;
};

/// Replica-attributed observer hooks; only the taps matching a deployment's
/// protocol fire. All may be empty.
struct AuditTaps {
  std::function<void(ReplicaId, const types::Block&,
                     const types::QuorumCert&)>
      canonical_qc;
  std::function<void(ReplicaId, const types::Block&)> block_seen;
  std::function<void(ReplicaId, const VoteSeen&)> vote_seen;
};

}  // namespace sftbft::core
