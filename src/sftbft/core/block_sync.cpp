#include "sftbft/core/block_sync.hpp"

#include <algorithm>

namespace sftbft::core {

std::optional<std::vector<types::Block>> collect_chain(
    const chain::BlockTree& tree, const types::BlockId& tip_id,
    Height from_height) {
  const types::Block* block = tree.get(tip_id);
  std::vector<types::Block> chain_blocks;
  while (block != nullptr && block->height > from_height) {
    chain_blocks.push_back(*block);
    block = tree.parent_of(block->id);
  }
  if (block == nullptr || block->height != from_height) {
    return std::nullopt;  // rooted above the requested height
  }
  std::reverse(chain_blocks.begin(), chain_blocks.end());
  return chain_blocks;
}

}  // namespace sftbft::core
