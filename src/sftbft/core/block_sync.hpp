// The block-sync protocol's shared half (crash recovery + orphan repair;
// storage-layer machinery, not part of the paper's protocols).
//
// Every engine needs the same client policy — ask a small rotating window
// of peers for the chain above a local height, and re-ask (next window)
// until a caught-up predicate holds — and the same server-side chain walk
// (tip down to the requested height, oldest first). What differs per
// protocol is only how a response *certifies* its blocks: the chained
// stacks ship QC-linked chains (types::SyncResponse), Streamlet ships a
// certifying vote quorum per block (streamlet::SSyncResponse). The request
// (types::SyncRequest) is shared by every stack — only the wire tag
// differs — and the forked per-engine copies of this policy are gone.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/obs/observer.hpp"
#include "sftbft/sim/scheduler.hpp"
#include "sftbft/types/proposal.hpp"

namespace sftbft::core {

/// Client-side sync policy: rotating peer windows plus a watchdog retry.
///
/// One good response suffices, so each attempt asks a small window instead
/// of all n — a broadcast would trigger n − 1 near-identical full-chain
/// responses — and the window rotates per attempt, routing around
/// crashed/behind peers. The watchdog re-requests while the caught-up
/// predicate is false: a single fire-once request can race with a block
/// certified just after every response was built, and a crashed peer in
/// the window must not stall recovery.
class SyncClient {
 public:
  struct Config {
    ReplicaId id = 0;
    std::uint32_t n = 0;
    /// Watchdog delay between attempts (the owning core's round budget).
    SimDuration retry_after = 0;
    std::uint32_t fanout = 3;
    /// Observability (sync rounds, attributed to `id`); null = off.
    obs::Observer* observer = nullptr;
  };

  using Send = std::function<void(ReplicaId to, const types::SyncRequest&)>;

  /// `from_height` supplies the resume height per attempt (retries then
  /// fetch only the residual gap); `caught_up` ends the retry loop — it
  /// must also return true while the owning core is stopped. Both must
  /// stay valid for the core's lifetime.
  SyncClient(Config config, sim::Scheduler& sched, Send send,
             std::function<Height()> from_height,
             std::function<bool()> caught_up)
      : config_(config),
        sched_(&sched),
        send_(std::move(send)),
        from_height_(std::move(from_height)),
        caught_up_(std::move(caught_up)) {}

  /// Fans one request out to the current peer window and arms the watchdog.
  void request() {
    if (!send_ || config_.n < 2) return;
    types::SyncRequest req;
    req.requester = config_.id;
    req.from_height = from_height_();
    if (obs::Observer* obs = config_.observer) {
      obs->count(config_.id, obs::Counter::kSyncRounds);
      if (obs->recording()) {
        obs->emit(obs::instant_event("sync", "sync_round", config_.id,
                                     sched_->now(), {"attempt", attempts_},
                                     {"from_height", req.from_height}));
      }
    }
    const std::uint32_t fanout =
        std::min<std::uint32_t>(config_.fanout, config_.n - 1);
    for (std::uint32_t k = 0; k < fanout; ++k) {
      const ReplicaId to =
          (config_.id + 1 + attempts_ * fanout + k) % config_.n;
      if (to != config_.id) send_(to, req);
    }
    ++attempts_;
    sched_->schedule_after(config_.retry_after, [this] {
      if (!caught_up_()) request();
    });
  }

  /// Restarts the window rotation (call on restore()).
  void reset() { attempts_ = 0; }

 private:
  Config config_;
  sim::Scheduler* sched_;
  Send send_;
  std::function<Height()> from_height_;
  std::function<bool()> caught_up_;
  std::uint32_t attempts_ = 0;
};

/// Server-side chain walk shared by every engine's sync responder: the
/// blocks from (excluding) `from_height` up to (including) `tip_id`, oldest
/// first. Returns nullopt when the responder's tree is rooted above the
/// requested height (it also restored from a snapshot and cannot provide a
/// linkable chain — the caller stays silent and lets a peer with deeper
/// history answer).
[[nodiscard]] std::optional<std::vector<types::Block>> collect_chain(
    const chain::BlockTree& tree, const types::BlockId& tip_id,
    Height from_height);

}  // namespace sftbft::core
