#include "sftbft/core/chained_core.hpp"

#include <algorithm>
#include <cassert>

#include "sftbft/common/logging.hpp"
#include "sftbft/obs/observer.hpp"

namespace sftbft::core {

using consensus::Pacemaker;
using consensus::PacemakerConfig;
using types::Block;
using types::BlockId;
using types::Proposal;
using types::QuorumCert;
using types::TimeoutCert;
using types::TimeoutMsg;
using types::Vote;
using types::VoteMode;

ChainedCore::ChainedCore(CoreConfig config, sim::Scheduler& sched,
                         std::shared_ptr<const crypto::KeyRegistry> registry,
                         mempool::Mempool& pool, Hooks hooks,
                         storage::ReplicaStore* store)
    : config_(config),
      sched_(sched),
      registry_(std::move(registry)),
      cache_(config.observer, config.id),
      signer_(registry_->signer_for(config.id)),
      pool_(pool),
      hooks_(std::move(hooks)),
      election_(config.n),
      tree_(),
      history_(tree_),
      pacemaker_(
          sched,
          PacemakerConfig{.base_timeout = config.base_timeout,
                          .backoff = config.timeout_backoff,
                          .observer = config.observer,
                          .id = config.id},
          Pacemaker::Callbacks{
              .on_round_entered = [this](Round r) { on_round_entered(r); },
              .on_local_timeout = [this](Round r) { on_local_timeout(r); }}),
      committer_(tree_, ledger_, pool, sched),
      sync_(SyncClient::Config{.id = config.id,
                               .n = config.n,
                               .retry_after = config.base_timeout,
                               .observer = config.observer},
            sched,
            [this](ReplicaId to, const types::SyncRequest& req) {
              if (hooks_.send_sync_request) hooks_.send_sync_request(to, req);
            },
            [this] {
              // Resume from the highest committed block we actually hold:
              // retries then fetch only the residual gap, not the whole
              // range again.
              Height from = tree_.genesis().height;
              if (const std::optional<Height> tip = ledger_.tip()) {
                if (tree_.contains(ledger_.at(*tip).block_id)) {
                  from = std::max(from, *tip);
                }
              }
              return from;
            },
            [this] {
              // Caught-up means the certified tip is a block we hold and
              // nothing is parked waiting for a missing parent — partial
              // progress is not enough (one block certified while responses
              // were in flight can leave a permanent gap).
              if (stopped_) return true;
              return tree_.contains(safety_.high_qc().block_id) &&
                     pending_proposals_.empty();
            }),
      store_(store) {
  committer_.set_store(store_);
  committer_.set_on_commit([this](const Block& block, std::uint32_t strength,
                                  SimTime now) {
    if (obs::Observer* obs = config_.observer) {
      const SimDuration latency = now - block.created_at;
      if (strength <= config_.f()) {
        obs->count(config_.id, obs::Counter::kCommits);
        obs->observe(config_.id, obs::Hist::kCommitLatencyUs, latency);
      } else {
        obs->count(config_.id, obs::Counter::kStrongCommits);
        obs->observe(config_.id, obs::Hist::kStrongCommitLatencyUs, latency);
      }
      if (obs->recording()) {
        obs->emit(obs::span_event(
            "block", strength <= config_.f() ? "committed" : "strong_commit",
            config_.id, block.height, block.created_at, now,
            {"round", block.round}, {"strength", strength}));
      }
    }
    if (hooks_.on_commit) hooks_.on_commit(block, strength, now);
  });
  committer_.set_snapshot_hook([this] { maybe_snapshot(); });

  // Seed qc_high with the genesis QC so round-1 proposals extend genesis.
  QuorumCert genesis_qc;
  genesis_qc.block_id = tree_.genesis_id();
  genesis_qc.round = 0;
  genesis_qc.parent_id = BlockId{};
  genesis_qc.parent_round = 0;
  safety_.init_high_qc(genesis_qc);

  if (config_.mode != CoreMode::Plain || config_.fbft_mode) {
    tracker_ = std::make_unique<StrengthTracker>(tree_, config_.n,
                                                 config_.f(),
                                                 config_.counting);
  }
}

void ChainedCore::start() { pacemaker_.start(); }

void ChainedCore::stop() {
  stopped_ = true;
  pacemaker_.stop();
  // Cancel extra-wait timers so a later restore() cannot be surprised by a
  // pre-crash finalize_qc firing against rebuilt state.
  for (auto& [round, per_block] : votes_) {
    for (auto& [block_id, pending] : per_block) {
      sched_.cancel(pending.extra_wait_timer);
      pending.extra_wait_timer = sim::kInvalidTimer;
    }
  }
}

// ------------------------------------------------------------ crash recovery

void ChainedCore::restore(const storage::RecoveredState& state) {
  // Volatile state is rebuilt from scratch; only the durable envelope and
  // the committed ledger survive.
  votes_.clear();
  timeouts_.clear();
  pending_proposals_.clear();
  qc_updates_.clear();
  sent_proposals_.clear();
  logged_proposals_.clear();
  awaiting_batches_.clear();
  obs_certified_.clear();
  last_proposed_payload_.reset();
  last_tc_ = state.high_tc;

  // Tree: re-root at the snapshot tip (its commits are final); without a
  // snapshot, restart from genesis like a fresh replica.
  tree_ = state.tip ? chain::BlockTree::rooted_at(*state.tip)
                    : chain::BlockTree();
  ledger_.restore(state.ledger);

  // Safety: the WAL's voted round is the equivocation fence — r_vote is
  // restored *before* any block is re-learned, so even an adversarial
  // replay of the pre-crash proposal cannot extract a second vote.
  safety_ = SafetyRules();
  QuorumCert root_qc;
  root_qc.block_id = tree_.genesis_id();
  root_qc.round = tree_.genesis().round;
  root_qc.parent_id = tree_.genesis().parent_id;
  root_qc.parent_round = 0;
  safety_.init_high_qc(root_qc);
  if (!state.high_qc.is_genesis()) safety_.observe_qc(state.high_qc);
  safety_.restore_locked_round(state.locked_round);
  safety_.record_vote(state.voted_round);
  last_sealed_round_ = state.voted_round;
  persisted_locked_round_ = safety_.locked_round();
  sync_.reset();

  std::vector<VoteHistory::FrontierEntry> frontier;
  frontier.reserve(state.frontier.size());
  for (const storage::VoteRecord& record : state.frontier) {
    frontier.push_back({record.block_id, record.round, record.height});
  }
  history_.from_records(std::move(frontier));

  if (config_.mode != CoreMode::Plain || config_.fbft_mode) {
    tracker_ = std::make_unique<StrengthTracker>(tree_, config_.n,
                                                 config_.f(),
                                                 config_.counting);
  }
  // The rebuilt tracker cannot justify pre-crash strengths; trust peers'
  // commit logs for one leader rotation past the recovered frontier.
  trust_commit_log_below_ = state.high_qc.round + config_.n + 1;

  stopped_ = false;
  // Resume strictly past every durable round watermark — voted rounds, the
  // high QC, and any TC (entering a round via a TC persisted it), so the
  // replica cannot re-enter a round it already acted in as leader.
  Round resume_past = std::max<Round>(state.high_qc.round, state.voted_round);
  if (state.high_tc) resume_past = std::max(resume_past, state.high_tc->round);
  pacemaker_.resume(resume_past + 1);
}

void ChainedCore::request_sync() {
  if (!hooks_.send_sync_request || stopped_) return;
  sync_.request();
}

void ChainedCore::on_sync_request(const types::SyncRequest& req) {
  if (stopped_ || !hooks_.send_sync_response) return;
  if (req.requester == config_.id) return;
  const QuorumCert& high_qc = safety_.high_qc();
  auto chain_blocks =
      collect_chain(tree_, high_qc.block_id, req.from_height);
  if (!chain_blocks) return;  // rooted above the requested height
  types::SyncResponse resp;
  resp.blocks = std::move(*chain_blocks);
  resp.high_qc = high_qc;
  hooks_.send_sync_response(req.requester, resp);
}

void ChainedCore::on_sync_response(const types::SyncResponse& resp) {
  if (stopped_) return;
  // Validate the chain without trusting the responder: each block's embedded
  // QC certifies its parent; the final block is certified by resp.high_qc.
  for (std::size_t i = 0; i < resp.blocks.size(); ++i) {
    const Block& block = resp.blocks[i];
    if (!block.id_is_valid()) return;
    if (block.qc.block_id != block.parent_id) return;
    const QuorumCert& cert = i + 1 < resp.blocks.size()
                                 ? resp.blocks[i + 1].qc
                                 : resp.high_qc;
    if (cert.block_id != block.id) return;
    if (config_.verify_signatures &&
        !cert.verify(*registry_, config_.quorum(), &cache_)) {
      return;
    }
  }
  for (const Block& block : resp.blocks) {
    if (tree_.insert(block) != chain::BlockTree::InsertResult::Inserted) {
      continue;  // duplicate (another peer answered first) or orphan
    }
    // Synced blocks are already certified — no vote gate, but their digest
    // payloads may reference batches that never reached this replica (it was
    // down during dissemination). Kick the pull protocol so the ledger's
    // transaction materialization completes.
    if (hooks_.fetch_payload && block.payload.is_digests()) {
      hooks_.fetch_payload(block.payload);
    }
    // Chain-embedded QCs are canonical: peers processed them through their
    // strength trackers when the blocks first arrived, so replaying them
    // here keeps endorser sets consistent across replicas (Sec. 5).
    observe_qc(block.qc, /*canonical=*/true);
    process_pending_proposals(block.id);
  }
  // The top QC advances locking/round state but is not canonical — it will
  // arrive embedded in the next proposal, like a timeout-borne QC. It must
  // be verified on its own: with resp.blocks empty (or all duplicates) the
  // chain loop above never checked it, and an unverified QC here would let
  // any peer forge qc_high / lock state onto a replica.
  if (!resp.high_qc.is_genesis() && tree_.contains(resp.high_qc.block_id)) {
    if (config_.verify_signatures &&
        !resp.high_qc.verify(*registry_, config_.quorum(), &cache_)) {
      return;
    }
    observe_qc(resp.high_qc, /*canonical=*/false);
    pacemaker_.advance_to(resp.high_qc.round + 1);
  }
}

// ---------------------------------------------------------------- proposing

void ChainedCore::on_round_entered(Round round) {
  if (stopped_) return;
  // Fig. 2 timeout rule: entering round r stops voting for rounds < r.
  safety_.forbid_votes_below(round);
  if (election_.leader_of(round) != config_.id) return;
  // Model leader-side processing (execution/batching) before proposing.
  sched_.schedule_after(config_.leader_processing, [this, round] {
    if (!stopped_ && pacemaker_.current_round() == round) propose(round);
  });
}

void ChainedCore::propose(Round round) {
  const log::Scope log_scope(sched_.now(), config_.id);
  const QuorumCert& high_qc = safety_.high_qc();
  const Block* parent = tree_.get(high_qc.block_id);
  if (parent == nullptr) {
    // qc_high references a block we never received (possible only under
    // Byzantine schedules — e.g. the certified side of an equivocation was
    // withheld from us); without the parent we cannot extend it. Fetch the
    // missing chain so a later leadership round can produce a block again —
    // timeout/vote-borne QCs can re-wedge us faster than the orphan-repair
    // timer alone heals.
    log::warn("cannot propose in round %llu, parent missing",
              static_cast<unsigned long long>(round));
    request_sync();
    return;
  }

  // The Sec.-5 commit Log is assembled first: its digest is sealed into the
  // block header, so the votes certifying the block also certify the Log (a
  // corrupted proposer cannot swap the Log under a certified block).
  std::vector<types::CommitLogEntry> commit_log;
  if (config_.attach_commit_log && tracker_) {
    auto it = qc_updates_.find(high_qc.digest());
    if (it != qc_updates_.end()) {
      for (const StrengthUpdate& update : it->second) {
        commit_log.push_back(
            {update.block_id, update.round, update.strength});
      }
    }
  }

  Block block;
  block.parent_id = parent->id;
  block.round = round;
  block.height = parent->height + 1;
  block.proposer = config_.id;
  block.qc = high_qc;
  block.payload = hooks_.make_payload ? hooks_.make_payload(config_.max_batch)
                                      : pool_.make_batch(config_.max_batch);
  block.log_digest = types::commit_log_digest(commit_log);
  block.created_at = sched_.now();
  block.seal();

  Proposal proposal;
  proposal.block = block;
  if (last_tc_ && last_tc_->round + 1 == round) proposal.tc = last_tc_;
  proposal.commit_log = std::move(commit_log);
  proposal.sig = signer_.sign(proposal.signing_bytes());

  last_proposed_payload_ = {round, block.payload};
  sent_proposals_.push_back(proposal);
  if (obs::Observer* obs = config_.observer) {
    obs->count(config_.id, obs::Counter::kProposalsSent);
    if (obs->recording()) {
      obs->emit(obs::span_event("block", "proposed", config_.id, block.height,
                                block.created_at, sched_.now(),
                                {"round", round}, {"height", block.height}));
    }
    if (obs->tracing()) {
      // Backpressure counter track: what the leader's mempool looked like
      // right after draining this block's batch.
      obs->emit_trace_only(obs::counter_event(
          "mempool", "mempool_depth", config_.id, sched_.now(),
          {"pending", static_cast<std::uint64_t>(pool_.pending())}));
    }
  }
  hooks_.broadcast_proposal(proposal);
}

// ------------------------------------------------------------------- voting

void ChainedCore::on_proposal(const Proposal& proposal) {
  if (stopped_) return;
  const log::Scope log_scope(sched_.now(), config_.id);
  if (!validate_proposal(proposal)) return;
  const Block& block = proposal.block;

  // Fig. 2: replicas act on proposals "during round r" — a proposal for a
  // round we have already moved past is discarded outright, QC included.
  // This is what keeps an outcast leader's late block (and the strong-votes
  // inside its QC) out of every honest replica's bookkeeping, producing the
  // paper's δ = 200 ms asymmetric behaviour: "any strong-QC in the
  // blockchain never contains strong-votes from replicas in C" (Sec. 4.1).
  if (block.round < pacemaker_.current_round()) return;

  if (tree_.contains(block.id)) return;  // duplicate

  const Block* parent = tree_.get(block.parent_id);
  if (parent == nullptr) {
    pending_proposals_[block.parent_id].push_back(proposal);
    // Orphan repair: under an equivocating leader (Appendix C) this replica
    // may have seen only the losing fork — the winning block never arrives
    // on its own, and without it every later proposal is orphaned too. If
    // the parent is still missing after a round timeout, fall back to the
    // block-sync protocol (the same machinery crash recovery uses).
    if (!orphan_repair_armed_) {
      orphan_repair_armed_ = true;
      sched_.schedule_after(config_.base_timeout, [this,
                                                   parent_id = block.parent_id] {
        orphan_repair_armed_ = false;
        if (stopped_ || tree_.contains(parent_id)) return;
        if (pending_proposals_.contains(parent_id)) request_sync();
      });
    }
    return;
  }

  // Structural checks against the parent: heights chain, rounds increase,
  // and the embedded QC really certifies the parent.
  if (block.height != parent->height + 1 || block.round <= parent->round ||
      block.qc.block_id != block.parent_id ||
      block.qc.round != parent->round ||
      block.qc.parent_id != parent->parent_id ||
      block.qc.parent_round != parent->qc.round) {
    return;
  }

  const auto inserted = tree_.insert(block);
  if (inserted != chain::BlockTree::InsertResult::Inserted) return;

  // Proposal arrival milestone (critical-path "proposal transit"). The
  // proposer's own loopback delivery is excluded — it would zero the
  // transit segment for every block.
  if (obs::Observer* obs = config_.observer;
      obs != nullptr && obs->recording() && block.proposer != config_.id) {
    obs->emit(obs::span_event("block", "received", config_.id, block.height,
                              block.created_at, sched_.now(),
                              {"round", block.round}));
  }

  // Locking rule + SFT endorsements + commit rules + Sec. 5 cache.
  observe_qc(block.qc, /*canonical=*/true);

  // A quorum of votes may have raced ahead of the proposal (we lead the
  // next round): the QC can be finalized now that the block is known.
  try_finalize_qc(block.round, block.id);

  // TC justification (round sync after timeouts). Persisted before the
  // round advance: every round-entry path must leave a durable watermark,
  // or a restart could re-enter (and re-propose in) a round it already led.
  if (proposal.tc) {
    observe_qc(proposal.tc->highest_qc(), /*canonical=*/false);
    if (store_ && (!last_tc_ || proposal.tc->round > last_tc_->round)) {
      store_->record_high_tc(*proposal.tc);
    }
    pacemaker_.advance_to(proposal.tc->round + 1);
  }

  // Synchronization rule: the embedded QC advances us into this round.
  pacemaker_.advance_to(block.qc.round + 1);

  // Sec. 5: refuse to vote for proposals overstating commit strengths.
  if (!validate_commit_log(proposal)) {
    log::warn("rejecting proposal with overstated commit log");
    return;
  }

  if (!proposal.commit_log.empty()) {
    logged_proposals_.emplace(block.id, proposal);
  }

  // Vote-availability gate (dissemination mode): never vote for a block
  // whose referenced batches we do not hold — a strong-QC then proves 2f+1
  // replicas can materialize the payload at commit time. The control plane
  // above (tree insert, QC observation, round sync) proceeded normally;
  // only this replica's vote waits for the data plane.
  if (hooks_.payload_available && !hooks_.payload_available(block.payload)) {
    awaiting_batches_.emplace(block.id, block);
    if (hooks_.fetch_payload) hooks_.fetch_payload(block.payload);
  } else {
    maybe_vote(block);
  }

  process_pending_proposals(block.id);
}

void ChainedCore::retry_awaiting_payloads() {
  if (stopped_ || awaiting_batches_.empty()) return;
  std::vector<types::Block> ready;
  for (auto it = awaiting_batches_.begin(); it != awaiting_batches_.end();) {
    if (it->second.round < pacemaker_.current_round()) {
      it = awaiting_batches_.erase(it);  // stale — no longer votable
    } else if (!hooks_.payload_available ||
               hooks_.payload_available(it->second.payload)) {
      ready.push_back(it->second);
      it = awaiting_batches_.erase(it);
    } else {
      ++it;
    }
  }
  // maybe_vote re-checks round/voted state itself, so a parked block whose
  // moment has passed is a silent no-op.
  for (const types::Block& block : ready) {
    // Dissem availability-wait milestone: the batches this block references
    // are finally local (critical-path "dissem wait" ends here).
    if (obs::Observer* obs = config_.observer;
        obs != nullptr && obs->recording()) {
      obs->emit(obs::instant_event("dissem", "payload_ready", config_.id,
                                   sched_.now(), {"round", block.round},
                                   {"height", block.height}));
    }
    maybe_vote(block);
  }
}

bool diembft_safe_to_vote(const Block& block, const SafetyRules& safety,
                          const chain::BlockTree& /*tree*/) {
  // block.qc certifies the parent, so qc.round is the parent's round.
  return block.qc.round >= safety.locked_round();
}

bool ChainedCore::safe_to_vote(const Block& block) const {
  if (!safety_.can_vote(block)) return false;
  const auto rule = config_.rules.safe_to_vote != nullptr
                        ? config_.rules.safe_to_vote
                        : &diembft_safe_to_vote;
  return rule(block, safety_, tree_);
}

void ChainedCore::maybe_vote(const Block& block) {
  if (block.round != pacemaker_.current_round() || pacemaker_.timed_out()) {
    return;
  }
  if (!safe_to_vote(block)) return;

  const Vote vote = build_vote(block);
  safety_.record_vote(block.round);
  history_.record_vote(block);
  // WAL before wire: the vote must be durable before it can reach anyone,
  // or a crash-restart could vote twice in the round.
  persist_vote(&block, block.round);
  if (obs::Observer* obs = config_.observer) {
    obs->count(config_.id, obs::Counter::kVotesSent);
    if (obs->recording()) {
      obs->emit(obs::span_event("block", "voted", config_.id, block.height,
                                block.created_at, sched_.now(),
                                {"round", block.round}));
    }
  }
  hooks_.send_vote(election_.leader_of(block.round + 1), vote);
}

Vote ChainedCore::build_vote(const Block& block) {
  Vote vote;
  vote.block_id = block.id;
  vote.round = block.round;
  vote.voter = config_.id;
  switch (config_.mode) {
    case CoreMode::Plain:
      vote.mode = VoteMode::Plain;
      break;
    case CoreMode::SftMarker:
      vote.mode = VoteMode::Marker;
      vote.marker = history_.marker_for(block);
      break;
    case CoreMode::SftIntervals:
      vote.mode = VoteMode::Intervals;
      vote.endorsed = history_.intervals_for(block, config_.interval_window);
      break;
  }
  vote.sig = signer_.sign(vote.signing_bytes());
  return vote;
}

// ------------------------------------------------------------- QC handling

void ChainedCore::observe_qc(const QuorumCert& qc, bool canonical) {
  const Round prev_high = safety_.high_qc().round;
  safety_.observe_qc(qc);
  persist_qc_watermarks(qc, prev_high);
  if (canonical && hooks_.on_canonical_qc && !qc.is_genesis()) {
    if (const Block* certified = tree_.get(qc.block_id)) {
      hooks_.on_canonical_qc(*certified, qc);
    }
  }
  if (obs::Observer* obs = config_.observer;
      obs != nullptr && canonical && !qc.is_genesis()) {
    if (const Block* certified = tree_.get(qc.block_id);
        certified != nullptr && obs_certified_.insert(qc.block_id).second) {
      obs->count(config_.id, obs::Counter::kBlocksCertified);
      obs->observe(config_.id, obs::Hist::kCertifyLatencyUs,
                   sched_.now() - certified->created_at);
      if (obs->recording()) {
        obs->emit(obs::span_event("block", "certified", config_.id,
                                  certified->height, certified->created_at,
                                  sched_.now(), {"round", certified->round}));
      }
    }
  }
  if (canonical && tracker_) {
    const auto updates = tracker_->process_qc(qc);
    qc_updates_.emplace(qc.digest(), updates);  // keep first (non-reprocessed)
    apply_strength_updates(updates);
  }
  check_regular_commit(qc);

  // Our proposed block got certified: its payload is safely in flight.
  if (last_proposed_payload_ && qc.round == last_proposed_payload_->first) {
    last_proposed_payload_.reset();
  }
}

void ChainedCore::check_regular_commit(const QuorumCert& qc) {
  // Fig. 2 commit rule, phrased on QC receipt (Fig. 3): a QC for B_{k+2}
  // commits B_k when B_k, B_{k+1}, B_{k+2} have consecutive rounds. The
  // same 3-chain rule decides chained HotStuff's commit (its three phases
  // laid out along the chain), so it is kernel machinery, not a rule slot.
  const Block* top = tree_.get(qc.block_id);
  if (top == nullptr) return;
  const Block* mid = tree_.parent_of(top->id);
  if (mid == nullptr || mid->round + 1 != top->round) return;
  const Block* low = tree_.parent_of(mid->id);
  if (low == nullptr || low->height == 0 || low->round + 1 != mid->round) {
    return;
  }
  committer_.commit_chain(*low, config_.f());
}

void ChainedCore::apply_strength_updates(
    const std::vector<StrengthUpdate>& updates) {
  for (const StrengthUpdate& update : updates) {
    if (const Block* head = tree_.get(update.block_id)) {
      committer_.commit_chain(*head, update.strength);
    }
  }
}

// -------------------------------------------------------- vote aggregation

void ChainedCore::on_vote(const Vote& vote) {
  if (stopped_) return;
  if (config_.verify_signatures &&
      (vote.voter != vote.sig.signer ||
       !registry_->verify(vote.sig, vote.signing_bytes(), &cache_))) {
    return;
  }
  if (election_.leader_of(vote.round + 1) != config_.id) {
    // Not the collector for this round. In the FBFT baseline this is an
    // extra vote multicast by the round's leader: count it directly.
    if (config_.fbft_mode) ingest_direct_vote(vote);
    return;
  }
  if (vote.round <= last_sealed_round_) {
    // Arrived after we sealed the QC for its round. SFT drops it
    // (Sec. 3.2); the FBFT baseline must multicast it (Appendix B).
    if (config_.fbft_mode) fbft_handle_late_vote(vote);
    return;
  }
  add_to_aggregator(vote);
}

void ChainedCore::add_to_aggregator(const Vote& vote) {
  PendingVotes& pending = votes_[vote.round][vote.block_id];
  if (pending.finalized) {
    // QC sealed but round not yet advanced (possible mid-event): same late-
    // vote treatment as above.
    if (config_.fbft_mode) fbft_handle_late_vote(vote);
    return;
  }
  if (pending.by_voter.emplace(vote.voter, vote).second) {
    // Vote-arrival ordinals (the paper's strength clock): stamp the moment
    // the (f+1)-th and (2f+1)-th distinct votes landed. The histograms are
    // materialized at finalize_qc, when the block (and its created_at) is
    // guaranteed known.
    const std::size_t distinct = pending.by_voter.size();
    if (distinct == config_.f() + 1) pending.f1_at = sched_.now();
    if (distinct == config_.quorum()) pending.quorum_at = sched_.now();
  }
  try_finalize_qc(vote.round, vote.block_id);
}

void ChainedCore::ingest_direct_vote(const Vote& vote) {
  if (!tracker_) return;
  apply_strength_updates(tracker_->process_extra_vote(vote));
}

void ChainedCore::fbft_handle_late_vote(const Vote& vote) {
  if (hooks_.broadcast_extra_vote) hooks_.broadcast_extra_vote(vote);
  ingest_direct_vote(vote);
}

void ChainedCore::try_finalize_qc(Round round, const BlockId& block_id) {
  auto round_it = votes_.find(round);
  if (round_it == votes_.end()) return;
  auto block_it = round_it->second.find(block_id);
  if (block_it == round_it->second.end()) return;
  PendingVotes& pending = block_it->second;

  if (pending.finalized) return;
  if (pending.by_voter.size() < config_.quorum()) return;
  if (!tree_.contains(block_id)) return;  // wait for the proposal

  const SimDuration wait =
      config_.extra_wait ? config_.extra_wait(round) : SimDuration{0};
  if (wait > 0) {
    // Fig. 8: hold the QC open to fold in late votes (QC diversity).
    if (pending.extra_wait_timer == sim::kInvalidTimer) {
      pending.extra_wait_timer = sched_.schedule_after(
          wait, [this, round, block_id] { finalize_qc(round, block_id); });
    }
    return;
  }
  finalize_qc(round, block_id);
}

void ChainedCore::finalize_qc(Round round, const BlockId& block_id) {
  PendingVotes& pending = votes_[round][block_id];
  if (pending.finalized || stopped_) return;
  pending.finalized = true;
  if (round > last_sealed_round_) last_sealed_round_ = round;
  sched_.cancel(pending.extra_wait_timer);
  pending.extra_wait_timer = sim::kInvalidTimer;

  const Block* block = tree_.get(block_id);
  if (block == nullptr) return;  // restored mid-flight: block no longer known

  if (obs::Observer* obs = config_.observer) {
    if (pending.f1_at > 0) {
      obs->observe(config_.id, obs::Hist::kVoteF1LatencyUs,
                   pending.f1_at - block->created_at);
      if (obs->recording()) {
        obs->emit(obs::instant_event("block", "vote_f1", config_.id,
                                     pending.f1_at, {"round", round},
                                     {"height", block->height}));
      }
    }
    if (pending.quorum_at > 0) {
      obs->observe(config_.id, obs::Hist::kVoteQuorumLatencyUs,
                   pending.quorum_at - block->created_at);
      if (obs->recording()) {
        obs->emit(obs::instant_event("block", "vote_quorum", config_.id,
                                     pending.quorum_at, {"round", round},
                                     {"height", block->height}));
      }
    }
  }

  QuorumCert qc;
  qc.block_id = block_id;
  qc.round = round;
  qc.parent_id = block->parent_id;
  qc.parent_round = block->qc.round;
  // by_voter iterates in ascending voter order, so the folds land already
  // canonical; canonicalize() still runs to seal the digest-memo contract.
  for (const auto& [voter, vote] : pending.by_voter) qc.add_vote(vote);
  qc.canonicalize();

  // The leader processes the QC it formed (it will embed it in its next
  // proposal, so it is canonical) and advances into the led round.
  observe_qc(qc, /*canonical=*/true);
  votes_.erase(votes_.begin(), votes_.upper_bound(round));
  pacemaker_.advance_to(round + 1);
}

// ----------------------------------------------------------------- timeouts

void ChainedCore::on_local_timeout(Round round) {
  if (stopped_) return;
  const log::Scope log_scope(sched_.now(), config_.id);
  // Fig. 2: stop voting for round r, multicast ⟨timeout, r, qc_high⟩.
  safety_.record_vote(round);
  // Persist the abandoned round (no frontier entry): a restart must not
  // vote in a round this replica already timed out of.
  persist_vote(nullptr, round);
  if (last_proposed_payload_ && last_proposed_payload_->first == round) {
    if (hooks_.requeue_payload) {
      hooks_.requeue_payload(last_proposed_payload_->second);
    } else {
      pool_.requeue(last_proposed_payload_->second);
    }
    last_proposed_payload_.reset();
  }
  TimeoutMsg msg;
  msg.round = round;
  msg.sender = config_.id;
  msg.high_qc = safety_.high_qc();
  msg.sig = signer_.sign(msg.signing_bytes());
  hooks_.broadcast_timeout(msg);
}

void ChainedCore::on_timeout_msg(const TimeoutMsg& msg) {
  if (stopped_) return;
  if (config_.verify_signatures &&
      (msg.sender != msg.sig.signer ||
       !registry_->verify(msg.sig, msg.signing_bytes(), &cache_))) {
    return;
  }
  if (!msg.high_qc.is_genesis()) {
    if (config_.verify_signatures &&
        !msg.high_qc.verify(*registry_, config_.quorum(), &cache_)) {
      return;
    }
    // Timeout-borne QCs update locking/qc_high/round but not endorsements
    // (endorser sets must stay canonical across replicas, Sec. 5).
    observe_qc(msg.high_qc, /*canonical=*/false);
    pacemaker_.advance_to(msg.high_qc.round + 1);
  }

  add_timeout(msg);
}

void ChainedCore::add_timeout(const TimeoutMsg& msg) {
  if (msg.round + 1 < pacemaker_.current_round()) return;  // stale
  auto& per_sender = timeouts_[msg.round];
  per_sender.emplace(msg.sender, msg);
  if (per_sender.size() == config_.quorum()) {
    TimeoutCert tc;
    tc.round = msg.round;
    // per_sender iterates in ascending sender order — the canonical
    // (bitmap-bit) order the aggregate fold requires.
    for (const auto& [sender, timeout] : per_sender) tc.add_timeout(timeout);
    last_tc_ = tc;
    if (store_) store_->record_high_tc(tc);
    timeouts_.erase(timeouts_.begin(), timeouts_.upper_bound(msg.round));
    pacemaker_.advance_to(msg.round + 1);
  }
}

// --------------------------------------------------------------- validation

bool ChainedCore::validate_proposal(const Proposal& proposal) const {
  const Block& block = proposal.block;
  if (block.round == 0) return false;
  if (block.proposer != election_.leader_of(block.round)) return false;
  if (!block.id_is_valid()) return false;
  // The sealed Log digest must match the Log actually shipped — this is
  // what makes a vote for the block also vouch for the Log (Sec. 5).
  if (block.log_digest != types::commit_log_digest(proposal.commit_log)) {
    return false;
  }
  if (config_.verify_signatures) {
    if (proposal.sig.signer != block.proposer) return false;
    if (!registry_->verify(proposal.sig, proposal.signing_bytes(), &cache_)) {
      return false;
    }
    if (!block.qc.verify(*registry_, config_.quorum(), &cache_)) return false;
    if (proposal.tc &&
        !proposal.tc->verify(*registry_, config_.quorum(), &cache_)) {
      return false;
    }
  }
  return true;
}

bool ChainedCore::validate_commit_log(const Proposal& proposal) {
  if (!config_.verify_commit_log || !tracker_) return true;
  // Post-restore grace (see trust_commit_log_below_): the rebuilt tracker
  // cannot re-derive pre-crash strengths, and rejecting every log-bearing
  // proposal would keep the replica out of the cluster forever.
  if (proposal.block.round < trust_commit_log_below_) return true;
  // Lenient-but-sound rule: accept entries the local tracker can justify
  // (the QC embedded in this proposal has already been processed). An entry
  // claiming more strength than locally derivable is an overstatement.
  for (const types::CommitLogEntry& entry : proposal.commit_log) {
    if (tracker_->head_strength(entry.block_id) < entry.strength) return false;
  }
  return true;
}

void ChainedCore::process_pending_proposals(const BlockId& parent_id) {
  auto it = pending_proposals_.find(parent_id);
  if (it == pending_proposals_.end()) return;
  const std::vector<Proposal> waiting = std::move(it->second);
  pending_proposals_.erase(it);
  for (const Proposal& proposal : waiting) on_proposal(proposal);
}

// --------------------------------------------------------------- durability

void ChainedCore::persist_vote(const Block* block, Round round) {
  if (!store_) return;
  storage::VoteRecord record;
  record.round = round;
  if (block != nullptr) {
    record.block_id = block->id;
    record.height = block->height;
  }
  store_->record_vote(record);
}

void ChainedCore::persist_qc_watermarks(const QuorumCert& qc,
                                        Round prev_high) {
  if (!store_) return;
  const bool high_grew = qc.round > prev_high;
  const bool lock_grew = safety_.locked_round() > persisted_locked_round_;
  if (!high_grew && !lock_grew) return;
  // One record covers both watermarks: recovery folds every recorded QC's
  // parent_round into the restored lock (max) and keeps the highest-round
  // QC as qc_high.
  store_->record_high_qc(qc);
  persisted_locked_round_ =
      std::max(persisted_locked_round_, qc.parent_round);
}

void ChainedCore::maybe_snapshot() {
  if (!store_ || !store_->snapshot_due(ledger_.committed_blocks())) return;
  const std::optional<Height> tip_height = ledger_.tip();
  if (!tip_height) return;
  const Block* tip = tree_.get(ledger_.at(*tip_height).block_id);
  if (tip == nullptr) return;  // tip below the restored root; wait for sync
  storage::Envelope envelope;
  envelope.voted_round = safety_.voted_round();
  envelope.locked_round = safety_.locked_round();
  envelope.high_qc = safety_.high_qc();
  envelope.high_tc = last_tc_;
  envelope.frontier.reserve(history_.frontier().size());
  for (const VoteHistory::FrontierEntry& entry : history_.frontier()) {
    envelope.frontier.push_back({entry.block_id, entry.round, entry.height});
  }
  store_->write_snapshot(*tip, ledger_.snapshot(), envelope);
}

}  // namespace sftbft::core
