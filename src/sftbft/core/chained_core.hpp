// The chained-BFT SFT kernel (paper Secs. 2.2, 3.2, 3.4).
//
// One class implements the whole responsive chained-QC family — propose /
// vote / QC aggregation / pacemaker round sync / timeout certificates —
// plus the SFT machinery the paper layers on generically: strong-votes
// against a single VoteHistory, strength accounting (StrengthTracker),
// Sec.-5 commit-Log sealing, commit-chain walks (Committer), block sync
// (SyncClient), and the audit tap. Concrete protocols are thin rule sets
// over this kernel:
//
//   * DiemBFT (consensus::diembft_rules — the kernel default): Fig. 2
//     voting rule, parent.round >= r_lock;
//   * chained HotStuff (hotstuff::rules): the original HotStuff liveness
//     rule — vote iff the block extends the locked block OR its QC ranks
//     higher than the lock.
//
// Within one protocol, three variants are selected by CoreMode:
//   * Plain        — the unmodified base protocol: plain votes, regular
//                    3-chain commit only;
//   * SftMarker    — SFT strong-votes carry one marker (Fig. 4), strong
//                    3-chain rule commits at strengths x in [f, 2f];
//   * SftIntervals — Sec.-3.4 generalization: strong-votes carry an
//                    endorsed interval set, buying liveness under Byzantine
//                    (not just crash) faults (Theorem 3).
// Sharing every other code path is what makes the plain-vs-SFT and
// protocol-vs-protocol comparisons in bench/ apples-to-apples.
//
// The core is transport-agnostic: outbound traffic goes through Hooks, and
// inbound messages are fed to on_proposal / on_vote / on_timeout_msg. The
// replica module wires it to the network with the protocol's wire tags.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/chain/ledger.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/consensus/leader_election.hpp"
#include "sftbft/consensus/pacemaker.hpp"
#include "sftbft/core/block_sync.hpp"
#include "sftbft/core/committer.hpp"
#include "sftbft/core/safety.hpp"
#include "sftbft/core/strength.hpp"
#include "sftbft/core/vote_history.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/crypto/verify_cache.hpp"
#include "sftbft/mempool/mempool.hpp"
#include "sftbft/sim/scheduler.hpp"
#include "sftbft/storage/replica_store.hpp"
#include "sftbft/types/proposal.hpp"

namespace sftbft::obs {
class Observer;
}  // namespace sftbft::obs

namespace sftbft::core {

enum class CoreMode {
  Plain,         ///< the unmodified base protocol
  SftMarker,     ///< SFT with one marker (Fig. 4)
  SftIntervals,  ///< SFT with interval votes (Sec. 3.4)
};

/// The protocol-specific rule slots of the chained kernel. A protocol is a
/// named set of predicates over kernel state; everything else (message
/// flow, aggregation, commit machinery) is shared.
struct ChainedRules {
  const char* name = "diembft";
  /// Locking check of the voting rule, evaluated after the universal
  /// SafetyRules preconditions (r > r_vote, rounds increase). Null = the
  /// DiemBFT Fig. 2 rule (diembft_safe_to_vote below), the kernel's
  /// reference protocol.
  bool (*safe_to_vote)(const types::Block& block, const SafetyRules& safety,
                       const chain::BlockTree& tree) = nullptr;
};

/// DiemBFT's Fig. 2 locking check — the kernel's default rule: the parent
/// (whose round the embedded QC carries) must be at least as recent as the
/// lock. Exported so consensus::diembft_rules() can name it explicitly and
/// tests can exercise it directly; there is exactly one implementation.
[[nodiscard]] bool diembft_safe_to_vote(const types::Block& block,
                                        const SafetyRules& safety,
                                        const chain::BlockTree& tree);

struct CoreConfig {
  ReplicaId id = 0;
  std::uint32_t n = 4;
  CoreMode mode = CoreMode::SftMarker;
  CountingRule counting = CountingRule::Sft;
  /// Protocol rule set (default: DiemBFT).
  ChainedRules rules{};

  /// Round timer (Fig. 2 "predefined duration").
  SimDuration base_timeout = millis(3000);
  double timeout_backoff = 1.0;

  /// Modelled leader-side processing (block execution, batching, signature
  /// checks) between QC availability and the proposal broadcast. This is the
  /// calibration constant that puts absolute latencies in the paper's range
  /// (see README.md "Calibration"); shapes do not depend on it.
  SimDuration leader_processing = 0;

  /// Fig. 8 knob: after reaching 2f + 1 votes the leader waits this long,
  /// folding any further votes into the strong-QC ("QC diversity").
  /// Called per round; return 0 for no wait. May be empty.
  std::function<SimDuration(Round)> extra_wait;

  /// Max transactions per block (paper: ~1000).
  std::size_t max_batch = 1000;

  /// Interval-vote window (Sec. 3.4): 0 = full history [1, r].
  Round interval_window = 0;

  /// Sec. 5: attach strong-commit Log entries to proposals / verify them
  /// before voting.
  bool attach_commit_log = true;
  bool verify_commit_log = true;

  /// Verify signatures on inbound messages. On by default; large-n sweeps
  /// may disable to trade fidelity for wall-clock (noted per experiment).
  bool verify_signatures = true;

  /// Appendix-B FBFT baseline: the leader multicasts votes that arrive after
  /// its QC sealed, and every replica counts *direct* votes per block toward
  /// the strong commit rule (quadratic messages — the comparator for
  /// bench/tab_msg_complexity). Use with mode == Plain.
  bool fbft_mode = false;

  /// Observability hub (metrics + trace + flight recorder), stamped by the
  /// Deployment; null = off (every instrumentation site is one pointer
  /// check). Must outlive the core.
  obs::Observer* observer = nullptr;

  [[nodiscard]] std::uint32_t f() const { return (n - 1) / 3; }
  [[nodiscard]] std::uint32_t quorum() const { return 2 * f() + 1; }
};

class ChainedCore {
 public:
  struct Hooks {
    std::function<void(ReplicaId to, const types::Vote&)> send_vote;
    std::function<void(const types::Proposal&)> broadcast_proposal;
    std::function<void(const types::TimeoutMsg&)> broadcast_timeout;
    /// FBFT baseline only: multicast of a late extra vote (Appendix B).
    std::function<void(const types::Vote&)> broadcast_extra_vote;
    /// Fired whenever a block's committed strength first reaches a level
    /// (`strength` = x; the regular commit surfaces as x = f).
    std::function<void(const types::Block&, std::uint32_t strength,
                       SimTime now)>
        on_commit;
    /// Crash recovery: block-sync traffic (see types::SyncRequest). May be
    /// empty when the deployment has no persistent replicas.
    std::function<void(ReplicaId to, const types::SyncRequest&)>
        send_sync_request;
    std::function<void(ReplicaId to, const types::SyncResponse&)>
        send_sync_response;
    /// Auditing tap (harness::SafetyAuditor): fired for every canonical QC
    /// this replica processes, together with the certified block, *before*
    /// the local strength tracker consumes it — so a global observer is
    /// always at least as informed as the replica whose commit claims it is
    /// auditing. May be empty.
    std::function<void(const types::Block&, const types::QuorumCert&)>
        on_canonical_qc;
    /// --- dissemination (all four may be empty = inline payloads) ---
    /// Leader-side payload source: return a digest-referencing Payload built
    /// from the local BatchStore instead of pool_.make_batch.
    std::function<types::Payload(std::size_t max_batch)> make_payload;
    /// Round timed out before certification: return the payload's batches to
    /// the proposable set (the inline path uses pool_.requeue instead).
    std::function<void(const types::Payload&)> requeue_payload;
    /// Vote-availability gate: do all batches a payload references exist
    /// locally? (Implementations also mark them Proposed.) Blocks whose
    /// payload is unavailable are parked, not voted — the SFT guarantee that
    /// 2f+1 voters hold the data by commit time rests on this check.
    std::function<bool(const types::Payload&)> payload_available;
    /// Kick the pull protocol for a payload's missing batches.
    std::function<void(const types::Payload&)> fetch_payload;
  };

  /// `store` (optional) enables durability: the safety envelope is WAL'd as
  /// it changes and the ledger snapshotted on the store's cadence, making
  /// the core restorable via restore() after a crash.
  ChainedCore(CoreConfig config, sim::Scheduler& sched,
              std::shared_ptr<const crypto::KeyRegistry> registry,
              mempool::Mempool& pool, Hooks hooks,
              storage::ReplicaStore* store = nullptr);

  /// Enters round 1 (the round-1 leader proposes off genesis).
  void start();

  /// Simulates a crash: stop timers and ignore all future events.
  void stop();

  /// Crash recovery: rebuilds the core from durable state — tree re-rooted
  /// at the snapshot tip, ledger restored verbatim, SafetyRules seeded with
  /// the WAL's voted round (so the replica can never vote twice in a round,
  /// even before it re-learns the blocks it voted for), VoteHistory frontier
  /// re-imported, pacemaker resumed at the recovered high-QC round. Call
  /// request_sync() afterwards to fetch missed blocks from peers.
  void restore(const storage::RecoveredState& state);

  /// Asks a small rotating window of peers for blocks above the local tree
  /// root, retrying on the SyncClient's watchdog until caught up.
  void request_sync();

  /// Dissemination mode: wires the committer to resolve digest payloads
  /// against `batches` before ledger appends; `pull` fetches batches that
  /// sync brought in certified but undisseminated.
  void attach_batch_store(
      dissem::BatchStore* batches,
      std::function<void(const std::vector<crypto::Sha256Digest>&)> pull) {
    committer_.set_batch_store(batches, std::move(pull));
  }

  /// Re-runs the vote path for proposals parked on missing batches (call
  /// when new batches arrive). Entries that fell behind the current round
  /// are dropped — their round can no longer be voted anyway.
  void retry_awaiting_payloads();

  [[nodiscard]] bool stopped() const { return stopped_; }

  // --- inbound ---
  void on_proposal(const types::Proposal& proposal);
  void on_vote(const types::Vote& vote);
  void on_timeout_msg(const types::TimeoutMsg& msg);
  void on_sync_request(const types::SyncRequest& req);
  void on_sync_response(const types::SyncResponse& resp);

  // --- introspection (tests, metrics, light clients) ---
  [[nodiscard]] const CoreConfig& config() const { return config_; }
  [[nodiscard]] Round current_round() const { return pacemaker_.current_round(); }
  [[nodiscard]] const chain::BlockTree& tree() const { return tree_; }
  [[nodiscard]] const chain::Ledger& ledger() const { return ledger_; }
  [[nodiscard]] const SafetyRules& safety() const { return safety_; }
  [[nodiscard]] const StrengthTracker* strength() const {
    return tracker_ ? tracker_.get() : nullptr;
  }
  [[nodiscard]] const VoteHistory& vote_history() const { return history_; }
  /// Proposals this replica broadcast (ordered); used by light clients to
  /// fetch certified Logs.
  [[nodiscard]] const std::vector<types::Proposal>& sent_proposals() const {
    return sent_proposals_;
  }
  /// Accepted proposals whose Sec.-5 commit Log is non-empty, by block id —
  /// the raw material for light-client proofs.
  [[nodiscard]] const std::unordered_map<types::BlockId, types::Proposal>&
  logged_proposals() const {
    return logged_proposals_;
  }

 private:
  // --- proposing (Fig. 2 proposing rule) ---
  void on_round_entered(Round round);
  void propose(Round round);

  // --- voting (Fig. 2 voting rule + Fig. 4 strong-vote) ---
  [[nodiscard]] bool safe_to_vote(const types::Block& block) const;
  void maybe_vote(const types::Block& block);
  [[nodiscard]] types::Vote build_vote(const types::Block& block);

  // --- QC handling (locking rule, commit rules, round sync) ---
  /// `canonical` — QC is embedded in a chain block (or formed by this
  /// leader) and may feed the strength tracker; timeout-borne QCs are
  /// observed for locking/sync only (keeps endorser sets identical across
  /// replicas for commit-log verification).
  void observe_qc(const types::QuorumCert& qc, bool canonical);
  void check_regular_commit(const types::QuorumCert& qc);
  void apply_strength_updates(const std::vector<StrengthUpdate>& updates);

  // --- vote aggregation (next-round leader) ---
  void add_to_aggregator(const types::Vote& vote);
  void try_finalize_qc(Round round, const types::BlockId& block_id);
  void finalize_qc(Round round, const types::BlockId& block_id);

  // --- FBFT baseline (Appendix B) ---
  void ingest_direct_vote(const types::Vote& vote);
  void fbft_handle_late_vote(const types::Vote& vote);

  // --- timeouts (Fig. 2 timeout rule) ---
  void on_local_timeout(Round round);
  void add_timeout(const types::TimeoutMsg& msg);

  // --- validation ---
  [[nodiscard]] bool validate_proposal(const types::Proposal& proposal) const;
  [[nodiscard]] bool validate_commit_log(const types::Proposal& proposal);
  void process_pending_proposals(const types::BlockId& parent_id);

  // --- durability (no-ops when store_ == nullptr) ---
  void persist_vote(const types::Block* block, Round round);
  /// Records `qc` when it raised qc_high *or* the locked round past their
  /// persisted watermarks (a QC below qc_high can still raise the lock, and
  /// a regressed lock across restart breaks the Fig. 2 locking rule).
  void persist_qc_watermarks(const types::QuorumCert& qc, Round prev_high);
  void maybe_snapshot();

  CoreConfig config_;
  sim::Scheduler& sched_;
  std::shared_ptr<const crypto::KeyRegistry> registry_;
  /// Verification memo for inbound votes and certificates (mutable: memo
  /// lookups happen on const validation paths and never change semantics).
  mutable crypto::VerifyCache cache_;
  crypto::Signer signer_;
  mempool::Mempool& pool_;
  Hooks hooks_;

  consensus::LeaderElection election_;
  chain::BlockTree tree_;
  chain::Ledger ledger_;
  SafetyRules safety_;
  VoteHistory history_;
  consensus::Pacemaker pacemaker_;
  Committer committer_;
  SyncClient sync_;
  std::unique_ptr<StrengthTracker> tracker_;  // null in Plain mode
  storage::ReplicaStore* store_;  // null = no persistence

  bool stopped_ = false;

  /// Post-restore grace: accept proposals' Sec.-5 commit logs without local
  /// re-derivation below this round. The strength tracker is rebuilt from
  /// synced QCs and cannot justify strengths accumulated before the
  /// snapshot tip; commit logs only feed light-client material (never the
  /// ledger), so trusting them briefly is liveness-critical and safety-free.
  Round trust_commit_log_below_ = 0;

  /// Highest locked round already durable (avoids re-recording every QC).
  Round persisted_locked_round_ = 0;

  /// One orphan-repair timer at a time (see on_proposal's orphan branch).
  bool orphan_repair_armed_ = false;

  // Vote aggregation for rounds this replica leads (round -> block -> votes).
  struct PendingVotes {
    std::map<ReplicaId, types::Vote> by_voter;
    sim::TimerId extra_wait_timer = sim::kInvalidTimer;
    bool finalized = false;
    /// Vote-arrival ordinals (the paper's strength clock): sim time when the
    /// (f+1)-th / (2f+1)-th distinct vote landed; 0 = not reached yet.
    SimTime f1_at = 0;
    SimTime quorum_at = 0;
  };
  std::map<Round, std::unordered_map<types::BlockId, PendingVotes>> votes_;

  /// Highest round whose QC this replica sealed as collector — votes at or
  /// below it are "late" (lost in SFT; multicast in the FBFT baseline).
  Round last_sealed_round_ = 0;

  // Timeout aggregation (round -> sender -> msg).
  std::map<Round, std::map<ReplicaId, types::TimeoutMsg>> timeouts_;
  std::optional<types::TimeoutCert> last_tc_;

  // Proposals whose parent has not arrived yet.
  std::unordered_map<types::BlockId, std::vector<types::Proposal>>
      pending_proposals_;

  // Dissemination: blocks inserted in the tree but not voted because a
  // referenced batch had not arrived (vote-availability gate). Keyed by
  // block id; retry_awaiting_payloads re-runs maybe_vote when batches land.
  std::unordered_map<types::BlockId, types::Block> awaiting_batches_;

  // Sec. 5: per-QC strength updates, embedded into the next own proposal.
  std::unordered_map<crypto::Sha256Digest, std::vector<StrengthUpdate>>
      qc_updates_;

  std::vector<types::Proposal> sent_proposals_;

  // Sec. 5: accepted proposals carrying commit-log entries, by block id.
  std::unordered_map<types::BlockId, types::Proposal> logged_proposals_;

  // The payload of the block this replica last proposed but that never got
  // certified (returned to the mempool on timeout).
  std::optional<std::pair<Round, types::Payload>> last_proposed_payload_;

  /// Blocks whose certification was already counted/traced — observe_qc
  /// legitimately replays canonical QCs on the sync path, and replays must
  /// not double-count. Populated only when an observer is attached.
  std::unordered_set<types::BlockId> obs_certified_;
};

}  // namespace sftbft::core
