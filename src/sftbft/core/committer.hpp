// The commit-chain walk (Sec. 2's "commit a block and all its ancestors",
// strengthened by the Sec.-3 strong commit rules) and its side effects —
// ledger append, mempool accounting, durable commit records, commit
// notifications, snapshot cadence — in one place. Every consensus core
// (chained or lock-step) used to carry a verbatim copy of this loop; they
// now share this one.
#pragma once

#include <functional>
#include <vector>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/chain/ledger.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/dissem/batch_store.hpp"
#include "sftbft/mempool/mempool.hpp"
#include "sftbft/sim/scheduler.hpp"
#include "sftbft/storage/replica_store.hpp"

namespace sftbft::core {

class Committer {
 public:
  /// Commit notification: (block, strength, now) — fired once per strength
  /// level first reached per block, ancestors included.
  using OnCommit =
      std::function<void(const types::Block&, std::uint32_t, SimTime)>;

  /// All references must outlive the committer. `store` may be null (no
  /// persistence); `snapshot_hook` (may be empty) runs after each commit
  /// walk so the owning core can write its protocol-specific snapshot
  /// envelope on the store's cadence.
  Committer(const chain::BlockTree& tree, chain::Ledger& ledger,
            mempool::Mempool& pool, sim::Scheduler& sched)
      : tree_(&tree), ledger_(&ledger), pool_(&pool), sched_(&sched) {}

  void set_store(storage::ReplicaStore* store) { store_ = store; }
  void set_on_commit(OnCommit hook) { on_commit_ = std::move(hook); }
  void set_snapshot_hook(std::function<void()> hook) {
    snapshot_hook_ = std::move(hook);
  }

  /// Dissemination mode: digest-referencing payloads are resolved against
  /// `batches` before the ledger append (so committed-transaction counts
  /// and mempool accounting stay exact). `pull` (may be empty) is invoked
  /// with any digests whose batches have not arrived yet — possible only on
  /// the block-sync path, since the vote-availability gate guarantees 2f+1
  /// voters held the data; the store files those batches as committed when
  /// the pull completes.
  void set_batch_store(
      dissem::BatchStore* batches,
      std::function<void(const std::vector<crypto::Sha256Digest>&)> pull) {
    batch_store_ = batches;
    pull_batches_ = std::move(pull);
  }

  /// Commits `head` and all its ancestors at `strength` (strong commit
  /// rule: "x-strong commits a block B_k and all its ancestors"). Stops as
  /// soon as a block already has the strength — deeper ancestors then do
  /// too. Ledger entries are WAL'd when a store is wired, and the snapshot
  /// hook runs once afterwards.
  void commit_chain(const types::Block& head, std::uint32_t strength) {
    for (const types::Block* block = &head;
         block != nullptr && block->height > 0;
         block = tree_->parent_of(block->id)) {
      // Digest payloads materialize to their transactions exactly once (at
      // first commit): the store dedups by digest, so a batch referenced by
      // competing forks counts toward exactly one ledger entry.
      const types::Block* target = block;
      types::Block materialized;
      if (batch_store_ && block->payload.is_digests() &&
          !ledger_->is_committed(block->height)) {
        std::vector<crypto::Sha256Digest> missing;
        materialized = *block;
        materialized.payload = types::Payload{};
        materialized.payload.txns =
            batch_store_->resolve_committed(block->payload, missing);
        if (!missing.empty() && pull_batches_) pull_batches_(missing);
        target = &materialized;
      }
      const auto result = ledger_->commit(*target, strength, sched_->now());
      if (result == chain::Ledger::CommitResult::NoChange) break;
      if (result == chain::Ledger::CommitResult::New) {
        pool_->mark_committed(target->payload);
      }
      if (store_) store_->record_commit(ledger_->at(block->height));
      if (on_commit_) on_commit_(*block, strength, sched_->now());
    }
    if (snapshot_hook_) snapshot_hook_();
  }

 private:
  const chain::BlockTree* tree_;
  chain::Ledger* ledger_;
  mempool::Mempool* pool_;
  sim::Scheduler* sched_;
  storage::ReplicaStore* store_ = nullptr;
  dissem::BatchStore* batch_store_ = nullptr;
  std::function<void(const std::vector<crypto::Sha256Digest>&)> pull_batches_;
  OnCommit on_commit_;
  std::function<void()> snapshot_hook_;
};

}  // namespace sftbft::core
