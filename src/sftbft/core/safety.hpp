// Chained-BFT safety state (paper Fig. 2: voting rule + locking rule).
//
// State per replica: highest voted round r_vote, highest locked round r_lock
// (with the locked block's id), highest quorum certificate qc_high. The
// universal bookkeeping — record votes, lock on the 2-chain, rank QCs — is
// protocol-independent across the chained family; the protocol-specific
// part of the voting rule (DiemBFT's parent.round >= r_lock vs HotStuff's
// extends-locked-or-higher-QC) is supplied by core::ChainedRules and
// evaluated by the ChainedCore, not here.
#pragma once

#include "sftbft/common/types.hpp"
#include "sftbft/types/block.hpp"
#include "sftbft/types/quorum_cert.hpp"

namespace sftbft::core {

class SafetyRules {
 public:
  SafetyRules() = default;

  /// The universal voting preconditions every chained protocol shares:
  /// strictly increasing vote rounds (r > r_vote) and structurally
  /// increasing rounds along the chain. Protocol rules add their locking
  /// check on top (see ChainedRules::safe_to_vote).
  [[nodiscard]] bool can_vote(const types::Block& block) const {
    return block.round > voted_round_ &&   // (1) r > r_vote
           block.round > block.qc.round;   // structural: rounds increase
  }

  /// Records that the replica voted in `round` (updates r_vote).
  void record_vote(Round round) {
    if (round > voted_round_) voted_round_ = round;
  }

  /// Fig. 2 locking rule: on any valid QC, lock on the round of the parent
  /// of the certified block (remembering which block that is), and track
  /// the highest QC.
  void observe_qc(const types::QuorumCert& qc) {
    if (qc.parent_round > locked_round_) {
      locked_round_ = qc.parent_round;
      locked_block_ = qc.parent_id;
    }
    if (qc.round > high_qc_.round) high_qc_ = qc;
  }

  /// Pacemaker hook: stop voting in rounds below `round` (on round entry /
  /// local timeout, Fig. 2 "stops ... voting for round < r").
  void forbid_votes_below(Round round) {
    if (round > 0 && round - 1 > voted_round_) voted_round_ = round - 1;
  }

  /// Seeds qc_high with the genesis QC (round 0, certifying the genesis
  /// block id) so the first leader has a parent to extend.
  void init_high_qc(const types::QuorumCert& genesis_qc) {
    high_qc_ = genesis_qc;
  }

  /// Crash recovery: re-arms the locking rule from the durable watermark.
  /// Restoring the lock from qc_high alone could *regress* it — a
  /// timeout-borne high QC may carry a lower parent round than an earlier
  /// chain QC the replica locked against. The locked block id is not
  /// persisted; it stays empty until the next QC raises the lock (rules
  /// that use it must fall back to the round comparison — see
  /// hotstuff::rules()).
  void restore_locked_round(Round round) {
    if (round > locked_round_) locked_round_ = round;
  }

  [[nodiscard]] Round voted_round() const { return voted_round_; }
  [[nodiscard]] Round locked_round() const { return locked_round_; }
  /// The block the replica is locked on (empty id when never locked, or
  /// when the lock was restored from durable state).
  [[nodiscard]] const types::BlockId& locked_block() const {
    return locked_block_;
  }
  [[nodiscard]] const types::QuorumCert& high_qc() const { return high_qc_; }

 private:
  Round voted_round_ = 0;
  Round locked_round_ = 0;
  types::BlockId locked_block_{};
  types::QuorumCert high_qc_{};  // genesis QC (round 0)
};

}  // namespace sftbft::core
