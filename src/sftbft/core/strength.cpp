#include "sftbft/core/strength.hpp"

#include <algorithm>
#include <limits>

namespace sftbft::core {

using types::Block;
using types::BlockId;
using types::QuorumCert;
using types::Vote;

StrengthTracker::StrengthTracker(const chain::BlockTree& tree, std::uint32_t n,
                                 std::uint32_t f, CountingRule rule)
    : tree_(&tree), n_(n), f_(f), rule_(rule) {}

std::vector<StrengthUpdate> StrengthTracker::process_qc(const QuorumCert& qc) {
  std::vector<StrengthUpdate> updates;
  if (qc.is_genesis()) return updates;
  if (!seen_qcs_.insert(qc.digest()).second) return updates;  // idempotent

  std::vector<BlockId> touched;
  for (const types::QcVote& vote : qc.votes) {
    ingest_chain_vote(qc.block_id, qc.round, vote.voter, vote.meta, touched);
  }

  // Deduplicate before re-evaluating (votes often touch the same ancestors).
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const BlockId& id : touched) {
    reevaluate(id, updates);
  }
  return updates;
}

std::vector<StrengthUpdate> StrengthTracker::process_extra_vote(
    const Vote& vote) {
  std::vector<StrengthUpdate> updates;
  std::vector<BlockId> touched;
  ingest_chain_vote(vote.block_id, vote.round, vote.voter, vote.meta(),
                    touched);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const BlockId& id : touched) {
    reevaluate(id, updates);
  }
  return updates;
}

void StrengthTracker::ingest_chain_vote(const BlockId& block_id,
                                        Round voted_round, ReplicaId voter,
                                        const types::VoteMeta& meta,
                                        std::vector<BlockId>& touched) {
  const Block* block = tree_->get(block_id);
  // QCs are processed after their certified block is linked into the tree;
  // an unknown block here means the caller violated that ordering, and the
  // vote is conservatively ignored (under-counting never harms safety).
  if (block == nullptr) return;

  // Direct endorsement of the voted block itself (marker 0: endorses every
  // threshold).
  auto& own = min_marker_[block->id];
  auto [own_it, own_fresh] = own.try_emplace(voter, 0);
  if (!own_fresh) {
    own_it->second = 0;
  } else {
    touched.push_back(block->id);
  }

  // Indirect endorsements down the ancestor chain. Round-domain records are
  // made only when the vote endorses the ancestor at its own round, so the
  // recorded marker is what the vote carried (markers), or 0 (intervals /
  // the naive strawman, whose endorsement is threshold-independent).
  for (const Block* ancestor = tree_->parent_of(block->id);
       ancestor != nullptr && ancestor->height > 0;
       ancestor = tree_->parent_of(ancestor->id)) {
    bool endorses = false;
    switch (rule_) {
      case CountingRule::NaiveAllIndirect:
        endorses = true;  // Appendix C strawman — provably unsafe
        break;
      case CountingRule::Sft:
        endorses = meta.endorses(voted_round, ancestor->round);
        break;
    }
    if (endorses) {
      const std::uint64_t marker =
          (rule_ == CountingRule::Sft && meta.mode == types::VoteMode::Marker)
              ? meta.marker
              : 0;
      auto& markers = min_marker_[ancestor->id];
      if (!markers.try_emplace(voter, marker).second) {
        // The voter already endorsed this ancestor through an earlier vote.
        // A voter's endorsement power only shrinks over time (markers grow,
        // intervals narrow), so that earlier — at least as permissive —
        // vote already covered everything reachable below here. Stopping
        // keeps the walk O(new blocks) amortized: the paper's "marginal
        // bookkeeping overhead" (Sec. 3.2).
        break;
      }
      touched.push_back(ancestor->id);
      continue;
    }
    // Marker mode: rounds strictly decrease toward genesis, so once
    // ancestor.round <= marker every deeper ancestor fails too.
    if (meta.mode == types::VoteMode::Marker) break;
    // Interval mode: gaps are possible, but nothing below the smallest
    // endorsed round can match.
    if (meta.mode == types::VoteMode::Intervals &&
        (meta.endorsed.empty() || ancestor->round < meta.endorsed.min())) {
      break;
    }
    if (meta.mode == types::VoteMode::Plain) break;  // no indirect power
  }
}

void StrengthTracker::ingest_height_vote(const BlockId& block_id,
                                         ReplicaId voter, Height marker) {
  const Block* block = tree_->get(block_id);
  if (block == nullptr) return;
  // Appendix-C strawman: count every indirect vote as if it carried no
  // history (marker 0 endorses every ancestor height).
  const Height effective =
      rule_ == CountingRule::NaiveAllIndirect ? 0 : marker;
  // Direct votes always endorse their own block (the B = B' case).
  auto& own = min_marker_[block->id];
  auto [it, inserted] = own.try_emplace(voter, 0);
  if (!inserted) it->second = 0;

  for (const Block* ancestor = tree_->parent_of(block->id);
       ancestor != nullptr && ancestor->height > 0;
       ancestor = tree_->parent_of(ancestor->id)) {
    auto& markers = min_marker_[ancestor->id];
    auto [mit, fresh] = markers.try_emplace(voter, effective);
    if (!fresh) {
      if (mit->second <= effective) break;  // older vote was as permissive
      mit->second = effective;
    }
  }
}

void StrengthTracker::reevaluate(const BlockId& id,
                                 std::vector<StrengthUpdate>& updates) {
  // A count change at `id` can complete 3-chains headed at `id`, its parent,
  // or its grandparent.
  const Block* block = tree_->get(id);
  if (block == nullptr) return;
  evaluate_head(*block, updates);
  if (const Block* parent = tree_->parent_of(id)) {
    if (parent->height > 0) evaluate_head(*parent, updates);
    if (const Block* grandparent = tree_->parent_of(parent->id)) {
      if (grandparent->height > 0) evaluate_head(*grandparent, updates);
    }
  }
}

void StrengthTracker::evaluate_head(const Block& head,
                                    std::vector<StrengthUpdate>& updates) {
  const std::uint32_t count_head = endorser_count(head.id);
  if (count_head < 2 * f_ + 1) return;  // cannot reach even x = f

  // Enumerate chains head -> c1 -> c2 with consecutive rounds; equivocation
  // can create several, so take the best.
  std::uint32_t best_min = 0;
  for (const Block* c1 : tree_->children_of(head.id)) {
    if (c1->round != head.round + 1) continue;
    const std::uint32_t count1 = endorser_count(c1->id);
    for (const Block* c2 : tree_->children_of(c1->id)) {
      if (c2->round != c1->round + 1) continue;
      const std::uint32_t count2 = endorser_count(c2->id);
      best_min = std::max(best_min, std::min({count_head, count1, count2}));
    }
  }
  if (best_min < f_ + 1) return;
  const std::uint32_t x = std::min(best_min - f_ - 1, 2 * f_);
  if (x < f_) return;  // strong commit rules start at the regular level

  std::uint32_t& recorded = head_strength_[head.id];
  if (x > recorded) {
    recorded = x;
    updates.push_back({head.id, head.round, x});
  }
}

std::uint32_t StrengthTracker::endorser_count(const BlockId& id,
                                              std::uint64_t threshold) const {
  auto it = min_marker_.find(id);
  if (it == min_marker_.end()) return 0;
  std::uint32_t count = 0;
  for (const auto& [voter, marker] : it->second) {
    if (marker < threshold) ++count;
  }
  return count;
}

std::uint32_t StrengthTracker::endorser_count(const BlockId& id) const {
  // Round-domain records are made only when the vote endorses the block at
  // its own round (marker < round by construction, direct votes at 0), so
  // the recorded-voter count IS the endorser count — O(1), the per-QC hot
  // path (evaluate_head touches up to three blocks per ingested vote).
  auto it = min_marker_.find(id);
  return it == min_marker_.end() ? 0
                                 : static_cast<std::uint32_t>(it->second.size());
}

std::vector<ReplicaId> StrengthTracker::endorsers(
    const BlockId& id, std::uint64_t threshold) const {
  std::vector<ReplicaId> out;
  auto it = min_marker_.find(id);
  if (it != min_marker_.end()) {
    for (const auto& [voter, marker] : it->second) {
      if (marker < threshold) out.push_back(voter);
    }
    std::sort(out.begin(), out.end());
  }
  return out;
}

std::vector<ReplicaId> StrengthTracker::endorsers(const BlockId& id) const {
  const Block* block = tree_->get(id);
  if (block == nullptr) return {};
  return endorsers(id, block->round);
}

std::uint32_t StrengthTracker::head_strength(const BlockId& id) const {
  auto it = head_strength_.find(id);
  return it == head_strength_.end() ? 0 : it->second;
}

std::uint32_t StrengthTracker::effective_strength(const BlockId& id) const {
  // Max head strength over the block itself and every descendant, found by
  // DFS over children. Used for light-client log validation, where chains
  // are short-lived frontiers; fine for simulation scale.
  std::uint32_t best = head_strength(id);
  for (const Block* child : tree_->children_of(id)) {
    best = std::max(best, effective_strength(child->id));
  }
  return best;
}

std::optional<std::uint32_t> streamlet_triple_strength(
    const chain::BlockTree& tree, const StrengthTracker& tracker,
    const Block& middle,
    const std::function<bool(const types::BlockId&)>& certified,
    std::uint32_t n, std::uint32_t f, bool sft) {
  if (middle.height == 0) return std::nullopt;
  const Block* parent = tree.parent_of(middle.id);
  if (parent == nullptr) return std::nullopt;
  if (parent->round + 1 != middle.round) return std::nullopt;
  if (!certified(middle.id)) return std::nullopt;
  if (parent->height > 0 && !certified(parent->id)) return std::nullopt;

  std::optional<std::uint32_t> best;
  for (const Block* child : tree.children_of(middle.id)) {
    if (child->round != middle.round + 1) continue;
    if (!certified(child->id)) continue;

    // Plain Streamlet commit (strength f — 0 at n <= 3, still a commit).
    std::uint32_t strength = f;
    if (sft) {
      // Strong commit rule (Fig. 11): x + f + 1 k-endorsers on all three
      // blocks, with k the height of the committed (middle) block. Genesis
      // as parent is endorsed by everyone by definition.
      const Height k = middle.height;
      const std::uint32_t count =
          std::min({parent->height == 0 ? n
                                        : tracker.endorser_count(parent->id, k),
                    tracker.endorser_count(middle.id, k),
                    tracker.endorser_count(child->id, k)});
      if (count >= f + 1) {
        strength = std::max(strength, std::min(count - f - 1, 2 * f));
      }
    }
    best = std::max(best.value_or(0), strength);
  }
  return best;
}

}  // namespace sftbft::core
