// Strength (endorsement) accounting — the SFT kernel's single bookkeeping
// for "how many replicas k-endorse this block" (paper Fig. 4 / Fig. 5 for
// the chained-QC protocols, Fig. 11 for the lock-step height-marker
// variant). This one class subsumes what used to be three copies of the
// same idea: consensus::EndorsementTracker (DiemBFT), StreamletCore's
// mirrored min-marker triples, and the SafetyAuditor's ground-truth mirror.
//
// The unifying representation: per (block, voter) the tracker keeps the
// most permissive scalar *marker* any of the voter's strong-votes implies,
// in the protocol's position domain —
//
//   * round domain (chained protocols: DiemBFT, HotStuff): a strong-vote
//     ⟨vote, B', r', marker⟩_i endorses a round-r block B iff B = B', or B'
//     extends B and marker < r (interval votes: r ∈ I). Votes arrive packed
//     in strong-QCs (ingest via process_qc);
//   * height domain (Streamlet, Fig. 11): marker = max height of any
//     conflicting voted block; a strong-vote for B' k-endorses B iff
//     B = B', or B' extends B and marker < k. Votes arrive individually
//     (ingest via ingest_height_vote).
//
// Either way "voter endorses (block, threshold t)" is `marker < t`, so one
// count query serves both: the chained strong 3-chain rule evaluates each
// block at its own round, the Streamlet strong commit rule at the committed
// block's height k. The walk per vote is the paper's "marginal bookkeeping":
// ancestors are visited from the voted block downward and the marker prunes
// the walk.
//
// CountingRule::NaiveAllIndirect implements the Appendix-C strawman (count
// every indirect vote, ignore voting history). It exists only to demonstrate
// the safety violation of Fig. 9 in tests/benches — never use it for real.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/types/quorum_cert.hpp"

namespace sftbft::core {

enum class CountingRule {
  Sft,               ///< paper Fig. 4 / Fig. 11: markers gate endorsements
  NaiveAllIndirect,  ///< Appendix C strawman: every indirect vote counts
};

/// "Block `block_id` (round `round`) is now x-strong committed" — emitted
/// when a 3-chain head first reaches strength x (ancestors follow by rule).
struct StrengthUpdate {
  types::BlockId block_id{};
  Round round = 0;
  std::uint32_t strength = 0;

  friend bool operator==(const StrengthUpdate&, const StrengthUpdate&) = default;
};

class StrengthTracker {
 public:
  /// `tree` must outlive the tracker. n = 3f + 1.
  StrengthTracker(const chain::BlockTree& tree, std::uint32_t n,
                  std::uint32_t f, CountingRule rule = CountingRule::Sft);

  // --- round domain (chained protocols) ------------------------------------

  /// Ingests a strong-QC (idempotent per identical QC; unions vote sets of
  /// different QCs for the same block). Every voted block must already be in
  /// the tree. Returns the strong-commit levels newly reached, in discovery
  /// order (3-chain heads only; callers propagate to ancestors).
  std::vector<StrengthUpdate> process_qc(const types::QuorumCert& qc);

  /// Ingests a single vote outside any QC — the Appendix-B FBFT baseline,
  /// where leaders multicast votes arriving after the QC was sealed.
  std::vector<StrengthUpdate> process_extra_vote(const types::Vote& vote);

  /// Highest x such that the block was *directly* x-strong committed as a
  /// 3-chain head; 0 if never. (Ancestors inherit the max over descendant
  /// heads — tracked by the ledger, not here.)
  [[nodiscard]] std::uint32_t head_strength(const types::BlockId& id) const;

  /// Strength the block enjoys through itself or any descendant 3-chain head
  /// (the Sec.-5 quantity light-client log entries are validated against).
  [[nodiscard]] std::uint32_t effective_strength(const types::BlockId& id) const;

  // --- height domain (lock-step protocols) ---------------------------------

  /// Ingests one height-marked strong-vote (Fig. 11): the voter directly
  /// endorses `block_id` (marker 0) and each ancestor at the vote's marker.
  /// No-op when the block is not in the tree yet (replay after sync is
  /// idempotent: markers only ratchet toward the permissive minimum).
  void ingest_height_vote(const types::BlockId& block_id, ReplicaId voter,
                          Height marker);

  // --- counting (both domains) ---------------------------------------------

  /// Number of voters whose recorded marker is < `threshold` (the block's
  /// round for the chained rules, the committed height k for Streamlet).
  [[nodiscard]] std::uint32_t endorser_count(const types::BlockId& id,
                                             std::uint64_t threshold) const;

  /// Round-domain convenience: endorsers of the block at its own round.
  /// Every round-domain record is made only when it endorses there, so
  /// this is the recorded-voter count — O(1), unlike the threshold scan.
  /// Only meaningful on a round-domain (QC-fed) tracker.
  [[nodiscard]] std::uint32_t endorser_count(const types::BlockId& id) const;

  /// The endorsing voter set at `threshold`, sorted (empty if unknown).
  [[nodiscard]] std::vector<ReplicaId> endorsers(const types::BlockId& id,
                                                 std::uint64_t threshold) const;
  [[nodiscard]] std::vector<ReplicaId> endorsers(const types::BlockId& id) const;

  [[nodiscard]] CountingRule rule() const { return rule_; }

 private:
  /// Adds `voter`'s endorsements from a chain vote for `block_id` cast at
  /// `voted_round`, carrying `meta` — the per-voter shape certificates keep;
  /// records every block whose endorser set actually grew into `touched`.
  void ingest_chain_vote(const types::BlockId& block_id, Round voted_round,
                         ReplicaId voter, const types::VoteMeta& meta,
                         std::vector<types::BlockId>& touched);

  /// Re-evaluates 3-chains around a block whose count changed.
  void reevaluate(const types::BlockId& id,
                  std::vector<StrengthUpdate>& updates);

  /// Evaluates the 3-chain headed at `head` (if one exists) and records a
  /// strength increase.
  void evaluate_head(const types::Block& head,
                     std::vector<StrengthUpdate>& updates);

  const chain::BlockTree* tree_;
  std::uint32_t n_;
  std::uint32_t f_;
  CountingRule rule_;

  /// Per block, each voter's most permissive recorded marker ("endorses any
  /// threshold t > marker").
  std::unordered_map<types::BlockId,
                     std::unordered_map<ReplicaId, std::uint64_t>>
      min_marker_;
  std::unordered_map<types::BlockId, std::uint32_t> head_strength_;
  std::unordered_set<crypto::Sha256Digest> seen_qcs_;
};

/// The Fig. 11 strong commit rule for the triple centred at `middle`: finds
/// certified (parent, middle, child) chains with consecutive rounds and
/// returns the best commit strength they support — `f` for a plain triple,
/// up to 2f when `sft` and the k-endorser counts (k = middle's height)
/// allow. Returns nullopt when no certified triple exists (distinct from a
/// valid triple at strength f == 0, which still commits at n <= 3). Shared
/// by StreamletCore (live commits) and the SafetyAuditor (ground truth) so
/// the rule itself exists exactly once.
[[nodiscard]] std::optional<std::uint32_t> streamlet_triple_strength(
    const chain::BlockTree& tree, const StrengthTracker& tracker,
    const types::Block& middle,
    const std::function<bool(const types::BlockId&)>& certified,
    std::uint32_t n, std::uint32_t f, bool sft);

}  // namespace sftbft::core
