#include "sftbft/core/vote_history.hpp"

#include <algorithm>
#include <cassert>

namespace sftbft::core {

void VoteHistory::record_vote(const types::Block& block) {
  assert(tree_->contains(block.id));
  // Drop frontier entries on the same fork (ancestors of the new vote);
  // what remains are the highest voted blocks of *other* forks.
  std::erase_if(frontier_, [&](const FrontierEntry& entry) {
    return tree_->extends(block.id, entry.block_id);
  });
  frontier_.push_back({block.id, block.round, block.height});
}

Round VoteHistory::marker_for(const types::Block& block) const {
  Round marker = 0;
  for (const FrontierEntry& entry : frontier_) {
    // An entry conflicts with `block` iff `block` does not extend it (the
    // entry cannot extend `block`: its round is lower than any new vote's).
    // Unknown entries (restored, not yet re-synced) never satisfy extends()
    // and therefore count — the conservative floor.
    if (entry.round > marker && !tree_->extends(block.id, entry.block_id)) {
      marker = entry.round;
    }
  }
  return marker;
}

Height VoteHistory::height_marker_for(const types::Block& block) const {
  Height marker = 0;
  for (const FrontierEntry& entry : frontier_) {
    if (entry.height > marker && !tree_->extends(block.id, entry.block_id)) {
      marker = entry.height;
    }
  }
  return marker;
}

IntervalSet VoteHistory::intervals_for(const types::Block& block,
                                       Round window) const {
  const Round r = block.round;
  const Round lo = (window == 0 || r <= window) ? 1 : r - window;
  IntervalSet endorsed = IntervalSet::single(lo, r);
  for (const FrontierEntry& entry : frontier_) {
    if (tree_->extends(block.id, entry.block_id)) continue;  // same fork
    if (!tree_->contains(entry.block_id)) {
      // Restored entry whose block has not been re-synced yet: the common
      // ancestor is unknowable, so assume the worst (genesis) and withhold
      // endorsement of everything up to the recorded round. Conservative —
      // heals once sync delivers the block.
      endorsed.subtract(1, entry.round);
      continue;
    }
    // D_F = [r_l + 1, r_h]: r_h = highest voted round on the fork, r_l =
    // round of the common ancestor of `block` and that frontier block.
    const types::Block& ancestor =
        tree_->common_ancestor(block.id, entry.block_id);
    endorsed.subtract(ancestor.round + 1, entry.round);
  }
  return endorsed;
}

void VoteHistory::from_records(std::vector<FrontierEntry> records) {
  frontier_.clear();
  for (const FrontierEntry& record : records) {
    // Drop already-imported entries this record's block extends — the same
    // maintenance rule record_vote applies, so importing a frontier exported
    // from a live history reproduces it exactly. Unknown blocks never
    // satisfy extends() and are kept side by side (conservative).
    std::erase_if(frontier_, [&](const FrontierEntry& entry) {
      return tree_->extends(record.block_id, entry.block_id);
    });
    // ...and skip records that are ancestors of an already-imported entry
    // (records may arrive oldest-first from WAL replay).
    bool dominated = false;
    for (const FrontierEntry& entry : frontier_) {
      if (tree_->extends(entry.block_id, record.block_id)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier_.push_back(record);
  }
}

}  // namespace sftbft::core
