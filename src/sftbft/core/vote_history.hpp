// Voting-history bookkeeping for strong-votes (paper Fig. 4, Sec. 3.4 and
// Appendix D / Fig. 11).
//
// "For every fork in the blockchain, the replica additionally keeps the
// highest voted block on that fork." This class maintains exactly that — the
// *frontier* of voted blocks (voted blocks that are not ancestors of other
// voted blocks; one per fork) — and derives from it:
//
//  * marker(B)   = max{B'.round | B' in frontier, B' conflicts with B}
//                  (0 when the replica never voted on a conflicting fork);
//  * height_marker(B) = the same quantity over block *heights* — the
//    Fig. 11 strong-vote marker of SFT-Streamlet, which keys endorsement by
//    chain position instead of pacemaker round;
//  * intervals(B) = [lo, r] \ ∪_F D_F   with   D_F = [r_l + 1, r_h],
//    where r_h is the highest voted round on fork F and r_l the round of the
//    common ancestor of B and that fork's frontier block (Sec. 3.4). `lo` is
//    1 for full history or r − window for the windowed variant the paper
//    suggests ("the set of intervals for the last n rounds").
//
// Since the voting rules of every supported protocol only allow strictly
// increasing vote rounds, a newly voted block can never be an ancestor of a
// previously voted one, so frontier maintenance is: drop entries the new
// block extends, then append it.
//
// Crash recovery (sftbft::storage): the frontier round-trips through
// to_records()/from_records(). Restored entries may reference blocks the
// rebuilt tree does not contain yet (they arrive via peer sync); until then
// such entries are treated *conservatively* — as conflicting with every
// prospective vote, at their recorded round/height — so a recovered
// replica's markers/intervals can only under-endorse, never over-endorse
// (safe for Theorem 1, at a temporary cost to strong-commit liveness that
// heals once sync completes and the next record_vote collapses the
// frontier). This conservative floor is what StreamletCore's old
// "unresolved frontier + marker floor" implemented by hand.
#pragma once

#include <vector>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/common/interval_set.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/types/block.hpp"

namespace sftbft::core {

class VoteHistory {
 public:
  explicit VoteHistory(const chain::BlockTree& tree) : tree_(&tree) {}

  /// Records a vote for `block` (already inserted into the tree).
  void record_vote(const types::Block& block);

  /// Fig. 4 marker for a prospective vote on `block`.
  [[nodiscard]] Round marker_for(const types::Block& block) const;

  /// Fig. 11 height marker for a prospective vote on `block`: the max height
  /// of any conflicting frontier block (restored entries whose blocks were
  /// never re-learned count at their recorded height — over-reporting a
  /// marker only withholds endorsement, which is safe).
  [[nodiscard]] Height height_marker_for(const types::Block& block) const;

  /// Sec. 3.4 endorsed intervals for a prospective vote on `block`.
  /// `window == 0` means full history ([1, r]); otherwise the last `window`
  /// rounds ([r − window, r], clipped at 1).
  [[nodiscard]] IntervalSet intervals_for(const types::Block& block,
                                          Round window) const;

  struct FrontierEntry {
    types::BlockId block_id{};
    Round round = 0;
    Height height = 0;

    friend bool operator==(const FrontierEntry&, const FrontierEntry&) = default;
  };

  [[nodiscard]] const std::vector<FrontierEntry>& frontier() const {
    return frontier_;
  }

  /// Durable export: the frontier as-is (one record per fork).
  [[nodiscard]] std::vector<FrontierEntry> to_records() const {
    return frontier_;
  }

  /// Rebuilds the frontier from persisted records without replaying votes.
  /// Records whose blocks are known to the tree are pruned against each
  /// other (ancestors of another record are dropped); records for unknown
  /// blocks are kept verbatim and treated conservatively (see file header).
  void from_records(std::vector<FrontierEntry> records);

 private:
  const chain::BlockTree* tree_;
  std::vector<FrontierEntry> frontier_;
};

}  // namespace sftbft::core
