#include "sftbft/crypto/aggregate.hpp"

#include "sftbft/crypto/signature.hpp"

namespace sftbft::crypto {

void SignerBitmap::set(ReplicaId id) {
  const std::size_t byte = id / 8;
  if (byte >= bits.size()) bits.resize(byte + 1, 0);
  bits[byte] = static_cast<std::uint8_t>(bits[byte] | (1u << (id % 8)));
}

void SignerBitmap::clear(ReplicaId id) {
  const std::size_t byte = id / 8;
  if (byte >= bits.size()) return;
  bits[byte] = static_cast<std::uint8_t>(bits[byte] & ~(1u << (id % 8)));
  while (!bits.empty() && bits.back() == 0) bits.pop_back();
}

bool SignerBitmap::test(ReplicaId id) const {
  const std::size_t byte = id / 8;
  if (byte >= bits.size()) return false;
  return (bits[byte] >> (id % 8)) & 1u;
}

std::size_t SignerBitmap::popcount() const {
  std::size_t total = 0;
  for (const std::uint8_t byte : bits) {
    total += static_cast<std::size_t>(__builtin_popcount(byte));
  }
  return total;
}

std::vector<ReplicaId> SignerBitmap::ids() const {
  std::vector<ReplicaId> out;
  out.reserve(popcount());
  for (std::size_t byte = 0; byte < bits.size(); ++byte) {
    for (std::size_t bit = 0; bit < 8; ++bit) {
      if ((bits[byte] >> bit) & 1u) {
        out.push_back(static_cast<ReplicaId>(byte * 8 + bit));
      }
    }
  }
  return out;
}

void SignerBitmap::encode(Encoder& enc) const { enc.bytes(BytesView(bits)); }

SignerBitmap SignerBitmap::decode(Decoder& dec) {
  SignerBitmap bitmap;
  bitmap.bits = dec.bytes();
  if (bitmap.bits.size() > kMaxBytes) {
    throw CodecError("SignerBitmap: length exceeds clamp");
  }
  if (!bitmap.bits.empty() && bitmap.bits.back() == 0) {
    throw CodecError("SignerBitmap: non-canonical trailing zero byte");
  }
  return bitmap;
}

bool AggregateSignature::fold(const Signature& sig) {
  if (sig.signer == kNoReplica || signers.test(sig.signer)) return false;
  signers.set(sig.signer);
  for (std::size_t i = 0; i < tag.size(); ++i) tag[i] ^= sig.mac[i];
  return true;
}

void AggregateSignature::encode(Encoder& enc) const {
  signers.encode(enc);
  enc.raw(tag);
}

AggregateSignature AggregateSignature::decode(Decoder& dec) {
  AggregateSignature agg;
  agg.signers = SignerBitmap::decode(dec);
  const Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), agg.tag.begin());
  return agg;
}

}  // namespace sftbft::crypto
