// Aggregate signatures: a signer bitmap plus one 32-byte aggregate tag.
//
// Substitution note (see README.md "Simulation substitutions"): a production
// deployment would use BLS aggregation — each certificate carries the set of
// signers and a single constant-size signature, verified against the set's
// aggregate public key (cf. AntelopeIO/leap's `quorum_certificate`). The
// simulation realizes the same shape on the HMAC substrate: the aggregate tag
// is the XOR fold of the per-signer MACs, each over that signer's own
// canonical signing bytes, and the registry verifies by recomputing every MAC
// across the bitmap and refolding. This preserves the within-run
// unforgeability contract of `signature.hpp` — producing a valid tag for a
// signer set requires every member's MAC, which only that member's Signer
// (or the verifying registry) can compute — while keeping the interface
// BLS-shaped so a production scheme drops in: certificates never grow with n
// beyond the ⌈n/8⌉-byte bitmap.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sftbft/common/bytes.hpp"
#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"

namespace sftbft::crypto {

struct Signature;

/// The signer set of an aggregate: bit i (byte i/8, bit i%8) = replica i.
/// Canonical form has no trailing zero byte — decode enforces this so a
/// given signer set has exactly one wire encoding.
struct SignerBitmap {
  /// Decode clamp: certificates support n <= 4096 signers, so a hostile
  /// length prefix cannot force a large allocation.
  static constexpr std::size_t kMaxBytes = 512;

  Bytes bits;

  void set(ReplicaId id);
  /// Clears the bit and re-trims trailing zero bytes (canonical form).
  void clear(ReplicaId id);
  [[nodiscard]] bool test(ReplicaId id) const;
  [[nodiscard]] std::size_t popcount() const;
  /// The set replica ids, ascending.
  [[nodiscard]] std::vector<ReplicaId> ids() const;

  void encode(Encoder& enc) const;
  static SignerBitmap decode(Decoder& dec);

  friend bool operator==(const SignerBitmap&, const SignerBitmap&) = default;
};

/// One constant-size signature standing in for the bitmap's signers:
/// ⌈n/8⌉ + 32 bytes on the wire regardless of how many replicas signed.
struct AggregateSignature {
  /// Empty bitmap (u32 length prefix) + tag.
  static constexpr std::size_t kMinEncodedBytes = 4 + 32;

  SignerBitmap signers;
  std::array<std::uint8_t, 32> tag{};

  /// Folds one member signature into the aggregate. Returns false (and
  /// leaves the aggregate untouched) if that signer is already in — folding
  /// a MAC twice would cancel it out of the XOR.
  bool fold(const Signature& sig);

  [[nodiscard]] bool empty() const { return signers.bits.empty(); }

  void encode(Encoder& enc) const;
  static AggregateSignature decode(Decoder& dec);

  friend bool operator==(const AggregateSignature&,
                         const AggregateSignature&) = default;
};

}  // namespace sftbft::crypto
