// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The library is dependency-free: block digests, vote digests and the HMAC
// signature substrate all run on this implementation. Verified against the
// NIST/FIPS test vectors in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "sftbft/common/bytes.hpp"

namespace sftbft::crypto {

/// A 32-byte SHA-256 digest. Ordered and hashable so it can key maps.
struct Sha256Digest {
  std::array<std::uint8_t, 32> bytes{};

  [[nodiscard]] std::string hex() const;
  /// First 8 hex chars, for log readability.
  [[nodiscard]] std::string short_hex() const;

  friend auto operator<=>(const Sha256Digest&, const Sha256Digest&) = default;
};

/// Incremental SHA-256 context (init/update/final).
class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  [[nodiscard]] Sha256Digest finalize();

  /// One-shot convenience.
  static Sha256Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// HMAC-SHA-256 (RFC 2104); verified against RFC 4231 vectors.
Sha256Digest hmac_sha256(BytesView key, BytesView message);

}  // namespace sftbft::crypto

// Hash support so Sha256Digest can key unordered containers.
template <>
struct std::hash<sftbft::crypto::Sha256Digest> {
  std::size_t operator()(const sftbft::crypto::Sha256Digest& d) const noexcept {
    // The digest is uniformly distributed; fold the first 8 bytes.
    std::size_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = (v << 8) | d.bytes[static_cast<std::size_t>(i)];
    }
    return v;
  }
};
