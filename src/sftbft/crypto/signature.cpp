#include "sftbft/crypto/signature.hpp"

#include <stdexcept>

#include "sftbft/common/rng.hpp"

namespace sftbft::crypto {

void Signature::encode(Encoder& enc) const {
  enc.u32(signer);
  enc.raw(mac);
}

Signature Signature::decode(Decoder& dec) {
  Signature sig;
  sig.signer = dec.u32();
  const Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), sig.mac.begin());
  return sig;
}

Signature Signer::sign(BytesView message) const {
  Signature sig;
  sig.signer = id_;
  sig.mac = hmac_sha256(secret_, message).bytes;
  return sig;
}

KeyRegistry::KeyRegistry(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed ^ 0x5f7bfad1c0ffee00ULL);
  secrets_.resize(n);
  for (auto& secret : secrets_) {
    for (std::size_t i = 0; i < secret.size(); i += 8) {
      const std::uint64_t word = rng.next();
      for (std::size_t j = 0; j < 8; ++j) {
        secret[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
      }
    }
  }
}

Signer KeyRegistry::signer_for(ReplicaId id) const {
  if (id >= secrets_.size()) {
    throw std::out_of_range("KeyRegistry::signer_for: unknown replica");
  }
  return Signer(id, secrets_[id]);
}

bool KeyRegistry::verify(const Signature& sig, BytesView message) const {
  if (sig.signer >= secrets_.size()) return false;
  const Sha256Digest expected = hmac_sha256(secrets_[sig.signer], message);
  return ct_equal(expected.bytes, sig.mac);
}

}  // namespace sftbft::crypto
