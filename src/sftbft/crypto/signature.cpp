#include "sftbft/crypto/signature.hpp"

#include <stdexcept>

#include "sftbft/common/rng.hpp"
#include "sftbft/crypto/aggregate.hpp"
#include "sftbft/crypto/verify_cache.hpp"

namespace sftbft::crypto {

void Signature::encode(Encoder& enc) const {
  enc.u32(signer);
  enc.raw(mac);
}

Signature Signature::decode(Decoder& dec) {
  Signature sig;
  sig.signer = dec.u32();
  const Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), sig.mac.begin());
  return sig;
}

Signature Signer::sign(BytesView message) const {
  Signature sig;
  sig.signer = id_;
  sig.mac = hmac_sha256(secret_, message).bytes;
  return sig;
}

KeyRegistry::KeyRegistry(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed ^ 0x5f7bfad1c0ffee00ULL);
  secrets_.resize(n);
  for (auto& secret : secrets_) {
    for (std::size_t i = 0; i < secret.size(); i += 8) {
      const std::uint64_t word = rng.next();
      for (std::size_t j = 0; j < 8; ++j) {
        secret[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
      }
    }
  }
}

Signer KeyRegistry::signer_for(ReplicaId id) const {
  if (id >= secrets_.size()) {
    throw std::out_of_range("KeyRegistry::signer_for: unknown replica");
  }
  return Signer(id, secrets_[id]);
}

bool KeyRegistry::verify(const Signature& sig, BytesView message,
                         VerifyCache* cache) const {
  if (sig.signer >= secrets_.size()) return false;
  const Sha256Digest expected = expected_mac(sig.signer, message, cache);
  return ct_equal(expected.bytes, sig.mac);
}

Sha256Digest KeyRegistry::expected_mac(ReplicaId signer, BytesView message,
                                       VerifyCache* cache) const {
  if (signer >= secrets_.size()) {
    throw std::out_of_range("KeyRegistry::expected_mac: unknown replica");
  }
  if (cache == nullptr) return hmac_sha256(secrets_[signer], message);
  const Sha256Digest msg_digest = Sha256::hash(message);
  if (const Sha256Digest* hit = cache->lookup_mac(signer, msg_digest)) {
    return *hit;
  }
  const Sha256Digest mac = hmac_sha256(secrets_[signer], message);
  cache->store_mac(signer, msg_digest, mac);
  return mac;
}

bool KeyRegistry::verify_aggregate(
    const AggregateSignature& agg,
    const std::function<Bytes(ReplicaId)>& message_for,
    VerifyCache* cache) const {
  const std::vector<ReplicaId> ids = agg.signers.ids();
  if (ids.empty()) return false;
  if (ids.back() >= secrets_.size()) return false;
  std::array<std::uint8_t, 32> fold{};
  for (const ReplicaId id : ids) {
    const Bytes message = message_for(id);
    const Sha256Digest mac = expected_mac(id, BytesView(message), cache);
    for (std::size_t i = 0; i < fold.size(); ++i) fold[i] ^= mac.bytes[i];
  }
  return ct_equal(fold, agg.tag);
}

}  // namespace sftbft::crypto
