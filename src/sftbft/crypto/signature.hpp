// Signature substrate: Signer / Verifier / KeyRegistry (the PKI).
//
// Substitution note (see README.md "Simulation substitutions"): the paper's implementation uses the
// Diem production signature scheme. The protocol logic only requires that a
// Byzantine replica cannot forge an honest replica's vote *within the run*.
// We realize this with HMAC-SHA-256 over per-replica secrets: a replica can
// sign only through its own Signer (which owns its secret), and the registry
// verifies by recomputation. The interfaces mirror asymmetric signatures so a
// production scheme (e.g. Ed25519) can be swapped in without touching
// protocol code.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "sftbft/common/bytes.hpp"
#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/sha256.hpp"

namespace sftbft::crypto {

struct AggregateSignature;
class VerifyCache;

/// A signature over a message digest, tagged with the signer identity.
struct Signature {
  ReplicaId signer = kNoReplica;
  std::array<std::uint8_t, 32> mac{};

  void encode(Encoder& enc) const;
  static Signature decode(Decoder& dec);

  friend bool operator==(const Signature&, const Signature&) = default;
};

class KeyRegistry;

/// Signing capability of one replica. Only the replica's own actor holds its
/// Signer, which is what makes honest votes unforgeable in the simulation.
class Signer {
 public:
  [[nodiscard]] ReplicaId id() const { return id_; }

  /// Signs an arbitrary message (protocol code signs canonical encodings).
  [[nodiscard]] Signature sign(BytesView message) const;

 private:
  friend class KeyRegistry;
  Signer(ReplicaId id, std::array<std::uint8_t, 32> secret)
      : id_(id), secret_(secret) {}

  ReplicaId id_;
  std::array<std::uint8_t, 32> secret_;
};

/// The PKI: generates all replica keys from a seed and verifies signatures.
/// Every replica (and the test harness) holds a shared_ptr to one registry.
class KeyRegistry {
 public:
  /// Deterministically derives `n` replica keys from `seed`.
  KeyRegistry(std::uint32_t n, std::uint64_t seed);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(secrets_.size());
  }

  /// Hands out the signer for `id`. Call once per replica at setup; protocol
  /// code never touches other replicas' signers.
  [[nodiscard]] Signer signer_for(ReplicaId id) const;

  /// True iff `sig` is a valid signature by `sig.signer` over `message`.
  /// With a cache, the recomputed MAC for (signer, message) is memoized —
  /// the presented MAC is still compared against the known-good one, so a
  /// forgery can never be laundered through a hit (see verify_cache.hpp).
  [[nodiscard]] bool verify(const Signature& sig, BytesView message,
                            VerifyCache* cache = nullptr) const;

  /// The correct MAC for (signer, message) — what a Signature by `signer`
  /// over `message` must carry. Cache-aware; `signer` must be in range.
  [[nodiscard]] Sha256Digest expected_mac(ReplicaId signer, BytesView message,
                                          VerifyCache* cache = nullptr) const;

  /// True iff `agg.tag` is the fold of every bitmap member's MAC, each over
  /// `message_for(member)` — the member's own canonical signing bytes. An
  /// empty signer set never verifies.
  [[nodiscard]] bool verify_aggregate(
      const AggregateSignature& agg,
      const std::function<Bytes(ReplicaId)>& message_for,
      VerifyCache* cache = nullptr) const;

 private:
  std::vector<std::array<std::uint8_t, 32>> secrets_;
};

}  // namespace sftbft::crypto
