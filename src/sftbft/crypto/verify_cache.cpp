#include "sftbft/crypto/verify_cache.hpp"

#include "sftbft/obs/observer.hpp"

namespace sftbft::crypto {

const Sha256Digest* VerifyCache::lookup_mac(ReplicaId signer,
                                            const Sha256Digest& message_digest) {
  const auto it = macs_.find(message_digest);
  if (it == macs_.end() || it->second.signer != signer) {
    bump_vote(false);
    return nullptr;
  }
  bump_vote(true);
  return &it->second.mac;
}

void VerifyCache::store_mac(ReplicaId signer, const Sha256Digest& message_digest,
                            const Sha256Digest& mac) {
  if (macs_.size() >= kMaxEntries) macs_.clear();
  macs_[message_digest] = MacEntry{signer, mac};
}

bool VerifyCache::seen_cert(const Sha256Digest& key) {
  const bool hit = certs_.contains(key);
  bump_cert(hit);
  return hit;
}

void VerifyCache::note_cert(const Sha256Digest& key) {
  if (certs_.size() >= kMaxEntries) certs_.clear();
  certs_.insert(key);
}

void VerifyCache::bump_vote(bool hit) {
  if (hit) {
    ++vote_hits_;
  } else {
    ++vote_misses_;
  }
  if (obs_ != nullptr) {
    obs_->count(replica_, hit ? obs::Counter::kVoteVerifyHits
                              : obs::Counter::kVoteVerifyMisses);
  }
}

void VerifyCache::bump_cert(bool hit) {
  if (hit) {
    ++cert_hits_;
  } else {
    ++cert_misses_;
  }
  if (obs_ != nullptr) {
    obs_->count(replica_, hit ? obs::Counter::kCertVerifyHits
                              : obs::Counter::kCertVerifyMisses);
  }
}

}  // namespace sftbft::crypto
