// Receiver-side verification memo for votes and certificates.
//
// The same signature bytes are verified repeatedly on real paths: a vote
// arrives individually at the leader and again inside the sealed QC; a QC is
// re-verified when the proposal that carries it is echoed, when a timeout
// message attaches it, and when sync replays it. The memo makes each of
// those a recomputation exactly once:
//
//  - Vote level: (signer, SHA-256 of the signing bytes) -> the *recomputed*
//    correct MAC. Only MACs this registry derived itself are stored — never
//    attacker input — so a hit still compares the presented MAC against the
//    known-good one; a forged signature can never be laundered through the
//    cache.
//  - Certificate level: a digest of the certificate's full canonical
//    encoding, noted only after a successful verification. Any tamper —
//    header, metadata, bitmap, or tag — changes the encoding, so a mutated
//    certificate misses the memo and pays (and fails) fresh verification.
//    Tests pin this mutate-after-verify property.
//
// One cache per replica (simulations sweep scenarios on a thread pool, so
// caches are never shared across deployments). Effectiveness is surfaced as
// obs counters (sig.vote_verify_hits/misses, sig.cert_verify_hits/misses)
// when an Observer is attached.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "sftbft/common/types.hpp"
#include "sftbft/crypto/sha256.hpp"

namespace sftbft::obs {
class Observer;
}  // namespace sftbft::obs

namespace sftbft::crypto {

class VerifyCache {
 public:
  /// Entry bound per level; reaching it clears that level (epoch reset), so
  /// a long run's memo cannot grow without bound.
  static constexpr std::size_t kMaxEntries = 1u << 16;

  VerifyCache() = default;
  VerifyCache(obs::Observer* obs, ReplicaId replica)
      : obs_(obs), replica_(replica) {}

  /// The memoized correct MAC for (signer, message digest); nullptr = miss.
  /// The pointer is valid until the next store_mac call.
  [[nodiscard]] const Sha256Digest* lookup_mac(
      ReplicaId signer, const Sha256Digest& message_digest);

  /// Memoizes a MAC the registry recomputed itself (see file comment: only
  /// known-good MACs enter the cache).
  void store_mac(ReplicaId signer, const Sha256Digest& message_digest,
                 const Sha256Digest& mac);

  /// True iff a certificate with this canonical-encoding digest already
  /// verified successfully. Counts a cert-level hit/miss either way.
  [[nodiscard]] bool seen_cert(const Sha256Digest& key);

  /// Records a successful certificate verification.
  void note_cert(const Sha256Digest& key);

  [[nodiscard]] std::uint64_t vote_hits() const { return vote_hits_; }
  [[nodiscard]] std::uint64_t vote_misses() const { return vote_misses_; }
  [[nodiscard]] std::uint64_t cert_hits() const { return cert_hits_; }
  [[nodiscard]] std::uint64_t cert_misses() const { return cert_misses_; }

 private:
  struct MacEntry {
    ReplicaId signer = kNoReplica;
    Sha256Digest mac;
  };

  void bump_vote(bool hit);
  void bump_cert(bool hit);

  // Signing bytes embed the signer id, so the message digest alone is a
  // sound key; the entry still pins the signer as a collision guard.
  std::unordered_map<Sha256Digest, MacEntry> macs_;
  std::unordered_set<Sha256Digest> certs_;
  std::uint64_t vote_hits_ = 0;
  std::uint64_t vote_misses_ = 0;
  std::uint64_t cert_hits_ = 0;
  std::uint64_t cert_misses_ = 0;
  obs::Observer* obs_ = nullptr;
  ReplicaId replica_ = kNoReplica;
};

}  // namespace sftbft::crypto
