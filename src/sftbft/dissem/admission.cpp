#include "sftbft/dissem/admission.hpp"

#include <algorithm>

#include "sftbft/obs/observer.hpp"

namespace sftbft::dissem {

namespace {

// Counters always; trace instants only for rejections (admissions are too
// frequent to trace individually — the admitted volume is in the counter).
void note_outcome(const DissemConfig& config, AdmissionFrontend::Outcome out,
                  std::size_t backlog, SimTime now) {
  obs::Observer* obs = config.observer;
  if (obs == nullptr) return;
  obs->gauge(config.self, obs::Gauge::kMempoolBacklog,
             static_cast<std::int64_t>(backlog));
  switch (out) {
    case AdmissionFrontend::Outcome::kAdmitted:
      obs->count(config.self, obs::Counter::kAdmitted);
      return;
    case AdmissionFrontend::Outcome::kDuplicate:
      obs->count(config.self, obs::Counter::kAdmissionDuplicate);
      break;
    case AdmissionFrontend::Outcome::kRateLimited:
      obs->count(config.self, obs::Counter::kAdmissionRateLimited);
      break;
    case AdmissionFrontend::Outcome::kBackpressure:
      obs->count(config.self, obs::Counter::kAdmissionBackpressure);
      break;
  }
  if (obs->recording()) {
    const char* name =
        out == AdmissionFrontend::Outcome::kDuplicate     ? "reject_duplicate"
        : out == AdmissionFrontend::Outcome::kRateLimited ? "reject_rate_limit"
                                                          : "reject_backpressure";
    obs->emit(obs::instant_event("admission", name, config.self, now,
                                 {"backlog", backlog}));
  }
}

}  // namespace

AdmissionFrontend::AdmissionFrontend(mempool::Mempool& pool,
                                     DissemConfig config)
    : pool_(pool), config_(config) {
  pool_.set_capacity(config_.mempool_capacity);
}

AdmissionFrontend::Outcome AdmissionFrontend::submit(std::uint64_t client,
                                                     types::Transaction txn,
                                                     SimTime now) {
  const Outcome out = classify(client, std::move(txn), now);
  note_outcome(config_, out, pool_.pending(), now);
  return out;
}

AdmissionFrontend::Outcome AdmissionFrontend::classify(std::uint64_t client,
                                                       types::Transaction txn,
                                                       SimTime now) {
  ClientState& state = clients_[client];

  if (state.recent.contains(txn.id)) {
    ++stats_.duplicates;
    return Outcome::kDuplicate;
  }

  if (config_.client_rate_limit > 0) {
    if (now - state.window_start >= seconds(1)) {
      state.window_start = now;
      state.window_used = 0;
    }
    if (state.window_used >= config_.client_rate_limit) {
      ++stats_.rate_limited;
      return Outcome::kRateLimited;
    }
  }

  switch (pool_.submit(txn)) {
    case mempool::Mempool::Admit::kDuplicate:
      ++stats_.duplicates;
      return Outcome::kDuplicate;
    case mempool::Mempool::Admit::kFull:
      ++stats_.backpressured;
      return Outcome::kBackpressure;
    case mempool::Mempool::Admit::kAccepted:
      break;
  }

  ++state.window_used;
  state.recent.insert(txn.id);
  state.recent_order.push_back(txn.id);
  while (state.recent_order.size() > config_.client_dedup_window) {
    state.recent.erase(state.recent_order.front());
    state.recent_order.pop_front();
  }
  ++stats_.admitted;
  return Outcome::kAdmitted;
}

ClientSwarm::ClientSwarm(sim::Scheduler& sched, AdmissionFrontend& frontend,
                         mempool::WorkloadConfig workload, DissemConfig config,
                         Rng rng)
    : sched_(sched),
      frontend_(frontend),
      workload_(workload),
      config_(config),
      rng_(rng),
      client_seq_(std::max<std::uint32_t>(1, config.clients), 0) {}

void ClientSwarm::top_up() {
  const std::uint32_t clients =
      static_cast<std::uint32_t>(client_seq_.size());
  // Round-robin over the population; every submission is a distinct client
  // transaction (id space: replica | client | per-client sequence).
  std::size_t rejected_streak = 0;
  while (frontend_.backlog() < workload_.target_pool_size) {
    const std::uint32_t client = next_client_;
    next_client_ = (next_client_ + 1) % clients;
    const std::uint64_t id = (id_space_ << 40) |
                             (static_cast<std::uint64_t>(client) << 26) |
                             client_seq_[client]++;
    const auto outcome = frontend_.submit(
        client,
        types::Transaction{.id = id,
                           .submitted_at = sched_.now(),
                           .size_bytes = workload_.txn_size_bytes},
        sched_.now());
    if (outcome == AdmissionFrontend::Outcome::kAdmitted) {
      ++submitted_;
      rejected_streak = 0;
      continue;
    }
    // Backpressure / rate limits reject the whole population eventually —
    // stop instead of spinning (the next refill tick retries).
    if (++rejected_streak >= clients) break;
  }
}

void ClientSwarm::start() {
  if (running_) return;
  running_ = true;
  top_up();
  schedule_refill();
}

void ClientSwarm::schedule_refill() {
  // Refill cadence: Poisson with the configured mean, or lockstep with the
  // batch interval when arrivals are "saturating" (mean 0).
  SimDuration wait = config_.batch_interval;
  if (workload_.mean_interarrival > 0) {
    wait = std::max<SimDuration>(
        1, static_cast<SimDuration>(rng_.exponential(
               static_cast<double>(workload_.mean_interarrival))));
  }
  sched_.schedule_after(wait, [this] {
    if (!running_) return;
    top_up();
    schedule_refill();
  });
}

}  // namespace sftbft::dissem
