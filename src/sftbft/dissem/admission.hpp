// Client admission: how transactions enter a replica when dissemination is
// on.
//
// The AdmissionFrontend is the gate every submission passes: per-client
// dedup (a retrying client must not double-spend queue slots), per-client
// token-bucket rate limits, and backpressure from the bounded mempool. The
// bench-only WorkloadGenerator bypasses all of this; the frontend is what a
// real RPC edge would run, so the "millions of submitters" claims are
// exercised against admission control instead of a magic firehose.
//
// ClientSwarm simulates that submitter population: a configurable number of
// distinct clients (disjoint id spaces) submitting through the frontend,
// keeping the mempool saturated for the whole run the way the paper's
// "sufficiently many transactions" setup assumes. Deterministic given its
// Rng fork.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sftbft/common/rng.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/dissem/config.hpp"
#include "sftbft/mempool/mempool.hpp"
#include "sftbft/sim/scheduler.hpp"

namespace sftbft::dissem {

class AdmissionFrontend {
 public:
  enum class Outcome : std::uint8_t {
    kAdmitted,
    kDuplicate,     ///< seen in the client's dedup window or the mempool
    kRateLimited,   ///< client exceeded its per-second budget
    kBackpressure,  ///< mempool at capacity; retry later
  };

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t backpressured = 0;
  };

  AdmissionFrontend(mempool::Mempool& pool, DissemConfig config);

  /// One client submission at simulation time `now`.
  Outcome submit(std::uint64_t client, types::Transaction txn, SimTime now);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Current mempool backlog (the swarm's saturation signal).
  [[nodiscard]] std::size_t backlog() const { return pool_.pending(); }

 private:
  /// The decision logic; submit() wraps it with observability reporting.
  Outcome classify(std::uint64_t client, types::Transaction txn, SimTime now);

  struct ClientState {
    /// Recently admitted ids, FIFO-bounded to client_dedup_window.
    std::unordered_set<std::uint64_t> recent;
    std::deque<std::uint64_t> recent_order;
    /// Token-bucket window (one second, client_rate_limit tokens).
    SimTime window_start = 0;
    std::uint32_t window_used = 0;
  };

  mempool::Mempool& pool_;
  DissemConfig config_;
  Stats stats_;
  std::unordered_map<std::uint64_t, ClientState> clients_;
};

/// The simulated submitter population behind one replica's frontend.
class ClientSwarm {
 public:
  ClientSwarm(sim::Scheduler& sched, AdmissionFrontend& frontend,
              mempool::WorkloadConfig workload, DissemConfig config, Rng rng);

  /// Disjoint per-replica id space (call with the replica id, like
  /// WorkloadGenerator::set_id_space).
  void set_id_space(std::uint64_t space) { id_space_ = space; }

  /// Synchronously refills the backlog to the workload target.
  void top_up();

  /// Keeps the backlog topped up for the whole run (periodic refill — the
  /// data plane continuously drains the pool into batches, so a one-shot
  /// top_up would starve it).
  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }

 private:
  void schedule_refill();

  sim::Scheduler& sched_;
  AdmissionFrontend& frontend_;
  mempool::WorkloadConfig workload_;
  DissemConfig config_;
  Rng rng_;
  std::uint64_t id_space_ = 0;
  std::uint32_t next_client_ = 0;
  /// Per-client submission counters (ids stay unique per client).
  std::vector<std::uint32_t> client_seq_;
  std::uint64_t submitted_ = 0;
  bool running_ = false;
};

}  // namespace sftbft::dissem
