#include "sftbft/dissem/batch.hpp"

#include <algorithm>

namespace sftbft::dissem {

namespace {

/// The digest input: a domain separator plus the canonical records (no
/// bodies — they are a pure function of the records, so binding the records
/// binds the full wire bytes, exactly as Payload::records_digest does for
/// inline blocks).
crypto::Sha256Digest content_digest(const Batch& batch) {
  Encoder enc;
  enc.reserve(16 + 4 + 8 + 4 +
              batch.txns.size() * types::Transaction::kRecordBytes);
  enc.str("sftbft/batch");
  enc.u32(batch.creator);
  enc.u64(batch.seq);
  enc.u32(static_cast<std::uint32_t>(batch.txns.size()));
  for (const types::Transaction& txn : batch.txns) txn.encode(enc);
  return crypto::Sha256::hash(enc.data());
}

}  // namespace

void Batch::seal() { digest = content_digest(*this); }

bool Batch::digest_is_valid() const { return digest == content_digest(*this); }

std::uint64_t Batch::total_bytes() const {
  std::uint64_t total = 0;
  for (const types::Transaction& txn : txns) total += txn.size_bytes;
  return total;
}

void Batch::encode(Encoder& enc) const {
  enc.reserve(kMinEncodedBytes +
              txns.size() * types::Transaction::kRecordBytes + total_bytes());
  enc.raw(digest.bytes);
  enc.u32(creator);
  enc.u64(seq);
  enc.u32(static_cast<std::uint32_t>(txns.size()));
  for (const types::Transaction& txn : txns) {
    txn.encode(enc);
    types::append_synthetic_body(enc, txn.id, txn.size_bytes);
  }
}

Batch Batch::decode(Decoder& dec) {
  Batch batch;
  const Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), batch.digest.bytes.begin());
  batch.creator = dec.u32();
  batch.seq = dec.u64();
  const std::uint32_t count = dec.count(types::Transaction::kRecordBytes);
  batch.txns.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    types::Transaction txn = types::Transaction::decode(dec);
    // Bodies are derived from the record (Envelope CRC guards the raw
    // bytes): skip instead of materializing.
    dec.skip(txn.size_bytes);
    batch.txns.push_back(txn);
  }
  return batch;
}

void BatchPush::encode(Encoder& enc) const { batch.encode(enc); }

BatchPush BatchPush::decode(Decoder& dec) {
  return BatchPush{Batch::decode(dec)};
}

void BatchRequest::encode(Encoder& enc) const {
  enc.reserve(4 + 4 + digests.size() * 32);
  enc.u32(requester);
  enc.u32(static_cast<std::uint32_t>(digests.size()));
  for (const crypto::Sha256Digest& digest : digests) enc.raw(digest.bytes);
}

BatchRequest BatchRequest::decode(Decoder& dec) {
  BatchRequest req;
  req.requester = dec.u32();
  const std::uint32_t count = dec.count(32);
  req.digests.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    crypto::Sha256Digest digest;
    const Bytes raw = dec.raw(32);
    std::copy(raw.begin(), raw.end(), digest.bytes.begin());
    req.digests.push_back(digest);
  }
  return req;
}

void BatchResponse::encode(Encoder& enc) const {
  enc.u32(static_cast<std::uint32_t>(batches.size()));
  for (const Batch& batch : batches) batch.encode(enc);
}

BatchResponse BatchResponse::decode(Decoder& dec) {
  BatchResponse resp;
  const std::uint32_t count = dec.count(Batch::kMinEncodedBytes);
  resp.batches.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    resp.batches.push_back(Batch::decode(dec));
  }
  return resp;
}

}  // namespace sftbft::dissem
