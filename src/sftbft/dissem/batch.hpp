// Content-addressed transaction batches — the dissemination data plane's
// unit of transfer (the Narwhal/Tusk decoupling, scaled to this simulator).
//
// Every replica continuously packs its own mempool into batches and pushes
// them to peers OFF the consensus critical path. Consensus then orders
// 32-byte batch digests instead of ~450 KB of transaction bodies: the
// leader's proposal shrinks to a digest list, and leader egress stops being
// O(n · block). A batch's digest is the SHA-256 of its canonical records
// (creator, sequence number, transaction records), so a digest in a
// committed block binds the exact transactions regardless of which peer the
// bytes were fetched from.
//
// Three messages make up the 0x4x wire registry (net::WireType):
//   BatchPush     -- creator -> all: proactive dissemination
//   BatchRequest  -- puller -> peer: digests the puller is missing
//   BatchResponse -- peer -> puller: the batches it can serve
// Like every other message in the repo they have canonical Encoder/Decoder
// codecs and travel inside net::Envelope — encode().size() IS the wire cost.
#pragma once

#include <cstdint>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/sha256.hpp"
#include "sftbft/types/transaction.hpp"

namespace sftbft::dissem {

struct Batch {
  crypto::Sha256Digest digest{};  ///< derived: content address (see seal)
  ReplicaId creator = kNoReplica;
  /// Creator-local sequence number (creator + seq is unique per batch even
  /// when two batches happen to carry identical transaction lists).
  std::uint64_t seq = 0;
  std::vector<types::Transaction> txns;

  /// Recomputes `digest` from creator, seq, and the transaction records.
  void seal();

  /// True iff `digest` matches the current contents — receivers validate
  /// every batch before storing it, so a peer cannot serve tampered bytes
  /// under an honest digest.
  [[nodiscard]] bool digest_is_valid() const;

  /// Sum of transaction body sizes (the synthetic-body wire weight).
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Canonical wire encoding: digest, creator, seq, count, then per
  /// transaction the record followed by its synthetic body (same
  /// skip-on-decode / regenerate-on-encode scheme as types::Payload).
  void encode(Encoder& enc) const;
  static Batch decode(Decoder& dec);

  /// Minimum encoded size (empty batch): bounds untrusted batch counts
  /// while decoding BatchResponse.
  static constexpr std::size_t kMinEncodedBytes = 32 + 4 + 8 + 4;

  friend bool operator==(const Batch& a, const Batch& b) {
    return a.digest == b.digest && a.creator == b.creator && a.seq == b.seq &&
           a.txns == b.txns;
  }
};

/// Proactive dissemination: the creator broadcasts each freshly packed
/// batch to all peers.
struct BatchPush {
  Batch batch;

  void encode(Encoder& enc) const;
  static BatchPush decode(Decoder& dec);

  friend bool operator==(const BatchPush&, const BatchPush&) = default;
};

/// Pull: digests the requester saw referenced (in a proposal or a committed
/// block) but never received the bytes for.
struct BatchRequest {
  ReplicaId requester = kNoReplica;
  std::vector<crypto::Sha256Digest> digests;

  void encode(Encoder& enc) const;
  static BatchRequest decode(Decoder& dec);

  friend bool operator==(const BatchRequest&, const BatchRequest&) = default;
};

/// Pull response: whichever requested batches the responder holds (missing
/// ones are simply absent — the puller's rotating-window retry asks someone
/// else).
struct BatchResponse {
  std::vector<Batch> batches;

  void encode(Encoder& enc) const;
  static BatchResponse decode(Decoder& dec);

  friend bool operator==(const BatchResponse&, const BatchResponse&) = default;
};

}  // namespace sftbft::dissem
