#include "sftbft/dissem/batch_store.hpp"

namespace sftbft::dissem {

bool BatchStore::add(Batch batch) {
  const crypto::Sha256Digest digest = batch.digest;
  auto [it, inserted] = entries_.try_emplace(digest, Entry{std::move(batch)});
  if (!inserted) return false;
  if (committed_missing_.erase(digest) > 0) {
    // The ordering committed this digest before the bytes arrived; the
    // late batch goes straight to Committed (it must not be re-proposed).
    it->second.status = Status::kCommitted;
    ++committed_batches_;
    return true;
  }
  order_.push_back(digest);
  return true;
}

const Batch* BatchStore::find(const crypto::Sha256Digest& digest) const {
  const auto it = entries_.find(digest);
  return it == entries_.end() ? nullptr : &it->second.batch;
}

types::Payload BatchStore::make_payload(std::size_t max_batches, SimTime now,
                                        SimDuration repropose_after) {
  std::vector<crypto::Sha256Digest> digests;
  for (const crypto::Sha256Digest& digest : order_) {
    if (digests.size() >= max_batches) break;
    const auto it = entries_.find(digest);
    if (it == entries_.end()) continue;
    Entry& entry = it->second;
    const bool stale_reference =
        entry.status == Status::kProposed &&
        now - entry.proposed_at >= repropose_after;
    if (entry.status != Status::kAvailable && !stale_reference) continue;
    entry.status = Status::kProposed;
    entry.proposed_at = now;
    digests.push_back(digest);
  }
  return types::Payload::referencing(std::move(digests));
}

std::vector<crypto::Sha256Digest> BatchStore::missing(
    const types::Payload& payload) const {
  std::vector<crypto::Sha256Digest> out;
  for (const crypto::Sha256Digest& digest : payload.batch_digests) {
    if (!entries_.contains(digest)) out.push_back(digest);
  }
  return out;
}

void BatchStore::observe_reference(const types::Payload& payload,
                                   SimTime now) {
  for (const crypto::Sha256Digest& digest : payload.batch_digests) {
    const auto it = entries_.find(digest);
    if (it == entries_.end()) continue;
    if (it->second.status != Status::kAvailable) continue;
    it->second.status = Status::kProposed;
    it->second.proposed_at = now;
  }
}

void BatchStore::requeue(const types::Payload& payload) {
  for (const crypto::Sha256Digest& digest : payload.batch_digests) {
    const auto it = entries_.find(digest);
    if (it == entries_.end()) continue;
    if (it->second.status == Status::kProposed) {
      it->second.status = Status::kAvailable;
    }
  }
}

std::vector<types::Transaction> BatchStore::resolve_committed(
    const types::Payload& payload,
    std::vector<crypto::Sha256Digest>& missing_out) {
  std::vector<types::Transaction> txns;
  for (const crypto::Sha256Digest& digest : payload.batch_digests) {
    const auto it = entries_.find(digest);
    if (it == entries_.end()) {
      if (committed_missing_.insert(digest).second) missing_out.push_back(digest);
      continue;
    }
    Entry& entry = it->second;
    if (entry.status == Status::kCommitted) continue;  // fork duplicate
    entry.status = Status::kCommitted;
    ++committed_batches_;
    txns.insert(txns.end(), entry.batch.txns.begin(), entry.batch.txns.end());
  }
  return txns;
}

std::size_t BatchStore::proposable() const {
  std::size_t count = 0;
  for (const auto& [digest, entry] : entries_) {
    count += entry.status == Status::kAvailable;
  }
  return count;
}

}  // namespace sftbft::dissem
