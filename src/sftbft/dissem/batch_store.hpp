// BatchStore: one replica's content-addressed view of the data plane.
//
// Every batch the replica packed itself or received (push or pull) lives
// here, keyed by digest, with a proposable-state machine per batch:
//
//   Available --(referenced by a proposal)--> Proposed --(commit)--> Committed
//        ^                                        |
//        +----(repropose_after with no commit)----+
//
// Leaders draw digest-mode payloads from the Available set (oldest first,
// any creator — a leader proposes everyone's batches, which is exactly how
// the data plane multiplies throughput by n). Duplicate references across
// forks are harmless: commit-time resolution dedups by digest, so a batch's
// transactions count exactly once no matter how many competing blocks named
// it.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sftbft/common/types.hpp"
#include "sftbft/dissem/batch.hpp"
#include "sftbft/types/transaction.hpp"

namespace sftbft::dissem {

class BatchStore {
 public:
  enum class Status : std::uint8_t { kAvailable, kProposed, kCommitted };

  /// Adds a validated batch. Returns true if new. A batch whose digest was
  /// already committed (data arrived after the ordering did — the pull
  /// fallback on the sync path) is stored directly as Committed.
  bool add(Batch batch);

  [[nodiscard]] bool has(const crypto::Sha256Digest& digest) const {
    return entries_.contains(digest);
  }
  [[nodiscard]] const Batch* find(const crypto::Sha256Digest& digest) const;

  /// Builds a digest-mode payload from proposable batches, oldest first:
  /// Available ones, plus Proposed ones whose reference is older than
  /// `repropose_after` (their block evidently never certified). Marks every
  /// referenced batch Proposed as of `now`.
  [[nodiscard]] types::Payload make_payload(std::size_t max_batches,
                                            SimTime now,
                                            SimDuration repropose_after);

  /// Digests referenced by `payload` whose batches this store is missing
  /// (empty = the payload is fully available locally).
  [[nodiscard]] std::vector<crypto::Sha256Digest> missing(
      const types::Payload& payload) const;

  /// Records that a (validated, vote-worthy) proposal referenced these
  /// digests: present Available batches move to Proposed so this replica
  /// does not re-propose digests already in flight under another leader.
  void observe_reference(const types::Payload& payload, SimTime now);

  /// Returns a proposed payload's batches to Available (the proposing round
  /// timed out before certification).
  void requeue(const types::Payload& payload);

  /// Commit-time resolution: returns the referenced transactions in order,
  /// skipping batches already committed (exactly-once counting across
  /// forks) and marking the rest Committed. Digests with no local batch
  /// (possible only on the block-sync path — the vote-availability gate
  /// guarantees 2f + 1 voters held the data) are appended to `missing_out`
  /// and remembered, so the batch is filed straight as Committed when the
  /// pull completes.
  [[nodiscard]] std::vector<types::Transaction> resolve_committed(
      const types::Payload& payload,
      std::vector<crypto::Sha256Digest>& missing_out);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t proposable() const;
  [[nodiscard]] std::uint64_t committed_batches() const {
    return committed_batches_;
  }

 private:
  struct Entry {
    Batch batch;
    Status status = Status::kAvailable;
    SimTime proposed_at = 0;
  };

  std::unordered_map<crypto::Sha256Digest, Entry> entries_;
  /// Proposable scan order (arrival order; lazily pruned).
  std::deque<crypto::Sha256Digest> order_;
  /// Committed before the data arrived (sync path); add() consults this.
  std::unordered_set<crypto::Sha256Digest> committed_missing_;
  std::uint64_t committed_batches_ = 0;
};

}  // namespace sftbft::dissem
