#include "sftbft/dissem/broadcaster.hpp"

#include "sftbft/obs/observer.hpp"
#include "sftbft/sim/scheduler.hpp"

namespace sftbft::dissem {

using net::Envelope;
using net::WireType;

BatchBroadcaster::BatchBroadcaster(ReplicaId id, net::Transport& transport,
                                   mempool::Mempool& pool, BatchStore& store,
                                   DissemConfig config,
                                   ArrivalCallback on_arrival, Options options)
    : id_(id),
      n_(transport.size()),
      transport_(transport),
      pool_(pool),
      store_(store),
      config_(config),
      on_arrival_(std::move(on_arrival)),
      options_(options) {}

void BatchBroadcaster::start() {
  if (running_) return;
  running_ = true;
  // Pack immediately (the mempool is topped up before start), then settle
  // into the periodic cadence.
  pack_and_push();
  schedule_pack();
}

void BatchBroadcaster::stop() { running_ = false; }

void BatchBroadcaster::schedule_pack() {
  transport_.scheduler().schedule_after(config_.batch_interval, [this] {
    if (!running_) return;
    pack_and_push();
    schedule_pack();
  });
}

void BatchBroadcaster::pack_and_push() {
  const types::Payload drained = pool_.make_batch(config_.batch_max_txns);
  if (drained.txns.empty()) return;
  Batch batch;
  batch.creator = id_;
  batch.seq = seq_++;
  batch.txns = drained.txns;
  batch.seal();
  store_.add(batch);
  ++batches_packed_;
  if (obs::Observer* obs = config_.observer) {
    obs->count(id_, obs::Counter::kBatchesPacked);
    if (obs->recording()) {
      obs->emit(obs::instant_event(
          "dissem", "batch_packed", id_, transport_.scheduler().now(),
          {"seq", batch.seq}, {"txns", batch.txns.size()}));
    }
    if (obs->tracing()) {
      obs->emit_trace_only(obs::counter_event(
          "dissem", "batch_store", id_, transport_.scheduler().now(),
          {"batches", static_cast<std::uint64_t>(store_.size())}));
    }
  }
  if (options_.silent || options_.withhold_push) return;
  transport_.broadcast(Envelope::pack(WireType::kBatchPush, id_,
                                      BatchPush{std::move(batch)}),
                       /*include_self=*/false);
}

void BatchBroadcaster::ingest(const Batch& batch, bool& any_new) {
  // The content address is the only trust anchor on the data plane: a batch
  // whose digest does not match its bytes is discarded no matter who sent
  // it.
  if (!batch.digest_is_valid()) return;
  if (!store_.add(batch)) return;
  const bool was_missing = missing_.erase(batch.digest) > 0;
  any_new = true;
  if (obs::Observer* obs = config_.observer; obs != nullptr) {
    if (was_missing) {
      obs->count(id_, obs::Counter::kBatchesResolved);
      if (obs->recording()) {
        obs->emit(obs::instant_event("dissem", "batch_resolved", id_,
                                     transport_.scheduler().now(),
                                     {"still_missing", missing_.size()}));
      }
    }
    if (obs->tracing()) {
      obs->emit_trace_only(obs::counter_event(
          "dissem", "batch_store", id_, transport_.scheduler().now(),
          {"batches", static_cast<std::uint64_t>(store_.size())}));
    }
  }
}

void BatchBroadcaster::on_push(const BatchPush& push) {
  bool any_new = false;
  ingest(push.batch, any_new);
  if (any_new && on_arrival_) on_arrival_();
}

void BatchBroadcaster::on_request(const BatchRequest& req) {
  if (options_.silent) return;
  if (req.requester >= n_ || req.requester == id_) return;
  BatchResponse resp;
  for (const crypto::Sha256Digest& digest : req.digests) {
    if (resp.batches.size() >= config_.pull_max_digests) break;
    const Batch* batch = store_.find(digest);
    if (batch != nullptr) resp.batches.push_back(*batch);
  }
  if (resp.batches.empty()) return;
  transport_.send(req.requester,
                  Envelope::pack(WireType::kBatchResponse, id_, resp));
}

void BatchBroadcaster::on_response(const BatchResponse& resp) {
  bool any_new = false;
  for (const Batch& batch : resp.batches) ingest(batch, any_new);
  if (any_new && on_arrival_) on_arrival_();
}

void BatchBroadcaster::want(
    const std::vector<crypto::Sha256Digest>& digests) {
  bool added = false;
  for (const crypto::Sha256Digest& digest : digests) {
    if (store_.has(digest)) continue;
    if (!missing_.insert(digest).second) continue;
    missing_order_.push_back(digest);
    added = true;
  }
  if (added && !pull_watchdog_armed_) pull_round();
}

void BatchBroadcaster::pull_round() {
  // Drop already-arrived digests from the scan order.
  while (!missing_order_.empty() && !missing_.contains(missing_order_.front())) {
    missing_order_.pop_front();
  }
  if (missing_order_.empty()) {
    pull_attempts_ = 0;
    return;
  }

  BatchRequest req;
  req.requester = id_;
  for (const crypto::Sha256Digest& digest : missing_order_) {
    if (req.digests.size() >= config_.pull_max_digests) break;
    if (missing_.contains(digest)) req.digests.push_back(digest);
  }

  if (!options_.silent && !req.digests.empty()) {
    // Rotating window (core::SyncClient's policy): each retry asks the next
    // `fanout` peers, so a single unresponsive (or withholding) peer cannot
    // stall the pull.
    const std::uint32_t fanout = std::max(1u, config_.pull_fanout);
    for (std::uint32_t k = 0; k < fanout && k + 1 < n_; ++k) {
      const ReplicaId to =
          (id_ + 1 + pull_attempts_ * fanout + k) % n_;
      if (to == id_) continue;
      transport_.send(to, Envelope::pack(WireType::kBatchRequest, id_, req));
      ++pull_requests_sent_;
    }
    ++pull_attempts_;
    if (obs::Observer* obs = config_.observer) {
      obs->count(id_, obs::Counter::kBatchPullRounds);
      if (obs->recording()) {
        obs->emit(obs::instant_event(
            "dissem", "batch_pull", id_, transport_.scheduler().now(),
            {"missing", missing_.size()}, {"attempt", pull_attempts_}));
      }
    }
  }

  pull_watchdog_armed_ = true;
  transport_.scheduler().schedule_after(config_.pull_retry, [this] {
    pull_watchdog_armed_ = false;
    if (!running_) return;
    if (!missing_.empty()) pull_round();
  });
}

}  // namespace sftbft::dissem
