// BatchBroadcaster: the active half of the data plane at one replica.
//
// Outbound, off the consensus critical path: a periodic packing timer
// drains the local mempool into content-addressed batches, files them in
// the BatchStore, and pushes them to every peer (BatchPush). Inbound: it
// validates pushed/pulled batches (content address must match — a peer
// cannot serve tampered bytes) and serves BatchRequest pulls from the
// store.
//
// The pull path mirrors core::SyncClient: `want(digests)` registers missing
// content, each pull round asks a small rotating window of peers
// (`(id + 1 + attempts·fanout + k) mod n`), and a watchdog re-requests from
// the next window until everything arrived. Every arrival fires the
// `on_arrival` callback so the consensus layer can retry proposals that
// were parked waiting for payload availability.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "sftbft/common/types.hpp"
#include "sftbft/dissem/batch.hpp"
#include "sftbft/dissem/batch_store.hpp"
#include "sftbft/dissem/config.hpp"
#include "sftbft/mempool/mempool.hpp"
#include "sftbft/net/transport.hpp"

namespace sftbft::dissem {

class BatchBroadcaster {
 public:
  /// Fired whenever at least one previously missing batch arrives.
  using ArrivalCallback = std::function<void()>;

  struct Options {
    /// Never send anything (the Silent fault keeps receiving + storing).
    bool silent = false;
    /// Byzantine BatchWithholder: pack batches and serve pulls, but never
    /// push proactively — peers only get the data if they ask.
    bool withhold_push = false;
  };

  BatchBroadcaster(ReplicaId id, net::Transport& transport,
                   mempool::Mempool& pool, BatchStore& store,
                   DissemConfig config, ArrivalCallback on_arrival,
                   Options options);

  /// Arms the periodic packing timer.
  void start();
  void stop();

  void on_push(const BatchPush& push);
  void on_request(const BatchRequest& req);
  void on_response(const BatchResponse& resp);

  /// Registers digests this replica needs (referenced by a proposal or a
  /// synced block but not locally held) and starts pulling.
  void want(const std::vector<crypto::Sha256Digest>& digests);

  [[nodiscard]] std::uint64_t batches_packed() const {
    return batches_packed_;
  }
  [[nodiscard]] std::uint64_t pull_requests_sent() const {
    return pull_requests_sent_;
  }
  [[nodiscard]] std::size_t missing_count() const { return missing_.size(); }

 private:
  void schedule_pack();
  void pack_and_push();
  void pull_round();
  void ingest(const Batch& batch, bool& any_new);

  ReplicaId id_;
  std::uint32_t n_;
  net::Transport& transport_;
  mempool::Mempool& pool_;
  BatchStore& store_;
  DissemConfig config_;
  ArrivalCallback on_arrival_;
  Options options_;

  bool running_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t batches_packed_ = 0;
  std::uint64_t pull_requests_sent_ = 0;

  /// Missing digests in registration order (deterministic pull batches) +
  /// the membership set.
  std::deque<crypto::Sha256Digest> missing_order_;
  std::unordered_set<crypto::Sha256Digest> missing_;
  std::uint32_t pull_attempts_ = 0;
  bool pull_watchdog_armed_ = false;
};

}  // namespace sftbft::dissem
