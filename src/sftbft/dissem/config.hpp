// Knobs for the dissemination data plane + client admission front-end.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sftbft/common/types.hpp"

namespace sftbft::obs {
class Observer;
}  // namespace sftbft::obs

namespace sftbft::dissem {

struct DissemConfig {
  /// Master switch. Off = the legacy inline-payload path (proposals carry
  /// full transaction bodies, WorkloadGenerator feeds the mempool) — the
  /// exact pre-dissemination behaviour, byte for byte.
  bool enabled = false;

  // ------------------------------------------------------------ data plane
  /// Max transactions packed into one batch.
  std::size_t batch_max_txns = 250;
  /// How often each replica drains its mempool into a fresh batch and
  /// pushes it (off the consensus critical path).
  SimDuration batch_interval = millis(20);
  /// Max batch digests referenced per proposal.
  std::size_t max_batches_per_proposal = 16;
  /// A batch referenced by a proposal that never certifies becomes
  /// proposable again after this long (duplicate references across forks
  /// are harmless: commit-time resolution dedups by digest).
  SimDuration repropose_after = seconds(2);

  // ------------------------------------------------------------ batch pull
  /// Peers asked per pull round (rotating window, core::SyncClient style).
  std::uint32_t pull_fanout = 3;
  /// Watchdog: re-request still-missing digests from the next window.
  SimDuration pull_retry = millis(250);
  /// Max digests per BatchRequest frame.
  std::size_t pull_max_digests = 64;

  // ------------------------------------------------------------- admission
  /// Simulated client population submitting through each replica's
  /// AdmissionFrontend (distinct id spaces; the swarm stands in for the
  /// "millions of submitters" the ROADMAP north-star talks about).
  std::uint32_t clients = 64;
  /// Per-client admission budget per second (token bucket); 0 = unlimited.
  std::uint32_t client_rate_limit = 0;
  /// Per-client window of remembered submissions (retry dedup).
  std::size_t client_dedup_window = 32;
  /// Mempool bound; admissions beyond it are rejected with backpressure
  /// (0 = unbounded).
  std::size_t mempool_capacity = 0;

  // ---------------------------------------------------------- observability
  /// Metrics + trace events (batch lifecycle, admission outcomes); null =
  /// off. Stamped per replica by the Deployment; outlives the data plane.
  obs::Observer* observer = nullptr;
  /// The owning replica (trace/metric attribution for components that are
  /// not otherwise id-aware, e.g. the AdmissionFrontend).
  ReplicaId self = 0;
};

}  // namespace sftbft::dissem
