#include "sftbft/engine/chained_engine.hpp"

#include <stdexcept>

#include "sftbft/consensus/diembft.hpp"
#include "sftbft/hotstuff/hotstuff.hpp"

namespace sftbft::engine {

core::ChainedRules chained_rules_for(Protocol protocol) {
  switch (protocol) {
    case Protocol::DiemBft:
      return consensus::diembft_rules();
    case Protocol::HotStuff:
      return hotstuff::rules();
    case Protocol::Streamlet:
      break;
  }
  throw std::logic_error("chained_rules_for: not a chained protocol");
}

net::ChainedWireSet chained_wires_for(Protocol protocol) {
  switch (protocol) {
    case Protocol::DiemBft:
      return net::kDiemBftWires;
    case Protocol::HotStuff:
      return net::kHotStuffWires;
    case Protocol::Streamlet:
      break;
  }
  throw std::logic_error("chained_wires_for: not a chained protocol");
}

ChainedEngine::ChainedEngine(Protocol protocol, consensus::CoreConfig config,
                             net::Transport& transport,
                             std::shared_ptr<const crypto::KeyRegistry> registry,
                             mempool::WorkloadConfig workload,
                             Rng workload_rng, FaultSpec fault,
                             CommitObserver observer,
                             storage::ReplicaStore* store,
                             replica::Replica::QcTap qc_tap,
                             dissem::DissemConfig dissem)
    : protocol_(protocol),
      transport_(transport),
      store_(store) {
  config.rules = chained_rules_for(protocol);
  replica_ = std::make_unique<replica::Replica>(
      config, transport, std::move(registry), workload,
      std::move(workload_rng), fault, std::move(observer), store,
      std::move(qc_tap), chained_wires_for(protocol), dissem);
}

void ChainedEngine::start() {
  replica_->start();
  // Crash-restart timers outlive the crash itself, so they live here, not
  // inside the replica (whose Kind::Crash timer semantics are unchanged).
  if (replica_->fault().kind == FaultSpec::Kind::CrashRestart) {
    sim::Scheduler& sched = transport_.scheduler();
    sched.schedule_at(replica_->fault().crash_at, [this] {
      replica_->crash();
      // The simulated power loss: unsynced storage writes are dropped (the
      // MemBackend may leave a torn WAL tail for recovery to handle).
      if (store_) store_->simulate_crash();
    });
    sched.schedule_at(replica_->fault().restart_at, [this] { restart(); });
  }
}

void ChainedEngine::stop() { replica_->crash(); }

void ChainedEngine::restart() {
  if (store_ == nullptr) {
    // Restarting without durable state would re-enter consensus with a
    // clean voting history — an equivocation machine. Refuse.
    throw std::logic_error(
        "ChainedEngine::restart: no ReplicaStore wired for this replica");
  }
  replica_->restart(store_->recover());
}

}  // namespace sftbft::engine
