// ConsensusEngine adapter over the chained-kernel replica stack — one
// adapter serves every core::ChainedCore protocol instance (DiemBFT and
// chained HotStuff), differing only in the rule set stamped into the core
// config and the Envelope tag set the replica speaks.
#pragma once

#include <memory>

#include "sftbft/engine/engine.hpp"
#include "sftbft/replica/replica.hpp"
#include "sftbft/storage/replica_store.hpp"

namespace sftbft::engine {

class ChainedEngine final : public ConsensusEngine {
 public:
  /// Wires one chained replica onto `transport`. `protocol` must be a
  /// chained protocol (is_chained); the matching rule set and wire tags are
  /// stamped here. `config.id` must be set; the observer may be null.
  /// `store` (optional) enables durable state — required for
  /// Kind::CrashRestart faults and for restart(); `qc_tap` (optional) feeds
  /// a harness-level SafetyAuditor.
  /// `dissem.enabled` switches the replica to the batch data plane (see
  /// replica::Replica).
  ChainedEngine(Protocol protocol, consensus::CoreConfig config,
                net::Transport& transport,
                std::shared_ptr<const crypto::KeyRegistry> registry,
                mempool::WorkloadConfig workload, Rng workload_rng,
                FaultSpec fault, CommitObserver observer,
                storage::ReplicaStore* store = nullptr,
                replica::Replica::QcTap qc_tap = nullptr,
                dissem::DissemConfig dissem = {});

  [[nodiscard]] Protocol protocol() const override { return protocol_; }
  [[nodiscard]] ReplicaId id() const override { return replica_->id(); }
  void start() override;
  void stop() override;
  void restart() override;
  [[nodiscard]] const chain::Ledger& ledger() const override {
    return replica_->core().ledger();
  }
  [[nodiscard]] Round current_round() const override {
    return replica_->core().current_round();
  }
  [[nodiscard]] const FaultSpec& fault() const override {
    return replica_->fault();
  }
  [[nodiscard]] std::uint64_t inbound_messages() const override {
    return replica_->inbound_messages();
  }
  [[nodiscard]] std::uint64_t inbound_bytes() const override {
    return replica_->inbound_bytes();
  }

  [[nodiscard]] replica::Replica& replica() { return *replica_; }
  [[nodiscard]] core::ChainedCore& core() { return replica_->core(); }
  [[nodiscard]] const core::ChainedCore& core() const {
    return replica_->core();
  }
  [[nodiscard]] storage::ReplicaStore* store() override { return store_; }

 private:
  Protocol protocol_;
  net::Transport& transport_;
  storage::ReplicaStore* store_;
  std::unique_ptr<replica::Replica> replica_;
};

/// The rule set and Envelope tag set of a chained protocol (shared with the
/// adversary layer, which wires Byzantine engines onto the same stacks).
[[nodiscard]] core::ChainedRules chained_rules_for(Protocol protocol);
[[nodiscard]] net::ChainedWireSet chained_wires_for(Protocol protocol);

}  // namespace sftbft::engine
