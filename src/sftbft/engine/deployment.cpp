#include "sftbft/engine/deployment.hpp"

#include <stdexcept>
#include <string>

#include "sftbft/adversary/byzantine_replica.hpp"
#include "sftbft/adversary/byzantine_streamlet.hpp"

namespace sftbft::engine {

namespace {

[[noreturn]] void wrong_protocol(const char* want, Protocol have) {
  throw std::logic_error(std::string("deployment runs ") +
                         protocol_name(have) + ", not " + want);
}

/// The typed escape hatches downcast to the honest adapter classes; a
/// Byzantine slot holds an adversary engine instead, so the cast would be
/// undefined behaviour — refuse it explicitly.
void require_honest_slot(const ConsensusEngine& engine, ReplicaId id) {
  if (engine.fault().kind == FaultSpec::Kind::Byzantine) {
    throw std::logic_error("replica " + std::to_string(id) +
                           " is Byzantine; honest-core escape hatches do "
                           "not apply (inspect the Coalition instead)");
  }
}

}  // namespace

Deployment::Deployment(DeploymentConfig config, CommitObserver observer,
                       AuditTaps taps)
    : config_(std::move(config)) {
  if (config_.topology.size() != config_.n) {
    throw std::invalid_argument(
        "Deployment: topology size (" +
        std::to_string(config_.topology.size()) + ") != n (" +
        std::to_string(config_.n) + ")");
  }
  // The single shared fault validator (every engine, all fault kinds).
  validate_faults(config_.faults, config_.n);
  for (const FaultSpec& fault : config_.faults) {
    if (fault.kind == FaultSpec::Kind::Byzantine && !coalition_) {
      coalition_ = std::make_shared<adversary::Coalition>();
    }
  }
  registry_ = std::make_shared<crypto::KeyRegistry>(config_.n, config_.seed);
  backends_.resize(config_.n);
  stores_.resize(config_.n);

  auto fault_for = [this](ReplicaId id) {
    return id < config_.faults.size() ? config_.faults[id]
                                      : FaultSpec::honest();
  };
  auto qc_tap_for = [&taps](ReplicaId id) -> replica::Replica::QcTap {
    if (!taps.canonical_qc) return nullptr;
    return [id, tap = taps.canonical_qc](const types::Block& block,
                                         const types::QuorumCert& qc) {
      tap(id, block, qc);
    };
  };
  auto block_tap_for = [&taps](ReplicaId id) -> StreamletEngine::BlockTap {
    if (!taps.block_seen) return nullptr;
    return [id, tap = taps.block_seen](const types::Block& block) {
      tap(id, block);
    };
  };
  auto vote_tap_for = [&taps](ReplicaId id) -> StreamletEngine::VoteTap {
    if (!taps.vote_seen) return nullptr;
    return [id, tap = taps.vote_seen](const streamlet::SVote& vote) {
      tap(id, core::VoteSeen{vote.block_id, vote.round, vote.height,
                             vote.voter, vote.marker});
    };
  };

  // One byte-level transport for every protocol. Seed derivations are kept
  // per protocol (0xabcd / 0x51ee7 network streams match the historical
  // per-protocol SimNetwork seeds; HotStuff gets its own stream) so
  // existing seeded experiments keep their delay geometry.
  const std::uint64_t net_seed =
      config_.seed ^ [&]() -> std::uint64_t {
        switch (config_.protocol) {
          case Protocol::DiemBft: return 0xabcdULL;
          case Protocol::Streamlet: return 0x51ee7ULL;
          case Protocol::HotStuff: return 0x407507ULL;
        }
        return 0;
      }();
  transport_ = std::make_unique<net::SimTransport>(sched_, config_.topology,
                                                   config_.net, net_seed);
  if (config_.obs.enabled) {
    observer_ = std::make_unique<obs::Observer>(config_.obs, config_.n);
    // The transport feeds per-WireType transit histograms and (when tracing)
    // cross-replica flow arrows into the same observer the replicas use.
    transport_->set_observer(observer_.get());
  }
  // Corrupt faults are link-level: they live in the transport, and the
  // replica itself runs the honest engine below. Corruption only acts
  // before GST, so a synchronous-from-the-start network would make the
  // fault a silent no-op — reject that the way validate_faults rejects
  // other no-op specs (it cannot, lacking the net config).
  for (ReplicaId id = 0; id < config_.faults.size(); ++id) {
    if (config_.faults[id].kind != FaultSpec::Kind::Corrupt) continue;
    if (config_.net.gst <= 0) {
      throw std::invalid_argument(
          "Deployment: replica " + std::to_string(id) +
          " has a Corrupt fault but net.gst == 0 — pre-GST corruption "
          "never fires on a synchronous-from-the-start network");
    }
    transport_->set_corruption(id, config_.faults[id].corrupt);
  }

  // Per-replica dissem copy: observability attribution (the frontend and
  // data plane are not otherwise id-aware).
  auto dissem_for = [this](ReplicaId id) {
    dissem::DissemConfig dcfg = config_.dissem;
    dcfg.observer = observer_.get();
    dcfg.self = id;
    return dcfg;
  };

  Rng workload_rng(config_.seed ^ 0x77aa);
  if (is_chained(config_.protocol)) {
    for (ReplicaId id = 0; id < config_.n; ++id) {
      consensus::CoreConfig core = config_.chained;
      core.id = id;
      core.n = config_.n;
      core.observer = observer_.get();
      const FaultSpec fault = fault_for(id);
      if (fault.kind == FaultSpec::Kind::Byzantine) {
        engines_.push_back(std::make_unique<adversary::ByzantineReplica>(
            config_.protocol, core, *transport_, registry_, config_.workload,
            workload_rng.fork(), fault, coalition_, qc_tap_for(id),
            dissem_for(id)));
        continue;
      }
      engines_.push_back(std::make_unique<ChainedEngine>(
          config_.protocol, core, *transport_, registry_, config_.workload,
          workload_rng.fork(), fault, observer, make_store(id, fault),
          qc_tap_for(id), dissem_for(id)));
    }
  } else {
    for (ReplicaId id = 0; id < config_.n; ++id) {
      streamlet::StreamletConfig core = config_.streamlet;
      core.id = id;
      core.n = config_.n;
      core.observer = observer_.get();
      const FaultSpec fault = fault_for(id);
      if (fault.kind == FaultSpec::Kind::Byzantine) {
        engines_.push_back(std::make_unique<adversary::ByzantineStreamlet>(
            core, *transport_, registry_, config_.workload,
            workload_rng.fork(), fault, coalition_, block_tap_for(id),
            vote_tap_for(id), dissem_for(id)));
        continue;
      }
      engines_.push_back(std::make_unique<StreamletEngine>(
          core, *transport_, registry_, config_.workload,
          workload_rng.fork(), fault, observer, make_store(id, fault),
          block_tap_for(id), vote_tap_for(id), dissem_for(id)));
    }
  }
}

Deployment::~Deployment() = default;

storage::ReplicaStore* Deployment::make_store(ReplicaId id,
                                              const FaultSpec& fault) {
  const bool wants_store =
      config_.persist_all || fault.kind == FaultSpec::Kind::CrashRestart;
  if (!wants_store) return nullptr;
  // Per-replica backend, independently seeded: torn-tail draws at one
  // replica's crash never perturb another's stream.
  backends_[id] = std::make_unique<storage::MemBackend>(
      config_.seed ^ 0x5708AC4EDULL ^ id);
  storage::StoreConfig store_config = config_.storage;
  store_config.observer = observer_.get();
  store_config.sched = &sched_;
  stores_[id] = std::make_unique<storage::ReplicaStore>(*backends_[id], id,
                                                        store_config);
  return stores_[id].get();
}

void Deployment::start() {
  for (auto& engine : engines_) engine->start();
}

void Deployment::run_for(SimDuration duration) { sched_.run_for(duration); }

ConsensusEngine& Deployment::engine(ReplicaId id) { return *engines_[id]; }

const ConsensusEngine& Deployment::engine(ReplicaId id) const {
  return *engines_[id];
}

std::uint32_t Deployment::honest_count() const {
  std::uint32_t honest = 0;
  for (const auto& engine : engines_) {
    const FaultSpec::Kind kind = engine->fault().kind;
    if (kind == FaultSpec::Kind::Honest || kind == FaultSpec::Kind::Corrupt) {
      ++honest;
    }
  }
  return honest;
}

replica::Replica& Deployment::chained_replica(ReplicaId id) {
  if (!is_chained(config_.protocol)) {
    wrong_protocol("a chained protocol", config_.protocol);
  }
  require_honest_slot(*engines_[id], id);
  return static_cast<ChainedEngine&>(*engines_[id]).replica();
}

core::ChainedCore& Deployment::chained_core(ReplicaId id) {
  if (!is_chained(config_.protocol)) {
    wrong_protocol("a chained protocol", config_.protocol);
  }
  require_honest_slot(*engines_[id], id);
  return static_cast<ChainedEngine&>(*engines_[id]).core();
}

const core::ChainedCore& Deployment::chained_core(ReplicaId id) const {
  if (!is_chained(config_.protocol)) {
    wrong_protocol("a chained protocol", config_.protocol);
  }
  require_honest_slot(*engines_[id], id);
  return static_cast<const ChainedEngine&>(*engines_[id]).core();
}

streamlet::StreamletCore& Deployment::streamlet_core(ReplicaId id) {
  if (config_.protocol != Protocol::Streamlet) {
    wrong_protocol("streamlet", config_.protocol);
  }
  require_honest_slot(*engines_[id], id);
  return static_cast<StreamletEngine&>(*engines_[id]).core();
}

const streamlet::StreamletCore& Deployment::streamlet_core(
    ReplicaId id) const {
  if (config_.protocol != Protocol::Streamlet) {
    wrong_protocol("streamlet", config_.protocol);
  }
  require_honest_slot(*engines_[id], id);
  return static_cast<const StreamletEngine&>(*engines_[id]).core();
}

}  // namespace sftbft::engine
