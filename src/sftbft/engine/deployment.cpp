#include "sftbft/engine/deployment.hpp"

#include <stdexcept>
#include <string>

#include "sftbft/adversary/byzantine_replica.hpp"
#include "sftbft/adversary/byzantine_streamlet.hpp"

namespace sftbft::engine {

namespace {

[[noreturn]] void wrong_protocol(Protocol want, Protocol have) {
  throw std::logic_error(std::string("deployment runs ") +
                         protocol_name(have) + ", not " +
                         protocol_name(want));
}

/// The typed escape hatches downcast to the honest adapter classes; a
/// Byzantine slot holds an adversary engine instead, so the cast would be
/// undefined behaviour — refuse it explicitly.
void require_honest_slot(const ConsensusEngine& engine, ReplicaId id) {
  if (engine.fault().kind == FaultSpec::Kind::Byzantine) {
    throw std::logic_error("replica " + std::to_string(id) +
                           " is Byzantine; honest-core escape hatches do "
                           "not apply (inspect the Coalition instead)");
  }
}

}  // namespace

Deployment::Deployment(DeploymentConfig config, CommitObserver observer,
                       AuditTaps taps)
    : config_(std::move(config)) {
  if (config_.topology.size() != config_.n) {
    throw std::invalid_argument(
        "Deployment: topology size (" +
        std::to_string(config_.topology.size()) + ") != n (" +
        std::to_string(config_.n) + ")");
  }
  // The single shared fault validator (both engines, all fault kinds).
  validate_faults(config_.faults, config_.n);
  for (const FaultSpec& fault : config_.faults) {
    if (fault.kind == FaultSpec::Kind::Byzantine && !coalition_) {
      coalition_ = std::make_shared<adversary::Coalition>();
    }
  }
  registry_ = std::make_shared<crypto::KeyRegistry>(config_.n, config_.seed);
  backends_.resize(config_.n);
  stores_.resize(config_.n);

  auto fault_for = [this](ReplicaId id) {
    return id < config_.faults.size() ? config_.faults[id]
                                      : FaultSpec::honest();
  };
  auto qc_tap_for = [&taps](ReplicaId id) -> replica::Replica::QcTap {
    if (!taps.diem_qc) return nullptr;
    return [id, tap = taps.diem_qc](const types::Block& block,
                                    const types::QuorumCert& qc) {
      tap(id, block, qc);
    };
  };
  auto block_tap_for = [&taps](ReplicaId id) -> StreamletEngine::BlockTap {
    if (!taps.streamlet_block) return nullptr;
    return [id, tap = taps.streamlet_block](const types::Block& block) {
      tap(id, block);
    };
  };
  auto vote_tap_for = [&taps](ReplicaId id) -> StreamletEngine::VoteTap {
    if (!taps.streamlet_vote) return nullptr;
    return [id, tap = taps.streamlet_vote](const streamlet::SVote& vote) {
      tap(id, vote);
    };
  };

  // Seed derivations are kept per protocol (0xabcd / 0x51ee7 network
  // streams) so existing seeded experiments replay bit-identically to the
  // pre-engine-layer stacks.
  switch (config_.protocol) {
    case Protocol::DiemBft: {
      diem_network_ = std::make_unique<replica::DiemNetwork>(
          sched_, config_.topology, config_.net, config_.seed ^ 0xabcd);
      Rng workload_rng(config_.seed ^ 0x77aa);
      for (ReplicaId id = 0; id < config_.n; ++id) {
        consensus::CoreConfig core = config_.diem;
        core.id = id;
        core.n = config_.n;
        const FaultSpec fault = fault_for(id);
        if (fault.kind == FaultSpec::Kind::Byzantine) {
          engines_.push_back(std::make_unique<adversary::ByzantineReplica>(
              core, *diem_network_, registry_, config_.workload,
              workload_rng.fork(), fault, coalition_, qc_tap_for(id)));
          continue;
        }
        engines_.push_back(std::make_unique<DiemEngine>(
            core, *diem_network_, registry_, config_.workload,
            workload_rng.fork(), fault, observer, make_store(id, fault),
            qc_tap_for(id)));
      }
      break;
    }
    case Protocol::Streamlet: {
      streamlet_network_ = std::make_unique<StreamletNetwork>(
          sched_, config_.topology, config_.net, config_.seed ^ 0x51ee7);
      Rng workload_rng(config_.seed ^ 0x77aa);
      for (ReplicaId id = 0; id < config_.n; ++id) {
        streamlet::StreamletConfig core = config_.streamlet;
        core.id = id;
        core.n = config_.n;
        const FaultSpec fault = fault_for(id);
        if (fault.kind == FaultSpec::Kind::Byzantine) {
          engines_.push_back(std::make_unique<adversary::ByzantineStreamlet>(
              core, *streamlet_network_, registry_, config_.workload,
              workload_rng.fork(), fault, coalition_, block_tap_for(id),
              vote_tap_for(id)));
          continue;
        }
        engines_.push_back(std::make_unique<StreamletEngine>(
            core, *streamlet_network_, registry_, config_.workload,
            workload_rng.fork(), fault, observer, make_store(id, fault),
            block_tap_for(id), vote_tap_for(id)));
      }
      break;
    }
  }
}

Deployment::~Deployment() = default;

storage::ReplicaStore* Deployment::make_store(ReplicaId id,
                                              const FaultSpec& fault) {
  const bool wants_store =
      config_.persist_all || fault.kind == FaultSpec::Kind::CrashRestart;
  if (!wants_store) return nullptr;
  // Per-replica backend, independently seeded: torn-tail draws at one
  // replica's crash never perturb another's stream.
  backends_[id] = std::make_unique<storage::MemBackend>(
      config_.seed ^ 0x5708AC4EDULL ^ id);
  stores_[id] = std::make_unique<storage::ReplicaStore>(*backends_[id], id,
                                                        config_.storage);
  return stores_[id].get();
}

void Deployment::start() {
  for (auto& engine : engines_) engine->start();
}

void Deployment::run_for(SimDuration duration) { sched_.run_for(duration); }

ConsensusEngine& Deployment::engine(ReplicaId id) { return *engines_[id]; }

const ConsensusEngine& Deployment::engine(ReplicaId id) const {
  return *engines_[id];
}

net::MessageStats& Deployment::net_stats() {
  return diem_network_ ? diem_network_->stats() : streamlet_network_->stats();
}

const net::MessageStats& Deployment::net_stats() const {
  return diem_network_ ? diem_network_->stats() : streamlet_network_->stats();
}

void Deployment::set_link_filter(net::LinkFilter filter) {
  if (diem_network_) {
    diem_network_->set_link_filter(std::move(filter));
  } else {
    streamlet_network_->set_link_filter(std::move(filter));
  }
}

std::uint32_t Deployment::honest_count() const {
  std::uint32_t honest = 0;
  for (const auto& engine : engines_) {
    if (engine->fault().kind == FaultSpec::Kind::Honest) ++honest;
  }
  return honest;
}

replica::Replica& Deployment::diem_replica(ReplicaId id) {
  if (config_.protocol != Protocol::DiemBft) {
    wrong_protocol(Protocol::DiemBft, config_.protocol);
  }
  require_honest_slot(*engines_[id], id);
  return static_cast<DiemEngine&>(*engines_[id]).replica();
}

consensus::DiemBftCore& Deployment::diem_core(ReplicaId id) {
  if (config_.protocol != Protocol::DiemBft) {
    wrong_protocol(Protocol::DiemBft, config_.protocol);
  }
  require_honest_slot(*engines_[id], id);
  return static_cast<DiemEngine&>(*engines_[id]).core();
}

const consensus::DiemBftCore& Deployment::diem_core(ReplicaId id) const {
  if (config_.protocol != Protocol::DiemBft) {
    wrong_protocol(Protocol::DiemBft, config_.protocol);
  }
  require_honest_slot(*engines_[id], id);
  return static_cast<const DiemEngine&>(*engines_[id]).core();
}

replica::DiemNetwork& Deployment::diem_network() {
  if (!diem_network_) wrong_protocol(Protocol::DiemBft, config_.protocol);
  return *diem_network_;
}

streamlet::StreamletCore& Deployment::streamlet_core(ReplicaId id) {
  if (config_.protocol != Protocol::Streamlet) {
    wrong_protocol(Protocol::Streamlet, config_.protocol);
  }
  require_honest_slot(*engines_[id], id);
  return static_cast<StreamletEngine&>(*engines_[id]).core();
}

const streamlet::StreamletCore& Deployment::streamlet_core(
    ReplicaId id) const {
  if (config_.protocol != Protocol::Streamlet) {
    wrong_protocol(Protocol::Streamlet, config_.protocol);
  }
  require_honest_slot(*engines_[id], id);
  return static_cast<const StreamletEngine&>(*engines_[id]).core();
}

StreamletNetwork& Deployment::streamlet_network() {
  if (!streamlet_network_) {
    wrong_protocol(Protocol::Streamlet, config_.protocol);
  }
  return *streamlet_network_;
}

}  // namespace sftbft::engine
