// Deployment: a full n-replica deployment of any supported chained-BFT
// protocol on one simulated network — the single top-level object
// experiments, benches, and integration tests drive.
//
// A Deployment owns the scheduler, the PKI, ONE byte-level transport
// (net::SimTransport — every protocol speaks net::Envelope over the same
// wire), and one ConsensusEngine per replica, and funnels every engine's
// commit notifications into a single observer (which is how the harness
// computes the paper's "average over all blocks over all replicas"
// metrics). The protocol is selected by DeploymentConfig::protocol —
// DiemBFT and chained HotStuff run the shared core::ChainedCore kernel
// under their own rule sets and wire tags; Streamlet runs the lock-step
// stack. Everything else — topology, network conditions, workload, the
// FaultSpec fault list, the seed — is shared verbatim across protocols, so
// the same scenario runs apples-to-apples on all of them (the paper's
// genericity claim).
#pragma once

#include <memory>
#include <vector>

#include "sftbft/adversary/coalition.hpp"
#include "sftbft/core/audit.hpp"
#include "sftbft/dissem/config.hpp"
#include "sftbft/engine/chained_engine.hpp"
#include "sftbft/engine/engine.hpp"
#include "sftbft/engine/streamlet_engine.hpp"
#include "sftbft/net/sim_transport.hpp"
#include "sftbft/obs/observer.hpp"
#include "sftbft/sim/scheduler.hpp"
#include "sftbft/storage/mem_backend.hpp"
#include "sftbft/storage/replica_store.hpp"

namespace sftbft::engine {

/// Audit taps for a global observer (harness::SafetyAuditor) — the kernel's
/// protocol-neutral vocabulary: chained stacks report canonical QCs,
/// lock-step stacks report blocks + height-marked votes, all attributed by
/// replica id. Only the taps matching the deployment's protocol fire.
using AuditTaps = core::AuditTaps;

struct DeploymentConfig {
  Protocol protocol = Protocol::DiemBft;
  std::uint32_t n = 4;
  /// Template for every chained-kernel replica's core config (id/n filled
  /// in per replica; the protocol's rule set is stamped by the engine).
  /// Used when is_chained(protocol) — i.e. DiemBFT and HotStuff share one
  /// knob surface, which is what keeps their comparisons honest.
  consensus::CoreConfig chained;
  /// Template for every Streamlet replica's core config (id/n filled in per
  /// replica; used when protocol == Protocol::Streamlet).
  streamlet::StreamletConfig streamlet;
  net::Topology topology = net::Topology::uniform(4, millis(1));
  net::NetConfig net;
  mempool::WorkloadConfig workload;
  /// Batch dissemination data plane (dissem.enabled switches every replica
  /// to digest-referencing proposals + the admission front-end). Applies to
  /// all three protocols.
  dissem::DissemConfig dissem;
  /// Per-replica faults; empty = all honest. Indexed by replica id.
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 1;
  /// Durable-state cadence for replicas that get a ReplicaStore (see
  /// `persist_all`).
  storage::StoreConfig storage;
  /// Wire a ReplicaStore (simulation MemBackend) for every replica, not
  /// just the CrashRestart ones — for persistence-overhead experiments and
  /// manual ConsensusEngine::restart() from tests.
  bool persist_all = false;
  /// Observability (metrics registry, trace layer, flight recorder). Off by
  /// default: no Observer is built, every instrumented component holds a
  /// null pointer, and the hot path pays one pointer test per event site.
  obs::ObsConfig obs;
};

class Deployment {
 public:
  using CommitObserver = engine::CommitObserver;

  /// `observer` may be null; `taps` (optional) feed a harness-level
  /// SafetyAuditor. Throws std::invalid_argument if
  /// `config.topology.size() != config.n` (a silently mismatched topology
  /// was the old ClusterConfig's footgun) or if any FaultSpec is malformed
  /// (see validate_faults in engine/fault.hpp — the single shared
  /// validator for every engine).
  explicit Deployment(DeploymentConfig config, CommitObserver observer = nullptr,
                      AuditTaps taps = {});
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// Starts all engines (they enter round 1 at the current sim time).
  void start();

  /// Runs the simulation for `duration` of simulated time.
  void run_for(SimDuration duration);

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] Protocol protocol() const { return config_.protocol; }
  [[nodiscard]] ConsensusEngine& engine(ReplicaId id);
  [[nodiscard]] const ConsensusEngine& engine(ReplicaId id) const;
  [[nodiscard]] const chain::Ledger& ledger(ReplicaId id) const {
    return engine(id).ledger();
  }
  [[nodiscard]] std::uint32_t size() const { return config_.n; }
  [[nodiscard]] const DeploymentConfig& config() const { return config_; }
  [[nodiscard]] std::shared_ptr<const crypto::KeyRegistry> registry() const {
    return registry_;
  }

  /// The deployment's byte-level transport (every protocol runs over the
  /// same instance). Tests use this for raw-frame / corruption probes.
  [[nodiscard]] net::SimTransport& transport() { return *transport_; }
  [[nodiscard]] const net::SimTransport& transport() const {
    return *transport_;
  }

  /// Send-side traffic stats of the underlying transport.
  [[nodiscard]] net::MessageStats& net_stats() { return transport_->stats(); }
  [[nodiscard]] const net::MessageStats& net_stats() const {
    return transport_->stats();
  }

  /// Installs (or clears, if empty) an adversarial link filter on the
  /// underlying transport.
  void set_link_filter(net::LinkFilter filter) {
    transport_->set_link_filter(std::move(filter));
  }

  /// Count of replicas that are honest for liveness purposes (Corrupt
  /// replicas count: the replica follows the protocol, only its pre-GST
  /// links are bad).
  [[nodiscard]] std::uint32_t honest_count() const;

  /// The Byzantine coalition's shared state, or nullptr when the fault list
  /// names no Byzantine replica. Benches and the auditor read membership
  /// and attack stats (equivocations staged, votes forged, ...) from here.
  [[nodiscard]] const adversary::Coalition* coalition() const {
    return coalition_.get();
  }

  /// The replica's durable store (nullptr when it runs without one).
  /// Stores exist for CrashRestart-faulted replicas and, with
  /// `persist_all`, for everyone.
  [[nodiscard]] storage::ReplicaStore* store(ReplicaId id) {
    return engines_[id]->store();
  }

  /// The deployment-wide Observer, or nullptr when `config.obs.enabled` is
  /// false. Per-deployment (never process-global): bench sweeps run many
  /// deployments concurrently on worker threads.
  [[nodiscard]] obs::Observer* observer() { return observer_.get(); }
  [[nodiscard]] const obs::Observer* observer() const {
    return observer_.get();
  }

  // Protocol-typed escape hatches. Calling a mismatched accessor throws
  // std::logic_error — tests that need kernel internals (light-client
  // proofs, strength/endorsement state) use these. The chained accessors
  // serve both DiemBFT and HotStuff deployments; diem_* are the historical
  // names for the same thing.
  [[nodiscard]] replica::Replica& chained_replica(ReplicaId id);
  [[nodiscard]] core::ChainedCore& chained_core(ReplicaId id);
  [[nodiscard]] const core::ChainedCore& chained_core(ReplicaId id) const;
  [[nodiscard]] replica::Replica& diem_replica(ReplicaId id) {
    return chained_replica(id);
  }
  [[nodiscard]] consensus::DiemBftCore& diem_core(ReplicaId id) {
    return chained_core(id);
  }
  [[nodiscard]] const consensus::DiemBftCore& diem_core(ReplicaId id) const {
    return chained_core(id);
  }
  [[nodiscard]] streamlet::StreamletCore& streamlet_core(ReplicaId id);
  [[nodiscard]] const streamlet::StreamletCore& streamlet_core(
      ReplicaId id) const;

 private:
  /// Builds (or skips) the durable store for one replica, pre-engine.
  [[nodiscard]] storage::ReplicaStore* make_store(ReplicaId id,
                                                  const FaultSpec& fault);

  DeploymentConfig config_;
  sim::Scheduler sched_;
  std::shared_ptr<const crypto::KeyRegistry> registry_;
  /// Shared state of all Byzantine replicas (null when there are none).
  std::shared_ptr<adversary::Coalition> coalition_;
  /// The one byte-level network every protocol stack sends through.
  std::unique_ptr<net::SimTransport> transport_;
  /// Deployment-wide metrics/trace sink; declared before the engines so it
  /// outlives every component holding a raw Observer*.
  std::unique_ptr<obs::Observer> observer_;
  /// Per-replica durable storage (simulation MemBackends); slots are null
  /// for replicas running without persistence.
  std::vector<std::unique_ptr<storage::MemBackend>> backends_;
  std::vector<std::unique_ptr<storage::ReplicaStore>> stores_;
  std::vector<std::unique_ptr<ConsensusEngine>> engines_;
};

}  // namespace sftbft::engine
