#include "sftbft/engine/diem_engine.hpp"

namespace sftbft::engine {

DiemEngine::DiemEngine(consensus::CoreConfig config,
                       replica::DiemNetwork& network,
                       std::shared_ptr<const crypto::KeyRegistry> registry,
                       mempool::WorkloadConfig workload, Rng workload_rng,
                       FaultSpec fault, CommitObserver observer)
    : replica_(std::make_unique<replica::Replica>(
          config, network, std::move(registry), workload,
          std::move(workload_rng), fault, std::move(observer))) {}

}  // namespace sftbft::engine
