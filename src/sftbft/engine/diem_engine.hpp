// ConsensusEngine adapter over the (SFT-)DiemBFT replica stack.
#pragma once

#include <memory>

#include "sftbft/engine/engine.hpp"
#include "sftbft/replica/replica.hpp"
#include "sftbft/storage/replica_store.hpp"

namespace sftbft::engine {

class DiemEngine final : public ConsensusEngine {
 public:
  /// Wires one DiemBFT replica onto `transport`. `config.id` must be set;
  /// the observer may be null. `store` (optional) enables durable state —
  /// required for Kind::CrashRestart faults and for restart(); `qc_tap`
  /// (optional) feeds a harness-level SafetyAuditor.
  DiemEngine(consensus::CoreConfig config, net::Transport& transport,
             std::shared_ptr<const crypto::KeyRegistry> registry,
             mempool::WorkloadConfig workload, Rng workload_rng,
             FaultSpec fault, CommitObserver observer,
             storage::ReplicaStore* store = nullptr,
             replica::Replica::QcTap qc_tap = nullptr);

  [[nodiscard]] Protocol protocol() const override { return Protocol::DiemBft; }
  [[nodiscard]] ReplicaId id() const override { return replica_->id(); }
  void start() override;
  void stop() override;
  void restart() override;
  [[nodiscard]] const chain::Ledger& ledger() const override {
    return replica_->core().ledger();
  }
  [[nodiscard]] Round current_round() const override {
    return replica_->core().current_round();
  }
  [[nodiscard]] const FaultSpec& fault() const override {
    return replica_->fault();
  }
  [[nodiscard]] std::uint64_t inbound_messages() const override {
    return replica_->inbound_messages();
  }
  [[nodiscard]] std::uint64_t inbound_bytes() const override {
    return replica_->inbound_bytes();
  }

  [[nodiscard]] replica::Replica& replica() { return *replica_; }
  [[nodiscard]] consensus::DiemBftCore& core() { return replica_->core(); }
  [[nodiscard]] const consensus::DiemBftCore& core() const {
    return replica_->core();
  }
  [[nodiscard]] storage::ReplicaStore* store() override { return store_; }

 private:
  net::Transport& transport_;
  storage::ReplicaStore* store_;
  std::unique_ptr<replica::Replica> replica_;
};

}  // namespace sftbft::engine
