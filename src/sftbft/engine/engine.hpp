// ConsensusEngine: the protocol-agnostic per-replica interface every
// chained-BFT backend implements (paper claim: SFT applies *generically*
// across chained-BFT protocols — Secs. 3.2-3.4 for DiemBFT and HotStuff,
// Appendix D for Streamlet; all three are instantiated here over the
// sftbft::core kernel).
//
// An engine owns one replica's full stack (consensus core + mempool +
// workload + fault model) and is wired to a simulated network by a
// Deployment. The interface covers what the harness, benches, and tests
// need uniformly: lifecycle (start/stop), commit notifications (via the
// Deployment's CommitObserver), ledger access, and inbound-bandwidth
// metrics. Protocol-specific internals stay reachable through the
// Deployment's typed escape hatches (chained_core / streamlet_core).
#pragma once

#include <cstdint>
#include <functional>

#include "sftbft/chain/ledger.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/engine/fault.hpp"
#include "sftbft/types/block.hpp"

namespace sftbft::storage {
class ReplicaStore;
}

namespace sftbft::engine {

enum class Protocol {
  DiemBft,    ///< (SFT-)DiemBFT — responsive, round-locked (Secs. 2-3)
  Streamlet,  ///< (SFT-)Streamlet — lock-step, longest-chain (Appendix D)
  HotStuff,   ///< (SFT-)chained HotStuff — responsive, extends-locked rule
};

[[nodiscard]] constexpr const char* protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::DiemBft: return "diembft";
    case Protocol::Streamlet: return "streamlet";
    case Protocol::HotStuff: return "hotstuff";
  }
  return "unknown";
}

/// The responsive chained-QC family (everything running the
/// core::ChainedCore kernel, as opposed to the lock-step Streamlet stack).
[[nodiscard]] constexpr bool is_chained(Protocol protocol) {
  return protocol == Protocol::DiemBft || protocol == Protocol::HotStuff;
}

/// All protocols, in sweep order (benches and conformance suites iterate
/// this instead of hand-listing engines).
inline constexpr Protocol kAllProtocols[] = {
    Protocol::DiemBft, Protocol::HotStuff, Protocol::Streamlet};

/// Commit observer: (replica, block, strength, time). Fired once per
/// strength level first reached per block; the regular commit surfaces as
/// strength = f.
using CommitObserver = std::function<void(ReplicaId, const types::Block&,
                                          std::uint32_t, SimTime)>;

class ConsensusEngine {
 public:
  virtual ~ConsensusEngine() = default;

  [[nodiscard]] virtual Protocol protocol() const = 0;
  [[nodiscard]] virtual ReplicaId id() const = 0;

  /// Registers the network handler, fills the mempool, arms fault timers,
  /// and enters the first round.
  virtual void start() = 0;

  /// Halts the engine (crash semantics: timers stop, inbound traffic is
  /// dropped). Crash faults call this at `FaultSpec::crash_at`.
  virtual void stop() = 0;

  /// Crash recovery: reconstructs the replica's consensus state from its
  /// durable ReplicaStore (WAL + snapshot), rejoins the network, and
  /// re-syncs missed blocks from peers. Only valid for engines wired with a
  /// store (Kind::CrashRestart faults schedule this automatically at
  /// `restart_at`); throws std::logic_error otherwise.
  virtual void restart() = 0;

  /// The replica's durable store, or nullptr when it runs without
  /// persistence.
  [[nodiscard]] virtual storage::ReplicaStore* store() = 0;

  [[nodiscard]] virtual const chain::Ledger& ledger() const = 0;
  [[nodiscard]] virtual Round current_round() const = 0;
  [[nodiscard]] virtual const FaultSpec& fault() const = 0;

  /// Inbound traffic actually delivered to this engine (exact Envelope
  /// frame bytes as passed by the Transport to its handler) — the
  /// receive-side complement of the transport's send-side MessageStats.
  [[nodiscard]] virtual std::uint64_t inbound_messages() const = 0;
  [[nodiscard]] virtual std::uint64_t inbound_bytes() const = 0;
};

}  // namespace sftbft::engine
