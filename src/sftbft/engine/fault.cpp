#include "sftbft/engine/fault.hpp"

#include <stdexcept>
#include <string>
#include <unordered_set>

namespace sftbft::engine {

namespace {

[[noreturn]] void reject(std::size_t id, const std::string& why) {
  throw std::invalid_argument("FaultSpec: replica " + std::to_string(id) +
                              " " + why);
}

void validate_byzantine(std::size_t id, const adversary::ByzantineSpec& spec,
                        std::uint32_t n) {
  using adversary::Strategy;
  if (spec.empty()) reject(id, "is Byzantine with an empty strategy list");
  std::unordered_set<std::uint8_t> seen;
  for (const Strategy strategy : spec.strategies) {
    if (!seen.insert(static_cast<std::uint8_t>(strategy)).second) {
      reject(id, std::string("names strategy ") +
                     adversary::strategy_name(strategy) + " twice");
    }
  }
  if (spec.has(Strategy::WithholdRelease) && spec.withhold_delay <= 0) {
    reject(id, "has WithholdRelease with withhold_delay <= 0 (a no-op)");
  }
  if (spec.has(Strategy::SelectiveSender)) {
    if (spec.suppress_to.empty()) {
      reject(id, "has SelectiveSender with an empty suppression set");
    }
    for (const ReplicaId to : spec.suppress_to) {
      if (to >= n) reject(id, "suppresses an out-of-range peer");
      if (to == id) reject(id, "suppresses itself (use Silent instead)");
    }
  } else if (!spec.suppress_to.empty()) {
    reject(id, "sets suppress_to without the SelectiveSender strategy");
  }
}

}  // namespace

void validate_faults(const std::vector<FaultSpec>& faults, std::uint32_t n) {
  if (faults.size() > n) {
    throw std::invalid_argument(
        "FaultSpec: fault list has " + std::to_string(faults.size()) +
        " entries for " + std::to_string(n) + " replicas");
  }
  for (std::size_t id = 0; id < faults.size(); ++id) {
    const FaultSpec& fault = faults[id];
    switch (fault.kind) {
      case FaultSpec::Kind::Honest:
      case FaultSpec::Kind::Silent:
        break;
      case FaultSpec::Kind::Crash:
        if (fault.crash_at < 0) reject(id, "has a negative crash_at");
        break;
      case FaultSpec::Kind::CrashRestart:
        if (fault.crash_at < 0) reject(id, "has a negative crash_at");
        if (fault.restart_at <= fault.crash_at) {
          // A restart scheduled at/before the crash (e.g. restart_at left
          // at its default 0) would fire first and the crash would then be
          // final — the opposite of what CrashRestart promises.
          reject(id, "has CrashRestart restart_at <= crash_at");
        }
        break;
      case FaultSpec::Kind::Byzantine:
        validate_byzantine(id, fault.byz, n);
        break;
      case FaultSpec::Kind::Corrupt: {
        const net::CorruptSpec& spec = fault.corrupt;
        if (spec.rate <= 0.0 || spec.rate > 1.0) {
          reject(id, "has Corrupt rate outside (0, 1]");
        }
        if (spec.max_flips == 0) {
          reject(id, "has Corrupt max_flips == 0 (a no-op)");
        }
        for (const ReplicaId to : spec.peers) {
          if (to >= n) reject(id, "corrupts an out-of-range link");
          if (to == id) {
            reject(id, "corrupts its own loopback (self-sends skip links)");
          }
        }
        break;
      }
    }
  }
}

}  // namespace sftbft::engine
