// Protocol-agnostic replica fault model, shared by every ConsensusEngine
// backend (the DiemBFT and Streamlet adapters interpret it identically):
//
//  * Honest — follows the protocol;
//  * Crash  — benign fault (Theorem 2): stops entirely at `crash_at`;
//  * CrashRestart — the other half of the benign-fault story: crashes at
//             `crash_at`, then restarts at `restart_at` from its durable
//             ReplicaStore (WAL + snapshot — see sftbft::storage) and
//             re-syncs missed blocks from peers. Requires the deployment to
//             wire a store for the replica (Deployment does this
//             automatically);
//  * Silent — Byzantine fault for liveness experiments (Theorem 3): stays
//             synced but never sends any message (no votes, proposals,
//             echoes, or timeouts), so its leadership rounds produce
//             nothing;
//  * Byzantine — an *actively* adversarial replica (Appendix C / Fig. 9):
//             runs the strategies named by `byz` (equivocation, forged vote
//             histories, withheld certificates, selective sending — see
//             sftbft/adversary/strategy.hpp), coordinated with every other
//             Byzantine replica in the deployment through one shared
//             adversary::Coalition;
//  * Corrupt — the replica itself is honest but its outbound *links* flip
//             bits pre-GST (the partial-synchrony adversary controls the
//             network before stabilization): frames it sends get seeded
//             bit corruption per `corrupt` and receivers reject them at
//             the Envelope CRC, counted as corrupt drops in the transport
//             stats. After GST the links are clean, so liveness resumes —
//             byte-level loss is a pre-GST network fault, not a replica
//             fault;
//  * stragglers are modelled in the network topology (extra per-replica
//    delay), not here — see net::Topology::set_extra_delay.
//
// Fault lists are validated centrally by validate_faults() — Deployment
// calls it once at construction, so malformed specs (a restart scheduled
// before the crash, a Byzantine replica with no strategies) fail loudly in
// one place instead of per-engine.
#pragma once

#include <vector>

#include "sftbft/adversary/strategy.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/net/corrupt.hpp"

namespace sftbft::engine {

struct FaultSpec {
  enum class Kind { Honest, Crash, Silent, CrashRestart, Byzantine, Corrupt };
  Kind kind = Kind::Honest;
  /// Crash time (Kind::Crash and Kind::CrashRestart).
  SimTime crash_at = 0;
  /// Restart time (Kind::CrashRestart only; must be > crash_at).
  SimTime restart_at = 0;
  /// Attack programme (Kind::Byzantine only; must name >= 1 strategy).
  adversary::ByzantineSpec byz;
  /// Pre-GST outbound link corruption (Kind::Corrupt only).
  net::CorruptSpec corrupt;

  static FaultSpec honest() { return {}; }
  static FaultSpec crash_at_time(SimTime at) {
    FaultSpec fault;
    fault.kind = Kind::Crash;
    fault.crash_at = at;
    return fault;
  }
  static FaultSpec silent() {
    FaultSpec fault;
    fault.kind = Kind::Silent;
    return fault;
  }
  static FaultSpec crash_restart(SimTime crash, SimTime restart) {
    FaultSpec fault;
    fault.kind = Kind::CrashRestart;
    fault.crash_at = crash;
    fault.restart_at = restart;
    return fault;
  }
  static FaultSpec byzantine(adversary::ByzantineSpec spec) {
    FaultSpec fault;
    fault.kind = Kind::Byzantine;
    fault.byz = std::move(spec);
    return fault;
  }
  /// Convenience: Byzantine with the given strategies and default params.
  static FaultSpec byzantine(std::vector<adversary::Strategy> strategies) {
    adversary::ByzantineSpec spec;
    spec.strategies = std::move(strategies);
    return byzantine(std::move(spec));
  }
  static FaultSpec corrupt_links(net::CorruptSpec spec) {
    FaultSpec fault;
    fault.kind = Kind::Corrupt;
    fault.corrupt = std::move(spec);
    return fault;
  }
};

/// Central FaultSpec validation, shared by every engine: throws
/// std::invalid_argument naming the offending replica when
///  * the list is longer than the deployment (silently ignored faults),
///  * a CrashRestart's restart_at is not after crash_at,
///  * a Crash/CrashRestart crash time is negative,
///  * a Byzantine spec names no strategy,
///  * WithholdRelease is requested with a non-positive withhold_delay,
///  * SelectiveSender's suppression set is empty, out of range, or contains
///    the replica itself,
///  * a Corrupt spec has rate outside (0, 1], zero max_flips, or a peer
///    list that is out of range or names the replica itself (self-sends
///    never touch a link).
void validate_faults(const std::vector<FaultSpec>& faults, std::uint32_t n);

}  // namespace sftbft::engine
