// Protocol-agnostic replica fault model, shared by every ConsensusEngine
// backend (the DiemBFT and Streamlet adapters interpret it identically):
//
//  * Honest — follows the protocol;
//  * Crash  — benign fault (Theorem 2): stops entirely at `crash_at`;
//  * CrashRestart — the other half of the benign-fault story: crashes at
//             `crash_at`, then restarts at `restart_at` from its durable
//             ReplicaStore (WAL + snapshot — see sftbft::storage) and
//             re-syncs missed blocks from peers. Requires the deployment to
//             wire a store for the replica (Deployment does this
//             automatically);
//  * Silent — Byzantine fault for liveness experiments (Theorem 3): stays
//             synced but never sends any message (no votes, proposals,
//             echoes, or timeouts), so its leadership rounds produce
//             nothing;
//  * stragglers are modelled in the network topology (extra per-replica
//    delay), not here — see net::Topology::set_extra_delay.
//
// Actively equivocating adversaries (Appendix C) are scripted directly in
// tests/examples against the type layer; they need message-level control a
// well-formed replica cannot express.
#pragma once

#include "sftbft/common/types.hpp"

namespace sftbft::engine {

struct FaultSpec {
  enum class Kind { Honest, Crash, Silent, CrashRestart };
  Kind kind = Kind::Honest;
  /// Crash time (Kind::Crash and Kind::CrashRestart).
  SimTime crash_at = 0;
  /// Restart time (Kind::CrashRestart only; must be > crash_at).
  SimTime restart_at = 0;

  static FaultSpec honest() { return {}; }
  static FaultSpec crash_at_time(SimTime at) {
    return {.kind = Kind::Crash, .crash_at = at};
  }
  static FaultSpec silent() { return {.kind = Kind::Silent}; }
  static FaultSpec crash_restart(SimTime crash, SimTime restart) {
    return {.kind = Kind::CrashRestart, .crash_at = crash,
            .restart_at = restart};
  }
};

}  // namespace sftbft::engine
