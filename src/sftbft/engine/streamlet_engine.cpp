#include "sftbft/engine/streamlet_engine.hpp"

#include <stdexcept>

namespace sftbft::engine {

using net::Envelope;
using net::WireType;
using streamlet::SMessage;
using streamlet::SProposal;
using streamlet::SSyncRequest;
using streamlet::SSyncResponse;
using streamlet::StreamletCore;
using streamlet::SVote;

StreamletEngine::StreamletEngine(
    streamlet::StreamletConfig config, net::Transport& transport,
    std::shared_ptr<const crypto::KeyRegistry> registry,
    mempool::WorkloadConfig workload, Rng workload_rng, FaultSpec fault,
    CommitObserver observer, storage::ReplicaStore* store, BlockTap block_tap,
    VoteTap vote_tap, dissem::DissemConfig dissem)
    : id_(config.id),
      transport_(transport),
      fault_(fault),
      dissem_(dissem),
      store_(store),
      workload_(transport.scheduler(), pool_, workload, workload_rng),
      observer_(std::move(observer)) {
  workload_.set_id_space(id_);

  const bool silent = fault_.kind == FaultSpec::Kind::Silent;

  if (dissem_.enabled) {
    batches_ = std::make_unique<dissem::BatchStore>();
    make_broadcaster();
    frontend_ = std::make_unique<dissem::AdmissionFrontend>(pool_, dissem_);
    swarm_ = std::make_unique<dissem::ClientSwarm>(
        transport.scheduler(), *frontend_, workload, dissem_,
        workload_rng.fork());
    swarm_->set_id_space(id_);
  }

  StreamletCore::Hooks hooks;
  hooks.broadcast_proposal = [this, silent](const SProposal& proposal) {
    if (silent) return;
    transport_.broadcast(Envelope::pack(WireType::kSProposal, id_, proposal),
                         /*include_self=*/true);
  };
  hooks.broadcast_vote = [this, silent](const SVote& vote) {
    if (silent) return;
    transport_.broadcast(Envelope::pack(WireType::kSVote, id_, vote),
                         /*include_self=*/true);
  };
  hooks.echo = [this, silent](const SMessage& msg) {
    if (silent) return;
    transport_.broadcast(streamlet::to_envelope(id_, msg),
                         /*include_self=*/false, "echo");
  };
  hooks.send_sync_request = [this, silent](ReplicaId to,
                                           const SSyncRequest& req) {
    if (silent) return;
    transport_.send(to, Envelope::pack(WireType::kSSyncRequest, id_, req));
  };
  hooks.send_sync_response = [this, silent](ReplicaId to,
                                            const SSyncResponse& resp) {
    if (silent) return;
    transport_.send(to, Envelope::pack(WireType::kSSyncResponse, id_, resp));
  };
  hooks.on_commit = [this](const types::Block& block, std::uint32_t strength,
                           SimTime now) {
    if (observer_) observer_(id_, block, strength, now);
  };
  hooks.on_block_seen = std::move(block_tap);
  hooks.on_vote_seen = std::move(vote_tap);

  if (dissem_.enabled) {
    hooks.make_payload = [this](std::size_t /*max_batch*/) {
      return batches_->make_payload(dissem_.max_batches_per_proposal,
                                    transport_.scheduler().now(),
                                    dissem_.repropose_after);
    };
    hooks.payload_available = [this](const types::Payload& payload) {
      if (!payload.is_digests()) return true;
      batches_->observe_reference(payload, transport_.scheduler().now());
      return batches_->missing(payload).empty();
    };
    hooks.fetch_payload = [this](const types::Payload& payload) {
      if (!payload.is_digests()) return;
      const auto missing = batches_->missing(payload);
      if (!missing.empty()) broadcaster_->want(missing);
    };
  }

  core_ = std::make_unique<StreamletCore>(config, transport.scheduler(),
                                          std::move(registry), pool_,
                                          std::move(hooks), store);
  if (dissem_.enabled) {
    core_->attach_batch_store(
        batches_.get(), [this](const std::vector<crypto::Sha256Digest>& m) {
          broadcaster_->want(m);
        });
  }
}

void StreamletEngine::make_broadcaster() {
  broadcaster_ = std::make_unique<dissem::BatchBroadcaster>(
      id_, transport_, pool_, *batches_, dissem_,
      [this] { core_->retry_awaiting_payloads(); },
      dissem::BatchBroadcaster::Options{
          .silent = fault_.kind == FaultSpec::Kind::Silent,
          .withhold_push = false});
}

void StreamletEngine::register_handler() {
  transport_.set_handler(id_, [this](const Envelope& env,
                                     std::size_t frame_bytes) {
    ++inbound_messages_;
    inbound_bytes_ += frame_bytes;
    on_envelope(env);
  });
}

void StreamletEngine::on_envelope(const Envelope& env) {
  try {
    switch (env.type) {
      case WireType::kSProposal:
        core_->on_proposal(env.unpack<SProposal>());
        break;
      case WireType::kSVote:
        core_->on_vote(env.unpack<SVote>());
        break;
      case WireType::kSSyncRequest:
        core_->on_sync_request(env.unpack<SSyncRequest>());
        break;
      case WireType::kSSyncResponse:
        core_->on_sync_response(env.unpack<SSyncResponse>());
        break;
      case WireType::kBatchPush:
        if (!broadcaster_) throw CodecError("StreamletEngine: dissem off");
        broadcaster_->on_push(env.unpack<dissem::BatchPush>());
        break;
      case WireType::kBatchRequest:
        if (!broadcaster_) throw CodecError("StreamletEngine: dissem off");
        broadcaster_->on_request(env.unpack<dissem::BatchRequest>());
        break;
      case WireType::kBatchResponse:
        if (!broadcaster_) throw CodecError("StreamletEngine: dissem off");
        broadcaster_->on_response(env.unpack<dissem::BatchResponse>());
        break;
      default:
        throw CodecError("StreamletEngine: wire type not in this stack");
    }
  } catch (const CodecError&) {
    transport_.stats().record_decode_drop();
  }
}

void StreamletEngine::start() {
  register_handler();
  if (dissem_.enabled) {
    swarm_->start();
    broadcaster_->start();
  } else {
    workload_.top_up();
  }
  sim::Scheduler& sched = transport_.scheduler();
  if (fault_.kind == FaultSpec::Kind::Crash) {
    sched.schedule_at(fault_.crash_at, [this] { stop(); });
  } else if (fault_.kind == FaultSpec::Kind::CrashRestart) {
    sched.schedule_at(fault_.crash_at, [this] {
      stop();
      if (store_) store_->simulate_crash();
    });
    sched.schedule_at(fault_.restart_at, [this] { restart(); });
  }
  core_->start();
}

void StreamletEngine::stop() {
  core_->stop();
  if (dissem_.enabled) {
    broadcaster_->stop();
    swarm_->stop();
  }
  transport_.disconnect(id_);
}

void StreamletEngine::restart() {
  if (store_ == nullptr) {
    throw std::logic_error(
        "StreamletEngine::restart: no ReplicaStore wired for this replica");
  }
  register_handler();
  // A fresh mempool: in-flight bookkeeping died with the process (same rule
  // as replica::Replica::restart).
  pool_ = mempool::Mempool();
  if (dissem_.enabled) {
    pool_.set_capacity(dissem_.mempool_capacity);
    *batches_ = dissem::BatchStore();
    make_broadcaster();
    swarm_->start();
    broadcaster_->start();
  } else {
    workload_.top_up();
  }
  core_->restore(store_->recover());
  core_->request_sync();
}

}  // namespace sftbft::engine
