#include "sftbft/engine/streamlet_engine.hpp"

#include <stdexcept>
#include <variant>

namespace sftbft::engine {

using streamlet::SMessage;
using streamlet::SProposal;
using streamlet::SSyncRequest;
using streamlet::SSyncResponse;
using streamlet::StreamletCore;
using streamlet::SVote;

StreamletEngine::StreamletEngine(
    streamlet::StreamletConfig config, StreamletNetwork& network,
    std::shared_ptr<const crypto::KeyRegistry> registry,
    mempool::WorkloadConfig workload, Rng workload_rng, FaultSpec fault,
    CommitObserver observer, storage::ReplicaStore* store, BlockTap block_tap,
    VoteTap vote_tap)
    : id_(config.id),
      network_(network),
      fault_(fault),
      store_(store),
      workload_(network.scheduler(), pool_, workload, std::move(workload_rng)),
      observer_(std::move(observer)) {
  workload_.set_id_space(id_);

  const bool silent = fault_.kind == FaultSpec::Kind::Silent;
  StreamletCore::Hooks hooks;
  hooks.broadcast_proposal = [this, silent](const SProposal& proposal) {
    if (silent) return;
    network_.multicast(id_, "proposal", proposal.wire_size(),
                       SMessage{proposal}, /*include_self=*/true);
  };
  hooks.broadcast_vote = [this, silent](const SVote& vote) {
    if (silent) return;
    network_.multicast(id_, "vote", vote.wire_size(), SMessage{vote},
                       /*include_self=*/true);
  };
  hooks.echo = [this, silent](const SMessage& msg) {
    if (silent) return;
    const std::size_t size =
        std::visit([](const auto& m) { return m.wire_size(); }, msg);
    network_.multicast(id_, "echo", size, msg, /*include_self=*/false);
  };
  hooks.send_sync_request = [this, silent](ReplicaId to,
                                           const SSyncRequest& req) {
    if (silent) return;
    network_.send(id_, to, "sync_req", req.wire_size(), SMessage{req});
  };
  hooks.send_sync_response = [this, silent](ReplicaId to,
                                            const SSyncResponse& resp) {
    if (silent) return;
    network_.send(id_, to, "sync_resp", resp.wire_size(), SMessage{resp});
  };
  hooks.on_commit = [this](const types::Block& block, std::uint32_t strength,
                           SimTime now) {
    if (observer_) observer_(id_, block, strength, now);
  };
  hooks.on_block_seen = std::move(block_tap);
  hooks.on_vote_seen = std::move(vote_tap);

  core_ = std::make_unique<StreamletCore>(config, network.scheduler(),
                                          std::move(registry), pool_,
                                          std::move(hooks), store);
}

void StreamletEngine::register_handler() {
  network_.set_handler(id_, [this](ReplicaId, const SMessage& msg,
                                   std::size_t wire_size) {
    ++inbound_messages_;
    inbound_bytes_ += wire_size;
    if (std::holds_alternative<SProposal>(msg)) {
      core_->on_proposal(std::get<SProposal>(msg));
    } else if (std::holds_alternative<SVote>(msg)) {
      core_->on_vote(std::get<SVote>(msg));
    } else if (std::holds_alternative<SSyncRequest>(msg)) {
      core_->on_sync_request(std::get<SSyncRequest>(msg));
    } else {
      core_->on_sync_response(std::get<SSyncResponse>(msg));
    }
  });
}

void StreamletEngine::start() {
  register_handler();
  workload_.top_up();
  sim::Scheduler& sched = network_.scheduler();
  if (fault_.kind == FaultSpec::Kind::Crash) {
    sched.schedule_at(fault_.crash_at, [this] { stop(); });
  } else if (fault_.kind == FaultSpec::Kind::CrashRestart) {
    sched.schedule_at(fault_.crash_at, [this] {
      stop();
      if (store_) store_->simulate_crash();
    });
    sched.schedule_at(fault_.restart_at, [this] { restart(); });
  }
  core_->start();
}

void StreamletEngine::stop() {
  core_->stop();
  network_.disconnect(id_);
}

void StreamletEngine::restart() {
  if (store_ == nullptr) {
    throw std::logic_error(
        "StreamletEngine::restart: no ReplicaStore wired for this replica");
  }
  register_handler();
  // A fresh mempool: in-flight bookkeeping died with the process (same rule
  // as replica::Replica::restart).
  pool_ = mempool::Mempool();
  workload_.top_up();
  core_->restore(store_->recover());
  core_->request_sync();
}

}  // namespace sftbft::engine
