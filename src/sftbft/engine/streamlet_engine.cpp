#include "sftbft/engine/streamlet_engine.hpp"

#include <variant>

namespace sftbft::engine {

using streamlet::SMessage;
using streamlet::SProposal;
using streamlet::StreamletCore;
using streamlet::SVote;

StreamletEngine::StreamletEngine(
    streamlet::StreamletConfig config, StreamletNetwork& network,
    std::shared_ptr<const crypto::KeyRegistry> registry,
    mempool::WorkloadConfig workload, Rng workload_rng, FaultSpec fault,
    CommitObserver observer)
    : id_(config.id),
      network_(network),
      fault_(fault),
      workload_(network.scheduler(), pool_, workload, std::move(workload_rng)),
      observer_(std::move(observer)) {
  workload_.set_id_space(id_);

  const bool silent = fault_.kind == FaultSpec::Kind::Silent;
  StreamletCore::Hooks hooks;
  hooks.broadcast_proposal = [this, silent](const SProposal& proposal) {
    if (silent) return;
    network_.multicast(id_, "proposal", proposal.wire_size(),
                       SMessage{proposal}, /*include_self=*/true);
  };
  hooks.broadcast_vote = [this, silent](const SVote& vote) {
    if (silent) return;
    network_.multicast(id_, "vote", vote.wire_size(), SMessage{vote},
                       /*include_self=*/true);
  };
  hooks.echo = [this, silent](const SMessage& msg) {
    if (silent) return;
    const std::size_t size =
        std::visit([](const auto& m) { return m.wire_size(); }, msg);
    network_.multicast(id_, "echo", size, msg, /*include_self=*/false);
  };
  hooks.on_commit = [this](const types::Block& block, std::uint32_t strength,
                           SimTime now) {
    if (observer_) observer_(id_, block, strength, now);
  };

  core_ = std::make_unique<StreamletCore>(config, network.scheduler(),
                                          std::move(registry), pool_,
                                          std::move(hooks));
}

void StreamletEngine::start() {
  network_.set_handler(id_, [this](ReplicaId, const SMessage& msg,
                                   std::size_t wire_size) {
    ++inbound_messages_;
    inbound_bytes_ += wire_size;
    if (std::holds_alternative<SProposal>(msg)) {
      core_->on_proposal(std::get<SProposal>(msg));
    } else {
      core_->on_vote(std::get<SVote>(msg));
    }
  });
  workload_.top_up();
  if (fault_.kind == FaultSpec::Kind::Crash) {
    network_.scheduler().schedule_at(fault_.crash_at, [this] { stop(); });
  }
  core_->start();
}

void StreamletEngine::stop() {
  core_->stop();
  network_.disconnect(id_);
}

}  // namespace sftbft::engine
