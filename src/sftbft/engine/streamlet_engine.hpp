// ConsensusEngine adapter over the (SFT-)Streamlet stack (Appendix D).
//
// This is where Streamlet gets the full shared fault model: Silent replicas
// stay synced but suppress every outbound message (proposals, votes, and
// echoes), and Crash replicas stop entirely at `crash_at` — identical
// semantics to the DiemBFT stack, so the same FaultSpec list drives both.
// Traffic crosses the same byte-level net::Transport as the DiemBFT stack,
// as Envelopes with the Streamlet wire-type tags.
#pragma once

#include <memory>

#include "sftbft/dissem/admission.hpp"
#include "sftbft/dissem/broadcaster.hpp"
#include "sftbft/dissem/config.hpp"
#include "sftbft/engine/engine.hpp"
#include "sftbft/mempool/mempool.hpp"
#include "sftbft/net/transport.hpp"
#include "sftbft/storage/replica_store.hpp"
#include "sftbft/streamlet/streamlet.hpp"

namespace sftbft::engine {

class StreamletEngine final : public ConsensusEngine {
 public:
  /// Auditing taps: blocks admitted to / votes ingested by this replica
  /// (see StreamletCore::Hooks::{on_block_seen,on_vote_seen}).
  using BlockTap = std::function<void(const types::Block&)>;
  using VoteTap = std::function<void(const streamlet::SVote&)>;

  /// Wires one Streamlet replica onto `transport`. `config.id` must be set;
  /// the observer may be null. `store` (optional) enables durable state —
  /// required for Kind::CrashRestart faults and for restart(); the taps
  /// (optional) feed a harness-level SafetyAuditor.
  /// `dissem.enabled` switches the replica to the batch data plane (same
  /// semantics as replica::Replica — digest proposals, vote-availability
  /// gate, admission front-end).
  StreamletEngine(streamlet::StreamletConfig config, net::Transport& transport,
                  std::shared_ptr<const crypto::KeyRegistry> registry,
                  mempool::WorkloadConfig workload, Rng workload_rng,
                  FaultSpec fault, CommitObserver observer,
                  storage::ReplicaStore* store = nullptr,
                  BlockTap block_tap = nullptr, VoteTap vote_tap = nullptr,
                  dissem::DissemConfig dissem = {});

  [[nodiscard]] Protocol protocol() const override {
    return Protocol::Streamlet;
  }
  [[nodiscard]] ReplicaId id() const override { return id_; }
  void start() override;
  void stop() override;
  void restart() override;
  [[nodiscard]] const chain::Ledger& ledger() const override {
    return core_->ledger();
  }
  [[nodiscard]] Round current_round() const override {
    return core_->current_round();
  }
  [[nodiscard]] const FaultSpec& fault() const override { return fault_; }
  [[nodiscard]] std::uint64_t inbound_messages() const override {
    return inbound_messages_;
  }
  [[nodiscard]] std::uint64_t inbound_bytes() const override {
    return inbound_bytes_;
  }

  [[nodiscard]] streamlet::StreamletCore& core() { return *core_; }
  [[nodiscard]] const streamlet::StreamletCore& core() const { return *core_; }
  [[nodiscard]] storage::ReplicaStore* store() override { return store_; }

  /// Dissemination components (null unless dissem.enabled).
  [[nodiscard]] const dissem::BatchStore* batch_store() const {
    return batches_.get();
  }
  [[nodiscard]] const dissem::BatchBroadcaster* broadcaster() const {
    return broadcaster_.get();
  }
  [[nodiscard]] const dissem::AdmissionFrontend* frontend() const {
    return frontend_.get();
  }

 private:
  void register_handler();
  void on_envelope(const net::Envelope& env);
  void make_broadcaster();

  ReplicaId id_;
  net::Transport& transport_;
  FaultSpec fault_;
  dissem::DissemConfig dissem_;
  storage::ReplicaStore* store_ = nullptr;
  std::uint64_t inbound_messages_ = 0;
  std::uint64_t inbound_bytes_ = 0;
  mempool::Mempool pool_;
  mempool::WorkloadGenerator workload_;
  // Data plane (dissem_.enabled only); same reset-by-assignment rule as
  // replica::Replica (the core aims a raw pointer at *batches_).
  std::unique_ptr<dissem::BatchStore> batches_;
  std::unique_ptr<dissem::BatchBroadcaster> broadcaster_;
  std::unique_ptr<dissem::AdmissionFrontend> frontend_;
  std::unique_ptr<dissem::ClientSwarm> swarm_;
  std::unique_ptr<streamlet::StreamletCore> core_;
  CommitObserver observer_;
};

}  // namespace sftbft::engine
