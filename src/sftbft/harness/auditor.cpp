#include "sftbft/harness/auditor.hpp"

#include <algorithm>
#include <cstdio>

namespace sftbft::harness {

using types::Block;
using types::BlockId;
using types::QuorumCert;

SafetyAuditor::SafetyAuditor(Config config)
    : config_(config),
      sft_tracker_(tree_, config.n, config.f(), core::CountingRule::Sft) {
  // Genesis is certified by definition (Streamlet grounding).
  certified_.insert(tree_.genesis_id());
}

// ------------------------------------------------------------------- feeds

void SafetyAuditor::on_commit(ReplicaId replica, const Block& block,
                              std::uint32_t strength, SimTime now) {
  ingest_block(block);
  audit_claim(block.id, strength, replica, now);
}

void SafetyAuditor::on_qc(ReplicaId /*replica*/, const Block& block,
                          const QuorumCert& qc) {
  ingest_block(block);
  if (tree_.contains(qc.block_id)) {
    sft_tracker_.process_qc(qc);
  } else {
    pending_qcs_[qc.block_id].push_back(qc);
  }
}

void SafetyAuditor::on_block(ReplicaId /*replica*/, const Block& block) {
  ingest_block(block);
}

void SafetyAuditor::on_vote(ReplicaId /*replica*/,
                            const core::VoteSeen& vote) {
  auto& per_voter = svotes_[vote.block_id];
  if (!per_voter.emplace(vote.voter, vote).second) return;  // global dedupe
  // Ground the endorsement with the truthful on-wire marker (the tracker's
  // walk no-ops while the block is unknown; ingest_block replays then).
  sft_tracker_.ingest_height_vote(vote.block_id, vote.voter, vote.marker);
  streamlet_try_certify(vote.block_id);
  if (tree_.contains(vote.block_id)) streamlet_check_commits(vote.block_id);
}

void SafetyAuditor::on_proof(const lightclient::StrongCommitProof& proof,
                             SimTime now) {
  ingest_block(proof.carrier.block);
  for (const Block& block : proof.path) ingest_block(block);
  audit_claim(proof.target, proof.strength, kNoReplica, now);
}

core::AuditTaps SafetyAuditor::taps() {
  core::AuditTaps taps;
  taps.canonical_qc = [this](ReplicaId replica, const Block& block,
                             const QuorumCert& qc) {
    on_qc(replica, block, qc);
  };
  taps.block_seen = [this](ReplicaId replica, const Block& block) {
    on_block(replica, block);
  };
  taps.vote_seen = [this](ReplicaId replica, const core::VoteSeen& vote) {
    on_vote(replica, vote);
  };
  return taps;
}

void SafetyAuditor::ingest_block(const Block& block) {
  if (block.height == 0) return;
  if (tree_.insert(block) != chain::BlockTree::InsertResult::Inserted) return;

  // Linking one block can adopt a whole orphan subtree; drain every pending
  // QC / vote set whose certified block became reachable.
  for (auto it = pending_qcs_.begin(); it != pending_qcs_.end();) {
    if (tree_.contains(it->first)) {
      for (const QuorumCert& qc : it->second) sft_tracker_.process_qc(qc);
      it = pending_qcs_.erase(it);
    } else {
      ++it;
    }
  }
  if (config_.protocol == engine::Protocol::Streamlet) {
    // Votes that arrived before their block now ground endorsements. The
    // insert may have adopted a whole orphan subtree, so walk every block
    // that just became reachable (replaying a vote is idempotent).
    std::vector<const Block*> frontier{tree_.get(block.id)};
    while (!frontier.empty()) {
      const Block* current = frontier.back();
      frontier.pop_back();
      if (current == nullptr) continue;
      auto votes = svotes_.find(current->id);
      if (votes != svotes_.end()) {
        for (const auto& [voter, vote] : votes->second) {
          sft_tracker_.ingest_height_vote(vote.block_id, vote.voter,
                                          vote.marker);
        }
      }
      streamlet_try_certify(current->id);
      streamlet_check_commits(current->id);
      for (const Block* child : tree_.children_of(current->id)) {
        frontier.push_back(child);
      }
    }
  }
}

// ------------------------------------------------------------------ claims

void SafetyAuditor::audit_claim(const BlockId& id, std::uint32_t strength,
                                ReplicaId replica, SimTime now) {
  ++claims_;
  max_claimed_ = std::max(max_claimed_, strength);
  const std::uint32_t prev = [&] {
    auto it = claimed_.find(id);
    return it == claimed_.end() ? 0u : it->second;
  }();
  if (strength <= prev) return;  // nothing new to audit (dedupes n replicas)

  // Conflicting commits: a different block claimed committed at the same
  // height. Honest commits always cover all ancestors, so equal-height
  // pairs capture every cross-branch conflict.
  if (const Block* block = tree_.get(id)) {
    auto& at_height = committed_at_[block->height];
    for (const BlockId& rival : at_height) {
      if (rival == id) continue;
      Violation violation;
      violation.kind = Violation::Kind::ConflictingCommit;
      violation.block = id;
      violation.rival = rival;
      violation.claimed = strength;
      auto rival_claim = claimed_.find(rival);
      violation.supported =
          rival_claim == claimed_.end() ? 0 : rival_claim->second;
      violation.threshold = std::min(strength, violation.supported);
      violation.replica = replica;
      violation.at = now;
      record_violation(std::move(violation));
    }
    if (std::find(at_height.begin(), at_height.end(), id) ==
        at_height.end()) {
      at_height.push_back(id);
    }
  }

  // Unsound strong claim: more tolerance than the VoteHistory ground truth
  // supports *right now* — the Appendix-C window where the adversary can
  // revert an "x-strong" block (checked eagerly; support accruing later
  // does not retroactively make the exposed claim safe).
  if (strength > config_.f()) {
    const std::uint32_t supported = supported_strength(id);
    if (strength > supported) {
      Violation violation;
      violation.kind = Violation::Kind::UnsoundClaim;
      violation.block = id;
      violation.claimed = strength;
      violation.supported = supported;
      violation.threshold = strength;
      violation.replica = replica;
      violation.at = now;
      record_violation(std::move(violation));
    }
  }

  claimed_[id] = strength;
}

void SafetyAuditor::record_violation(Violation violation) {
  violations_.push_back(violation);
  if (violation_hook_) violation_hook_(violations_.back());
}

std::uint32_t SafetyAuditor::supported_strength(const BlockId& id) const {
  std::uint32_t supported = config_.f();  // the regular commit's baseline
  if (engine::is_chained(config_.protocol)) {
    supported = std::max(supported, sft_tracker_.effective_strength(id));
  } else {
    auto it = streamlet_supported_.find(id);
    if (it != streamlet_supported_.end()) {
      supported = std::max(supported, it->second);
    }
  }
  return supported;
}

std::uint64_t SafetyAuditor::violations_at(std::uint32_t x) const {
  std::uint64_t count = 0;
  for (const Violation& violation : violations_) {
    if (violation.threshold >= x) ++count;
  }
  return count;
}

bool SafetyAuditor::clean_at(std::uint32_t x) const {
  return violations_at(x) == 0;
}

std::string SafetyAuditor::Violation::describe() const {
  char buf[160];
  if (kind == Kind::ConflictingCommit) {
    std::snprintf(buf, sizeof(buf),
                  "conflicting commits at threshold %u (claimed x=%u vs "
                  "rival x=%u) at t=%s",
                  threshold, claimed, supported, format_time(at).c_str());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "unsound claim: x=%u committed, VoteHistory ground truth "
                  "supports only x=%u (replica %u, t=%s)",
                  claimed, supported, replica, format_time(at).c_str());
  }
  return buf;
}

// --------------------------------------- Streamlet ground truth (Fig. 11)

void SafetyAuditor::streamlet_try_certify(const BlockId& id) {
  if (certified_.contains(id)) return;
  auto it = svotes_.find(id);
  const std::uint32_t quorum = 2 * config_.f() + 1;
  if (it == svotes_.end() || it->second.size() < quorum) return;
  if (!tree_.contains(id)) return;
  certified_.insert(id);
  streamlet_check_commits(id);
}

void SafetyAuditor::streamlet_check_commits(const BlockId& id) {
  const Block* block = tree_.get(id);
  if (block == nullptr) return;
  streamlet_evaluate_triple(*block);
  if (const Block* parent = tree_.parent_of(id)) {
    streamlet_evaluate_triple(*parent);
  }
  for (const Block* child : tree_.children_of(id)) {
    streamlet_evaluate_triple(*child);
  }
}

void SafetyAuditor::streamlet_evaluate_triple(const Block& middle) {
  // The kernel's single Fig. 11 rule, applied to the auditor's global
  // evidence under truthful markers.
  const std::optional<std::uint32_t> strength =
      core::streamlet_triple_strength(
          tree_, sft_tracker_, middle,
          [this](const BlockId& id) { return certified_.contains(id); },
          config_.n, config_.f(), /*sft=*/true);
  if (!strength || *strength == 0) return;  // supported floor is already f
  // Propagate down the chain (the strong commit rule covers ancestors);
  // stop once an ancestor already holds at least this strength.
  for (const Block* covered = &middle;
       covered != nullptr && covered->height > 0;
       covered = tree_.parent_of(covered->id)) {
    std::uint32_t& recorded = streamlet_supported_[covered->id];
    if (recorded >= *strength) break;
    recorded = *strength;
  }
}

}  // namespace sftbft::harness
