// SafetyAuditor: a global, omniscient observer that checks the paper's
// central promise — an x-strong commit survives up to x corruptions — while
// an adversary is actively attacking (Appendix C / Fig. 9).
//
// The auditor sits above the deployment and never participates in the
// protocol. It consumes three feeds:
//
//  * every honest commit (the Deployment's CommitObserver): the claim
//    "block B is x-strong committed";
//  * every certificate any replica processes (core::AuditTaps): canonical
//    QCs on the chained protocols (DiemBFT, HotStuff), blocks + votes on
//    Streamlet. Because each core fires its tap *before* its own strength
//    bookkeeping consumes the data, the auditor's global view is always a
//    superset of any single replica's view at the moment that replica makes
//    a claim;
//  * every lightclient::StrongCommitProof presented to it (the Sec. 5
//    trust path) — callers verify the proof cryptographically first; the
//    auditor audits the *claim* the proof certifies.
//
// From the certificate feed the auditor maintains the ground-truth
// VoteHistory accounting — one core::StrengthTracker in the protocol's
// marker domain, the same single implementation the engines themselves run
// (with CountingRule::Sft, whatever rule the replicas were configured
// with) — and it flags two kinds of violations:
//
//  * ConflictingCommit — two conflicting blocks both claimed committed.
//    The violation's threshold is the *smaller* claimed strength: an
//    x-strong commit with a conflicting commit anywhere is broken for every
//    tolerance >= that level.
//  * UnsoundClaim — a claim of strength x > f that the ground-truth
//    VoteHistory rule cannot justify at the moment the claim is made
//    (checked eagerly, because sound support can accrue later — the paper's
//    point is that the adversary strikes *when* the overclaim happens).
//    This is exactly how the Appendix-C strawman dies: under
//    CountingRule::NaiveAllIndirect honest replicas claim strengths their
//    own cross-fork voters' truthful markers deny, and the adversary can
//    revert the block while the claim stands (Fig. 9). Under the
//    VoteHistory rule every honest claim is derived from a subset of the
//    auditor's evidence, so no honest run can ever trip this check.
//
// clean_at(x) answers the acceptance question "zero conflicting x-strong
// commits for all thresholds >= x".
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/core/audit.hpp"
#include "sftbft/core/strength.hpp"
#include "sftbft/engine/engine.hpp"
#include "sftbft/lightclient/light_client.hpp"

namespace sftbft::harness {

class SafetyAuditor {
 public:
  struct Config {
    engine::Protocol protocol = engine::Protocol::DiemBft;
    std::uint32_t n = 4;

    [[nodiscard]] std::uint32_t f() const { return (n - 1) / 3; }
  };

  explicit SafetyAuditor(Config config);

  // --- feeds (wire into Deployment / the light-client path) ---------------
  /// Honest commit claim (Deployment CommitObserver signature).
  void on_commit(ReplicaId replica, const types::Block& block,
                 std::uint32_t strength, SimTime now);
  /// Chained-stack certificate tap (core::AuditTaps::canonical_qc).
  void on_qc(ReplicaId replica, const types::Block& block,
             const types::QuorumCert& qc);
  /// Streamlet taps (core::AuditTaps::{block_seen,vote_seen}).
  void on_block(ReplicaId replica, const types::Block& block);
  void on_vote(ReplicaId replica, const core::VoteSeen& vote);
  /// A cryptographically verified light-client claim (callers run
  /// LightClient::verify first; feeding an unverified proof audits a claim
  /// nobody certified).
  void on_proof(const lightclient::StrongCommitProof& proof, SimTime now);

  /// The deployment-facing tap bundle, feeding this auditor (pass to
  /// engine::Deployment's `taps` parameter). The auditor must outlive the
  /// deployment.
  [[nodiscard]] core::AuditTaps taps();

  // --- verdicts ------------------------------------------------------------
  struct Violation {
    enum class Kind { ConflictingCommit, UnsoundClaim };
    Kind kind = Kind::UnsoundClaim;
    types::BlockId block{};     ///< the claimed block
    types::BlockId rival{};     ///< ConflictingCommit: the conflicting block
    std::uint32_t claimed = 0;  ///< claimed tolerance x
    std::uint32_t supported = 0;///< ground-truth tolerance at claim time
    /// Tolerance level the violation breaks: claims at or above this
    /// threshold are unsafe.
    std::uint32_t threshold = 0;
    ReplicaId replica = kNoReplica;  ///< claimant (kNoReplica for proofs)
    SimTime at = 0;

    [[nodiscard]] std::string describe() const;
  };

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// Fired the moment a violation is recorded — the harness uses this to
  /// snapshot the flight recorder *at* the violation instant, before further
  /// events evict the incriminating timeline. May be empty.
  void set_violation_hook(std::function<void(const Violation&)> hook) {
    violation_hook_ = std::move(hook);
  }
  /// Number of violations breaking tolerance threshold x (or above is NOT
  /// implied — a violation at threshold t breaks every x <= t).
  [[nodiscard]] std::uint64_t violations_at(std::uint32_t x) const;
  /// "Zero conflicting x-strong commits for every threshold >= x": true iff
  /// no recorded violation has threshold >= x.
  [[nodiscard]] bool clean_at(std::uint32_t x) const;

  /// Claims audited so far (commits + proofs) and the strongest claim seen.
  [[nodiscard]] std::uint64_t claims() const { return claims_; }
  [[nodiscard]] std::uint32_t max_claimed() const { return max_claimed_; }

  /// Ground-truth tolerance of a block under the VoteHistory rule, given
  /// everything the auditor has seen (>= f always: the regular commit's
  /// baseline is not the auditor's to question).
  [[nodiscard]] std::uint32_t supported_strength(
      const types::BlockId& id) const;

  [[nodiscard]] const chain::BlockTree& tree() const { return tree_; }

 private:
  void record_violation(Violation violation);
  void ingest_block(const types::Block& block);
  void audit_claim(const types::BlockId& id, std::uint32_t strength,
                   ReplicaId replica, SimTime now);
  void streamlet_try_certify(const types::BlockId& id);
  void streamlet_check_commits(const types::BlockId& id);
  void streamlet_evaluate_triple(const types::Block& middle);

  Config config_;
  chain::BlockTree tree_;

  /// Ground truth: the engines' own single strength-accounting
  /// implementation, fed truthful markers under CountingRule::Sft — in the
  /// round domain (canonical QCs) for the chained protocols, the height
  /// domain (individual votes) for Streamlet.
  core::StrengthTracker sft_tracker_;
  /// QCs whose certified block was still orphaned on arrival, keyed by the
  /// block id they wait for (chained protocols).
  std::unordered_map<types::BlockId, std::vector<types::QuorumCert>>
      pending_qcs_;

  // Streamlet grounding.
  std::unordered_map<types::BlockId,
                     std::unordered_map<ReplicaId, core::VoteSeen>>
      svotes_;
  std::unordered_set<types::BlockId> certified_;
  /// Highest sound strength per block, self-or-descendant heads included
  /// (the Streamlet analogue of StrengthTracker::effective_strength,
  /// maintained incrementally via commit-chain propagation).
  std::unordered_map<types::BlockId, std::uint32_t> streamlet_supported_;

  // Claims: per block the strongest committed claim, plus a height index
  // for conflict detection.
  std::unordered_map<types::BlockId, std::uint32_t> claimed_;
  std::unordered_map<Height, std::vector<types::BlockId>> committed_at_;

  std::vector<Violation> violations_;
  std::function<void(const Violation&)> violation_hook_;
  std::uint64_t claims_ = 0;
  std::uint32_t max_claimed_ = 0;
};

}  // namespace sftbft::harness
