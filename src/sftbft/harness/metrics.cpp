#include "sftbft/harness/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace sftbft::harness {

StrengthLatencyTracker::StrengthLatencyTracker(
    std::uint32_t n, std::vector<std::uint32_t> levels)
    : n_(n), levels_(std::move(levels)), level_hist_(levels_.size()) {
  assert(std::is_sorted(levels_.begin(), levels_.end()));
}

void StrengthLatencyTracker::on_commit(ReplicaId replica,
                                       const types::Block& block,
                                       std::uint32_t strength, SimTime now) {
  auto [it, inserted] = blocks_.try_emplace(block.id);
  PerBlock& entry = it->second;
  if (inserted) {
    entry.created = block.created_at;
    entry.credited.assign(n_, 0);
    entry.committed.assign(n_, 0);
    entry.latency_sum.assign(levels_.size(), 0.0);
    entry.sample_count.assign(levels_.size(), 0);
  }
  const bool in_window =
      entry.created >= window_min_ && entry.created <= window_max_;
  const SimDuration latency = now - entry.created;
  // The replica's first notification for the block is its regular commit.
  if (!entry.committed[replica]) {
    entry.committed[replica] = 1;
    if (in_window) commit_hist_.record(latency);
  }
  // Credit every level in (already-credited, strength] for this replica.
  std::uint8_t& idx = entry.credited[replica];
  while (idx < levels_.size() && levels_[idx] <= strength) {
    entry.latency_sum[idx] += to_seconds(latency);
    entry.sample_count[idx] += 1;
    if (in_window) level_hist_[idx].record(latency);
    ++idx;
  }
}

void StrengthLatencyTracker::set_window(SimTime min_created,
                                        SimTime max_created) {
  window_min_ = min_created;
  window_max_ = max_created;
}

std::vector<StrengthLatencyTracker::LevelStats>
StrengthLatencyTracker::results() const {
  std::vector<LevelStats> out(levels_.size());
  for (std::size_t i = 0; i < levels_.size(); ++i) out[i].level = levels_[i];

  for (const auto& [id, entry] : blocks_) {
    if (entry.created < window_min_ || entry.created > window_max_) continue;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (entry.sample_count[i] == 0) continue;
      out[i].samples += entry.sample_count[i];
      out[i].blocks += 1;
      out[i].mean_latency_s += entry.latency_sum[i];
    }
  }
  const std::uint64_t window = window_blocks();
  for (std::size_t i = 0; i < out.size(); ++i) {
    LevelStats& stats = out[i];
    if (stats.samples > 0) {
      stats.mean_latency_s /= static_cast<double>(stats.samples);
    }
    if (window > 0) {
      stats.coverage = static_cast<double>(stats.samples) /
                       (static_cast<double>(window) * n_);
    }
    stats.hist = level_hist_[i].summary();
  }
  return out;
}

std::uint64_t StrengthLatencyTracker::window_blocks() const {
  std::uint64_t count = 0;
  for (const auto& [id, entry] : blocks_) {
    if (entry.created >= window_min_ && entry.created <= window_max_) ++count;
  }
  return count;
}

LedgerSummary summarize_ledger(const chain::Ledger& ledger,
                               SimDuration duration, SimTime window_min,
                               SimTime window_max) {
  LedgerSummary summary;
  double latency_total = 0;
  double strength_total = 0;
  std::uint64_t latency_samples = 0;
  for (const chain::Ledger::Entry& entry : ledger.snapshot()) {
    if (entry.created_at < window_min || entry.created_at > window_max) {
      continue;
    }
    summary.committed_blocks += 1;
    summary.committed_txns += entry.txn_count;
    latency_total += to_seconds(entry.first_committed_at - entry.created_at);
    strength_total += entry.strength;
    ++latency_samples;
  }
  if (latency_samples > 0) {
    summary.mean_regular_latency_s =
        latency_total / static_cast<double>(latency_samples);
    summary.mean_strength = strength_total / static_cast<double>(latency_samples);
  }
  if (duration > 0) {
    summary.txns_per_sec = static_cast<double>(summary.committed_txns) /
                           to_seconds(duration);
  }
  return summary;
}

}  // namespace sftbft::harness
