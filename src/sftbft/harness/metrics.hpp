// Experiment metrics.
//
// The paper's primary measurement (Sec. 4): "latency of strong commits of
// different resilience levels, measured by the time duration from when a
// block is created to when the block is strong committed", with "each data
// point the average value measured over all blocks over all replicas".
// StrengthLatencyTracker implements exactly that aggregation; blocks created
// near the end of a run are excluded via a measurement window so censoring
// (high strengths not reached before the run stops) does not bias means.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sftbft/chain/ledger.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/obs/metrics.hpp"
#include "sftbft/types/block.hpp"

namespace sftbft::harness {

class StrengthLatencyTracker {
 public:
  /// `levels` — strength values x to measure (ascending), e.g. multiples of
  /// 0.1f from f to 2f. `n` — replica count (for per-replica bookkeeping).
  StrengthLatencyTracker(std::uint32_t n, std::vector<std::uint32_t> levels);

  /// Feed from Cluster's commit observer.
  void on_commit(ReplicaId replica, const types::Block& block,
                 std::uint32_t strength, SimTime now);

  /// Restricts aggregation to blocks created within [min_created,
  /// max_created]. Means (results()) honor a window set at any time; the
  /// latency *histograms* record as commits stream in, so set the window
  /// before feeding on_commit for accurate percentiles.
  void set_window(SimTime min_created, SimTime max_created);

  struct LevelStats {
    std::uint32_t level = 0;   ///< strength x
    std::uint64_t samples = 0; ///< (block, replica) pairs that reached it
    std::uint64_t blocks = 0;  ///< distinct blocks that reached it anywhere
    double mean_latency_s = 0; ///< mean creation->reach latency
    /// Fraction of (block, replica) pairs in the window that reached this
    /// level. The Fig. 7b "1.7f cap": levels only a small minority of
    /// replicas can reach (e.g. the outcast region itself) have low
    /// coverage and are reported as not achieved.
    double coverage = 0;
    /// Latency distribution (micros) of in-window creation->reach samples:
    /// the percentile companion to mean_latency_s.
    obs::HistogramSummary hist;
  };

  /// Aggregated per-level stats over the measurement window.
  [[nodiscard]] std::vector<LevelStats> results() const;

  /// Number of distinct blocks observed inside the window.
  [[nodiscard]] std::uint64_t window_blocks() const;

  /// Distribution (micros) of each replica's *first* commit notification per
  /// in-window block — the regular-commit latency across all replicas.
  [[nodiscard]] const obs::Histogram& commit_histogram() const {
    return commit_hist_;
  }

 private:
  struct PerBlock {
    SimTime created = 0;
    /// Per replica: number of levels already credited (prefix of levels_).
    std::vector<std::uint8_t> credited;
    /// Per replica: first commit notification already recorded.
    std::vector<std::uint8_t> committed;
    /// Per level: total latency and sample count across replicas.
    std::vector<double> latency_sum;
    std::vector<std::uint64_t> sample_count;
  };

  std::uint32_t n_;
  std::vector<std::uint32_t> levels_;
  std::unordered_map<types::BlockId, PerBlock> blocks_;
  /// Per-level latency histograms (micros), window-filtered at record time.
  std::vector<obs::Histogram> level_hist_;
  obs::Histogram commit_hist_;
  SimTime window_min_ = 0;
  SimTime window_max_ = std::numeric_limits<SimTime>::max();
};

/// Throughput + regular-commit summary from one replica's ledger.
struct LedgerSummary {
  std::uint64_t committed_blocks = 0;
  std::uint64_t committed_txns = 0;
  double txns_per_sec = 0;
  double mean_regular_latency_s = 0;
  double mean_strength = 0;  ///< average final strength across blocks
};

LedgerSummary summarize_ledger(const chain::Ledger& ledger,
                               SimDuration duration, SimTime window_min,
                               SimTime window_max);

}  // namespace sftbft::harness
