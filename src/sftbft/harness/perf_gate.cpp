#include "sftbft/harness/perf_gate.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sftbft::harness {

// ----------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> run() {
    std::optional<JsonValue> value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // This repo's writers never emit \u escapes; keep the parser
          // total anyway by passing the sequence through verbatim.
          if (pos_ + 4 > text_.size()) return std::nullopt;
          out.append("\\u").append(text_, pos_, 4);
          pos_ += 4;
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    JsonValue value;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      value.type = JsonValue::Type::Object;
      skip_ws();
      if (consume('}')) return value;
      while (true) {
        std::optional<std::string> key = parse_string();
        if (!key || !consume(':')) return std::nullopt;
        std::optional<JsonValue> member = parse_value();
        if (!member) return std::nullopt;
        value.object.emplace(std::move(*key), std::move(*member));
        if (consume(',')) continue;
        if (consume('}')) return value;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      value.type = JsonValue::Type::Array;
      skip_ws();
      if (consume(']')) return value;
      while (true) {
        std::optional<JsonValue> element = parse_value();
        if (!element) return std::nullopt;
        value.array.push_back(std::move(*element));
        if (consume(',')) continue;
        if (consume(']')) return value;
        return std::nullopt;
      }
    }
    if (c == '"') {
      std::optional<std::string> text = parse_string();
      if (!text) return std::nullopt;
      value.type = JsonValue::Type::String;
      value.string = std::move(*text);
      return value;
    }
    if (c == 't') {
      if (!literal("true")) return std::nullopt;
      value.type = JsonValue::Type::Bool;
      value.boolean = true;
      return value;
    }
    if (c == 'f') {
      if (!literal("false")) return std::nullopt;
      value.type = JsonValue::Type::Bool;
      return value;
    }
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return value;
    }
    // number
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double number = std::strtod(begin, &end);
    if (end == begin) return std::nullopt;
    pos_ += static_cast<std::size_t>(end - begin);
    value.type = JsonValue::Type::Number;
    value.number = number;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(const std::string& text) {
  return Parser(text).run();
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

// ------------------------------------------------------------------- rules

std::vector<GateRule> default_rules(const std::string& bench) {
  using D = GateRule::Direction;
  if (bench == "tab_throughput") {
    return {
        {"throughput", "protocol", "blocks/s", D::kHigherIsBetter, 0.10},
        {"throughput", "protocol", "commit p50 (s)", D::kLowerIsBetter, 0.15},
        {"throughput", "protocol", "commit p99 (s)", D::kLowerIsBetter, 0.25},
    };
  }
  if (bench == "tab_critical_path") {
    return {
        {"summary", "engine", "blocks", D::kHigherIsBetter, 0.15},
        {"summary", "engine", "mean commit (ms)", D::kLowerIsBetter, 0.20},
        {"summary", "engine", "p99 commit (ms)", D::kLowerIsBetter, 0.30},
    };
  }
  if (bench == "wire") {
    // BENCH_wire.json (tab_msg_complexity --smoke). The certificate-byte
    // cells are exact analytic encodes — zero tolerance, so reintroducing
    // O(n) signature vectors into QCs or TCs fails CI on the first run.
    // Charged traffic is deterministic per seed but shifts with intentional
    // protocol changes; 10% covers drift without masking a format
    // regression (per-vote signatures would be a >6x jump).
    return {
        {"broadcast", "engine", "qc bytes", D::kLowerIsBetter, 0.0},
        {"broadcast", "engine", "tc bytes", D::kLowerIsBetter, 0.0},
        {"broadcast", "engine", "charged bytes", D::kLowerIsBetter, 0.10},
        {"broadcast", "engine", "decode drops", D::kLowerIsBetter, 0.0},
    };
  }
  return {};
}

// -------------------------------------------------------------- comparison

namespace {

const char* kind_name(GateViolation::Kind kind) {
  switch (kind) {
    case GateViolation::Kind::kRegression: return "REGRESSION";
    case GateViolation::Kind::kMissingSection: return "MISSING SECTION";
    case GateViolation::Kind::kMissingRow: return "MISSING ROW";
    case GateViolation::Kind::kBadValue: return "BAD VALUE";
    case GateViolation::Kind::kManifestMismatch: return "MANIFEST MISMATCH";
    case GateViolation::Kind::kMalformed: return "MALFORMED";
  }
  return "?";
}

void add(GateReport& report, GateViolation::Kind kind,
         const std::string& artifact, std::string detail) {
  report.violations.push_back({kind, artifact, std::move(detail)});
}

/// Row lookup: the first row object whose `key_column` string equals `key`.
const JsonValue* find_row(const JsonValue& section,
                          const std::string& key_column,
                          const std::string& key) {
  for (const JsonValue& row : section.array) {
    const JsonValue* cell = row.find(key_column);
    if (cell != nullptr && cell->type == JsonValue::Type::String &&
        cell->string == key) {
      return &row;
    }
  }
  return nullptr;
}

/// Table cells are strings ("12.34", "--"); accept raw numbers too.
std::optional<double> cell_number(const JsonValue& row,
                                  const std::string& column) {
  const JsonValue* cell = row.find(column);
  if (cell == nullptr) return std::nullopt;
  if (cell->type == JsonValue::Type::Number) return cell->number;
  if (cell->type != JsonValue::Type::String) return std::nullopt;
  const char* begin = cell->string.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0') return std::nullopt;
  return value;
}

/// Manifest comparability: seed, smoke mode, and the per-run manifests
/// (engine, n, config digest) must all match — otherwise the numeric delta
/// is a configuration diff, not a perf signal.
void check_manifests(const std::string& name, const JsonValue& baseline,
                     const JsonValue& candidate, GateReport& report) {
  static const char* kKeys[] = {"seed", "smoke", "manifests"};
  for (const char* key : kKeys) {
    const JsonValue* base = baseline.find(key);
    const JsonValue* cand = candidate.find(key);
    if (base == nullptr && cand == nullptr) continue;
    if (base != nullptr && cand != nullptr && *base == *cand) continue;
    add(report, GateViolation::Kind::kManifestMismatch, name,
        std::string("'") + key +
            "' differs between baseline and candidate — the runs are not "
            "comparable; refresh the baselines (see README, 'Refreshing "
            "baselines') if the configuration change is intentional");
  }
}

}  // namespace

void compare_artifact(const std::string& name, const JsonValue& baseline,
                      const JsonValue& candidate,
                      const std::vector<GateRule>& rules, GateReport& report) {
  const JsonValue* base_sections = baseline.find("sections");
  const JsonValue* cand_sections = candidate.find("sections");
  if (base_sections == nullptr || cand_sections == nullptr) {
    add(report, GateViolation::Kind::kMalformed, name,
        "artifact lacks a top-level \"sections\" object");
    return;
  }
  check_manifests(name, baseline, candidate, report);

  for (const GateRule& rule : rules) {
    const JsonValue* base_section = base_sections->find(rule.section);
    if (base_section == nullptr ||
        base_section->type != JsonValue::Type::Array) {
      // The baseline does not carry this section: nothing to gate (e.g. a
      // rule newer than the checked-in baseline). Not a violation — the
      // next baseline refresh picks it up.
      continue;
    }
    const JsonValue* cand_section = cand_sections->find(rule.section);
    if (cand_section == nullptr ||
        cand_section->type != JsonValue::Type::Array) {
      add(report, GateViolation::Kind::kMissingSection, name,
          "section \"" + rule.section + "\" missing from candidate");
      continue;
    }
    for (const JsonValue& base_row : base_section->array) {
      const JsonValue* key_cell = base_row.find(rule.key_column);
      if (key_cell == nullptr || key_cell->type != JsonValue::Type::String) {
        continue;  // unkeyed baseline row: cannot match it
      }
      const std::string& key = key_cell->string;
      const JsonValue* cand_row =
          find_row(*cand_section, rule.key_column, key);
      if (cand_row == nullptr) {
        add(report, GateViolation::Kind::kMissingRow, name,
            rule.section + ": row \"" + key + "\" missing from candidate");
        continue;
      }
      const std::optional<double> base_value =
          cell_number(base_row, rule.value_column);
      if (!base_value) continue;  // baseline cell not numeric ("--")
      const std::optional<double> cand_value =
          cell_number(*cand_row, rule.value_column);
      if (!cand_value) {
        add(report, GateViolation::Kind::kBadValue, name,
            rule.section + "/" + key + ": \"" + rule.value_column +
                "\" is not numeric in candidate");
        continue;
      }
      ++report.comparisons;
      const double base = *base_value;
      const double cand = *cand_value;
      const bool worse =
          rule.direction == GateRule::Direction::kHigherIsBetter
              ? cand < base * (1.0 - rule.tolerance)
              : cand > base * (1.0 + rule.tolerance);
      if (worse) {
        char detail[256];
        std::snprintf(
            detail, sizeof(detail),
            "%s/%s: \"%s\" %s %.4g -> %.4g (tolerance %.0f%%)",
            rule.section.c_str(), key.c_str(), rule.value_column.c_str(),
            rule.direction == GateRule::Direction::kHigherIsBetter
                ? "dropped"
                : "rose",
            base, cand, rule.tolerance * 100.0);
        add(report, GateViolation::Kind::kRegression, name, detail);
      }
    }
  }
}

std::string GateReport::describe() const {
  std::string out;
  for (const GateViolation& violation : violations) {
    out += std::string("[") + kind_name(violation.kind) + "] " +
           violation.artifact + ": " + violation.detail + "\n";
  }
  char summary[96];
  std::snprintf(summary, sizeof(summary),
                "perf gate: %zu comparison(s), %zu violation(s) -> %s\n",
                comparisons, violations.size(), ok() ? "PASS" : "FAIL");
  out += summary;
  return out;
}

}  // namespace sftbft::harness
