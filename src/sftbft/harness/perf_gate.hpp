// Perf-regression gate: compares a freshly produced bench artifact (the
// --json output of a tab_* bench) against a checked-in baseline and fails
// on regressions beyond per-metric tolerance bands.
//
// The simulator is fully deterministic — same scenario + same seed -> the
// same artifact byte for byte — so the bands do not absorb run-to-run
// noise; they absorb *intentional* behaviour drift (a scheduling tweak that
// legitimately moves p99 by a few percent) while still catching the
// order-of-magnitude mistakes a refactor can smuggle in.
//
// Comparisons are keyed, not positional: each GateRule names a section, a
// key column (e.g. "protocol") and a value column (e.g. "blocks/s"), so
// reordering rows or appending new ones never trips the gate. A baseline
// row missing from the candidate does — silently dropping an engine from a
// sweep is itself a regression.
//
// Run manifests guard comparability: when both artifacts carry manifests
// (seed, engine, n, config digest — see harness::RunManifest), any
// difference is a hard failure with a "refresh the baselines" hint, because
// a delta between different configurations is noise, not signal.
//
// JsonValue is the self-contained parser this needs (bench artifacts and
// Chrome traces are written by this repo, so the full RFC is not): objects,
// arrays, strings with escapes, numbers, bools, null. Tests also use it to
// structurally inspect trace output.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sftbft::harness {

/// Minimal parsed-JSON document (see file comment).
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  /// Strict parse of a complete document; nullopt on any syntax error or
  /// trailing garbage.
  [[nodiscard]] static std::optional<JsonValue> parse(const std::string& text);

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Structural equality (object key order is irrelevant by construction).
  [[nodiscard]] bool operator==(const JsonValue& other) const = default;
};

/// One gated metric: compare `value_column`, row-matched via `key_column`,
/// within section `section` of the artifact.
struct GateRule {
  enum class Direction { kHigherIsBetter, kLowerIsBetter };

  std::string section;
  std::string key_column;
  std::string value_column;
  Direction direction = Direction::kLowerIsBetter;
  /// Fractional band, e.g. 0.15 = a 15% move in the bad direction fails.
  double tolerance = 0.15;
};

struct GateViolation {
  enum class Kind {
    kRegression,        ///< beyond the tolerance band
    kMissingSection,    ///< candidate lost a gated section
    kMissingRow,        ///< candidate lost a gated row
    kBadValue,          ///< a gated cell does not parse as a number
    kManifestMismatch,  ///< artifacts come from different configurations
    kMalformed,         ///< artifact is not the expected JSON shape
  };

  Kind kind = Kind::kRegression;
  std::string artifact;  ///< which artifact (basename or bench name)
  std::string detail;    ///< human-readable specifics
};

struct GateReport {
  std::size_t comparisons = 0;  ///< numeric cells actually compared
  std::vector<GateViolation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// One line per violation (plus a pass/fail summary line).
  [[nodiscard]] std::string describe() const;
};

/// The gated metrics for a known bench (`bench` = the artifact's top-level
/// "bench" field). Empty when the bench has no gate — callers decide
/// whether that is an error (the CLI treats it as one).
[[nodiscard]] std::vector<GateRule> default_rules(const std::string& bench);

/// Compares one candidate artifact against its baseline under `rules`,
/// appending violations (and the comparison count) to `report`. `name`
/// labels the artifact in violation messages.
void compare_artifact(const std::string& name, const JsonValue& baseline,
                      const JsonValue& candidate,
                      const std::vector<GateRule>& rules, GateReport& report);

}  // namespace sftbft::harness
