#include "sftbft/harness/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "sftbft/harness/auditor.hpp"

namespace sftbft::harness {

namespace {

/// FNV-1a 64-bit over a stream of u64 words — deterministic across
/// platforms, good enough to fingerprint a parameter set.
struct Fnv1a {
  std::uint64_t hash = 14695981039346656037ULL;
  void mix(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xff;
      hash *= 1099511628211ULL;
    }
  }
  void mix_double(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  }
};

}  // namespace

std::string RunManifest::render_json() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"seed\":%" PRIu64
                ",\"engine\":\"%s\",\"n\":%u,\"config_digest\":\"%016" PRIx64
                "\"}",
                seed, engine.c_str(), n, config_digest);
  return buf;
}

RunManifest Scenario::manifest() const {
  // Every knob that changes run behaviour feeds the digest; the seed is
  // deliberately excluded (it is its own manifest field — same config,
  // different seed is still a comparable run family). The name is cosmetic.
  Fnv1a digest;
  digest.mix(static_cast<std::uint64_t>(protocol));
  digest.mix(n);
  digest.mix(static_cast<std::uint64_t>(mode));
  digest.mix(static_cast<std::uint64_t>(counting));
  digest.mix(fbft ? 1 : 0);
  digest.mix(static_cast<std::uint64_t>(topo));
  digest.mix(delta);
  digest.mix(ab_delay);
  digest.mix(intra);
  digest.mix(asym_a);
  digest.mix(asym_b);
  digest.mix(asym_c);
  digest.mix(jitter);
  digest.mix_double(jitter_frac);
  digest.mix(gst);
  digest.mix(hetero_fast_max);
  digest.mix_double(hetero_medium_fraction);
  digest.mix(hetero_medium_lo);
  digest.mix(hetero_medium_hi);
  digest.mix(straggler_count);
  digest.mix(straggler_extra);
  digest.mix(leader_processing);
  digest.mix(base_timeout);
  digest.mix(extra_wait);
  digest.mix(streamlet_delta_bound);
  digest.mix(streamlet_echo ? 1 : 0);
  digest.mix(max_batch);
  digest.mix(txn_size_bytes);
  digest.mix(mean_interarrival);
  digest.mix(verify_signatures ? 1 : 0);
  digest.mix(interval_window);
  digest.mix(attach_commit_log ? 1 : 0);
  digest.mix(dissemination ? 1 : 0);
  digest.mix(duration);
  digest.mix(warmup);
  digest.mix(tail);
  digest.mix(byzantine_count);
  digest.mix(corrupt_count);
  digest.mix(crash_restart_count);
  digest.mix(crash_restart_first);
  digest.mix(crash_restart_downtime);
  digest.mix(crash_restart_stagger);
  digest.mix(snapshot_interval_blocks);
  digest.mix(persist_all ? 1 : 0);
  digest.mix(faults.size());

  RunManifest manifest;
  manifest.seed = seed;
  manifest.engine = engine::protocol_name(protocol);
  manifest.n = n;
  manifest.config_digest = digest.hash;
  return manifest;
}

SimDuration Scenario::expected_round() const {
  SimDuration widest = intra;
  switch (topo) {
    case Topo::Uniform:
      widest = delta;
      break;
    case Topo::Symmetric3:
      widest = delta;
      break;
    case Topo::Asymmetric3:
      // The common case: leaders in A/B, quorum reachable via the A<->B
      // link. Region-C rounds are *supposed* to overshoot this budget when
      // δ is large (the paper's outcast effect).
      widest = ab_delay;
      break;
  }
  return leader_processing + 2 * widest;
}

SimDuration Scenario::default_timeout() const {
  // Expected round + straggler/heterogeneity headroom (a straggler-led round
  // adds up to 2x straggler_extra on each leg) + jitter headroom + a fixed
  // synchrony margin. In the asymmetric topology (which the benches run with
  // an explicitly tuned, tighter timeout) region-C leaders cannot meet the
  // budget at δ = 200 ms while A/B-led rounds fit comfortably.
  const SimDuration widest = expected_round() - leader_processing;
  const auto prop_jitter = static_cast<SimDuration>(
      jitter_frac * static_cast<double>(widest));
  return expected_round() + prop_jitter +
         4 * std::max(straggler_extra, hetero_medium_hi) + 4 * jitter +
         millis(40);
}

net::Topology Scenario::build_topology() const {
  net::Topology topology = [&] {
    switch (topo) {
      case Topo::Uniform:
        return net::Topology::uniform(n, delta);
      case Topo::Symmetric3:
        return net::Topology::symmetric3(n, delta, intra);
      case Topo::Asymmetric3:
        assert(asym_a + asym_b + asym_c == n);
        return net::Topology::asymmetric3(asym_a, asym_b, asym_c, ab_delay,
                                          delta, intra);
    }
    return net::Topology::uniform(n, delta);
  }();

  // Persistent heterogeneity: deterministic per-replica extra delay, in two
  // tiers (see the field comments in scenario.hpp).
  if (hetero_fast_max > 0) {
    Rng rng(seed ^ 0x48455445524fULL);  // independent of other streams
    for (ReplicaId id = 0; id < n; ++id) {
      const bool medium = rng.uniform01() < hetero_medium_fraction;
      const SimDuration extra =
          medium ? rng.uniform(hetero_medium_lo, hetero_medium_hi)
                 : rng.uniform(0, hetero_fast_max);
      topology.set_extra_delay(id, extra);
    }
  }

  // Spread stragglers evenly over the id space so round-robin leadership
  // reaches them periodically (Sec. 4.1's "one chance every n rounds").
  if (straggler_count > 0) {
    const std::uint32_t stride = std::max(1u, n / straggler_count);
    for (std::uint32_t k = 0; k < straggler_count; ++k) {
      const ReplicaId id = (k * stride + stride / 2) % n;
      topology.set_extra_delay(id, straggler_extra);
    }
  }
  return topology;
}

std::vector<ReplicaId> spread_placements(
    std::uint32_t n, std::uint32_t count,
    const std::function<bool(ReplicaId)>& taken) {
  std::vector<ReplicaId> placed;
  if (n < 2 || count == 0) return placed;
  const std::uint32_t span = n - 1;
  const std::uint32_t stride = std::max(1u, span / count);
  std::vector<bool> chosen(n, false);
  const auto claimed = [&](ReplicaId id) { return chosen[id] || taken(id); };
  for (std::uint32_t k = 0; k < count; ++k) {
    ReplicaId id = 1 + (k * stride) % span;
    std::uint32_t probes = 0;
    while (claimed(id) && probes < span) {
      id = 1 + (id % span);
      ++probes;
    }
    if (probes == span) break;  // every candidate replica already claimed
    chosen[id] = true;
    placed.push_back(id);
  }
  return placed;
}

std::vector<engine::FaultSpec> Scenario::effective_faults() const {
  std::vector<engine::FaultSpec> merged = faults;
  if ((crash_restart_count == 0 && byzantine_count == 0 &&
       corrupt_count == 0) ||
      n < 2) {
    return merged;
  }
  if (merged.size() < n) merged.resize(n, engine::FaultSpec::honest());
  // One shared placement policy (spread_placements): stride-spaced over
  // [1, n) with id 0 kept honest as the metrics anchor; explicit fault
  // entries win (they count as taken).
  const auto place = [&](std::uint32_t count, auto&& make_spec) {
    const auto ids = spread_placements(n, count, [&](ReplicaId id) {
      return merged[id].kind != engine::FaultSpec::Kind::Honest;
    });
    for (std::uint32_t k = 0; k < ids.size(); ++k) {
      merged[ids[k]] = make_spec(k);
    }
  };

  // Coalition placement first (the attack is the experiment's subject);
  // crash churn probes around it.
  if (byzantine_count > 0) {
    place(byzantine_count,
          [&](std::uint32_t) { return engine::FaultSpec::byzantine(byzantine); });
  }
  // Corrupt links are a network fault, not a replica fault, but placement
  // follows the same spread so affected senders rotate through leadership.
  if (corrupt_count > 0) {
    place(corrupt_count,
          [&](std::uint32_t) { return engine::FaultSpec::corrupt_links(corrupt); });
  }
  // Stagger the crashes so the cluster never loses more than one recovering
  // replica at a time unless asked to.
  if (crash_restart_count > 0) {
    place(crash_restart_count, [&](std::uint32_t k) {
      const SimTime crash = crash_restart_first +
                            static_cast<SimTime>(k) * crash_restart_stagger;
      return engine::FaultSpec::crash_restart(
          crash, crash + crash_restart_downtime);
    });
  }
  return merged;
}

engine::DeploymentConfig Scenario::to_deployment_config() const {
  if (fbft && protocol != engine::Protocol::DiemBft) {
    // The Appendix-B FBFT baseline is a DiemBFT adaptation; silently running
    // SFT-Streamlet instead would skew any cross-protocol baseline sweep.
    throw std::invalid_argument(
        "Scenario: fbft baseline only exists for the DiemBFT engine");
  }
  engine::DeploymentConfig deployment;
  deployment.protocol = protocol;
  deployment.n = n;
  // The chained template serves both chained protocols (DiemBFT and
  // HotStuff) — identical knobs, apples-to-apples sweeps; the Deployment
  // stamps the protocol's rule set per engine.
  deployment.topology = build_topology();
  deployment.net.jitter = jitter;
  deployment.net.jitter_frac = jitter_frac;
  deployment.net.gst = gst;
  deployment.seed = seed;
  deployment.faults = effective_faults();
  deployment.storage.snapshot_interval_blocks = snapshot_interval_blocks;
  deployment.persist_all = persist_all;

  deployment.chained.mode = fbft ? consensus::CoreMode::Plain : mode;
  deployment.chained.fbft_mode = fbft;
  deployment.chained.counting = counting;
  deployment.chained.base_timeout =
      base_timeout > 0 ? base_timeout : default_timeout();
  deployment.chained.leader_processing = leader_processing;
  if (extra_wait > 0) {
    const SimDuration wait = extra_wait;
    deployment.chained.extra_wait = [wait](Round) { return wait; };
  }
  deployment.chained.max_batch = max_batch;
  deployment.chained.interval_window = interval_window;
  // The FBFT baseline's endorser sets depend on extra-vote arrival order,
  // which differs per replica, so its proposals cannot carry a Log that
  // every honest replica can validate — disable Sec. 5 there.
  deployment.chained.attach_commit_log = attach_commit_log && !fbft;
  deployment.chained.verify_commit_log = attach_commit_log && !fbft;
  deployment.chained.verify_signatures = verify_signatures;

  deployment.streamlet.delta_bound = streamlet_delta_bound;
  deployment.streamlet.sft = mode != consensus::CoreMode::Plain;
  deployment.streamlet.counting = counting;
  deployment.streamlet.echo = streamlet_echo;
  deployment.streamlet.max_batch = max_batch;
  deployment.streamlet.verify_signatures = verify_signatures;

  deployment.workload.txn_size_bytes = txn_size_bytes;
  deployment.workload.target_pool_size = max_batch * 4;
  deployment.workload.mean_interarrival = mean_interarrival;

  deployment.dissem = dissem;
  deployment.dissem.enabled = dissemination;

  deployment.obs = obs;
  if (!trace_path.empty()) {
    deployment.obs.enabled = true;
    deployment.obs.trace = true;
  }
  return deployment;
}

std::vector<std::uint32_t> Scenario::strength_levels() const {
  std::vector<std::uint32_t> levels;
  const double base = f();
  for (int tenth = 10; tenth <= 20; ++tenth) {
    const auto level = static_cast<std::uint32_t>(base * tenth / 10.0);
    if (levels.empty() || levels.back() != level) levels.push_back(level);
  }
  return levels;
}

ScenarioResult run_scenario(const Scenario& scenario) {
  StrengthLatencyTracker tracker(scenario.n, scenario.strength_levels());
  // The window is set before the run: the tracker's latency histograms
  // record streaming (no per-sample retention), so they need the bounds up
  // front. results() re-applies the same filter for the means.
  tracker.set_window(scenario.warmup, scenario.duration - scenario.tail);

  ScenarioResult result;

  std::unique_ptr<SafetyAuditor> auditor;
  if (scenario.audit) {
    auditor = std::make_unique<SafetyAuditor>(
        SafetyAuditor::Config{.protocol = scenario.protocol, .n = scenario.n});
  }

  engine::Deployment deployment(
      scenario.to_deployment_config(),
      [&tracker, &auditor](ReplicaId replica, const types::Block& block,
                           std::uint32_t strength, SimTime now) {
        tracker.on_commit(replica, block, strength, now);
        if (auditor) auditor->on_commit(replica, block, strength, now);
      },
      auditor ? auditor->taps() : engine::AuditTaps{});

  if (auditor) {
    // Snapshot the flight recorder the instant the first violation lands —
    // the incriminating events are still in the rings at that moment.
    auditor->set_violation_hook(
        [&result, &deployment](const SafetyAuditor::Violation& violation) {
          if (result.flight_dump.empty()) {
            if (obs::Observer* obs = deployment.observer()) {
              result.flight_dump =
                  violation.describe() + "\n" + obs->flight_dump();
            }
          }
        });
  }

  deployment.start();
  deployment.run_for(scenario.duration);

  result.latency = tracker.results();
  result.commit_latency = tracker.commit_histogram().summary();
  result.window_blocks = tracker.window_blocks();
  result.summary =
      summarize_ledger(deployment.ledger(0), scenario.duration,
                       scenario.warmup, scenario.duration - scenario.tail);
  const net::MessageStats& stats = deployment.net_stats();
  result.total_messages = stats.total_count();
  result.total_message_bytes = stats.total_bytes();
  result.extra_vote_messages = stats.for_type("extra_vote").count;
  result.corrupt_injected = stats.corrupt_injected();
  result.corrupt_drops = stats.corrupt_drops();
  result.broadcast_saved_bytes = stats.broadcast_saved_bytes();
  result.traffic_by_type = stats.by_type();
  result.egress_by_replica = stats.egress_by_replica();
  result.max_egress_bytes = stats.max_egress_bytes();
  result.decode_drops = stats.decode_drops();
  const std::uint64_t blocks = deployment.ledger(0).committed_blocks();
  if (blocks > 0) {
    result.messages_per_block =
        static_cast<double>(result.total_messages) / static_cast<double>(blocks);
  }

  if (auditor) {
    result.auditor_violations = auditor->violations().size();
  }
  if (obs::Observer* obs = deployment.observer()) {
    result.counters = obs->merged().counter_snapshot();
    for (const auto& [type, stats] : obs->wire_delays()) {
      result.wire_delays[type] = {stats.transit_us.summary(),
                                  stats.queueing_us.summary()};
    }
    // A run that produced no in-window blocks is the other flight-recorder
    // trigger: dump the recent timeline (plus the merged counter snapshot —
    // which stage went quiet is usually visible there) so the stall is
    // diagnosable.
    if (result.flight_dump.empty() && result.window_blocks == 0 &&
        obs->flight() != nullptr) {
      std::string dump = "no in-window progress\ncounter snapshot (nonzero):\n";
      for (const auto& [key, value] : result.counters) {
        if (value == 0) continue;
        dump += "  " + key + " = " + std::to_string(value) + "\n";
      }
      dump += obs->flight_dump();
      result.flight_dump = std::move(dump);
    }
    if (!scenario.trace_path.empty() && obs->tracing()) {
      std::ofstream out(scenario.trace_path, std::ios::trunc);
      out << obs->trace_json(scenario.manifest().render_json());
    }
    if (obs->tracing()) {
      result.critical_path =
          obs::CriticalPathAnalyzer::analyze(obs->trace().events());
    }
  }
  // Zero commits with no injected fault means the harness (not the
  // experiment) failed — surface the dump instead of returning silently
  // with all-zero stats.
  const auto faults = scenario.effective_faults();
  const bool clean_faults =
      std::all_of(faults.begin(), faults.end(), [](const engine::FaultSpec& f) {
        return f.kind == engine::FaultSpec::Kind::Honest;
      });
  if (blocks == 0 && clean_faults && !result.flight_dump.empty()) {
    std::fprintf(stderr,
                 "[scenario %s] zero commits under a clean fault spec:\n%s\n",
                 scenario.name.c_str(), result.flight_dump.c_str());
  }
  return result;
}

}  // namespace sftbft::harness
