#include "sftbft/harness/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "sftbft/harness/auditor.hpp"

namespace sftbft::harness {

SimDuration Scenario::expected_round() const {
  SimDuration widest = intra;
  switch (topo) {
    case Topo::Uniform:
      widest = delta;
      break;
    case Topo::Symmetric3:
      widest = delta;
      break;
    case Topo::Asymmetric3:
      // The common case: leaders in A/B, quorum reachable via the A<->B
      // link. Region-C rounds are *supposed* to overshoot this budget when
      // δ is large (the paper's outcast effect).
      widest = ab_delay;
      break;
  }
  return leader_processing + 2 * widest;
}

SimDuration Scenario::default_timeout() const {
  // Expected round + straggler/heterogeneity headroom (a straggler-led round
  // adds up to 2x straggler_extra on each leg) + jitter headroom + a fixed
  // synchrony margin. In the asymmetric topology (which the benches run with
  // an explicitly tuned, tighter timeout) region-C leaders cannot meet the
  // budget at δ = 200 ms while A/B-led rounds fit comfortably.
  const SimDuration widest = expected_round() - leader_processing;
  const auto prop_jitter = static_cast<SimDuration>(
      jitter_frac * static_cast<double>(widest));
  return expected_round() + prop_jitter +
         4 * std::max(straggler_extra, hetero_medium_hi) + 4 * jitter +
         millis(40);
}

net::Topology Scenario::build_topology() const {
  net::Topology topology = [&] {
    switch (topo) {
      case Topo::Uniform:
        return net::Topology::uniform(n, delta);
      case Topo::Symmetric3:
        return net::Topology::symmetric3(n, delta, intra);
      case Topo::Asymmetric3:
        assert(asym_a + asym_b + asym_c == n);
        return net::Topology::asymmetric3(asym_a, asym_b, asym_c, ab_delay,
                                          delta, intra);
    }
    return net::Topology::uniform(n, delta);
  }();

  // Persistent heterogeneity: deterministic per-replica extra delay, in two
  // tiers (see the field comments in scenario.hpp).
  if (hetero_fast_max > 0) {
    Rng rng(seed ^ 0x48455445524fULL);  // independent of other streams
    for (ReplicaId id = 0; id < n; ++id) {
      const bool medium = rng.uniform01() < hetero_medium_fraction;
      const SimDuration extra =
          medium ? rng.uniform(hetero_medium_lo, hetero_medium_hi)
                 : rng.uniform(0, hetero_fast_max);
      topology.set_extra_delay(id, extra);
    }
  }

  // Spread stragglers evenly over the id space so round-robin leadership
  // reaches them periodically (Sec. 4.1's "one chance every n rounds").
  if (straggler_count > 0) {
    const std::uint32_t stride = std::max(1u, n / straggler_count);
    for (std::uint32_t k = 0; k < straggler_count; ++k) {
      const ReplicaId id = (k * stride + stride / 2) % n;
      topology.set_extra_delay(id, straggler_extra);
    }
  }
  return topology;
}

std::vector<ReplicaId> spread_placements(
    std::uint32_t n, std::uint32_t count,
    const std::function<bool(ReplicaId)>& taken) {
  std::vector<ReplicaId> placed;
  if (n < 2 || count == 0) return placed;
  const std::uint32_t span = n - 1;
  const std::uint32_t stride = std::max(1u, span / count);
  std::vector<bool> chosen(n, false);
  const auto claimed = [&](ReplicaId id) { return chosen[id] || taken(id); };
  for (std::uint32_t k = 0; k < count; ++k) {
    ReplicaId id = 1 + (k * stride) % span;
    std::uint32_t probes = 0;
    while (claimed(id) && probes < span) {
      id = 1 + (id % span);
      ++probes;
    }
    if (probes == span) break;  // every candidate replica already claimed
    chosen[id] = true;
    placed.push_back(id);
  }
  return placed;
}

std::vector<engine::FaultSpec> Scenario::effective_faults() const {
  std::vector<engine::FaultSpec> merged = faults;
  if ((crash_restart_count == 0 && byzantine_count == 0 &&
       corrupt_count == 0) ||
      n < 2) {
    return merged;
  }
  if (merged.size() < n) merged.resize(n, engine::FaultSpec::honest());
  // One shared placement policy (spread_placements): stride-spaced over
  // [1, n) with id 0 kept honest as the metrics anchor; explicit fault
  // entries win (they count as taken).
  const auto place = [&](std::uint32_t count, auto&& make_spec) {
    const auto ids = spread_placements(n, count, [&](ReplicaId id) {
      return merged[id].kind != engine::FaultSpec::Kind::Honest;
    });
    for (std::uint32_t k = 0; k < ids.size(); ++k) {
      merged[ids[k]] = make_spec(k);
    }
  };

  // Coalition placement first (the attack is the experiment's subject);
  // crash churn probes around it.
  if (byzantine_count > 0) {
    place(byzantine_count,
          [&](std::uint32_t) { return engine::FaultSpec::byzantine(byzantine); });
  }
  // Corrupt links are a network fault, not a replica fault, but placement
  // follows the same spread so affected senders rotate through leadership.
  if (corrupt_count > 0) {
    place(corrupt_count,
          [&](std::uint32_t) { return engine::FaultSpec::corrupt_links(corrupt); });
  }
  // Stagger the crashes so the cluster never loses more than one recovering
  // replica at a time unless asked to.
  if (crash_restart_count > 0) {
    place(crash_restart_count, [&](std::uint32_t k) {
      const SimTime crash = crash_restart_first +
                            static_cast<SimTime>(k) * crash_restart_stagger;
      return engine::FaultSpec::crash_restart(
          crash, crash + crash_restart_downtime);
    });
  }
  return merged;
}

engine::DeploymentConfig Scenario::to_deployment_config() const {
  if (fbft && protocol != engine::Protocol::DiemBft) {
    // The Appendix-B FBFT baseline is a DiemBFT adaptation; silently running
    // SFT-Streamlet instead would skew any cross-protocol baseline sweep.
    throw std::invalid_argument(
        "Scenario: fbft baseline only exists for the DiemBFT engine");
  }
  engine::DeploymentConfig deployment;
  deployment.protocol = protocol;
  deployment.n = n;
  // The chained template serves both chained protocols (DiemBFT and
  // HotStuff) — identical knobs, apples-to-apples sweeps; the Deployment
  // stamps the protocol's rule set per engine.
  deployment.topology = build_topology();
  deployment.net.jitter = jitter;
  deployment.net.jitter_frac = jitter_frac;
  deployment.net.gst = gst;
  deployment.seed = seed;
  deployment.faults = effective_faults();
  deployment.storage.snapshot_interval_blocks = snapshot_interval_blocks;
  deployment.persist_all = persist_all;

  deployment.chained.mode = fbft ? consensus::CoreMode::Plain : mode;
  deployment.chained.fbft_mode = fbft;
  deployment.chained.counting = counting;
  deployment.chained.base_timeout =
      base_timeout > 0 ? base_timeout : default_timeout();
  deployment.chained.leader_processing = leader_processing;
  if (extra_wait > 0) {
    const SimDuration wait = extra_wait;
    deployment.chained.extra_wait = [wait](Round) { return wait; };
  }
  deployment.chained.max_batch = max_batch;
  deployment.chained.interval_window = interval_window;
  // The FBFT baseline's endorser sets depend on extra-vote arrival order,
  // which differs per replica, so its proposals cannot carry a Log that
  // every honest replica can validate — disable Sec. 5 there.
  deployment.chained.attach_commit_log = attach_commit_log && !fbft;
  deployment.chained.verify_commit_log = attach_commit_log && !fbft;
  deployment.chained.verify_signatures = verify_signatures;

  deployment.streamlet.delta_bound = streamlet_delta_bound;
  deployment.streamlet.sft = mode != consensus::CoreMode::Plain;
  deployment.streamlet.counting = counting;
  deployment.streamlet.echo = streamlet_echo;
  deployment.streamlet.max_batch = max_batch;
  deployment.streamlet.verify_signatures = verify_signatures;

  deployment.workload.txn_size_bytes = txn_size_bytes;
  deployment.workload.target_pool_size = max_batch * 4;
  deployment.workload.mean_interarrival = mean_interarrival;

  deployment.dissem = dissem;
  deployment.dissem.enabled = dissemination;

  deployment.obs = obs;
  if (!trace_path.empty()) {
    deployment.obs.enabled = true;
    deployment.obs.trace = true;
  }
  return deployment;
}

std::vector<std::uint32_t> Scenario::strength_levels() const {
  std::vector<std::uint32_t> levels;
  const double base = f();
  for (int tenth = 10; tenth <= 20; ++tenth) {
    const auto level = static_cast<std::uint32_t>(base * tenth / 10.0);
    if (levels.empty() || levels.back() != level) levels.push_back(level);
  }
  return levels;
}

ScenarioResult run_scenario(const Scenario& scenario) {
  StrengthLatencyTracker tracker(scenario.n, scenario.strength_levels());
  // The window is set before the run: the tracker's latency histograms
  // record streaming (no per-sample retention), so they need the bounds up
  // front. results() re-applies the same filter for the means.
  tracker.set_window(scenario.warmup, scenario.duration - scenario.tail);

  ScenarioResult result;

  std::unique_ptr<SafetyAuditor> auditor;
  if (scenario.audit) {
    auditor = std::make_unique<SafetyAuditor>(
        SafetyAuditor::Config{.protocol = scenario.protocol, .n = scenario.n});
  }

  engine::Deployment deployment(
      scenario.to_deployment_config(),
      [&tracker, &auditor](ReplicaId replica, const types::Block& block,
                           std::uint32_t strength, SimTime now) {
        tracker.on_commit(replica, block, strength, now);
        if (auditor) auditor->on_commit(replica, block, strength, now);
      },
      auditor ? auditor->taps() : engine::AuditTaps{});

  if (auditor) {
    // Snapshot the flight recorder the instant the first violation lands —
    // the incriminating events are still in the rings at that moment.
    auditor->set_violation_hook(
        [&result, &deployment](const SafetyAuditor::Violation& violation) {
          if (result.flight_dump.empty()) {
            if (obs::Observer* obs = deployment.observer()) {
              result.flight_dump =
                  violation.describe() + "\n" + obs->flight_dump();
            }
          }
        });
  }

  deployment.start();
  deployment.run_for(scenario.duration);

  result.latency = tracker.results();
  result.commit_latency = tracker.commit_histogram().summary();
  result.window_blocks = tracker.window_blocks();
  result.summary =
      summarize_ledger(deployment.ledger(0), scenario.duration,
                       scenario.warmup, scenario.duration - scenario.tail);
  const net::MessageStats& stats = deployment.net_stats();
  result.total_messages = stats.total_count();
  result.total_message_bytes = stats.total_bytes();
  result.extra_vote_messages = stats.for_type("extra_vote").count;
  result.corrupt_injected = stats.corrupt_injected();
  result.corrupt_drops = stats.corrupt_drops();
  result.broadcast_saved_bytes = stats.broadcast_saved_bytes();
  result.traffic_by_type = stats.by_type();
  result.egress_by_replica = stats.egress_by_replica();
  result.max_egress_bytes = stats.max_egress_bytes();
  result.decode_drops = stats.decode_drops();
  const std::uint64_t blocks = deployment.ledger(0).committed_blocks();
  if (blocks > 0) {
    result.messages_per_block =
        static_cast<double>(result.total_messages) / static_cast<double>(blocks);
  }

  if (auditor) {
    result.auditor_violations = auditor->violations().size();
  }
  if (obs::Observer* obs = deployment.observer()) {
    result.counters = obs->merged().counter_snapshot();
    // A run that produced no in-window blocks is the other flight-recorder
    // trigger: dump the recent timeline so the stall is diagnosable.
    if (result.flight_dump.empty() && result.window_blocks == 0 &&
        obs->flight() != nullptr) {
      result.flight_dump = "no in-window progress\n" + obs->flight_dump();
    }
    if (!scenario.trace_path.empty() && obs->tracing()) {
      std::ofstream out(scenario.trace_path, std::ios::trunc);
      out << obs->trace_json();
    }
  }
  return result;
}

}  // namespace sftbft::harness
