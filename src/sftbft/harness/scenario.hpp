// Scenario configuration: paper Sec. 4 experimental setups as data.
//
// A Scenario is engine-agnostic: the `protocol` selector picks which
// chained-BFT backend (DiemBFT, chained HotStuff, or Streamlet) the same
// topology, workload, fault list, and measurement window run on — the
// paper's genericity claim (Secs. 3.2-3.4, Appendix D) made operational.
// run_scenario() drives any protocol through the unified
// engine::Deployment API.
//
// Calibration (see README.md "Calibration"): we use a lean per-round leader
// processing budget (default 80 ms) rather than Diem production's ~1.5 s
// pipeline, so absolute latencies are ~5x smaller than the paper's while
// every shape (1.1f jump, straggler tail at 2f, the asymmetric 1.7f cap,
// the Fig. 8 tradeoff/merge) emerges from the same mechanisms. The pacemaker
// timeout defaults to the scenario's expected round duration plus a margin;
// in the asymmetric topology that margin is what makes region-C leaders time
// out at δ = 200 ms but not at δ = 100 ms — exactly the paper's observation.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sftbft/engine/deployment.hpp"
#include "sftbft/harness/metrics.hpp"
#include "sftbft/obs/critical_path.hpp"

namespace sftbft::harness {

/// Identity card of one scenario run: enough to decide whether two
/// artifacts (a BENCH json, a trace, a checked-in baseline) came from
/// comparable configurations. `config_digest` is an FNV-1a hash over the
/// canonical parameter string — any topology/workload/fault knob change
/// changes it, so the perf gate can refuse apples-to-oranges comparisons
/// instead of reporting nonsense deltas.
struct RunManifest {
  std::uint64_t seed = 0;
  std::string engine;  ///< protocol_name(): "diembft" | "hotstuff" | ...
  std::uint32_t n = 0;
  std::uint64_t config_digest = 0;

  /// {"seed":..,"engine":"..","n":..,"config_digest":".."} — the digest is
  /// rendered as a hex string (JSON numbers lose 64-bit precision).
  [[nodiscard]] std::string render_json() const;
};

/// Spreads `count` placements over the replica id space [1, n), keeping
/// id 0 free (the metrics/proof anchor every bench reads). Preferred ids
/// are stride-spaced; an id already claimed (an explicit fault, or a
/// collision when count > n - 1) probes forward to the next free id rather
/// than silently producing fewer placements, and placement stops only when
/// every non-anchor id is claimed. `taken(id)` reports ids that are
/// unavailable; chosen ids are reported back through it implicitly — the
/// caller marks them. Returns the chosen ids in placement order.
///
/// This is the single placement policy behind Scenario's byzantine_count,
/// corrupt_count, and crash_restart_count knobs (formerly three hand-rolled
/// copies of the loop).
[[nodiscard]] std::vector<ReplicaId> spread_placements(
    std::uint32_t n, std::uint32_t count,
    const std::function<bool(ReplicaId)>& taken);

struct Scenario {
  std::string name = "scenario";
  /// Which chained-BFT engine runs the scenario. Everything below applies
  /// to every protocol; fields marked "DiemBFT"/"chained" or "Streamlet"
  /// only affect that family.
  engine::Protocol protocol = engine::Protocol::DiemBft;
  std::uint32_t n = 100;
  /// Protocol variant; for Streamlet, Plain = textbook Streamlet and any
  /// SFT mode = SFT-Streamlet (strong-votes with height markers).
  consensus::CoreMode mode = consensus::CoreMode::SftMarker;
  consensus::CountingRule counting = consensus::CountingRule::Sft;
  /// Appendix-B FBFT baseline (quadratic comparator): plain votes counted
  /// directly, late votes multicast by leaders. Forces mode = Plain.
  bool fbft = false;

  enum class Topo { Uniform, Symmetric3, Asymmetric3 };
  Topo topo = Topo::Symmetric3;
  SimDuration delta = millis(100);    ///< inter-region δ (Fig. 6)
  SimDuration ab_delay = millis(20);  ///< A<->B in the asymmetric setting
  SimDuration intra = millis(1);
  std::uint32_t asym_a = 45, asym_b = 45, asym_c = 10;
  SimDuration jitter = millis(40);
  /// Distance-proportional jitter fraction (see net::NetConfig::jitter_frac).
  double jitter_frac = 0.25;
  /// Global Stabilization Time (0 = synchronous from the start). Pre-GST
  /// the adversary owns the network: link filters, partitions, and the
  /// Corrupt fault's bit flips all operate before this instant.
  SimTime gst = 0;

  /// Persistent per-replica slowness (network/computation heterogeneity),
  /// two-tier. Fast replicas draw extra delay ~ U[0, hetero_fast_max]: the
  /// slow end of this tier is *marginally* excluded from QCs round by round,
  /// tilting the Fig. 7a middle section. Medium replicas (a
  /// hetero_medium_fraction minority) draw ~ U[hetero_medium_lo,
  /// hetero_medium_hi]: excluded when remote from the leader, included when
  /// their own region leads — the paper's "stragglers" whose inclusion
  /// cadence sets the 2f-strong tail. hetero_fast_max == 0 disables both.
  SimDuration hetero_fast_max = 0;
  double hetero_medium_fraction = 0.25;
  SimDuration hetero_medium_lo = 0;
  SimDuration hetero_medium_hi = 0;

  /// Stragglers (Sec. 4.1): `straggler_count` replicas, spread evenly over
  /// ids, whose extra delay is `straggler_extra` (overriding heterogeneity).
  /// They mostly miss QC cuts and drive the 2f-strong latency tail.
  std::uint32_t straggler_count = 0;
  SimDuration straggler_extra = 0;

  /// Leader-side processing per round (DiemBFT; calibration constant).
  SimDuration leader_processing = millis(80);
  /// Pacemaker timer; 0 = derive from topology (see default_timeout()).
  SimDuration base_timeout = 0;
  /// Fig. 8 knob: leader extra wait after quorum before sealing the QC.
  SimDuration extra_wait = 0;

  /// Streamlet: assumed max network delay Δ (lock-step rounds last 2Δ).
  SimDuration streamlet_delta_bound = millis(50);
  /// Streamlet: forward unseen messages to all (the O(n^3) echo).
  bool streamlet_echo = true;

  std::size_t max_batch = 100;        ///< txns per block (modelled)
  std::uint32_t txn_size_bytes = 4500;///< so a block is ~450 KB like the paper
  /// Sustained client arrivals (Poisson, per replica); 0 = the legacy
  /// one-shot top-up, which saturates only the first ~4 blocks. Benches
  /// comparing payload bytes across the whole run set this so inline-mode
  /// proposals stay block-sized (the paper's "sufficiently many
  /// transactions" assumption held for the full window).
  SimDuration mean_interarrival = 0;
  bool verify_signatures = true;
  Round interval_window = 0;
  bool attach_commit_log = true;

  /// Batch dissemination data plane (sftbft::dissem): digest-referencing
  /// proposals, continuous batch push off the critical path, admission
  /// front-end + client swarm in place of the bench workload generator.
  /// Applies to every protocol. The remaining dissem knobs ride in `dissem`
  /// (its `enabled` field is overwritten by this flag).
  bool dissemination = false;
  dissem::DissemConfig dissem;

  SimDuration duration = seconds(300);   ///< paper: "at least 5 minutes"
  SimDuration warmup = seconds(5);       ///< exclude startup blocks
  SimDuration tail = seconds(30);        ///< exclude blocks near the end
  std::uint64_t seed = 42;

  /// Observability (sftbft::obs): metrics registry, Chrome-trace events,
  /// flight recorder. Off by default — the deployment then builds no
  /// Observer and the instrumented hot paths cost one null test each.
  obs::ObsConfig obs;
  /// When non-empty, run_scenario writes the Chrome-trace JSON here after
  /// the run (implies obs.enabled + obs.trace).
  std::string trace_path;
  /// Wire a SafetyAuditor over the run; its verdicts land in
  /// ScenarioResult::auditor_violations, and the first violation snapshots
  /// the flight recorder into ScenarioResult::flight_dump.
  bool audit = false;

  /// Per-replica faults (shared FaultSpec mechanism — the same list drives
  /// crash/Byzantine scenarios identically on both engines).
  std::vector<engine::FaultSpec> faults;

  /// Byzantine coalition (adversary layer): `byzantine_count` replicas,
  /// spread over [1, n) — id 0 stays honest as the metrics anchor — all run
  /// the `byzantine` strategy spec, coordinated through one shared
  /// adversary::Coalition. Merged into `faults` by to_deployment_config();
  /// explicit fault entries win. See sftbft/adversary/strategy.hpp.
  std::uint32_t byzantine_count = 0;
  adversary::ByzantineSpec byzantine;

  /// Byte-corruption churn (transport layer): `corrupt_count` replicas,
  /// spread over [1, n) like the Byzantine placement, whose outbound links
  /// flip bits pre-GST per `corrupt` (FaultSpec::Kind::Corrupt). Receivers
  /// reject the frames at the Envelope CRC and the transport counts them
  /// (ScenarioResult::corrupt_drops). Requires `gst` > 0 — corruption is a
  /// pre-GST network fault, and the Deployment rejects the no-op
  /// combination. Merged into `faults` by to_deployment_config(); explicit
  /// fault entries win.
  std::uint32_t corrupt_count = 0;
  net::CorruptSpec corrupt;

  /// Crash-recovery churn (storage layer): `crash_restart_count` replicas,
  /// spread over the id space (avoiding id 0, the metrics replica), crash
  /// at staggered times and restart `crash_restart_downtime` later from
  /// their durable ReplicaStore. Merged into `faults` by
  /// to_deployment_config(); explicit fault entries win.
  std::uint32_t crash_restart_count = 0;
  SimTime crash_restart_first = seconds(30);
  SimDuration crash_restart_downtime = seconds(10);
  SimDuration crash_restart_stagger = seconds(15);
  /// Snapshot + WAL-truncation cadence for persistent replicas.
  std::uint64_t snapshot_interval_blocks = 64;
  /// Give every replica a ReplicaStore (persistence-overhead experiments),
  /// not just the crash-restart ones.
  bool persist_all = false;

  [[nodiscard]] std::uint32_t f() const { return (n - 1) / 3; }

  /// The fault list with crash-restart churn merged in (what
  /// to_deployment_config() ships).
  [[nodiscard]] std::vector<engine::FaultSpec> effective_faults() const;

  /// Expected (no-fault) round duration: leader processing + one vote leg +
  /// one proposal leg over the widest non-straggler link.
  [[nodiscard]] SimDuration expected_round() const;

  /// Derived pacemaker timeout (used when base_timeout == 0).
  [[nodiscard]] SimDuration default_timeout() const;

  /// Builds the network topology including stragglers.
  [[nodiscard]] net::Topology build_topology() const;

  /// Produces the full deployment configuration for the selected engine.
  [[nodiscard]] engine::DeploymentConfig to_deployment_config() const;

  /// Strength levels x = 1.0f, 1.1f, ..., 2.0f (deduplicated, ascending) —
  /// the x-axis of Fig. 7.
  [[nodiscard]] std::vector<std::uint32_t> strength_levels() const;

  /// The run's identity card (see RunManifest). Deterministic: same
  /// scenario fields -> same digest, across processes and platforms.
  [[nodiscard]] RunManifest manifest() const;
};

/// Runs a scenario to completion and reports per-level latencies plus a
/// ledger summary from replica 0.
struct ScenarioResult {
  std::vector<StrengthLatencyTracker::LevelStats> latency;
  LedgerSummary summary;
  /// Regular-commit latency distribution (micros; creation -> each
  /// replica's first commit) over in-window blocks — p50/p99 companions to
  /// summary.mean_regular_latency_s. Always populated (histograms live in
  /// the harness tracker, not behind the obs switch).
  obs::HistogramSummary commit_latency;
  std::uint64_t window_blocks = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_message_bytes = 0;
  /// Appendix-B FBFT baseline traffic (0 for SFT runs).
  std::uint64_t extra_vote_messages = 0;
  /// messages per committed block (the Sec. 3.2 complexity metric).
  double messages_per_block = 0;
  /// Frames corrupted in flight / rejected at the receiver's Envelope
  /// decode (Corrupt faults), and bytes the broadcast path saved by
  /// encoding each frame once.
  std::uint64_t corrupt_injected = 0;
  std::uint64_t corrupt_drops = 0;
  std::uint64_t broadcast_saved_bytes = 0;
  /// Per-type traffic (exact frame bytes, keyed by stats label) — what
  /// bench/tab_msg_complexity ships as BENCH_wire.json.
  std::map<std::string, net::MessageStats::TypeStats> traffic_by_type;
  /// Per-replica egress (send-side frame bytes, one charge per recipient;
  /// index = replica id) and the busiest sender's total — the
  /// leader-bandwidth metric the dissemination layer attacks.
  std::vector<std::uint64_t> egress_by_replica;
  std::uint64_t max_egress_bytes = 0;
  /// Frames that passed the Envelope CRC but failed payload decode at the
  /// engine demux (previously counted by net::MessageStats but dropped on
  /// the floor here).
  std::uint64_t decode_drops = 0;
  /// Observability outputs (zero/empty unless the scenario enabled them).
  /// Merged counter snapshot across replicas — the full metric vocabulary,
  /// zeros included, so cross-engine key sets compare exactly.
  std::map<std::string, std::uint64_t> counters;
  /// SafetyAuditor verdict count (scenario.audit) and the flight-recorder
  /// timeline captured at the first violation — or at scenario end when the
  /// run made no progress (window_blocks == 0) with a recorder attached.
  /// A zero-commit run under a clean fault spec additionally prints the
  /// dump (with the counter snapshot) to stderr — a silent stall is a
  /// harness bug, not an experiment.
  std::uint64_t auditor_violations = 0;
  std::string flight_dump;
  /// Per-WireType delivery-delay distributions (micros), keyed by the
  /// stats label ("proposal", "vote", "batch_push", ...). `transit` is
  /// send -> delivery; `queueing` is transit minus the topology's base
  /// latency (bandwidth + jitter + heterogeneity). Populated when the
  /// scenario enabled observability.
  struct WireDelaySummary {
    obs::HistogramSummary transit;
    obs::HistogramSummary queueing;
  };
  std::map<std::string, WireDelaySummary> wire_delays;
  /// Commit critical-path attribution from the trace (empty unless the
  /// scenario enabled tracing).
  obs::CriticalPathResult critical_path;
};

ScenarioResult run_scenario(const Scenario& scenario);

}  // namespace sftbft::harness
