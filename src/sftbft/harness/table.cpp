#include "sftbft/harness/table.hpp"

#include <algorithm>
#include <cstdio>

namespace sftbft::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + '\n';
  };

  std::string out = render_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(c + 1 < headers_.size() ? 2 : 0, ' ');
  }
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::render_json() const {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::string out = "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r == 0 ? "\n" : ",\n";
    out += "    {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out += ", ";
      out += '"' + escape(headers_[c]) + "\": \"" + escape(rows_[r][c]) + '"';
    }
    out += '}';
  }
  out += rows_.empty() ? "]" : "\n  ]";
  return out;
}

std::string Table::render_csv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += ',';
      line += cells[c];
    }
    return line + '\n';
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

}  // namespace sftbft::harness
