// Plain-text table rendering for bench output.
//
// Benches print the same rows/series the paper's figures plot; this keeps
// the formatting consistent (aligned columns + optional CSV for replotting).
#pragma once

#include <string>
#include <vector>

namespace sftbft::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  /// Renders with aligned columns.
  [[nodiscard]] std::string render() const;

  /// Renders as CSV (for replotting).
  [[nodiscard]] std::string render_csv() const;

  /// Renders as a JSON array of row objects keyed by header (for the
  /// bench --json artifacts). Cells stay strings — the artifact mirrors the
  /// printed table verbatim.
  [[nodiscard]] std::string render_json() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sftbft::harness
