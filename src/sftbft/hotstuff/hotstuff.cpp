#include "sftbft/hotstuff/hotstuff.hpp"

namespace sftbft::hotstuff {

namespace {

/// Chained HotStuff's safeNode predicate, phrased on the chain: accept a
/// proposal iff its parent extends (or is) the locked block, or its
/// embedded QC ranks strictly higher than the lock. After a crash-restore
/// the locked *block id* is not durable (only the locked round is), so the
/// safety branch cannot be evaluated; keep only the liveness branch
/// (strictly outranking QC), which is a strict subset of what any live
/// replica would accept — a recovered replica may only be more
/// conservative, never less.
bool safe_to_vote(const types::Block& block, const core::SafetyRules& safety,
                  const chain::BlockTree& tree) {
  const types::BlockId& locked = safety.locked_block();
  if (locked == types::BlockId{}) {
    // Never locked (round 0: everything is acceptable), or the lock was
    // restored from durable state without its block id.
    return safety.locked_round() == 0 ||
           block.qc.round > safety.locked_round();
  }
  // Safety branch: the proposal extends the locked branch (the parent is
  // the locked block or a descendant of it).
  if (tree.extends(block.parent_id, locked)) return true;
  // Liveness branch: the embedded QC outranks the lock.
  return block.qc.round > safety.locked_round();
}

}  // namespace

core::ChainedRules rules() {
  core::ChainedRules r;
  r.name = "hotstuff";
  r.safe_to_vote = &safe_to_vote;
  return r;
}

}  // namespace sftbft::hotstuff
