// Chained HotStuff as a rule set over the chained-BFT SFT kernel
// (sftbft::core::ChainedCore) — the paper's genericity claim made
// executable: "the same technique applies to other chained BFT protocols
// such as HotStuff" (Secs. 3.2-3.4; the quote in
// consensus/leader_election.hpp names HotStuff, DiemBFT and Streamlet as
// the instances). This module is written *only* against the kernel: it
// supplies the one predicate where chained HotStuff's safety rules differ
// from DiemBFT's and inherits everything else — strong-votes against the
// shared VoteHistory, StrengthTracker accounting, Sec.-5 commit-Log
// sealing, block sync, storage, audit taps.
//
// Where the protocols differ (and where they do not):
//
//  * Voting rule — DiemBFT (Fig. 2): vote iff parent.round >= r_lock.
//    Chained HotStuff (HotStuff paper, Algorithm 4's safeNode as laid out
//    along the chain): vote iff the block *extends the locked block*
//    (safety branch) OR the block's embedded QC ranks higher than the lock
//    (liveness branch). The two rules admit the same honest executions in
//    steady state but disagree under forks: HotStuff may vote for a block
//    whose parent round is below the lock as long as it extends the locked
//    branch.
//  * Locking — both lock on the 2-chain (the parent of the newly certified
//    block); kernel machinery.
//  * Commit — chained HotStuff's three phases are laid out along the chain:
//    a block is decided exactly when it heads a 3-chain with consecutive
//    rounds, which is the kernel's commit rule verbatim.
//  * Pacemaker — round synchronization by higher QC/TC, as in the kernel
//    (LibraBFT-style; the original's exponential new-view backoff maps to
//    CoreConfig::timeout_backoff).
//
// The SFT strong-vote extension applies unchanged: HotStuff strong-votes
// carry the same round markers / interval sets, and the strong 3-chain rule
// commits at strengths x in [f, 2f] exactly as on DiemBFT.
//
// On the wire HotStuff frames travel under their own Envelope tags (0x2x)
// so mixed tooling can tell the stacks apart; payload codecs are shared.
#pragma once

#include "sftbft/core/chained_core.hpp"

namespace sftbft::hotstuff {

/// A HotStuff replica core is the chained kernel running hotstuff rules.
using HotStuffCore = core::ChainedCore;

/// The chained-HotStuff rule set (see file header).
[[nodiscard]] core::ChainedRules rules();

/// Stamps a kernel config with the HotStuff rule set.
[[nodiscard]] inline core::CoreConfig configure(core::CoreConfig config) {
  config.rules = rules();
  return config;
}

}  // namespace sftbft::hotstuff
