#include "sftbft/lightclient/light_client.hpp"

namespace sftbft::lightclient {

using types::Block;
using types::BlockId;
using types::CommitLogEntry;
using types::Proposal;

LightClient::LightClient(
    std::shared_ptr<const crypto::KeyRegistry> registry, std::uint32_t n)
    : registry_(std::move(registry)), n_(n) {}

bool LightClient::verify(const StrongCommitProof& proof) const {
  const Block& carrier_block = proof.carrier.block;

  // 1. Carrier block integrity + proposer legitimacy (round-robin rotation
  //    is public knowledge) + Log-covering signature. The Log must also
  //    match the digest sealed into the block header — that digest is what
  //    the QC's voters actually signed over, so without this check a
  //    corrupted proposer could re-sign a different Log under an
  //    already-certified block.
  if (!carrier_block.id_is_valid()) return false;
  if (carrier_block.log_digest !=
      types::commit_log_digest(proof.carrier.commit_log)) {
    return false;
  }
  if (carrier_block.proposer != carrier_block.round % n_) return false;
  if (proof.carrier.sig.signer != carrier_block.proposer) return false;
  if (!registry_->verify(proof.carrier.sig, proof.carrier.signing_bytes(),
                         &cache_)) {
    return false;
  }

  // 2. The carrier is certified: 2f + 1 distinct valid votes for its id.
  //    This is what makes the Log trustworthy with up to 2f faults — at
  //    least one of the 2f + 1 voters is honest and verified the entries
  //    before voting (Sec. 5).
  if (proof.carrier_qc.block_id != carrier_block.id ||
      proof.carrier_qc.round != carrier_block.round) {
    return false;
  }
  if (!proof.carrier_qc.verify(*registry_, quorum(), &cache_)) return false;

  // 3. The claimed entry is literally in the certified Log and strong
  //    enough for the claim.
  bool entry_found = false;
  for (const CommitLogEntry& entry : proof.carrier.commit_log) {
    if (entry == proof.entry) {
      entry_found = true;
      break;
    }
  }
  if (!entry_found) return false;
  if (proof.entry.strength < proof.strength) return false;
  if (proof.strength == 0 || proof.strength > 2 * f()) return false;

  // 4. Ancestry: the strong commit rule covers all ancestors of the logged
  //    3-chain head, so a hash-linked path from the target to the head
  //    extends the claim to the target.
  if (proof.target == proof.entry.block_id) return proof.path.empty();
  if (proof.path.empty()) return false;
  if (proof.path.front().parent_id != proof.target) return false;
  for (std::size_t i = 0; i < proof.path.size(); ++i) {
    if (!proof.path[i].id_is_valid()) return false;
    if (i > 0 && proof.path[i].parent_id != proof.path[i - 1].id) {
      return false;
    }
  }
  return proof.path.back().id == proof.entry.block_id;
}

std::optional<StrongCommitProof> build_proof(
    const core::ChainedCore& replica, const BlockId& target,
    std::uint32_t strength) {
  const chain::BlockTree& tree = replica.tree();
  if (!tree.contains(target)) return std::nullopt;

  for (const auto& [carrier_id, proposal] : replica.logged_proposals()) {
    for (const CommitLogEntry& entry : proposal.commit_log) {
      if (entry.strength < strength) continue;
      const bool covers = entry.block_id == target ||
                          tree.extends(entry.block_id, target);
      if (!covers) continue;

      // Certifying QC for the carrier: embedded in any child block.
      const types::QuorumCert* qc = nullptr;
      for (const Block* child : tree.children_of(carrier_id)) {
        if (child->qc.block_id == carrier_id) {
          qc = &child->qc;
          break;
        }
      }
      if (qc == nullptr) continue;  // carrier not certified (yet)

      StrongCommitProof proof;
      proof.target = target;
      proof.strength = strength;
      proof.entry = entry;
      proof.carrier = proposal;
      proof.carrier_qc = *qc;
      for (const Block* block : tree.path(target, entry.block_id)) {
        proof.path.push_back(*block);
      }
      return proof;
    }
  }
  return std::nullopt;
}

}  // namespace sftbft::lightclient
