// Light-client proofs of strong commits (paper Sec. 5).
//
// "To prove the strong commit efficiently, the protocol can include an
// additional Log on every block proposal, which records any update on the
// strong commit level of previous blocks due to the new strong-QC contained
// in the proposal. Once the block proposal is certified (2f + 1 replicas
// voted), at least one honest replica agrees on the strong commit update
// assuming the number of Byzantine faults does not exceed 2f."
//
// A StrongCommitProof is therefore: a claim (commit-log entry), the carrier
// proposal whose signed Log contains it, a QC certifying the carrier block,
// and — when the claimed strength is wanted for an *ancestor* of the logged
// 3-chain head — the hash-linked block path from the target up to the head
// (the strong commit rule covers all ancestors).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sftbft/consensus/diembft.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/crypto/verify_cache.hpp"
#include "sftbft/types/proposal.hpp"

namespace sftbft::lightclient {

struct StrongCommitProof {
  /// What is being proven: `target` is x-strong committed with x = strength.
  types::BlockId target{};
  std::uint32_t strength = 0;

  /// The log entry backing the claim (for `target` itself or a descendant
  /// 3-chain head whose commit covers `target`).
  types::CommitLogEntry entry{};
  /// Proposal whose commit_log contains `entry` (Log is signature-covered).
  types::Proposal carrier;
  /// QC certifying the carrier block (2f + 1 voters vouch for the Log).
  types::QuorumCert carrier_qc;
  /// Hash-linked path target -> ... -> entry.block_id (empty when equal).
  /// path.front().id == target's child ... path.back().id == entry.block_id.
  std::vector<types::Block> path;
};

class LightClient {
 public:
  /// The light client knows only the PKI and the system size.
  LightClient(std::shared_ptr<const crypto::KeyRegistry> registry,
              std::uint32_t n);

  /// Full verification of a proof; every rejection reason is structural or
  /// cryptographic — the client holds no chain state.
  [[nodiscard]] bool verify(const StrongCommitProof& proof) const;

 private:
  std::shared_ptr<const crypto::KeyRegistry> registry_;
  std::uint32_t n_;
  /// Verification memo: clients re-check proofs sharing carriers/QCs.
  /// Mutable because memoization does not change verify()'s semantics —
  /// the memo only ever holds registry-recomputed MACs and the encoding
  /// digests of certificates that already passed a full verification.
  mutable crypto::VerifyCache cache_;

  [[nodiscard]] std::uint32_t f() const { return (n_ - 1) / 3; }
  [[nodiscard]] std::uint32_t quorum() const { return 2 * f() + 1; }
};

/// Builds a proof from a (trusted, local) replica's state: finds a stored
/// proposal whose Log covers `target` at >= `strength`, the certifying QC
/// from the block tree, and the ancestry path. Returns nullopt when the
/// replica cannot (yet) prove the claim. Works against any chained-kernel
/// core (DiemBFT or HotStuff — the Sec. 5 Log machinery is kernel-level).
std::optional<StrongCommitProof> build_proof(
    const core::ChainedCore& replica, const types::BlockId& target,
    std::uint32_t strength);

}  // namespace sftbft::lightclient
