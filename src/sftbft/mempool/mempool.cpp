#include "sftbft/mempool/mempool.hpp"

namespace sftbft::mempool {

void Mempool::submit(types::Transaction txn) {
  queue_.push_back(std::move(txn));
}

types::Payload Mempool::make_batch(std::size_t max_txns) {
  types::Payload payload;
  payload.txns.reserve(std::min(max_txns, queue_.size()));
  while (payload.txns.size() < max_txns && !queue_.empty()) {
    types::Transaction txn = std::move(queue_.front());
    queue_.pop_front();
    if (in_flight_.contains(txn.id)) continue;
    in_flight_.insert(txn.id);
    payload.txns.push_back(std::move(txn));
  }
  return payload;
}

void Mempool::mark_committed(const types::Payload& payload) {
  for (const types::Transaction& txn : payload.txns) {
    in_flight_.erase(txn.id);
  }
}

void Mempool::requeue(const types::Payload& payload) {
  for (const types::Transaction& txn : payload.txns) {
    if (in_flight_.erase(txn.id) > 0) {
      queue_.push_back(txn);
    }
  }
}

WorkloadGenerator::WorkloadGenerator(sim::Scheduler& sched, Mempool& pool,
                                     WorkloadConfig config, Rng rng)
    : sched_(sched), pool_(pool), config_(config), rng_(rng) {}

void WorkloadGenerator::start() {
  if (config_.mean_interarrival > 0) schedule_next();
}

void WorkloadGenerator::schedule_next() {
  const auto wait = static_cast<SimDuration>(
      rng_.exponential(static_cast<double>(config_.mean_interarrival)));
  sched_.schedule_after(std::max<SimDuration>(wait, 1), [this] {
    if (pool_.pending() < config_.target_pool_size) {
      pool_.submit(types::Transaction{
          .id = (id_space_ << 40) | next_id_++,
          .submitted_at = sched_.now(),
          .size_bytes = config_.txn_size_bytes,
      });
    }
    schedule_next();
  });
}

void WorkloadGenerator::top_up() {
  while (pool_.pending() < config_.target_pool_size) {
    pool_.submit(types::Transaction{
        .id = (id_space_ << 40) | next_id_++,
        .submitted_at = sched_.now(),
        .size_bytes = config_.txn_size_bytes,
    });
  }
}

}  // namespace sftbft::mempool
