#include "sftbft/mempool/mempool.hpp"

namespace sftbft::mempool {

Mempool::Admit Mempool::submit(types::Transaction txn) {
  if (known_.contains(txn.id) || committed_set_.contains(txn.id)) {
    return Admit::kDuplicate;
  }
  if (capacity_ != 0 && queue_.size() >= capacity_) return Admit::kFull;
  known_.insert(txn.id);
  queue_.push_back(std::move(txn));
  return Admit::kAccepted;
}

void Mempool::remember_committed(std::uint64_t id) {
  if (!committed_set_.insert(id).second) return;
  committed_order_.push_back(id);
  while (committed_order_.size() > kCommittedMemory) {
    committed_set_.erase(committed_order_.front());
    committed_order_.pop_front();
  }
}

types::Payload Mempool::make_batch(std::size_t max_txns) {
  types::Payload payload;
  payload.txns.reserve(std::min(max_txns, queue_.size()));
  while (payload.txns.size() < max_txns && !queue_.empty()) {
    types::Transaction txn = std::move(queue_.front());
    queue_.pop_front();
    if (in_flight_.contains(txn.id)) continue;
    in_flight_.insert(txn.id);
    payload.txns.push_back(std::move(txn));
  }
  return payload;
}

void Mempool::mark_committed(const types::Payload& payload) {
  for (const types::Transaction& txn : payload.txns) {
    in_flight_.erase(txn.id);
    known_.erase(txn.id);
    remember_committed(txn.id);
  }
}

void Mempool::requeue(const types::Payload& payload) {
  for (const types::Transaction& txn : payload.txns) {
    if (in_flight_.erase(txn.id) > 0) {
      queue_.push_back(txn);
    }
  }
}

WorkloadGenerator::WorkloadGenerator(sim::Scheduler& sched, Mempool& pool,
                                     WorkloadConfig config, Rng rng)
    : sched_(sched), pool_(pool), config_(config), rng_(rng) {}

void WorkloadGenerator::start() {
  if (config_.mean_interarrival > 0) schedule_next();
}

void WorkloadGenerator::schedule_next() {
  const auto wait = static_cast<SimDuration>(
      rng_.exponential(static_cast<double>(config_.mean_interarrival)));
  sched_.schedule_after(std::max<SimDuration>(wait, 1), [this] {
    if (pool_.pending() < config_.target_pool_size) {
      pool_.submit(types::Transaction{
          .id = (id_space_ << 40) | next_id_++,
          .submitted_at = sched_.now(),
          .size_bytes = config_.txn_size_bytes,
      });
    }
    schedule_next();
  });
}

void WorkloadGenerator::top_up() {
  while (pool_.pending() < config_.target_pool_size) {
    const Mempool::Admit admit = pool_.submit(types::Transaction{
        .id = (id_space_ << 40) | next_id_++,
        .submitted_at = sched_.now(),
        .size_bytes = config_.txn_size_bytes,
    });
    // A bounded pool below the target would otherwise spin here forever.
    if (admit == Mempool::Admit::kFull) break;
  }
}

}  // namespace sftbft::mempool
