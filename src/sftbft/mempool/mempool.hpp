// Mempool and client workload generation.
//
// The paper's setup: "sufficiently many transactions are generated and
// submitted by the clients so that any leader always has enough transactions
// to include in its proposed block" (~1000 txns, ~450 KB per block). The
// WorkloadGenerator keeps the pool saturated with Poisson arrivals; the
// Mempool hands leaders a batch and drops transactions once they commit.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "sftbft/common/rng.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/sim/scheduler.hpp"
#include "sftbft/types/transaction.hpp"

namespace sftbft::mempool {

class Mempool {
 public:
  /// Outcome of a submission — the mempool's backpressure signal.
  enum class Admit : std::uint8_t {
    kAccepted,   ///< queued
    kDuplicate,  ///< id already pending, in flight, or recently committed
    kFull,       ///< bounded capacity reached; resubmit later
  };

  /// Admits a transaction. Duplicates (by id, across the pending queue,
  /// in-flight batches, and a bounded window of recent commits) and
  /// over-capacity submissions are rejected, never silently double-queued.
  Admit submit(types::Transaction txn);

  /// Bounds the pending queue (0 = unbounded, the default). When full,
  /// submit returns kFull — the AdmissionFrontend's backpressure source.
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Takes up to `max_txns` pending transactions, oldest first. Transactions
  /// in flight (already proposed but not committed) are not re-proposed.
  [[nodiscard]] types::Payload make_batch(std::size_t max_txns);

  /// Marks a batch as committed (drops in-flight bookkeeping).
  void mark_committed(const types::Payload& payload);

  /// Returns a batch's transactions to the pending queue (leader's block
  /// abandoned — e.g. the round timed out before certification).
  void requeue(const types::Payload& payload);

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_.size(); }

 private:
  void remember_committed(std::uint64_t id);

  /// How many committed ids the dedup window remembers (FIFO eviction):
  /// enough to cover every in-flight client retry horizon in the sims
  /// without growing with ledger length.
  static constexpr std::size_t kCommittedMemory = 1 << 14;

  std::deque<types::Transaction> queue_;
  std::unordered_set<std::uint64_t> in_flight_;
  /// Ids currently pending or in flight (the live dedup set).
  std::unordered_set<std::uint64_t> known_;
  /// Recently committed ids (bounded FIFO window).
  std::unordered_set<std::uint64_t> committed_set_;
  std::deque<std::uint64_t> committed_order_;
  std::size_t capacity_ = 0;
};

struct WorkloadConfig {
  /// Mean transaction arrival interval; 0 disables timed generation (the
  /// pool is then refilled instantaneously via `top_up`).
  SimDuration mean_interarrival = 0;
  std::uint32_t txn_size_bytes = 450;  ///< paper: ~450 KB / ~1000 txns
  std::size_t target_pool_size = 4000;
};

/// Feeds one replica's mempool. Deterministic given its RNG.
class WorkloadGenerator {
 public:
  WorkloadGenerator(sim::Scheduler& sched, Mempool& pool, WorkloadConfig config,
                    Rng rng);

  /// Starts Poisson arrivals (if mean_interarrival > 0).
  void start();

  /// Synchronously refills the pool to the target size ("saturated clients").
  void top_up();

  [[nodiscard]] std::uint64_t generated() const { return next_id_; }

 private:
  void schedule_next();

  sim::Scheduler& sched_;
  Mempool& pool_;
  WorkloadConfig config_;
  Rng rng_;
  std::uint64_t next_id_ = 0;
  /// Distinguishes generators so txn ids are globally unique.
  std::uint64_t id_space_ = 0;

 public:
  /// Assigns a disjoint id space (call with the replica id).
  void set_id_space(std::uint64_t space) { id_space_ = space; }
};

}  // namespace sftbft::mempool
