// CorruptSpec: pre-GST link-level byte corruption (FaultSpec::Kind::Corrupt).
//
// Pure data in its own header: the fault model (engine/fault.hpp) needs
// this struct and nothing else from the network layer, so including it must
// not drag the transport interface, codec, or stats into every consumer of
// FaultSpec.
#pragma once

#include <cstdint>
#include <vector>

#include "sftbft/common/types.hpp"

namespace sftbft::net {

/// Frames a replica sends before GST get seeded bit flips on the selected
/// links; receivers reject them at the Envelope CRC (counted as corrupt
/// drops, never delivered).
struct CorruptSpec {
  /// Probability a pre-GST outbound frame on an affected link is corrupted.
  double rate = 1.0;
  /// 1..max_flips random bit flips per corrupted frame (clamped to the
  /// frame's bit count by the transport).
  std::uint32_t max_flips = 3;
  /// Affected destination replicas; empty = every outbound link.
  std::vector<ReplicaId> peers;

  [[nodiscard]] bool applies_to(ReplicaId to) const {
    if (peers.empty()) return true;
    for (const ReplicaId peer : peers) {
      if (peer == to) return true;
    }
    return false;
  }
};

}  // namespace sftbft::net
