#include "sftbft/net/envelope.hpp"

#include "sftbft/common/crc32.hpp"

namespace sftbft::net {

bool wire_type_known(std::uint8_t tag) {
  switch (static_cast<WireType>(tag)) {
    case WireType::kProposal:
    case WireType::kVote:
    case WireType::kTimeout:
    case WireType::kSyncRequest:
    case WireType::kSyncResponse:
    case WireType::kSProposal:
    case WireType::kSVote:
    case WireType::kSSyncRequest:
    case WireType::kSSyncResponse:
    case WireType::kHProposal:
    case WireType::kHVote:
    case WireType::kHTimeout:
    case WireType::kHSyncRequest:
    case WireType::kHSyncResponse:
    case WireType::kBatchPush:
    case WireType::kBatchRequest:
    case WireType::kBatchResponse:
      return true;
  }
  return false;
}

const char* wire_type_name(WireType type) {
  switch (type) {
    case WireType::kProposal:
    case WireType::kSProposal:
    case WireType::kHProposal:
      return "proposal";
    case WireType::kVote:
    case WireType::kSVote:
    case WireType::kHVote:
      return "vote";
    case WireType::kTimeout:
    case WireType::kHTimeout:
      return "timeout";
    case WireType::kSyncRequest:
    case WireType::kSSyncRequest:
    case WireType::kHSyncRequest:
      return "sync_req";
    case WireType::kSyncResponse:
    case WireType::kSSyncResponse:
    case WireType::kHSyncResponse:
      return "sync_resp";
    case WireType::kBatchPush:
      return "batch_push";
    case WireType::kBatchRequest:
      return "batch_req";
    case WireType::kBatchResponse:
      return "batch_resp";
  }
  return "unknown";
}

Bytes Envelope::encode() const {
  Encoder enc;
  enc.reserve(kOverhead + payload.size());
  enc.u8(static_cast<std::uint8_t>(type));
  enc.u32(sender);
  enc.bytes(BytesView(payload));
  enc.u32(crc32(BytesView(enc.data())));
  return enc.take();
}

Envelope Envelope::decode(BytesView frame) {
  if (frame.size() < kOverhead) {
    throw CodecError("Envelope: truncated frame");
  }
  Decoder dec(frame);
  Envelope env;
  const std::uint8_t tag = dec.u8();
  if (!wire_type_known(tag)) {
    throw CodecError("Envelope: unknown wire type tag");
  }
  env.type = static_cast<WireType>(tag);
  env.sender = dec.u32();
  env.payload = dec.bytes();
  const std::uint32_t expected = dec.u32();
  if (!dec.exhausted()) {
    throw CodecError("Envelope: trailing bytes after frame");
  }
  if (crc32(frame.subspan(0, frame.size() - 4)) != expected) {
    throw CodecError("Envelope: CRC mismatch");
  }
  return env;
}

}  // namespace sftbft::net
