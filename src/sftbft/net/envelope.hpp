// The one wire frame every protocol message travels in.
//
// Both stacks (DiemBFT and Streamlet) serialize each message to canonical
// bytes via the shared Encoder/Decoder and ship it inside an Envelope:
//
//     u8  type      -- WireType tag (registry below)
//     u32 sender    -- sending replica (unauthenticated; signatures inside
//                      the payload are what receivers trust)
//     u32 length    -- payload byte count
//     ..  payload   -- the message's canonical encoding
//     u32 crc32     -- over everything above (IEEE 802.3, shared with the
//                      storage WAL's framing)
//
// The encoded frame is the *only* thing the transport sees: the bytes
// charged against link bandwidth are exactly `encode().size()`, a receiver
// that gets flipped bits rejects the frame with CodecError (the CRC), and a
// future socket backend can stream these frames verbatim. There is no
// second, hand-estimated notion of wire size anywhere.
#pragma once

#include <cstdint>

#include "sftbft/common/bytes.hpp"
#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"

namespace sftbft::net {

/// The wire-protocol type registry. Tags are part of the on-wire format —
/// never renumber, only append. 0x0x = DiemBFT stack, 0x1x = Streamlet,
/// 0x2x = chained HotStuff (same payload codecs as the 0x0x tags — the
/// chained stacks share the kernel's message types; the tag tells mixed
/// tooling which protocol a frame belongs to), 0x4x = the dissemination
/// data plane (sftbft::dissem), protocol-agnostic: every engine speaks the
/// same batch tags because payload distribution is independent of the
/// consensus rules ordering the digests.
enum class WireType : std::uint8_t {
  kProposal = 0x01,      ///< types::Proposal
  kVote = 0x02,          ///< types::Vote (regular and FBFT extra votes)
  kTimeout = 0x03,       ///< types::TimeoutMsg
  kSyncRequest = 0x04,   ///< types::SyncRequest
  kSyncResponse = 0x05,  ///< types::SyncResponse
  kSProposal = 0x11,     ///< streamlet::SProposal
  kSVote = 0x12,         ///< streamlet::SVote
  kSSyncRequest = 0x13,  ///< streamlet::SSyncRequest (= types::SyncRequest)
  kSSyncResponse = 0x14, ///< streamlet::SSyncResponse
  kHProposal = 0x21,     ///< types::Proposal (HotStuff stack)
  kHVote = 0x22,         ///< types::Vote (HotStuff stack)
  kHTimeout = 0x23,      ///< types::TimeoutMsg (HotStuff stack)
  kHSyncRequest = 0x24,  ///< types::SyncRequest (HotStuff stack)
  kHSyncResponse = 0x25, ///< types::SyncResponse (HotStuff stack)
  kBatchPush = 0x41,     ///< dissem::BatchPush (all engines)
  kBatchRequest = 0x42,  ///< dissem::BatchRequest (all engines)
  kBatchResponse = 0x43, ///< dissem::BatchResponse (all engines)
};

/// The tag set one chained-kernel replica speaks (DiemBFT or HotStuff
/// protocol instance; see replica::Replica).
struct ChainedWireSet {
  WireType proposal = WireType::kProposal;
  WireType vote = WireType::kVote;
  WireType timeout = WireType::kTimeout;
  WireType sync_request = WireType::kSyncRequest;
  WireType sync_response = WireType::kSyncResponse;
};

inline constexpr ChainedWireSet kDiemBftWires{};
inline constexpr ChainedWireSet kHotStuffWires{
    WireType::kHProposal, WireType::kHVote, WireType::kHTimeout,
    WireType::kHSyncRequest, WireType::kHSyncResponse};

/// True iff `tag` names a registered wire type.
[[nodiscard]] bool wire_type_known(std::uint8_t tag);

/// Stats label for a type ("proposal", "vote", ... — the legacy MessageStats
/// keys, shared across stacks so cross-protocol sweeps stay comparable).
[[nodiscard]] const char* wire_type_name(WireType type);

struct Envelope {
  WireType type{};
  ReplicaId sender = kNoReplica;
  Bytes payload;

  /// Frame overhead around a payload of any size (type + sender + length +
  /// crc): the exact constant, not an estimate.
  static constexpr std::size_t kOverhead = 1 + 4 + 4 + 4;

  /// Canonical frame bytes; `encode().size()` IS the message's wire size.
  [[nodiscard]] Bytes encode() const;

  /// Parses and validates a frame: known tag, intact length, matching CRC,
  /// no trailing bytes. Throws CodecError otherwise — the transport counts
  /// such frames as corrupt drops and never delivers them.
  static Envelope decode(BytesView frame);

  /// Wraps a message's canonical encoding. M must expose
  /// `void encode(Encoder&) const`.
  template <typename M>
  static Envelope pack(WireType type, ReplicaId sender, const M& msg) {
    Encoder enc;
    msg.encode(enc);
    return Envelope{type, sender, enc.take()};
  }

  /// Decodes the payload as message type M (which must expose
  /// `static M decode(Decoder&)`). Throws CodecError on malformed payloads
  /// or trailing bytes; callers on the receive path catch and drop.
  template <typename M>
  [[nodiscard]] M unpack() const {
    Decoder dec{BytesView(payload.data(), payload.size())};
    M msg = M::decode(dec);
    if (!dec.exhausted()) {
      throw CodecError("Envelope: trailing bytes after payload");
    }
    return msg;
  }

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

}  // namespace sftbft::net
