// Simulated point-to-point network under partial synchrony.
//
// Substitution note (README.md "Simulation substitutions"): the paper runs 100 EC2 instances with
// injected inter-region delays; we reproduce the same delay geometry on a
// discrete-event scheduler. Delivery time for a message sent at `s` is
//
//     max(s, GST) + base_delay(from, to) + size/bandwidth + jitter
//
// which realizes the partial-synchrony contract: after the (configurable)
// Global Stabilization Time every message arrives within Δ. Before GST the
// adversary may additionally delay or drop messages via a link filter, and
// partitions can be installed/healed at runtime.
//
// The class is a template over the message type so the DiemBFT and Streamlet
// stacks each get a type-safe network without sharing message definitions.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sftbft/common/rng.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/net/stats.hpp"
#include "sftbft/net/topology.hpp"
#include "sftbft/sim/scheduler.hpp"

namespace sftbft::net {

/// Test hook deciding per-link delivery. Return false to drop the message.
/// Shared across all SimNetwork instantiations (it never sees the payload).
using LinkFilter = std::function<bool(ReplicaId from, ReplicaId to)>;

struct NetConfig {
  /// Uniform jitter in [0, jitter] added per message (models OS/queueing
  /// noise; drives QC-membership diversity in the experiments).
  SimDuration jitter = 0;
  /// Distance-proportional jitter: an extra uniform [0, jitter_frac * base]
  /// per message. Long WAN paths have proportionally larger delay variance
  /// (more hops/queues); without this, large δ makes arrival order fully
  /// deterministic by region and QC membership loses all diversity.
  double jitter_frac = 0.0;
  /// Link bandwidth in bytes per second; 0 means unlimited (pure latency).
  std::uint64_t bandwidth_bytes_per_sec = 0;
  /// Global Stabilization Time; messages sent earlier arrive no earlier than
  /// gst + base delay. 0 means the network is synchronous from the start.
  SimTime gst = 0;
};

template <typename Message>
class SimNetwork {
 public:
  /// Receives a message at a replica: (sender, message, wire size). The
  /// wire size is the sender-declared serialized size, so receivers can
  /// account inbound bandwidth (see engine::ConsensusEngine::inbound_bytes).
  using Handler = std::function<void(ReplicaId from, const Message& msg,
                                     std::size_t wire_size)>;

  using LinkFilter = net::LinkFilter;

  SimNetwork(sim::Scheduler& sched, Topology topology, NetConfig config,
             std::uint64_t seed)
      : sched_(sched),
        topology_(std::move(topology)),
        config_(config),
        rng_(seed) {
    handlers_.resize(topology_.size());
  }

  /// Registers the inbound handler for a replica. A replica with no handler
  /// silently drops traffic (crash faults are modelled by clearing it).
  void set_handler(ReplicaId id, Handler handler) {
    handlers_[id] = std::move(handler);
  }

  /// Simulates a crash: the replica stops receiving (and the caller stops
  /// its timers / sends).
  void disconnect(ReplicaId id) { handlers_[id] = nullptr; }

  [[nodiscard]] bool connected(ReplicaId id) const {
    return static_cast<bool>(handlers_[id]);
  }

  /// Installs (or clears, if empty) an adversarial link filter.
  void set_link_filter(LinkFilter filter) { filter_ = std::move(filter); }

  /// Sends `msg` from `from` to `to`. `type` labels the message for stats.
  /// Self-sends deliver immediately (same event, no network hop) which is how
  /// a leader counts its own vote without a round-trip.
  void send(ReplicaId from, ReplicaId to, const std::string& type,
            std::size_t wire_size, Message msg) {
    send_shared(from, to, type, wire_size,
                std::make_shared<const Message>(std::move(msg)));
  }

  /// Sends to every replica. DiemBFT proposals and timeout messages are
  /// multicast; `include_self` controls whether the sender also handles its
  /// own copy (it does for proposals — the leader votes on its own block).
  /// The payload is shared, not copied per recipient.
  void multicast(ReplicaId from, const std::string& type,
                 std::size_t wire_size, Message msg,
                 bool include_self = true) {
    auto shared = std::make_shared<const Message>(std::move(msg));
    for (ReplicaId to = 0; to < topology_.size(); ++to) {
      if (to == from && !include_self) continue;
      send_shared(from, to, type, wire_size, shared);
    }
  }

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] MessageStats& stats() { return stats_; }
  [[nodiscard]] const MessageStats& stats() const { return stats_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

 private:
  void send_shared(ReplicaId from, ReplicaId to, const std::string& type,
                   std::size_t wire_size,
                   std::shared_ptr<const Message> msg) {
    stats_.record(type, wire_size);
    if (filter_ && !filter_(from, to)) return;
    if (from == to) {
      deliver(from, to, *msg, wire_size);
      return;
    }
    const SimTime start = std::max(sched_.now(), config_.gst);
    const SimDuration base = topology_.base_delay(from, to);
    SimDuration delay = base;
    if (config_.bandwidth_bytes_per_sec > 0) {
      delay += static_cast<SimDuration>(
          (static_cast<double>(wire_size) /
           static_cast<double>(config_.bandwidth_bytes_per_sec)) *
          1e6);
    }
    if (config_.jitter > 0) delay += rng_.uniform(0, config_.jitter);
    if (config_.jitter_frac > 0 && base > 0) {
      delay += rng_.uniform(
          0, static_cast<SimDuration>(config_.jitter_frac *
                                      static_cast<double>(base)));
    }
    sched_.schedule_at(start + delay,
                       [this, from, to, wire_size, m = std::move(msg)] {
                         deliver(from, to, *m, wire_size);
                       });
  }

  void deliver(ReplicaId from, ReplicaId to, const Message& msg,
               std::size_t wire_size) {
    if (handlers_[to]) handlers_[to](from, msg, wire_size);
  }

  sim::Scheduler& sched_;
  Topology topology_;
  NetConfig config_;
  Rng rng_;
  MessageStats stats_;
  LinkFilter filter_;
  std::vector<Handler> handlers_;
};

}  // namespace sftbft::net
