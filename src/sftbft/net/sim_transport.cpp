#include "sftbft/net/sim_transport.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "sftbft/obs/observer.hpp"

namespace sftbft::net {

namespace {
/// Net events live on dedicated per-peer lanes far above any block height:
/// sender spans on lane (base + to), receiver spans on lane (base + from),
/// so message traffic never interleaves with block-lifecycle tracks.
constexpr std::uint64_t kNetLaneBase = std::uint64_t{1} << 20;
}  // namespace

SimTransport::SimTransport(sim::Scheduler& sched, Topology topology,
                           NetConfig config, std::uint64_t seed)
    : sched_(sched),
      topology_(std::move(topology)),
      config_(config),
      rng_(seed),
      // Dedicated corruption stream: enabling Corrupt faults must not
      // perturb the jitter draws (and thus the delay geometry) of clean
      // links, or every corruption experiment would change the baseline.
      corrupt_rng_(seed ^ 0xC0880F7ULL) {
  handlers_.resize(topology_.size());
}

void SimTransport::send(ReplicaId to, Envelope env, const char* label) {
  const char* key = label != nullptr ? label : wire_type_name(env.type);
  const auto frame = std::make_shared<const Bytes>(env.encode());
  const auto shared = std::make_shared<const Envelope>(std::move(env));
  route(shared->sender, to, key, frame, shared);
}

void SimTransport::broadcast(Envelope env, bool include_self,
                             const char* label) {
  const char* key = label != nullptr ? label : wire_type_name(env.type);
  // Encode ONCE; every recipient's delivery shares this frame buffer (and
  // the envelope — immutable, so no per-recipient re-validation either).
  const auto frame = std::make_shared<const Bytes>(env.encode());
  const auto shared = std::make_shared<const Envelope>(std::move(env));
  const ReplicaId from = shared->sender;
  std::uint32_t recipients = 0;
  for (ReplicaId to = 0; to < topology_.size(); ++to) {
    if (to == from && !include_self) continue;
    route(from, to, key, frame, shared);
    ++recipients;
  }
  if (recipients > 1) {
    stats_.record_broadcast_savings(
        static_cast<std::uint64_t>(recipients - 1) * frame->size());
  }
}

void SimTransport::route(ReplicaId from, ReplicaId to, const char* label,
                         const std::shared_ptr<const Bytes>& frame,
                         const std::shared_ptr<const Envelope>& env) {
  stats_.record(label, frame->size());
  if (from != to) stats_.record_egress(from, frame->size());
  if (filter_ && !filter_(from, to)) return;
  if (from == to) {
    // Self-sends never touch a physical link: immediate, uncorrupted.
    deliver(to, *env, frame->size());
    return;
  }
  const std::shared_ptr<const Bytes> wire = maybe_corrupt(from, to, frame);
  const SimTime start = std::max(sched_.now(), config_.gst);
  const SimDuration base = topology_.base_delay(from, to);
  SimDuration delay = base;
  if (config_.bandwidth_bytes_per_sec > 0) {
    delay += static_cast<SimDuration>(
        (static_cast<double>(wire->size()) /
         static_cast<double>(config_.bandwidth_bytes_per_sec)) *
        1e6);
  }
  if (config_.jitter > 0) delay += rng_.uniform(0, config_.jitter);
  if (config_.jitter_frac > 0 && base > 0) {
    delay += rng_.uniform(
        0, static_cast<SimDuration>(config_.jitter_frac *
                                    static_cast<double>(base)));
  }
  if (obs_ != nullptr) {
    // Delays are fixed at schedule time, so the delivery-side accounting can
    // happen here: end-to-end transit plus its queueing share (everything
    // beyond pure propagation — serialization, jitter, pre-GST hold).
    const SimTime sent_at = sched_.now();
    const SimTime arrive_at = start + delay;
    obs_->observe_wire(label, arrive_at - sent_at, arrive_at - sent_at - base);
    if (obs_->tracing()) {
      // One flow arrow per delivered frame: 's' inside a sender-side
      // in-flight span, 'f' inside a receiver-side handling span.
      const std::uint64_t flow = next_flow_id_++;
      const std::uint64_t send_lane = kNetLaneBase + to;
      const std::uint64_t recv_lane = kNetLaneBase + from;
      obs_->emit_trace_only(obs::span_event(
          "net", label, from, send_lane, sent_at, arrive_at,
          {"bytes", static_cast<std::uint64_t>(wire->size())}, {"to", to}));
      obs_->emit_trace_only(
          obs::flow_start_event("net", label, from, send_lane, sent_at, flow));
      obs_->emit_trace_only(obs::span_event("net", label, to, recv_lane,
                                            arrive_at, arrive_at,
                                            {"from", from}));
      obs_->emit_trace_only(obs::flow_finish_event("net", label, to, recv_lane,
                                                   arrive_at, flow));
    }
  }
  if (wire != frame) {
    // Corrupted in flight: the receiver must confront the damaged bytes.
    sched_.schedule_at(start + delay,
                       [this, to, wire] { deliver_bytes(to, *wire); });
  } else {
    sched_.schedule_at(start + delay, [this, to, env, size = frame->size()] {
      deliver(to, *env, size);
    });
  }
}

void SimTransport::deliver_bytes(ReplicaId to, const Bytes& frame) {
  if (!handlers_[to]) return;
  Envelope env;
  try {
    env = Envelope::decode(BytesView(frame));
  } catch (const CodecError&) {
    // Flipped bits (or a truncated frame) fail the CRC / framing checks:
    // the receiver rejects the frame instead of crashing on garbage.
    stats_.record_corrupt_drop();
    return;
  }
  handlers_[to](env, frame.size());
}

void SimTransport::deliver(ReplicaId to, const Envelope& env,
                           std::size_t frame_bytes) {
  if (handlers_[to]) handlers_[to](env, frame_bytes);
}

std::shared_ptr<const Bytes> SimTransport::maybe_corrupt(
    ReplicaId from, ReplicaId to, const std::shared_ptr<const Bytes>& frame) {
  if (corruption_.empty() || sched_.now() >= config_.gst) return frame;
  const auto it = corruption_.find(from);
  if (it == corruption_.end()) return frame;
  const CorruptSpec& spec = it->second;
  if (!spec.applies_to(to) || !corrupt_rng_.chance(spec.rate)) return frame;

  auto corrupted = std::make_shared<Bytes>(*frame);
  const std::size_t total_bits = corrupted->size() * 8;
  // Clamp to the frame's bit count — a spec's max_flips can exceed a small
  // frame, and the distinct-position sampling below must terminate.
  const std::size_t flips = std::min<std::size_t>(
      1 + static_cast<std::size_t>(
              corrupt_rng_.uniform(0, std::max(1u, spec.max_flips) - 1)),
      total_bits);
  if (flips * 2 >= total_bits) {
    // Shredding more than half the frame: invert everything instead of
    // rejection-sampling near-saturated bit positions.
    for (auto& byte : *corrupted) byte = static_cast<std::uint8_t>(~byte);
  } else {
    // Flip DISTINCT bits: a position drawn twice would cancel itself out
    // and deliver an intact frame under a "corrupted" count. Occupancy is
    // below 1/2, so rejection sampling stays O(flips) expected.
    std::unordered_set<std::size_t> flipped;
    flipped.reserve(flips);
    while (flipped.size() < flips) {
      const auto bit = static_cast<std::size_t>(corrupt_rng_.uniform(
          0, static_cast<std::int64_t>(total_bits) - 1));
      if (!flipped.insert(bit).second) continue;
      (*corrupted)[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }
  stats_.record_corrupt_injected();
  return corrupted;
}

}  // namespace sftbft::net
