// Simulated byte-level transport under partial synchrony.
//
// Substitution note (README.md "Simulation substitutions"): the paper runs
// 100 EC2 instances exchanging real serialized messages with injected
// inter-region delays; we reproduce the same delay geometry on a
// discrete-event scheduler, over the same bytes. A frame sent at `s`
// arrives at
//
//     max(s, GST) + base_delay(from, to) + frame_bytes/bandwidth + jitter
//
// where `frame_bytes` is the EXACT encoded Envelope size (no estimates),
// which realizes the partial-synchrony contract: after the (configurable)
// Global Stabilization Time every message arrives within Δ. Before GST the
// adversary may delay or drop messages via a link filter, partition the
// network, or flip bits on selected links (CorruptSpec) — corrupted frames
// fail Envelope::decode at the receiver and are counted as corrupt drops,
// never delivered.
//
// This replaces the old per-protocol SimNetwork<Message> templates: both
// stacks now share one instance of this class per deployment.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sftbft/common/rng.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/net/corrupt.hpp"
#include "sftbft/net/stats.hpp"
#include "sftbft/net/topology.hpp"
#include "sftbft/net/transport.hpp"
#include "sftbft/sim/scheduler.hpp"

namespace sftbft::obs {
class Observer;
}  // namespace sftbft::obs

namespace sftbft::net {

/// Test hook deciding per-link delivery. Return false to drop the message.
using LinkFilter = std::function<bool(ReplicaId from, ReplicaId to)>;

struct NetConfig {
  /// Uniform jitter in [0, jitter] added per message (models OS/queueing
  /// noise; drives QC-membership diversity in the experiments).
  SimDuration jitter = 0;
  /// Distance-proportional jitter: an extra uniform [0, jitter_frac * base]
  /// per message. Long WAN paths have proportionally larger delay variance
  /// (more hops/queues); without this, large δ makes arrival order fully
  /// deterministic by region and QC membership loses all diversity.
  double jitter_frac = 0.0;
  /// Link bandwidth in bytes per second; 0 means unlimited (pure latency).
  std::uint64_t bandwidth_bytes_per_sec = 0;
  /// Global Stabilization Time; messages sent earlier arrive no earlier than
  /// gst + base delay. 0 means the network is synchronous from the start.
  SimTime gst = 0;
};

class SimTransport final : public Transport {
 public:
  SimTransport(sim::Scheduler& sched, Topology topology, NetConfig config,
               std::uint64_t seed);

  void set_handler(ReplicaId id, Handler handler) override {
    handlers_[id] = std::move(handler);
  }
  void disconnect(ReplicaId id) override { handlers_[id] = nullptr; }
  [[nodiscard]] bool connected(ReplicaId id) const override {
    return static_cast<bool>(handlers_[id]);
  }

  void send(ReplicaId to, Envelope env, const char* label = nullptr) override;
  void broadcast(Envelope env, bool include_self,
                 const char* label = nullptr) override;

  [[nodiscard]] std::uint32_t size() const override {
    return topology_.size();
  }
  [[nodiscard]] MessageStats& stats() override { return stats_; }
  [[nodiscard]] const MessageStats& stats() const override { return stats_; }
  [[nodiscard]] sim::Scheduler& scheduler() override { return sched_; }

  /// Installs (or clears, if empty) an adversarial link filter.
  void set_link_filter(LinkFilter filter) { filter_ = std::move(filter); }

  /// Installs pre-GST byte corruption on `sender`'s outbound links (see
  /// CorruptSpec). Corruption draws come from a dedicated RNG stream so the
  /// jitter geometry of unaffected links is unchanged.
  void set_corruption(ReplicaId sender, CorruptSpec spec) {
    corruption_[sender] = std::move(spec);
  }

  [[nodiscard]] const Topology& topology() const { return topology_; }

  /// Wires the deployment's Observer (null = no instrumentation). With an
  /// observer every scheduled (non-self) delivery records per-WireType
  /// transit/queueing histograms; with tracing on it additionally emits a
  /// Chrome flow arrow ('s' at the send site -> 'f' at the receiver-side
  /// handling span) under a unique flow id.
  void set_observer(obs::Observer* observer) { obs_ = observer; }

 private:
  /// Routes one already-encoded frame; the shared buffer is what makes
  /// broadcast encode-once (route never copies except to corrupt). `env`
  /// is the sender's envelope the frame was encoded from — identical to
  /// the frame's content by construction, so clean deliveries share it
  /// instead of re-validating the same immutable bytes per recipient.
  void route(ReplicaId from, ReplicaId to, const char* label,
             const std::shared_ptr<const Bytes>& frame,
             const std::shared_ptr<const Envelope>& env);
  /// Byte-level receive for (possibly) corrupted frames: decode (CRC +
  /// framing) or drop as corrupt.
  void deliver_bytes(ReplicaId to, const Bytes& frame);
  void deliver(ReplicaId to, const Envelope& env, std::size_t frame_bytes);
  [[nodiscard]] std::shared_ptr<const Bytes> maybe_corrupt(
      ReplicaId from, ReplicaId to, const std::shared_ptr<const Bytes>& frame);

  sim::Scheduler& sched_;
  Topology topology_;
  NetConfig config_;
  Rng rng_;
  Rng corrupt_rng_;
  MessageStats stats_;
  LinkFilter filter_;
  std::unordered_map<ReplicaId, CorruptSpec> corruption_;
  std::vector<Handler> handlers_;
  obs::Observer* obs_ = nullptr;
  std::uint64_t next_flow_id_ = 1;
};

}  // namespace sftbft::net
