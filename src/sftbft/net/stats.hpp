// Message accounting.
//
// The paper's central efficiency claim (Sec. 3.2, App. B) is that
// SFT-DiemBFT keeps *linear* amortized message complexity per block decision
// while the FBFT adaptation is quadratic. MessageStats counts every protocol
// message and its wire size so bench/tab_msg_complexity can measure
// messages-per-committed-block directly instead of asserting the asymptotics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sftbft::net {

class MessageStats {
 public:
  /// Records one message of `type` with `wire_size` payload bytes.
  void record(const std::string& type, std::size_t wire_size) {
    auto& entry = per_type_[type];
    entry.count += 1;
    entry.bytes += wire_size;
    total_count_ += 1;
    total_bytes_ += wire_size;
  }

  struct TypeStats {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] std::uint64_t total_count() const { return total_count_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  [[nodiscard]] TypeStats for_type(const std::string& type) const {
    auto it = per_type_.find(type);
    return it == per_type_.end() ? TypeStats{} : it->second;
  }

  [[nodiscard]] const std::map<std::string, TypeStats>& by_type() const {
    return per_type_;
  }

  void reset() {
    per_type_.clear();
    total_count_ = 0;
    total_bytes_ = 0;
  }

 private:
  std::map<std::string, TypeStats> per_type_;
  std::uint64_t total_count_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace sftbft::net
