// Message accounting.
//
// The paper's central efficiency claim (Sec. 3.2, App. B) is that
// SFT-DiemBFT keeps *linear* amortized message complexity per block decision
// while the FBFT adaptation is quadratic. MessageStats counts every protocol
// message and its wire size so bench/tab_msg_complexity can measure
// messages-per-committed-block directly instead of asserting the asymptotics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sftbft::net {

class MessageStats {
 public:
  /// Records one message of `type` with its exact on-wire frame size.
  void record(const std::string& type, std::size_t frame_bytes) {
    auto& entry = per_type_[type];
    entry.count += 1;
    entry.bytes += frame_bytes;
    total_count_ += 1;
    total_bytes_ += frame_bytes;
  }

  struct TypeStats {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] std::uint64_t total_count() const { return total_count_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Frames the transport corrupted in flight (FaultSpec::Kind::Corrupt).
  void record_corrupt_injected() { ++corrupt_injected_; }
  [[nodiscard]] std::uint64_t corrupt_injected() const {
    return corrupt_injected_;
  }

  /// Frames a receiver rejected at the byte level (Envelope::decode threw
  /// CodecError: CRC mismatch, bad tag, truncation). Never delivered.
  void record_corrupt_drop() { ++corrupt_drops_; }
  [[nodiscard]] std::uint64_t corrupt_drops() const { return corrupt_drops_; }

  /// Well-framed envelopes whose *payload* failed to decode as the claimed
  /// message type (engine-level demux rejection).
  void record_decode_drop() { ++decode_drops_; }
  [[nodiscard]] std::uint64_t decode_drops() const { return decode_drops_; }

  /// Bytes the broadcast path did NOT re-encode thanks to frame sharing
  /// ((recipients - 1) x frame size per broadcast).
  void record_broadcast_savings(std::uint64_t bytes) {
    broadcast_saved_bytes_ += bytes;
  }
  [[nodiscard]] std::uint64_t broadcast_saved_bytes() const {
    return broadcast_saved_bytes_;
  }

  [[nodiscard]] TypeStats for_type(const std::string& type) const {
    auto it = per_type_.find(type);
    return it == per_type_.end() ? TypeStats{} : it->second;
  }

  [[nodiscard]] const std::map<std::string, TypeStats>& by_type() const {
    return per_type_;
  }

  void reset() {
    per_type_.clear();
    total_count_ = 0;
    total_bytes_ = 0;
    corrupt_injected_ = 0;
    corrupt_drops_ = 0;
    decode_drops_ = 0;
    broadcast_saved_bytes_ = 0;
  }

 private:
  std::map<std::string, TypeStats> per_type_;
  std::uint64_t total_count_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t corrupt_injected_ = 0;
  std::uint64_t corrupt_drops_ = 0;
  std::uint64_t decode_drops_ = 0;
  std::uint64_t broadcast_saved_bytes_ = 0;
};

}  // namespace sftbft::net
