// Message accounting.
//
// The paper's central efficiency claim (Sec. 3.2, App. B) is that
// SFT-DiemBFT keeps *linear* amortized message complexity per block decision
// while the FBFT adaptation is quadratic. MessageStats counts every protocol
// message and its wire size so bench/tab_msg_complexity can measure
// messages-per-committed-block directly instead of asserting the asymptotics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sftbft::net {

class MessageStats {
 public:
  /// Records one message of `type` with its exact on-wire frame size.
  void record(const std::string& type, std::size_t frame_bytes) {
    auto& entry = per_type_[type];
    entry.count += 1;
    entry.bytes += frame_bytes;
    total_count_ += 1;
    total_bytes_ += frame_bytes;
  }

  struct TypeStats {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] std::uint64_t total_count() const { return total_count_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Records `frame_bytes` of egress charged to sending replica `from`
  /// (one call per recipient — a broadcast to n-1 peers charges the sender
  /// n-1 frames, which is precisely the leader-bandwidth cost the
  /// dissemination layer attacks).
  void record_egress(std::uint32_t from, std::size_t frame_bytes) {
    if (egress_bytes_.size() <= from) egress_bytes_.resize(from + 1, 0);
    egress_bytes_[from] += frame_bytes;
  }

  /// Egress bytes per sending replica (index = replica id; may be shorter
  /// than n if trailing replicas never sent).
  [[nodiscard]] const std::vector<std::uint64_t>& egress_by_replica() const {
    return egress_bytes_;
  }

  /// The busiest sender's egress — with round-robin leadership this is the
  /// per-leader bandwidth bound the scale-out claims are about.
  [[nodiscard]] std::uint64_t max_egress_bytes() const {
    std::uint64_t max = 0;
    for (const std::uint64_t bytes : egress_bytes_) max = std::max(max, bytes);
    return max;
  }

  /// Frames the transport corrupted in flight (FaultSpec::Kind::Corrupt).
  void record_corrupt_injected() { ++corrupt_injected_; }
  [[nodiscard]] std::uint64_t corrupt_injected() const {
    return corrupt_injected_;
  }

  /// Frames a receiver rejected at the byte level (Envelope::decode threw
  /// CodecError: CRC mismatch, bad tag, truncation). Never delivered.
  void record_corrupt_drop() { ++corrupt_drops_; }
  [[nodiscard]] std::uint64_t corrupt_drops() const { return corrupt_drops_; }

  /// Well-framed envelopes whose *payload* failed to decode as the claimed
  /// message type (engine-level demux rejection).
  void record_decode_drop() { ++decode_drops_; }
  [[nodiscard]] std::uint64_t decode_drops() const { return decode_drops_; }

  /// Bytes the broadcast path did NOT re-encode thanks to frame sharing
  /// ((recipients - 1) x frame size per broadcast).
  void record_broadcast_savings(std::uint64_t bytes) {
    broadcast_saved_bytes_ += bytes;
  }
  [[nodiscard]] std::uint64_t broadcast_saved_bytes() const {
    return broadcast_saved_bytes_;
  }

  [[nodiscard]] TypeStats for_type(const std::string& type) const {
    auto it = per_type_.find(type);
    return it == per_type_.end() ? TypeStats{} : it->second;
  }

  [[nodiscard]] const std::map<std::string, TypeStats>& by_type() const {
    return per_type_;
  }

  void reset() {
    per_type_.clear();
    total_count_ = 0;
    total_bytes_ = 0;
    corrupt_injected_ = 0;
    corrupt_drops_ = 0;
    decode_drops_ = 0;
    broadcast_saved_bytes_ = 0;
    egress_bytes_.clear();
  }

 private:
  std::map<std::string, TypeStats> per_type_;
  std::vector<std::uint64_t> egress_bytes_;
  std::uint64_t total_count_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t corrupt_injected_ = 0;
  std::uint64_t corrupt_drops_ = 0;
  std::uint64_t decode_drops_ = 0;
  std::uint64_t broadcast_saved_bytes_ = 0;
};

}  // namespace sftbft::net
