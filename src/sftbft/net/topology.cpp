#include "sftbft/net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sftbft::net {

Topology Topology::uniform(std::uint32_t n, SimDuration delay) {
  return regions({n}, {{delay}});
}

Topology Topology::regions(
    const std::vector<std::uint32_t>& region_sizes,
    const std::vector<std::vector<SimDuration>>& region_delay) {
  assert(region_sizes.size() == region_delay.size());
  Topology topo;
  topo.region_delay_ = region_delay;

  // Interleave region membership across the id space (largest-remainder
  // scheduling) instead of assigning contiguous id blocks. Round-robin
  // leader election walks ids sequentially, so interleaving makes leadership
  // alternate between regions the way a real deployment's arbitrary
  // id<->region mapping does; contiguous blocks would give each region one
  // long leadership burst per rotation and distort the Fig. 7 latencies.
  const std::uint32_t total = [&] {
    std::uint32_t sum = 0;
    for (std::uint32_t s : region_sizes) sum += s;
    return sum;
  }();
  std::vector<std::uint32_t> assigned(region_sizes.size(), 0);
  for (std::uint32_t id = 0; id < total; ++id) {
    // Pick the region currently most behind its proportional share.
    std::uint32_t best = 0;
    double best_deficit = -1e18;
    for (std::uint32_t r = 0; r < region_sizes.size(); ++r) {
      if (assigned[r] >= region_sizes[r]) continue;
      const double share = static_cast<double>(region_sizes[r]) / total;
      const double deficit = share * (id + 1) - assigned[r];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = r;
      }
    }
    assert(region_delay[best].size() == region_sizes.size());
    topo.region_of_.push_back(best);
    ++assigned[best];
  }
  topo.extra_delay_.assign(topo.region_of_.size(), 0);
  return topo;
}

Topology Topology::symmetric3(std::uint32_t n, SimDuration delta,
                              SimDuration intra) {
  // Split as evenly as possible, larger remainders first (34/33/33 at 100).
  const std::uint32_t base = n / 3;
  const std::uint32_t rem = n % 3;
  std::vector<std::uint32_t> sizes = {base + (rem > 0 ? 1 : 0),
                                      base + (rem > 1 ? 1 : 0), base};
  const std::vector<std::vector<SimDuration>> delays = {
      {intra, delta, delta}, {delta, intra, delta}, {delta, delta, intra}};
  return regions(sizes, delays);
}

Topology Topology::asymmetric3(std::uint32_t a, std::uint32_t b,
                               std::uint32_t c, SimDuration ab,
                               SimDuration delta, SimDuration intra) {
  const std::vector<std::vector<SimDuration>> delays = {
      {intra, ab, delta}, {ab, intra, delta}, {delta, delta, intra}};
  return regions({a, b, c}, delays);
}

SimDuration Topology::base_delay(ReplicaId from, ReplicaId to) const {
  if (from == to) return 0;
  const SimDuration region_part =
      region_delay_[region_of_[from]][region_of_[to]];
  return region_part + extra_delay_[from] + extra_delay_[to];
}

void Topology::set_extra_delay(ReplicaId id, SimDuration extra) {
  assert(id < extra_delay_.size());
  extra_delay_[id] = extra;
}

SimDuration Topology::max_base_delay() const {
  SimDuration max_region = 0;
  for (const auto& row : region_delay_) {
    for (SimDuration d : row) max_region = std::max(max_region, d);
  }
  // Two largest straggler surcharges can combine on one link.
  std::vector<SimDuration> extras = extra_delay_;
  std::partial_sort(extras.begin(),
                    extras.begin() + std::min<std::size_t>(2, extras.size()),
                    extras.end(), std::greater<>());
  SimDuration extra_sum = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(2, extras.size()); ++i) {
    extra_sum += extras[i];
  }
  return max_region + extra_sum;
}

}  // namespace sftbft::net
