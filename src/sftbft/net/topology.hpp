// Network topology: regions, delay matrix, stragglers, jitter.
//
// Models the paper's Fig. 6 experimental geometries:
//  * symmetric  — replicas split evenly into 3 regions (34/33/33 at n = 100)
//                 with a fixed inter-region delay δ;
//  * asymmetric — regions A (45), B (45), C (10); A↔B is 20 ms while C↔A and
//                 C↔B are δ (the "far minority region" that drives the 1.7f
//                 strength cap of Fig. 7b).
// Per-replica `extra_delay` models stragglers ("out-of-sync due to slow
// network/computation", Sec. 4.1); it is charged on both send and receive.
#pragma once

#include <cstdint>
#include <vector>

#include "sftbft/common/types.hpp"

namespace sftbft::net {

class Topology {
 public:
  /// Uniform topology: every pair of distinct replicas has `delay`.
  static Topology uniform(std::uint32_t n, SimDuration delay);

  /// Regions with per-pair region delays. `region_sizes` partitions [0, n);
  /// `region_delay[a][b]` is the one-way delay between regions a and b, and
  /// `region_delay[a][a]` the intra-region delay.
  static Topology regions(const std::vector<std::uint32_t>& region_sizes,
                          const std::vector<std::vector<SimDuration>>& region_delay);

  /// Paper Fig. 6 symmetric setting: 3 regions as even as possible, delay
  /// `delta` across regions, `intra` within a region.
  static Topology symmetric3(std::uint32_t n, SimDuration delta,
                             SimDuration intra);

  /// Paper Fig. 6 asymmetric setting: regions of sizes a/b/c; `ab` between
  /// the two large regions, `delta` from C to either, `intra` within regions.
  static Topology asymmetric3(std::uint32_t a, std::uint32_t b,
                              std::uint32_t c, SimDuration ab,
                              SimDuration delta, SimDuration intra);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(region_of_.size());
  }

  [[nodiscard]] std::uint32_t region_of(ReplicaId id) const {
    return region_of_[id];
  }

  [[nodiscard]] std::uint32_t region_count() const {
    return static_cast<std::uint32_t>(region_delay_.size());
  }

  /// Base one-way delay from `from` to `to`, including both ends' straggler
  /// surcharge. Zero for self-delivery.
  [[nodiscard]] SimDuration base_delay(ReplicaId from, ReplicaId to) const;

  /// Marks `id` as a straggler adding `extra` to each of its sends/receives.
  void set_extra_delay(ReplicaId id, SimDuration extra);

  [[nodiscard]] SimDuration extra_delay(ReplicaId id) const {
    return extra_delay_[id];
  }

  /// Largest base delay over all ordered pairs — a lower bound for the
  /// partial-synchrony Δ used by the network.
  [[nodiscard]] SimDuration max_base_delay() const;

 private:
  Topology() = default;

  std::vector<std::uint32_t> region_of_;
  std::vector<std::vector<SimDuration>> region_delay_;
  std::vector<SimDuration> extra_delay_;
};

}  // namespace sftbft::net
