// Transport: the non-template byte-level network interface both consensus
// stacks (and the adversary funnel) send through.
//
// Every message crosses this boundary as an Envelope whose encoded frame is
// the literal on-wire representation: the transport charges bandwidth and
// records stats by `Envelope::encode().size()` — no per-message size
// estimates exist anywhere above or below this interface. A future
// multi-process/TCP backend implements exactly this class; SimTransport
// (sim_transport.hpp) is the discrete-event implementation.
#pragma once

#include <cstdint>
#include <functional>

#include "sftbft/common/types.hpp"
#include "sftbft/net/envelope.hpp"
#include "sftbft/net/stats.hpp"

namespace sftbft::sim {
class Scheduler;
}

namespace sftbft::net {

class Transport {
 public:
  /// Inbound delivery: a validated envelope plus the exact frame size that
  /// crossed the wire (for receive-side bandwidth accounting). Frames that
  /// fail Envelope::decode are dropped by the transport (counted in
  /// MessageStats::corrupt_drops) and never reach a handler.
  using Handler =
      std::function<void(const Envelope& env, std::size_t frame_bytes)>;

  virtual ~Transport() = default;

  /// Registers the inbound handler for a replica. A replica with no handler
  /// silently drops traffic (crash faults are modelled by clearing it).
  virtual void set_handler(ReplicaId id, Handler handler) = 0;

  /// Simulates a crash: the replica stops receiving.
  virtual void disconnect(ReplicaId id) = 0;
  [[nodiscard]] virtual bool connected(ReplicaId id) const = 0;

  /// Sends to `to` from `env.sender`. `label` overrides the stats key
  /// (nullptr = wire_type_name(env.type)); the FBFT baseline's "extra_vote"
  /// and Streamlet's "echo" traffic keep their own ledger lines this way.
  /// Self-sends deliver immediately (same event, no network hop).
  ///
  /// Invariant: callers stamp env.sender with their OWN id — the transport
  /// routes delivery physics (delay, GST, the self-send fast path,
  /// corruption) by it. Receivers must not trust it for anything beyond
  /// stats attribution (payload signatures are the authentication layer),
  /// and an adversary strategy that wants to spoof the *logical* sender
  /// must do so inside a signed payload, never via this field.
  virtual void send(ReplicaId to, Envelope env, const char* label = nullptr) = 0;

  /// Sends to every replica, encoding the frame ONCE and sharing the buffer
  /// across all recipients (`include_self` adds an immediate self-delivery,
  /// which is how a leader counts its own vote without a round-trip).
  virtual void broadcast(Envelope env, bool include_self,
                         const char* label = nullptr) = 0;

  /// Number of replicas on this transport.
  [[nodiscard]] virtual std::uint32_t size() const = 0;

  [[nodiscard]] virtual MessageStats& stats() = 0;
  [[nodiscard]] virtual const MessageStats& stats() const = 0;

  /// The timer source replicas on this transport schedule against. (The
  /// simulation backend exposes its discrete-event scheduler; a socket
  /// backend would expose its event loop behind the same interface.)
  [[nodiscard]] virtual sim::Scheduler& scheduler() = 0;
};

}  // namespace sftbft::net
