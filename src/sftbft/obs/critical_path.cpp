#include "sftbft/obs/critical_path.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

namespace sftbft::obs {

namespace {

constexpr SimTime kUnset = std::numeric_limits<SimTime>::max();

/// (height, round) — the trace-wide block identity. Lifecycle spans carry
/// the height as the lane; instants carry both as args.
using BlockKey = std::pair<std::uint64_t, std::uint64_t>;

/// Cluster-wide milestone times for one block's certify cycle.
struct Milestones {
  SimTime created = kUnset;        ///< block.created_at (span start times)
  SimTime received = kUnset;       ///< min non-proposer delivery
  SimTime payload_ready = kUnset;  ///< min availability-gate pass
  SimTime f1 = kUnset;             ///< earliest f+1-th-vote crossing
  SimTime quorum = kUnset;         ///< earliest 2f+1-th-vote crossing
  SimTime certified = kUnset;      ///< earliest certificate observation
};

[[nodiscard]] bool find_arg(const TraceEvent& event, const char* key,
                            std::uint64_t& out) {
  for (const TraceEvent::Arg& arg : event.args) {
    if (arg.key != nullptr && std::strcmp(arg.key, key) == 0) {
      out = arg.value;
      return true;
    }
  }
  return false;
}

void keep_min(SimTime& slot, SimTime candidate) {
  slot = std::min(slot, candidate);
}

}  // namespace

const char* segment_name(Segment segment) {
  switch (segment) {
    case Segment::kProposalTransit: return "proposal_transit";
    case Segment::kDissemWait: return "dissem_wait";
    case Segment::kVoteGatherF1: return "vote_gather_f1";
    case Segment::kStragglerWait: return "straggler_wait";
    case Segment::kQcFormation: return "qc_formation";
    case Segment::kPacemakerIdle: return "pacemaker_idle";
    case Segment::kCommitDelivery: return "commit_delivery";
    case Segment::kCount_: break;
  }
  return "?";
}

SimDuration BlockAttribution::segment_sum() const {
  SimDuration sum = 0;
  for (const SimDuration d : segments) sum += d;
  return sum;
}

double CriticalPathResult::share(Segment segment) const {
  if (total_latency == 0) return 0.0;
  return static_cast<double>(total(segment)) /
         static_cast<double>(total_latency);
}

double CriticalPathResult::mean_us(Segment segment) const {
  if (blocks.empty()) return 0.0;
  return static_cast<double>(total(segment)) /
         static_cast<double>(blocks.size());
}

Segment CriticalPathResult::dominant() const {
  std::size_t best = static_cast<std::size_t>(Segment::kCommitDelivery);
  for (std::size_t i = 0; i < kSegmentCount; ++i) {
    if (totals[i] > totals[best]) best = i;
  }
  return static_cast<Segment>(best);
}

double CriticalPathResult::max_residual_frac() const {
  double worst = 0.0;
  for (const BlockAttribution& block : blocks) {
    if (block.latency() == 0) continue;
    const double frac =
        static_cast<double>(
            block.segments[static_cast<std::size_t>(Segment::kCommitDelivery)]) /
        static_cast<double>(block.latency());
    worst = std::max(worst, frac);
  }
  return worst;
}

CriticalPathResult CriticalPathAnalyzer::analyze(
    const std::vector<TraceEvent>& events, ReplicaId observer) {
  // ---- pass 1: index milestones by (height, round) -----------------------
  std::map<BlockKey, Milestones> blocks;
  // Earliest commit observation per block on the observer replica.
  std::map<BlockKey, SimTime> commits;
  // height -> keys seen at that height (successor lookup).
  std::map<std::uint64_t, std::vector<BlockKey>> by_height;

  auto milestones_for = [&](BlockKey key) -> Milestones& {
    auto [it, inserted] = blocks.try_emplace(key);
    if (inserted) by_height[key.first].push_back(key);
    return it->second;
  };

  for (const TraceEvent& event : events) {
    if (event.phase == 'X' && std::strcmp(event.category, "block") == 0) {
      std::uint64_t round = 0;
      if (!find_arg(event, "round", round)) continue;
      const BlockKey key{event.lane, round};
      Milestones& m = milestones_for(key);
      // Every lifecycle span starts at block.created_at.
      keep_min(m.created, event.ts);
      const SimTime end = event.ts + event.dur;
      const char* name = event.name;
      if (std::strcmp(name, "received") == 0) {
        keep_min(m.received, end);
      } else if (std::strcmp(name, "certified") == 0) {
        keep_min(m.certified, end);
      } else if (event.replica == observer &&
                 (std::strcmp(name, "committed") == 0 ||
                  std::strcmp(name, "strong_commit") == 0)) {
        auto [it, inserted] = commits.try_emplace(key, end);
        if (!inserted) it->second = std::min(it->second, end);
      }
    } else if (event.phase == 'i') {
      std::uint64_t round = 0;
      std::uint64_t height = 0;
      if (!find_arg(event, "round", round) ||
          !find_arg(event, "height", height)) {
        continue;
      }
      const BlockKey key{height, round};
      const char* name = event.name;
      if (std::strcmp(event.category, "dissem") == 0 &&
          std::strcmp(name, "payload_ready") == 0) {
        keep_min(milestones_for(key).payload_ready, event.ts);
      } else if (std::strcmp(event.category, "block") == 0) {
        if (std::strcmp(name, "vote_f1") == 0) {
          keep_min(milestones_for(key).f1, event.ts);
        } else if (std::strcmp(name, "vote_quorum") == 0) {
          keep_min(milestones_for(key).quorum, event.ts);
        }
      }
    }
  }

  // ---- pass 2: telescoping walk per committed block ----------------------
  CriticalPathResult result;
  result.blocks.reserve(commits.size());

  for (const auto& [key, committed_at] : commits) {
    const auto block_it = blocks.find(key);
    if (block_it == blocks.end() || block_it->second.created == kUnset) {
      continue;  // no creation milestone (synced in): cannot attribute
    }
    const Milestones& own = block_it->second;
    if (committed_at <= own.created) continue;  // degenerate/clock-less

    BlockAttribution attr;
    attr.height = key.first;
    attr.round = key.second;
    attr.created_at = own.created;
    attr.committed_at = committed_at;

    // The cursor only moves forward and never past the commit instant, so
    // out-of-order milestones (possible across replicas) charge zero
    // instead of going negative: the partition property is unconditional.
    SimTime cursor = own.created;
    auto advance = [&](Segment segment, SimTime milestone) {
      if (milestone == kUnset) return;
      const SimTime eff =
          std::min(std::max(cursor, milestone), committed_at);
      attr.segments[static_cast<std::size_t>(segment)] += eff - cursor;
      cursor = eff;
    };
    auto apply_cycle = [&](const Milestones& m) {
      advance(Segment::kProposalTransit, m.received);
      advance(Segment::kDissemWait, m.payload_ready);
      advance(Segment::kVoteGatherF1, m.f1);
      advance(Segment::kStragglerWait, m.quorum);
      advance(Segment::kQcFormation, m.certified);
    };

    apply_cycle(own);

    // Fold in the successor certify cycles the commit rule waited for
    // (3-chain / consecutive-rounds): at each next height pick the block
    // that certified first within the commit window.
    std::uint64_t height = key.first + 1;
    while (true) {
      const auto level = by_height.find(height);
      if (level == by_height.end()) break;
      const Milestones* next = nullptr;
      for (const BlockKey& candidate : level->second) {
        const Milestones& m = blocks.at(candidate);
        if (m.certified == kUnset || m.certified > committed_at) continue;
        if (next == nullptr || m.certified < next->certified) next = &m;
      }
      if (next == nullptr) break;
      advance(Segment::kPacemakerIdle, next->created);
      apply_cycle(*next);
      ++height;
    }

    // Residual: certificate/commit-message transit to the observer replica
    // plus its local processing.
    attr.segments[static_cast<std::size_t>(Segment::kCommitDelivery)] +=
        committed_at - cursor;

    for (std::size_t i = 0; i < kSegmentCount; ++i) {
      result.totals[i] += attr.segments[i];
    }
    result.total_latency += attr.latency();
    result.blocks.push_back(attr);
  }

  return result;
}

}  // namespace sftbft::obs
