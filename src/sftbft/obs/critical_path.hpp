// Commit critical-path attribution: walk the causal graph recorded in a
// trace backwards from each commit and decompose the block's commit latency
// into named, non-overlapping segments.
//
// The trace's block-lifecycle spans all start at the block's creation time
// (see trace.hpp), so the cluster-wide milestones of one certify cycle are
// directly readable:
//
//   created ──▶ received ──▶ payload_ready ──▶ vote_f1 ──▶ vote_quorum ──▶ certified
//              (transit)     (dissem wait)     (gather)    (stragglers)    (QC form)
//
// A chained commit additionally needs the *successor* blocks' certify
// cycles (the 3-chain / 2-chain rule), and Streamlet needs three
// consecutive certified rounds. Those follow-on cycles are folded into the
// SAME named segments — a straggler link slows every cycle, and the
// attribution should say "straggler wait" no matter which cycle paid for
// it. The gap between one cycle's certification and the next block's
// creation is pacemaker idle; whatever remains up to the observed commit
// instant (QC transit to the committing replica + local processing) is
// commit delivery.
//
// The walk telescopes with a running-max clamp: each milestone advances a
// cursor monotonically, each segment is charged `max(cursor, milestone) -
// cursor`, and the final segment absorbs the residual up to the commit
// timestamp. By construction the per-block segments sum EXACTLY to the
// measured commit latency — the attribution is a partition, not an
// estimate.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sftbft/common/types.hpp"
#include "sftbft/obs/trace.hpp"

namespace sftbft::obs {

/// One leg of the commit critical path. Order matters: it is the causal
/// order milestones are consumed in during the telescoping walk.
enum class Segment : std::uint8_t {
  kProposalTransit = 0,  ///< creation -> first non-proposer delivery
  kDissemWait,           ///< delivery -> payload batches locally available
  kVoteGatherF1,         ///< payload ready -> f+1-th vote arrives (fast half)
  kStragglerWait,        ///< f+1-th -> 2f+1-th vote (the slow-voter tail)
  kQcFormation,          ///< quorum reached -> certificate observed
  kPacemakerIdle,        ///< cert(cycle k) -> creation(cycle k+1) gaps
  kCommitDelivery,       ///< last cert -> commit observed on the replica
  kCount_,               ///< sentinel
};

inline constexpr std::size_t kSegmentCount =
    static_cast<std::size_t>(Segment::kCount_);

/// Stable snake_case identifier (table/JSON key), e.g. "straggler_wait".
[[nodiscard]] const char* segment_name(Segment segment);

/// Attribution for one committed block, observed on one replica.
struct BlockAttribution {
  std::uint64_t height = 0;
  std::uint64_t round = 0;
  SimTime created_at = 0;
  SimTime committed_at = 0;
  std::array<SimDuration, kSegmentCount> segments{};

  [[nodiscard]] SimDuration latency() const { return committed_at - created_at; }
  [[nodiscard]] SimDuration segment_sum() const;
};

/// Aggregate over every committed block in one trace.
struct CriticalPathResult {
  std::vector<BlockAttribution> blocks;
  std::array<SimDuration, kSegmentCount> totals{};
  SimDuration total_latency = 0;  ///< sum of per-block commit latencies

  [[nodiscard]] SimDuration total(Segment segment) const {
    return totals[static_cast<std::size_t>(segment)];
  }
  /// Fraction of all commit latency attributed to `segment` (0 when empty).
  [[nodiscard]] double share(Segment segment) const;
  /// Mean microseconds per committed block (0 when empty).
  [[nodiscard]] double mean_us(Segment segment) const;
  /// The segment with the largest total (kCommitDelivery when empty).
  [[nodiscard]] Segment dominant() const;
  /// Worst per-block fraction left to the residual (commit-delivery)
  /// segment — a well-instrumented trace keeps this small.
  [[nodiscard]] double max_residual_frac() const;
};

/// Reconstructs commit critical paths from a trace. Stateless; feed it the
/// full event journal (Observer::trace().events()).
class CriticalPathAnalyzer {
 public:
  /// Commits are read from replica `observer`'s "committed"/"strong_commit"
  /// spans (the harness convention is replica 0); milestones are
  /// cluster-wide. Blocks whose creation time never appeared in the trace
  /// (e.g. committed via state sync) are skipped.
  [[nodiscard]] static CriticalPathResult analyze(
      const std::vector<TraceEvent>& events, ReplicaId observer = 0);
};

}  // namespace sftbft::obs
