#include "sftbft/obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace sftbft::obs {

const char* metric_name(Counter c) {
  switch (c) {
    case Counter::kProposalsSent: return "consensus.proposals_sent";
    case Counter::kVotesSent: return "consensus.votes_sent";
    case Counter::kRoundsEntered: return "consensus.rounds_entered";
    case Counter::kTimeoutsLocal: return "consensus.timeouts_local";
    case Counter::kBlocksCertified: return "consensus.blocks_certified";
    case Counter::kCommits: return "consensus.commits";
    case Counter::kStrongCommits: return "consensus.strong_commits";
    case Counter::kSyncRounds: return "sync.rounds";
    case Counter::kWalAppends: return "storage.wal_appends";
    case Counter::kSnapshots: return "storage.snapshots";
    case Counter::kBatchesPacked: return "dissem.batches_packed";
    case Counter::kBatchPullRounds: return "dissem.pull_rounds";
    case Counter::kBatchesResolved: return "dissem.batches_resolved";
    case Counter::kAdmitted: return "admission.admitted";
    case Counter::kAdmissionDuplicate: return "admission.duplicate";
    case Counter::kAdmissionRateLimited: return "admission.rate_limited";
    case Counter::kAdmissionBackpressure: return "admission.backpressure";
    case Counter::kVoteVerifyHits: return "sig.vote_verify_hits";
    case Counter::kVoteVerifyMisses: return "sig.vote_verify_misses";
    case Counter::kCertVerifyHits: return "sig.cert_verify_hits";
    case Counter::kCertVerifyMisses: return "sig.cert_verify_misses";
    case Counter::kCount_: break;
  }
  return "?";
}

const char* metric_name(Gauge g) {
  switch (g) {
    case Gauge::kRound: return "consensus.round";
    case Gauge::kMempoolBacklog: return "admission.mempool_backlog";
    case Gauge::kCount_: break;
  }
  return "?";
}

const char* metric_name(Hist h) {
  switch (h) {
    case Hist::kCommitLatencyUs: return "consensus.commit_latency_us";
    case Hist::kStrongCommitLatencyUs:
      return "consensus.strong_commit_latency_us";
    case Hist::kCertifyLatencyUs: return "consensus.certify_latency_us";
    case Hist::kVoteF1LatencyUs: return "consensus.vote_f1_latency_us";
    case Hist::kVoteQuorumLatencyUs:
      return "consensus.vote_quorum_latency_us";
    case Hist::kCount_: break;
  }
  return "?";
}

// ---------------------------------------------------------------- Histogram

std::size_t Histogram::bucket_for(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // msb >= kSubBits. Each power-of-two range [2^msb, 2^{msb+1}) splits into
  // kSubBuckets linear sub-buckets selected by the bits just below the msb.
  const int msb = std::bit_width(value) - 1;
  const int shift = msb - kSubBits;
  const auto sub = static_cast<std::size_t>((value >> shift) & (kSubBuckets - 1));
  const auto range = static_cast<std::size_t>(msb - kSubBits + 1);
  return range * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::size_t range = index / kSubBuckets;       // >= 1
  const std::size_t sub = index % kSubBuckets;
  const int msb = static_cast<int>(range) + kSubBits - 1;
  const std::uint64_t base = std::uint64_t{1} << msb;
  const std::uint64_t step = std::uint64_t{1} << (msb - kSubBits);
  return base + sub * step;
}

std::uint64_t Histogram::bucket_upper(std::size_t index) {
  if (index < kSubBuckets) return index + 1;
  const std::size_t range = index / kSubBuckets;
  const int msb = static_cast<int>(range) + kSubBits - 1;
  const std::uint64_t step = std::uint64_t{1} << (msb - kSubBits);
  return bucket_lower(index) + step;
}

void Histogram::record(std::int64_t value) {
  const std::uint64_t v =
      value < 0 ? 0 : static_cast<std::uint64_t>(value);
  buckets_[bucket_for(v)] += 1;
  if (count_ == 0) {
    min_ = max_ = value < 0 ? 0 : value;
  } else {
    min_ = std::min(min_, std::max<std::int64_t>(value, 0));
    max_ = std::max(max_, value);
  }
  sum_ += static_cast<double>(v);
  ++count_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil — p50 of 2 samples is the 1st).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Bucket midpoint, clamped into the observed value range so tail
      // quantiles never report past the true max.
      const std::uint64_t mid = bucket_lower(i) + (bucket_upper(i) -
                                                   bucket_lower(i)) / 2;
      return std::clamp(static_cast<std::int64_t>(mid), min_, max_);
    }
  }
  return max_;
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.min = min_;
  s.max = max_;
  s.mean = sum_ / static_cast<double>(count_);
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  s.p999 = percentile(0.999);
  return s;
}

// ----------------------------------------------------------------- Registry

void Registry::merge(const Registry& other) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    gauges_[i] = std::max(gauges_[i], other.gauges_[i]);
  }
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    hists_[i].merge(other.hists_[i]);
  }
}

std::map<std::string, std::uint64_t> Registry::counter_snapshot() const {
  std::map<std::string, std::uint64_t> out;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out.emplace(metric_name(static_cast<Counter>(i)), counters_[i]);
  }
  return out;
}

}  // namespace sftbft::obs
