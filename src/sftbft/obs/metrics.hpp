// Metrics registry: counters, gauges, and log-bucketed histograms.
//
// The paper's evaluation is timing (Sec. 4: strength latency from block
// creation to x-strong commit), and means hide exactly the behaviour the
// remaining ROADMAP items need to see — tails under churn, per-phase
// breakdowns, "why did this run stall". The registry replaces the harness's
// ad-hoc mean-only aggregation with a fixed vocabulary of named metrics
// (one Registry per replica, mergeable across replicas) and HDR-style
// log-bucketed histograms reporting p50/p90/p99/p99.9 plus min/max/mean.
//
// The vocabulary is a closed enum, not free-form strings: every Registry
// carries every metric (at zero) from construction, so per-replica arrays
// are index-addressed (a counter bump is one array increment — cheap enough
// to leave on in every run), merge is positional, and "the three engines
// expose identical metric keys" is a checkable conformance property rather
// than an accident of which code paths fired.
//
// Everything here is deployment-scoped, single-threaded state (one
// simulation == one thread); bench sweeps give each concurrent scenario its
// own Observer, so no locking is needed or provided.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace sftbft::obs {

/// Monotonic event counts. Names (metric_name) are stable identifiers —
/// they appear in bench JSON and the README metric registry.
enum class Counter : std::uint8_t {
  kProposalsSent,         ///< blocks this replica proposed
  kVotesSent,             ///< votes this replica cast
  kRoundsEntered,         ///< round advances (pacemaker / lock-step tick)
  kTimeoutsLocal,         ///< local round-timer expiries
  kBlocksCertified,       ///< blocks whose certification this replica saw
  kCommits,               ///< regular (f-strong) commits observed locally
  kStrongCommits,         ///< strength raises past the regular commit
  kSyncRounds,            ///< block-sync request rounds issued
  kWalAppends,            ///< WAL records appended
  kSnapshots,             ///< snapshots written
  kBatchesPacked,         ///< dissemination batches packed + pushed
  kBatchPullRounds,       ///< pull rounds issued for missing batches
  kBatchesResolved,       ///< previously missing batches that arrived
  kAdmitted,              ///< admission decisions, by outcome...
  kAdmissionDuplicate,
  kAdmissionRateLimited,
  kAdmissionBackpressure,
  kVoteVerifyHits,        ///< vote-MAC memo hits (crypto::VerifyCache)...
  kVoteVerifyMisses,      ///< ...and recomputations
  kCertVerifyHits,        ///< whole-certificate memo hits...
  kCertVerifyMisses,      ///< ...and full aggregate verifications
  kCount_,
};

/// Last-write-wins instantaneous values.
enum class Gauge : std::uint8_t {
  kRound,           ///< current consensus round
  kMempoolBacklog,  ///< pending transactions behind the admission gate
  kCount_,
};

/// Log-bucketed latency/size distributions (values in integer units; the
/// consensus histograms record microseconds of sim time).
enum class Hist : std::uint8_t {
  kCommitLatencyUs,        ///< block creation -> regular commit
  kStrongCommitLatencyUs,  ///< block creation -> any strength raise
  kCertifyLatencyUs,       ///< block creation -> local certification
  // The paper's strength clock: votes accumulate past the quorum and each
  // arrival ordinal is a latency milestone. These two pin the f+1-th and
  // 2f+1-th vote arrival per block (measured from block creation at the
  // replica that tallies the votes).
  kVoteF1LatencyUs,      ///< block creation -> (f+1)-th distinct vote
  kVoteQuorumLatencyUs,  ///< block creation -> (2f+1)-th distinct vote
  kCount_,
};

[[nodiscard]] const char* metric_name(Counter c);
[[nodiscard]] const char* metric_name(Gauge g);
[[nodiscard]] const char* metric_name(Hist h);

/// The stats a histogram reports. Percentiles are bucket-resolved: exact to
/// the bucket width (relative error <= 1/16, see Histogram).
struct HistogramSummary {
  std::uint64_t count = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
  std::int64_t p999 = 0;
};

/// HDR-style log-bucketed histogram for non-negative 64-bit values.
///
/// Layout: values < 2^kSubBits land in exact unit buckets; above that, each
/// power-of-two range is split into 2^kSubBits linear sub-buckets, bounding
/// the relative quantization error by 2^-kSubBits (6.25%). min/max/mean are
/// tracked exactly. Merging histograms is positional bucket addition, so a
/// merge of per-replica histograms is bucket-identical to recording every
/// sample into one histogram — the property the cross-replica percentile
/// aggregation in ScenarioResult rests on (and tests assert).
class Histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Buckets cover [0, 2^62) — (62 - kSubBits + 1) half-open log ranges of
  /// kSubBuckets linear buckets each, plus the exact low range.
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(62 - kSubBits + 1) * kSubBuckets + kSubBuckets;

  /// Negative values clamp to 0 (sim-time arithmetic cannot go backwards,
  /// but a clamped outlier beats UB in a metrics layer).
  void record(std::int64_t value);

  /// Positional bucket addition (see class comment).
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Value at quantile q in [0, 1] — the representative (midpoint) of the
  /// bucket holding the q-th sample; 0 when empty.
  [[nodiscard]] std::int64_t percentile(double q) const;

  [[nodiscard]] HistogramSummary summary() const;

  /// Bucket index for a value (exposed for the bucket-correctness tests).
  [[nodiscard]] static std::size_t bucket_for(std::uint64_t value);
  /// Inclusive lower / exclusive upper bound of a bucket's value range.
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index);
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0;
};

/// One replica's metrics: every Counter/Gauge/Hist, index-addressed.
class Registry {
 public:
  void add(Counter c, std::uint64_t delta = 1) {
    counters_[static_cast<std::size_t>(c)] += delta;
  }
  void set(Gauge g, std::int64_t value) {
    gauges_[static_cast<std::size_t>(g)] = value;
  }
  void observe(Hist h, std::int64_t value) {
    hists_[static_cast<std::size_t>(h)].record(value);
  }

  [[nodiscard]] std::uint64_t counter(Counter c) const {
    return counters_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::int64_t gauge(Gauge g) const {
    return gauges_[static_cast<std::size_t>(g)];
  }
  [[nodiscard]] const Histogram& histogram(Hist h) const {
    return hists_[static_cast<std::size_t>(h)];
  }

  /// Counters + gauges fold by addition / last-write, histograms by bucket
  /// addition. (Gauges take the other registry's value only when set —
  /// merge is used for cross-replica aggregation where "last" is
  /// meaningless; the max is the useful roll-up.)
  void merge(const Registry& other);

  /// Name -> value snapshot of every counter (the full vocabulary — zeros
  /// included, so key sets are identical across engines by construction).
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_snapshot() const;

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount_)>
      counters_{};
  std::array<std::int64_t, static_cast<std::size_t>(Gauge::kCount_)> gauges_{};
  std::array<Histogram, static_cast<std::size_t>(Hist::kCount_)> hists_{};
};

}  // namespace sftbft::obs
