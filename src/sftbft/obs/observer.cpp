#include "sftbft/obs/observer.hpp"

namespace sftbft::obs {

Observer::Observer(ObsConfig config, std::uint32_t n)
    : config_(config), registries_(n) {
  if (config_.flight_capacity > 0) {
    flight_ = std::make_unique<FlightRecorder>(n, config_.flight_capacity);
  }
}

Registry Observer::merged() const {
  Registry out;
  for (const Registry& registry : registries_) out.merge(registry);
  return out;
}

std::string Observer::trace_json(const std::string& other_data_json) const {
  return chrome_trace_json(trace_.events(), n(), other_data_json);
}

}  // namespace sftbft::obs
