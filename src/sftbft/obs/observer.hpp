// Observer: one deployment's observability hub.
//
// The Deployment owns (at most) one Observer and stamps a pointer to it
// into every per-replica config (core, streamlet, dissem, storage,
// pacemaker, sync). A null pointer is the disabled path — every
// instrumentation site is `if (obs_) obs_->...`, one predictable branch —
// so runs without observability pay (near) nothing. This is deliberately
// per-deployment state, NOT a process global: bench sweeps run independent
// scenarios concurrently (bench_util --jobs), and each gets its own
// Observer on its own thread.
//
// Three faculties, independently switchable:
//   * metrics  — always on when the Observer exists: per-replica Registry
//     (enum-indexed counters/gauges/histograms), mergeable across replicas;
//   * trace    — full-run TraceBuffer, serializable as Chrome trace-event
//     JSON (Perfetto-loadable);
//   * flight   — bounded per-replica rings of recent events, dumpable as a
//     readable timeline when a run fails (auditor violation / no progress).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sftbft/common/types.hpp"
#include "sftbft/obs/metrics.hpp"
#include "sftbft/obs/trace.hpp"

namespace sftbft::obs {

/// Per-WireType delay distributions, recorded by the transport for every
/// scheduled (non-self) delivery. `transit` is send -> arrival end to end;
/// `queueing` is the share beyond pure propagation (serialization at the
/// link's bandwidth + jitter + any pre-GST hold).
struct WireDelayStats {
  Histogram transit_us;
  Histogram queueing_us;
};

struct ObsConfig {
  /// Master switch: off = the Deployment creates no Observer at all and
  /// every instrumentation site is a null-pointer check.
  bool enabled = false;
  /// Record the full event journal (chrome_trace_json output).
  bool trace = false;
  /// Per-replica flight-recorder ring size; 0 disables the recorder.
  std::size_t flight_capacity = 256;
};

class Observer {
 public:
  Observer(ObsConfig config, std::uint32_t n);

  // --- metrics (always live) ---
  void count(ReplicaId replica, Counter c, std::uint64_t delta = 1) {
    registries_[replica].add(c, delta);
  }
  void gauge(ReplicaId replica, Gauge g, std::int64_t value) {
    registries_[replica].set(g, value);
  }
  void observe(ReplicaId replica, Hist h, std::int64_t value) {
    registries_[replica].observe(h, value);
  }
  [[nodiscard]] const Registry& registry(ReplicaId replica) const {
    return registries_[replica];
  }
  /// All replicas folded into one Registry (histograms bucket-merged).
  [[nodiscard]] Registry merged() const;

  // --- wire delays (fed by net::SimTransport, keyed by WireType label) ---
  void observe_wire(const std::string& type, SimDuration transit_us,
                    SimDuration queueing_us) {
    WireDelayStats& stats = wire_[type];
    stats.transit_us.record(transit_us);
    stats.queueing_us.record(queueing_us);
  }
  [[nodiscard]] const std::map<std::string, WireDelayStats>& wire_delays()
      const {
    return wire_;
  }

  // --- events ---
  /// True when emit() retains events (callers may skip building one).
  [[nodiscard]] bool recording() const {
    return config_.trace || flight_ != nullptr;
  }
  void emit(const TraceEvent& event) {
    if (config_.trace) trace_.append(event);
    if (flight_) flight_->append(event);
  }
  /// Trace-buffer-only append for high-rate net events (per-message flow
  /// arrows and send/recv spans): they would churn the flight rings out of
  /// the consensus-level timeline the post-mortem dumps exist for.
  void emit_trace_only(const TraceEvent& event) {
    if (config_.trace) trace_.append(event);
  }

  [[nodiscard]] bool tracing() const { return config_.trace; }
  [[nodiscard]] const TraceBuffer& trace() const { return trace_; }
  /// The full trace as Chrome trace-event JSON; a non-empty
  /// `other_data_json` object rides along as the trace's "otherData".
  [[nodiscard]] std::string trace_json(
      const std::string& other_data_json = {}) const;

  [[nodiscard]] FlightRecorder* flight() { return flight_.get(); }
  [[nodiscard]] const FlightRecorder* flight() const { return flight_.get(); }
  /// Flight-recorder timeline ("" when the recorder is disabled).
  [[nodiscard]] std::string flight_dump() const {
    return flight_ ? flight_->dump() : std::string{};
  }

  [[nodiscard]] std::uint32_t n() const {
    return static_cast<std::uint32_t>(registries_.size());
  }
  [[nodiscard]] const ObsConfig& config() const { return config_; }

 private:
  ObsConfig config_;
  std::vector<Registry> registries_;
  std::map<std::string, WireDelayStats> wire_;
  TraceBuffer trace_;
  std::unique_ptr<FlightRecorder> flight_;
};

}  // namespace sftbft::obs
