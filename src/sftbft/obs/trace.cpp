#include "sftbft/obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace sftbft::obs {

TraceEvent instant_event(const char* category, const char* name,
                         ReplicaId replica, SimTime ts, TraceEvent::Arg a0,
                         TraceEvent::Arg a1, TraceEvent::Arg a2) {
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'i';
  event.replica = replica;
  event.ts = ts;
  event.args = {a0, a1, a2};
  return event;
}

TraceEvent span_event(const char* category, const char* name,
                      ReplicaId replica, std::uint64_t lane, SimTime start,
                      SimTime end, TraceEvent::Arg a0, TraceEvent::Arg a1,
                      TraceEvent::Arg a2) {
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'X';
  event.replica = replica;
  event.lane = lane;
  event.ts = start;
  event.dur = end >= start ? end - start : 0;
  event.args = {a0, a1, a2};
  return event;
}

namespace {

TraceEvent flow_event(char phase, const char* category, const char* name,
                      ReplicaId replica, std::uint64_t lane, SimTime ts,
                      std::uint64_t flow_id) {
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = phase;
  event.replica = replica;
  event.lane = lane;
  event.ts = ts;
  event.flow_id = flow_id;
  return event;
}

}  // namespace

TraceEvent flow_start_event(const char* category, const char* name,
                            ReplicaId replica, std::uint64_t lane, SimTime ts,
                            std::uint64_t flow_id) {
  return flow_event('s', category, name, replica, lane, ts, flow_id);
}

TraceEvent flow_finish_event(const char* category, const char* name,
                             ReplicaId replica, std::uint64_t lane, SimTime ts,
                             std::uint64_t flow_id) {
  return flow_event('f', category, name, replica, lane, ts, flow_id);
}

TraceEvent counter_event(const char* category, const char* name,
                         ReplicaId replica, SimTime ts,
                         TraceEvent::Arg value) {
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = 'C';
  event.replica = replica;
  event.ts = ts;
  event.args = {value, {}, {}};
  return event;
}

namespace {

/// Category/name/arg-key strings are compile-time literals (identifiers and
/// spaces), but escape defensively — a stray quote must not produce an
/// unparseable trace.
void append_json_string(std::string& out, const char* s) {
  out.push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_event(std::string& out, const TraceEvent& event) {
  char buf[128];
  out.append("{\"name\":");
  append_json_string(out, event.name);
  out.append(",\"cat\":");
  append_json_string(out, event.category);
  std::snprintf(buf, sizeof(buf),
                ",\"ph\":\"%c\",\"pid\":%u,\"tid\":%" PRIu64
                ",\"ts\":%" PRId64,
                event.phase, event.replica, event.lane, event.ts);
  out.append(buf);
  if (event.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%" PRId64, event.dur);
    out.append(buf);
  } else if (event.phase == 'i') {
    out.append(",\"s\":\"t\"");  // instant scope: thread
  } else if (event.phase == 's' || event.phase == 'f') {
    std::snprintf(buf, sizeof(buf), ",\"id\":%" PRIu64, event.flow_id);
    out.append(buf);
    // Bind the finish to its enclosing slice so the arrow lands on the
    // receiver-side handling span rather than the next slice to start.
    if (event.phase == 'f') out.append(",\"bp\":\"e\"");
  }
  bool any_args = false;
  for (const TraceEvent::Arg& arg : event.args) {
    if (arg.key == nullptr) continue;
    out.append(any_args ? "," : ",\"args\":{");
    any_args = true;
    append_json_string(out, arg.key);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, arg.value);
    out.append(buf);
  }
  if (any_args) out.push_back('}');
  out.push_back('}');
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              std::uint32_t n,
                              const std::string& other_data_json) {
  std::string out;
  // ~120 bytes per event is a comfortable upper bound; one reserve avoids
  // repeated growth on multi-100k-event traces.
  out.reserve(64 + events.size() * 120 + static_cast<std::size_t>(n) * 80 +
              other_data_json.size());
  out.append("{\"displayTimeUnit\":\"ms\",");
  if (!other_data_json.empty()) {
    out.append("\"otherData\":");
    out.append(other_data_json);
    out.push_back(',');
  }
  out.append("\"traceEvents\":[");
  bool first = true;
  char buf[128];
  for (std::uint32_t id = 0; id < n; ++id) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"replica %u\"}}",
                  id, id);
    out.append(buf);
  }
  for (const TraceEvent& event : events) {
    if (!first) out.push_back(',');
    first = false;
    append_event(out, event);
  }
  out.append("]}");
  return out;
}

// ----------------------------------------------------------- FlightRecorder

FlightRecorder::FlightRecorder(std::uint32_t n,
                               std::size_t capacity_per_replica)
    : capacity_(std::max<std::size_t>(1, capacity_per_replica)),
      rings_(n),
      evicted_(n, 0) {}

void FlightRecorder::append(const TraceEvent& event) {
  if (event.replica >= rings_.size()) return;
  std::deque<TraceEvent>& ring = rings_[event.replica];
  if (ring.size() == capacity_) {
    ring.pop_front();
    ++evicted_[event.replica];
  }
  ring.push_back(event);
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  std::vector<TraceEvent> all;
  std::size_t total = 0;
  for (const auto& ring : rings_) total += ring.size();
  all.reserve(total);
  for (const auto& ring : rings_) all.insert(all.end(), ring.begin(),
                                             ring.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });
  return all;
}

std::string FlightRecorder::dump() const {
  const std::vector<TraceEvent> events = snapshot();
  std::string out;
  out.reserve(events.size() * 64 + 128);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "flight recorder: %zu events retained (capacity %zu/replica)\n",
                events.size(), capacity_);
  out.append(buf);
  for (const TraceEvent& event : events) {
    std::snprintf(buf, sizeof(buf), "[%12.6fs] r%-3u %s/%s",
                  static_cast<double>(event.ts) / 1e6, event.replica,
                  event.category, event.name);
    out.append(buf);
    for (const TraceEvent::Arg& arg : event.args) {
      if (arg.key == nullptr) continue;
      std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, arg.key, arg.value);
      out.append(buf);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace sftbft::obs
