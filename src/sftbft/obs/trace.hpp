// Structured trace layer: sim-time-stamped events in the Chrome trace-event
// format (load the written JSON at https://ui.perfetto.dev or
// chrome://tracing).
//
// Mapping: pid = replica id (one Perfetto process group per replica),
// tid = lane (block-lifecycle spans use the block height as the lane so the
// created -> proposed -> voted -> certified -> committed -> strong@x stages
// of one block nest on one track; point events use lane 0), ts/dur = sim
// time in microseconds (SimTime's native unit — no conversion).
//
// Block-lifecycle stages are "X" (complete) events that all start at the
// block's creation time with increasing durations — each stage span reads
// as "how far after creation did this block reach stage S on this replica",
// which is exactly the paper's latency definition rendered as a timeline.
// Everything else (pacemaker round entries/timeouts, sync rounds, batch
// lifecycle, WAL/snapshot writes, admission rejections) is an "i" (instant)
// event.
//
// v2 adds three more phases:
//   * "s"/"f" flow events stitch a sender-side emit site to the receiver-side
//     handling span across pids (Perfetto draws the arrow). Each delivered
//     Envelope gets a unique flow id; the 'f' end binds to the enclosing
//     slice ("bp":"e").
//   * "C" counter events render a named per-replica time series (mempool
//     depth, BatchStore size, current round) as a Perfetto counter track;
//     the series values ride in args.
//
// TraceEvent is a POD of static-string pointers and integers: recording one
// is a bounds-checked vector append, no allocation per event beyond the
// buffer's amortized growth. Category and name strings MUST be string
// literals (or otherwise outlive the buffer).
//
// FlightRecorder keeps the most recent events per replica in bounded rings
// regardless of whether full tracing is on — when a run ends in an auditor
// violation or without progress, the rings are dumped as a readable
// timeline ("Byzantine test failed" becomes "here is what every replica did
// last").
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sftbft/common/types.hpp"

namespace sftbft::obs {

struct TraceEvent {
  struct Arg {
    const char* key = nullptr;  ///< null = slot unused
    std::uint64_t value = 0;
  };

  const char* category = "";  ///< e.g. "block", "pacemaker", "dissem"
  const char* name = "";      ///< e.g. "certified", "round_enter"
  char phase = 'i';           ///< 'X', 'i', 's'/'f' (flow), or 'C' (counter)
  ReplicaId replica = 0;      ///< -> pid
  std::uint64_t lane = 0;     ///< -> tid (block height for lifecycle spans)
  SimTime ts = 0;             ///< microseconds
  SimDuration dur = 0;        ///< microseconds ('X' only)
  std::uint64_t flow_id = 0;  ///< flow binding id ('s'/'f' only)
  std::array<Arg, 3> args{};  ///< numeric args, in declaration order
};

/// Convenience constructors (keep call sites one-liners).
[[nodiscard]] TraceEvent instant_event(const char* category, const char* name,
                                       ReplicaId replica, SimTime ts,
                                       TraceEvent::Arg a0 = {},
                                       TraceEvent::Arg a1 = {},
                                       TraceEvent::Arg a2 = {});
[[nodiscard]] TraceEvent span_event(const char* category, const char* name,
                                    ReplicaId replica, std::uint64_t lane,
                                    SimTime start, SimTime end,
                                    TraceEvent::Arg a0 = {},
                                    TraceEvent::Arg a1 = {},
                                    TraceEvent::Arg a2 = {});
/// 's' (start) half of a flow arrow; must share id/category/name with its
/// 'f' end and fall inside an 'X' span on (replica, lane).
[[nodiscard]] TraceEvent flow_start_event(const char* category,
                                          const char* name, ReplicaId replica,
                                          std::uint64_t lane, SimTime ts,
                                          std::uint64_t flow_id);
/// 'f' (finish) half; binds to the enclosing slice ("bp":"e").
[[nodiscard]] TraceEvent flow_finish_event(const char* category,
                                           const char* name, ReplicaId replica,
                                           std::uint64_t lane, SimTime ts,
                                           std::uint64_t flow_id);
/// 'C' counter sample: one point of the per-replica series `name`.
[[nodiscard]] TraceEvent counter_event(const char* category, const char* name,
                                       ReplicaId replica, SimTime ts,
                                       TraceEvent::Arg value);

/// The full-run event journal (unbounded; only populated when tracing is
/// enabled).
class TraceBuffer {
 public:
  void append(const TraceEvent& event) { events_.push_back(event); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Serializes events as Chrome trace-event JSON ({"traceEvents": [...]}).
/// `n` adds process_name metadata ("replica <id>") for ids [0, n).
/// `other_data_json`, when non-empty, must be a complete JSON object (e.g.
/// a run manifest) and is embedded verbatim as the top-level "otherData"
/// value — the trace becomes self-describing (seed, engine, n, digest).
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceEvent>& events, std::uint32_t n,
    const std::string& other_data_json = {});

/// Bounded per-replica rings of recent events.
class FlightRecorder {
 public:
  FlightRecorder(std::uint32_t n, std::size_t capacity_per_replica);

  void append(const TraceEvent& event);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size(ReplicaId replica) const {
    return rings_[replica].size();
  }
  /// Events evicted (overwritten) from one replica's ring so far.
  [[nodiscard]] std::uint64_t evicted(ReplicaId replica) const {
    return evicted_[replica];
  }

  /// All retained events, globally ordered by timestamp (stable across
  /// replicas at equal ts).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Human-readable timeline of snapshot() — one line per event:
  ///   [  12.345678s] r7  pacemaker/timeout round=42
  [[nodiscard]] std::string dump() const;

 private:
  std::size_t capacity_;
  std::vector<std::deque<TraceEvent>> rings_;
  std::vector<std::uint64_t> evicted_;
};

}  // namespace sftbft::obs
