#include "sftbft/replica/cluster.hpp"

#include <cassert>

namespace sftbft::replica {

Cluster::Cluster(ClusterConfig config, CommitObserver observer)
    : config_(std::move(config)) {
  assert(config_.topology.size() == config_.n);
  registry_ = std::make_shared<crypto::KeyRegistry>(config_.n, config_.seed);
  network_ = std::make_unique<DiemNetwork>(sched_, config_.topology,
                                           config_.net, config_.seed ^ 0xabcd);

  Rng workload_seed_rng(config_.seed ^ 0x77aa);
  for (ReplicaId id = 0; id < config_.n; ++id) {
    consensus::CoreConfig core = config_.core;
    core.id = id;
    core.n = config_.n;
    const FaultSpec fault =
        id < config_.faults.size() ? config_.faults[id] : FaultSpec::honest();
    replicas_.push_back(std::make_unique<Replica>(
        core, *network_, registry_, config_.workload, workload_seed_rng.fork(),
        fault, observer));
  }
}

void Cluster::start() {
  for (auto& rep : replicas_) rep->start();
}

void Cluster::run_for(SimDuration duration) { sched_.run_for(duration); }

std::uint32_t Cluster::honest_count() const {
  std::uint32_t honest = 0;
  for (const auto& rep : replicas_) {
    if (rep->fault().kind == FaultSpec::Kind::Honest) ++honest;
  }
  return honest;
}

}  // namespace sftbft::replica
