// Cluster: a full n-replica deployment on one simulated network.
//
// This is the top-level object experiments and integration tests drive: it
// owns the scheduler, the network, the PKI and all replicas, and funnels
// every replica's commit notifications to a single observer (which is how
// the harness computes the paper's "average over all blocks over all
// replicas" metrics).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sftbft/net/sim_network.hpp"
#include "sftbft/replica/replica.hpp"
#include "sftbft/sim/scheduler.hpp"

namespace sftbft::replica {

struct ClusterConfig {
  std::uint32_t n = 4;
  /// Template for every replica's core config (id is filled in per replica).
  consensus::CoreConfig core;
  net::Topology topology = net::Topology::uniform(4, millis(1));
  net::NetConfig net;
  mempool::WorkloadConfig workload;
  /// Per-replica faults; empty = all honest. Indexed by replica id.
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 1;
};

class Cluster {
 public:
  using CommitObserver = Replica::CommitObserver;

  /// `observer` may be null. The topology in `config` must have size n.
  explicit Cluster(ClusterConfig config, CommitObserver observer = nullptr);

  /// Starts all replicas (they enter round 1 at the current sim time).
  void start();

  /// Runs the simulation for `duration` of simulated time.
  void run_for(SimDuration duration);

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] DiemNetwork& network() { return *network_; }
  [[nodiscard]] Replica& replica(ReplicaId id) { return *replicas_[id]; }
  [[nodiscard]] const Replica& replica(ReplicaId id) const {
    return *replicas_[id];
  }
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(replicas_.size());
  }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] std::shared_ptr<const crypto::KeyRegistry> registry() const {
    return registry_;
  }

  /// Count of replicas that are honest for liveness purposes.
  [[nodiscard]] std::uint32_t honest_count() const;

 private:
  ClusterConfig config_;
  sim::Scheduler sched_;
  std::shared_ptr<const crypto::KeyRegistry> registry_;
  std::unique_ptr<DiemNetwork> network_;
  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace sftbft::replica
