#include "sftbft/replica/replica.hpp"

namespace sftbft::replica {

using consensus::DiemBftCore;
using net::Envelope;
using net::WireType;
using types::Proposal;
using types::SyncRequest;
using types::SyncResponse;
using types::TimeoutMsg;
using types::Vote;

Replica::Replica(consensus::CoreConfig config, net::Transport& transport,
                 std::shared_ptr<const crypto::KeyRegistry> registry,
                 mempool::WorkloadConfig workload, Rng workload_rng,
                 FaultSpec fault, CommitObserver observer,
                 storage::ReplicaStore* store, QcTap qc_tap)
    : id_(config.id),
      transport_(transport),
      fault_(fault),
      workload_(transport.scheduler(), pool_, workload, workload_rng),
      observer_(std::move(observer)) {
  workload_.set_id_space(id_);

  const bool silent = fault_.kind == FaultSpec::Kind::Silent;
  DiemBftCore::Hooks hooks;
  hooks.send_vote = [this, silent](ReplicaId to, const Vote& vote) {
    if (silent) return;
    transport_.send(to, Envelope::pack(WireType::kVote, id_, vote));
  };
  hooks.broadcast_proposal = [this, silent](const Proposal& proposal) {
    if (silent) return;
    transport_.broadcast(Envelope::pack(WireType::kProposal, id_, proposal),
                         /*include_self=*/true);
  };
  hooks.broadcast_timeout = [this, silent](const TimeoutMsg& msg) {
    if (silent) return;
    transport_.broadcast(Envelope::pack(WireType::kTimeout, id_, msg),
                         /*include_self=*/true);
  };
  hooks.broadcast_extra_vote = [this, silent](const Vote& vote) {
    if (silent) return;
    transport_.broadcast(Envelope::pack(WireType::kVote, id_, vote),
                         /*include_self=*/false, "extra_vote");
  };
  hooks.send_sync_request = [this, silent](ReplicaId to,
                                           const SyncRequest& req) {
    if (silent) return;
    transport_.send(to, Envelope::pack(WireType::kSyncRequest, id_, req));
  };
  hooks.send_sync_response = [this, silent](ReplicaId to,
                                            const SyncResponse& resp) {
    if (silent) return;
    transport_.send(to, Envelope::pack(WireType::kSyncResponse, id_, resp));
  };
  hooks.on_commit = [this](const types::Block& block, std::uint32_t strength,
                           SimTime now) {
    if (observer_) observer_(id_, block, strength, now);
  };
  hooks.on_canonical_qc = std::move(qc_tap);

  core_ = std::make_unique<DiemBftCore>(config, transport.scheduler(),
                                        registry, pool_, std::move(hooks),
                                        store);
}

void Replica::register_handler() {
  transport_.set_handler(id_, [this](const Envelope& env,
                                     std::size_t frame_bytes) {
    ++inbound_messages_;
    inbound_bytes_ += frame_bytes;
    on_envelope(env);
  });
}

void Replica::start() {
  register_handler();
  workload_.top_up();
  workload_.start();
  if (fault_.kind == FaultSpec::Kind::Crash) {
    transport_.scheduler().schedule_at(fault_.crash_at, [this] { crash(); });
  }
  core_->start();
}

void Replica::restart(const storage::RecoveredState& state) {
  register_handler();
  // A fresh mempool: in-flight bookkeeping died with the process.
  pool_ = mempool::Mempool();
  workload_.top_up();
  core_->restore(state);
  core_->request_sync();
}

void Replica::on_envelope(const Envelope& env) {
  try {
    switch (env.type) {
      case WireType::kProposal:
        core_->on_proposal(env.unpack<Proposal>());
        break;
      case WireType::kVote:
        core_->on_vote(env.unpack<Vote>());
        break;
      case WireType::kTimeout:
        core_->on_timeout_msg(env.unpack<TimeoutMsg>());
        break;
      case WireType::kSyncRequest:
        core_->on_sync_request(env.unpack<SyncRequest>());
        break;
      case WireType::kSyncResponse:
        core_->on_sync_response(env.unpack<SyncResponse>());
        break;
      default:
        // A Streamlet-stack tag reaching a DiemBFT replica is a payload
        // this stack cannot parse — same treatment as a garbled payload.
        throw CodecError("Replica: wire type not in the DiemBFT stack");
    }
  } catch (const CodecError&) {
    // Well-framed envelope, unparseable payload: reject, count, carry on.
    transport_.stats().record_decode_drop();
  }
}

void Replica::crash() {
  core_->stop();
  transport_.disconnect(id_);
}

}  // namespace sftbft::replica
