#include "sftbft/replica/replica.hpp"

namespace sftbft::replica {

using consensus::DiemBftCore;
using types::Message;
using types::Proposal;
using types::SyncRequest;
using types::SyncResponse;
using types::TimeoutMsg;
using types::Vote;

Replica::Replica(consensus::CoreConfig config, DiemNetwork& network,
                 std::shared_ptr<const crypto::KeyRegistry> registry,
                 mempool::WorkloadConfig workload, Rng workload_rng,
                 FaultSpec fault, CommitObserver observer,
                 storage::ReplicaStore* store, QcTap qc_tap)
    : id_(config.id),
      network_(network),
      fault_(fault),
      workload_(network.scheduler(), pool_, workload, workload_rng),
      observer_(std::move(observer)) {
  workload_.set_id_space(id_);

  const bool silent = fault_.kind == FaultSpec::Kind::Silent;
  DiemBftCore::Hooks hooks;
  hooks.send_vote = [this, silent](ReplicaId to, const Vote& vote) {
    if (silent) return;
    network_.send(id_, to, "vote", vote.wire_size(), Message{vote});
  };
  hooks.broadcast_proposal = [this, silent](const Proposal& proposal) {
    if (silent) return;
    network_.multicast(id_, "proposal", proposal.wire_size(),
                       Message{proposal}, /*include_self=*/true);
  };
  hooks.broadcast_timeout = [this, silent](const TimeoutMsg& msg) {
    if (silent) return;
    network_.multicast(id_, "timeout", msg.wire_size(), Message{msg},
                       /*include_self=*/true);
  };
  hooks.broadcast_extra_vote = [this, silent](const Vote& vote) {
    if (silent) return;
    network_.multicast(id_, "extra_vote", vote.wire_size(), Message{vote},
                       /*include_self=*/false);
  };
  hooks.send_sync_request = [this, silent](ReplicaId to,
                                           const SyncRequest& req) {
    if (silent) return;
    network_.send(id_, to, "sync_req", req.wire_size(), Message{req});
  };
  hooks.send_sync_response = [this, silent](ReplicaId to,
                                            const SyncResponse& resp) {
    if (silent) return;
    network_.send(id_, to, "sync_resp", resp.wire_size(), Message{resp});
  };
  hooks.on_commit = [this](const types::Block& block, std::uint32_t strength,
                           SimTime now) {
    if (observer_) observer_(id_, block, strength, now);
  };
  hooks.on_canonical_qc = std::move(qc_tap);

  core_ = std::make_unique<DiemBftCore>(config, network.scheduler(), registry,
                                        pool_, std::move(hooks), store);
}

void Replica::start() {
  network_.set_handler(id_, [this](ReplicaId /*from*/, const Message& msg,
                                   std::size_t wire_size) {
    ++inbound_messages_;
    inbound_bytes_ += wire_size;
    on_message(msg);
  });
  workload_.top_up();
  workload_.start();
  if (fault_.kind == FaultSpec::Kind::Crash) {
    network_.scheduler().schedule_at(fault_.crash_at, [this] { crash(); });
  }
  core_->start();
}

void Replica::restart(const storage::RecoveredState& state) {
  network_.set_handler(id_, [this](ReplicaId /*from*/, const Message& msg,
                                   std::size_t wire_size) {
    ++inbound_messages_;
    inbound_bytes_ += wire_size;
    on_message(msg);
  });
  // A fresh mempool: in-flight bookkeeping died with the process.
  pool_ = mempool::Mempool();
  workload_.top_up();
  core_->restore(state);
  core_->request_sync();
}

void Replica::on_message(const Message& msg) {
  if (std::holds_alternative<Proposal>(msg)) {
    core_->on_proposal(std::get<Proposal>(msg));
  } else if (std::holds_alternative<Vote>(msg)) {
    core_->on_vote(std::get<Vote>(msg));
  } else if (std::holds_alternative<TimeoutMsg>(msg)) {
    core_->on_timeout_msg(std::get<TimeoutMsg>(msg));
  } else if (std::holds_alternative<SyncRequest>(msg)) {
    core_->on_sync_request(std::get<SyncRequest>(msg));
  } else {
    core_->on_sync_response(std::get<SyncResponse>(msg));
  }
}

void Replica::crash() {
  core_->stop();
  network_.disconnect(id_);
}

}  // namespace sftbft::replica
