#include "sftbft/replica/replica.hpp"

namespace sftbft::replica {

using core::ChainedCore;
using net::Envelope;
using types::Proposal;
using types::SyncRequest;
using types::SyncResponse;
using types::TimeoutMsg;
using types::Vote;

Replica::Replica(consensus::CoreConfig config, net::Transport& transport,
                 std::shared_ptr<const crypto::KeyRegistry> registry,
                 mempool::WorkloadConfig workload, Rng workload_rng,
                 FaultSpec fault, CommitObserver observer,
                 storage::ReplicaStore* store, QcTap qc_tap,
                 net::ChainedWireSet wires, dissem::DissemConfig dissem)
    : id_(config.id),
      transport_(transport),
      wires_(wires),
      fault_(fault),
      dissem_(dissem),
      workload_(transport.scheduler(), pool_, workload, workload_rng),
      observer_(std::move(observer)) {
  workload_.set_id_space(id_);

  const bool silent = fault_.kind == FaultSpec::Kind::Silent;

  if (dissem_.enabled) {
    batches_ = std::make_unique<dissem::BatchStore>();
    make_broadcaster();
    frontend_ = std::make_unique<dissem::AdmissionFrontend>(pool_, dissem_);
    swarm_ = std::make_unique<dissem::ClientSwarm>(
        transport.scheduler(), *frontend_, workload, dissem_,
        workload_rng.fork());
    swarm_->set_id_space(id_);
  }
  ChainedCore::Hooks hooks;
  hooks.send_vote = [this, silent](ReplicaId to, const Vote& vote) {
    if (silent) return;
    transport_.send(to, Envelope::pack(wires_.vote, id_, vote));
  };
  hooks.broadcast_proposal = [this, silent](const Proposal& proposal) {
    if (silent) return;
    transport_.broadcast(Envelope::pack(wires_.proposal, id_, proposal),
                         /*include_self=*/true);
  };
  hooks.broadcast_timeout = [this, silent](const TimeoutMsg& msg) {
    if (silent) return;
    transport_.broadcast(Envelope::pack(wires_.timeout, id_, msg),
                         /*include_self=*/true);
  };
  hooks.broadcast_extra_vote = [this, silent](const Vote& vote) {
    if (silent) return;
    transport_.broadcast(Envelope::pack(wires_.vote, id_, vote),
                         /*include_self=*/false, "extra_vote");
  };
  hooks.send_sync_request = [this, silent](ReplicaId to,
                                           const SyncRequest& req) {
    if (silent) return;
    transport_.send(to, Envelope::pack(wires_.sync_request, id_, req));
  };
  hooks.send_sync_response = [this, silent](ReplicaId to,
                                            const SyncResponse& resp) {
    if (silent) return;
    transport_.send(to, Envelope::pack(wires_.sync_response, id_, resp));
  };
  hooks.on_commit = [this](const types::Block& block, std::uint32_t strength,
                           SimTime now) {
    if (observer_) observer_(id_, block, strength, now);
  };
  hooks.on_canonical_qc = std::move(qc_tap);

  if (dissem_.enabled) {
    // Control plane ↔ data plane seams. Leaders draw digest payloads from
    // the batch store; voters gate on availability and pull what's missing;
    // timed-out references revert to proposable.
    hooks.make_payload = [this](std::size_t /*max_batch*/) {
      return batches_->make_payload(dissem_.max_batches_per_proposal,
                                    transport_.scheduler().now(),
                                    dissem_.repropose_after);
    };
    hooks.requeue_payload = [this](const types::Payload& payload) {
      if (payload.is_digests()) {
        batches_->requeue(payload);
      } else {
        pool_.requeue(payload);
      }
    };
    hooks.payload_available = [this](const types::Payload& payload) {
      if (!payload.is_digests()) return true;
      // Present batches go Proposed either way — another leader claimed
      // them; re-proposing them here would only waste block space.
      batches_->observe_reference(payload, transport_.scheduler().now());
      return batches_->missing(payload).empty();
    };
    hooks.fetch_payload = [this](const types::Payload& payload) {
      if (!payload.is_digests()) return;
      const auto missing = batches_->missing(payload);
      if (!missing.empty()) broadcaster_->want(missing);
    };
  }

  core_ = std::make_unique<ChainedCore>(config, transport.scheduler(),
                                        registry, pool_, std::move(hooks),
                                        store);
  if (dissem_.enabled) {
    core_->attach_batch_store(
        batches_.get(), [this](const std::vector<crypto::Sha256Digest>& m) {
          broadcaster_->want(m);
        });
  }
}

void Replica::make_broadcaster() {
  broadcaster_ = std::make_unique<dissem::BatchBroadcaster>(
      id_, transport_, pool_, *batches_, dissem_,
      [this] { core_->retry_awaiting_payloads(); },
      dissem::BatchBroadcaster::Options{
          .silent = fault_.kind == FaultSpec::Kind::Silent,
          .withhold_push = false});
}

void Replica::register_handler() {
  transport_.set_handler(id_, [this](const Envelope& env,
                                     std::size_t frame_bytes) {
    ++inbound_messages_;
    inbound_bytes_ += frame_bytes;
    on_envelope(env);
  });
}

void Replica::start() {
  register_handler();
  if (dissem_.enabled) {
    swarm_->start();
    broadcaster_->start();
  } else {
    workload_.top_up();
    workload_.start();
  }
  if (fault_.kind == FaultSpec::Kind::Crash) {
    transport_.scheduler().schedule_at(fault_.crash_at, [this] { crash(); });
  }
  core_->start();
}

void Replica::restart(const storage::RecoveredState& state) {
  register_handler();
  // A fresh mempool: in-flight bookkeeping died with the process.
  pool_ = mempool::Mempool();
  if (dissem_.enabled) {
    // Volatile data plane died too: reset the store in place (the committer
    // aims a raw pointer at it) and rebuild the broadcaster's pull state.
    // Certified-but-missing batches re-arrive via the sync path's pull.
    pool_.set_capacity(dissem_.mempool_capacity);
    *batches_ = dissem::BatchStore();
    make_broadcaster();
    swarm_->start();
    broadcaster_->start();
  } else {
    workload_.top_up();
  }
  core_->restore(state);
  core_->request_sync();
}

void Replica::on_envelope(const Envelope& env) {
  try {
    if (env.type == wires_.proposal) {
      core_->on_proposal(env.unpack<Proposal>());
    } else if (env.type == wires_.vote) {
      core_->on_vote(env.unpack<Vote>());
    } else if (env.type == wires_.timeout) {
      core_->on_timeout_msg(env.unpack<TimeoutMsg>());
    } else if (env.type == wires_.sync_request) {
      core_->on_sync_request(env.unpack<SyncRequest>());
    } else if (env.type == wires_.sync_response) {
      core_->on_sync_response(env.unpack<SyncResponse>());
    } else if (broadcaster_ && env.type == net::WireType::kBatchPush) {
      broadcaster_->on_push(env.unpack<dissem::BatchPush>());
    } else if (broadcaster_ && env.type == net::WireType::kBatchRequest) {
      broadcaster_->on_request(env.unpack<dissem::BatchRequest>());
    } else if (broadcaster_ && env.type == net::WireType::kBatchResponse) {
      broadcaster_->on_response(env.unpack<dissem::BatchResponse>());
    } else {
      // Another stack's tag reaching this replica is a payload this stack
      // cannot parse — same treatment as a garbled payload.
      throw CodecError("Replica: wire type not in this protocol's stack");
    }
  } catch (const CodecError&) {
    // Well-framed envelope, unparseable payload: reject, count, carry on.
    transport_.stats().record_decode_drop();
  }
}

void Replica::crash() {
  core_->stop();
  if (dissem_.enabled) {
    broadcaster_->stop();
    swarm_->stop();
  }
  transport_.disconnect(id_);
}

}  // namespace sftbft::replica
