// A full replica: consensus core + network wiring + mempool + fault model.
//
// Fault behaviours available to experiments and tests:
//  * Honest    — follows the protocol;
//  * Crash     — benign fault (Theorem 2): stops entirely at `crash_at`;
//  * Silent    — Byzantine fault for liveness experiments (Theorem 3): stays
//                synced but never sends any message (no votes, proposals, or
//                timeouts), so its leadership rounds time out;
//  * stragglers are modelled in the network topology (extra per-replica
//    delay), not here — see net::Topology::set_extra_delay.
// Actively equivocating adversaries (Appendix C) are scripted directly in
// tests/examples against the type layer; they need message-level control a
// well-formed replica cannot express.
#pragma once

#include <memory>

#include "sftbft/consensus/diembft.hpp"
#include "sftbft/mempool/mempool.hpp"
#include "sftbft/net/sim_network.hpp"
#include "sftbft/types/proposal.hpp"

namespace sftbft::replica {

using DiemNetwork = net::SimNetwork<types::Message>;

struct FaultSpec {
  enum class Kind { Honest, Crash, Silent };
  Kind kind = Kind::Honest;
  /// Crash time (Kind::Crash only).
  SimTime crash_at = 0;

  static FaultSpec honest() { return {}; }
  static FaultSpec crash_at_time(SimTime at) {
    return {.kind = Kind::Crash, .crash_at = at};
  }
  static FaultSpec silent() { return {.kind = Kind::Silent}; }
};

class Replica {
 public:
  /// Commit observer: (replica, block, strength, time). Fired once per
  /// strength level first reached per block.
  using CommitObserver = std::function<void(
      ReplicaId, const types::Block&, std::uint32_t, SimTime)>;

  Replica(consensus::CoreConfig config, DiemNetwork& network,
          std::shared_ptr<const crypto::KeyRegistry> registry,
          mempool::WorkloadConfig workload, Rng workload_rng, FaultSpec fault,
          CommitObserver observer);

  /// Registers the network handler, fills the mempool, arms the crash timer,
  /// and enters round 1.
  void start();

  [[nodiscard]] consensus::DiemBftCore& core() { return *core_; }
  [[nodiscard]] const consensus::DiemBftCore& core() const { return *core_; }
  [[nodiscard]] mempool::Mempool& pool() { return pool_; }
  [[nodiscard]] ReplicaId id() const { return id_; }
  [[nodiscard]] const FaultSpec& fault() const { return fault_; }

 private:
  void on_message(const types::Message& msg);
  void crash();

  ReplicaId id_;
  DiemNetwork& network_;
  FaultSpec fault_;
  mempool::Mempool pool_;
  mempool::WorkloadGenerator workload_;
  std::unique_ptr<consensus::DiemBftCore> core_;
  CommitObserver observer_;
};

}  // namespace sftbft::replica
