// A full chained-kernel replica: consensus core (core::ChainedCore running
// either the DiemBFT or the HotStuff rule set) + network wiring + mempool +
// fault model. The fault behaviours (Honest / Crash / Silent) come from the
// shared engine::FaultSpec — see sftbft/engine/fault.hpp — so the same
// fault list drives every stack.
//
// All traffic crosses the byte-level net::Transport as Envelopes: outbound
// hooks encode each message to its canonical bytes under the protocol's
// wire-tag set (net::ChainedWireSet — DiemBFT 0x0x, HotStuff 0x2x); the
// inbound handler demuxes on the same tags and decodes, dropping (and
// counting) frames whose payload does not parse.
#pragma once

#include <memory>

#include "sftbft/consensus/diembft.hpp"
#include "sftbft/dissem/admission.hpp"
#include "sftbft/dissem/broadcaster.hpp"
#include "sftbft/dissem/config.hpp"
#include "sftbft/engine/fault.hpp"
#include "sftbft/mempool/mempool.hpp"
#include "sftbft/net/transport.hpp"
#include "sftbft/storage/replica_store.hpp"
#include "sftbft/types/proposal.hpp"

namespace sftbft::replica {

/// Back-compat alias: the fault model is protocol-agnostic now.
using FaultSpec = engine::FaultSpec;

class Replica {
 public:
  /// Commit observer: (replica, block, strength, time). Fired once per
  /// strength level first reached per block.
  using CommitObserver = std::function<void(
      ReplicaId, const types::Block&, std::uint32_t, SimTime)>;

  /// Auditing tap: every canonical QC this replica processes, with the
  /// certified block (see DiemBftCore::Hooks::on_canonical_qc).
  using QcTap =
      std::function<void(const types::Block&, const types::QuorumCert&)>;

  /// `store` (optional) enables durable state + crash recovery (restart());
  /// `qc_tap` (optional) feeds a harness-level auditor. `wires` selects the
  /// protocol's Envelope tag set (DiemBFT by default; pass
  /// net::kHotStuffWires together with a hotstuff-ruled config).
  /// `dissem.enabled` switches the replica to the batch data plane: the
  /// AdmissionFrontend + ClientSwarm replace the bench WorkloadGenerator,
  /// the BatchBroadcaster pushes content-addressed batches off the critical
  /// path, and the core proposes/votes/commits digest-referencing payloads.
  Replica(consensus::CoreConfig config, net::Transport& transport,
          std::shared_ptr<const crypto::KeyRegistry> registry,
          mempool::WorkloadConfig workload, Rng workload_rng, FaultSpec fault,
          CommitObserver observer,
          storage::ReplicaStore* store = nullptr, QcTap qc_tap = nullptr,
          net::ChainedWireSet wires = net::kDiemBftWires,
          dissem::DissemConfig dissem = {});

  /// Registers the transport handler, fills the mempool, arms the crash
  /// timer (Kind::Crash only — CrashRestart timers belong to the engine
  /// layer), and enters round 1.
  void start();

  /// Crash recovery: reconstructs the consensus core from `state` (the
  /// ReplicaStore's recover() output), rejoins the network, and asks peers
  /// for the blocks missed while down.
  void restart(const storage::RecoveredState& state);

  [[nodiscard]] consensus::DiemBftCore& core() { return *core_; }
  [[nodiscard]] const consensus::DiemBftCore& core() const { return *core_; }
  [[nodiscard]] mempool::Mempool& pool() { return pool_; }
  [[nodiscard]] ReplicaId id() const { return id_; }
  [[nodiscard]] const FaultSpec& fault() const { return fault_; }

  /// Dissemination components (null unless dissem.enabled).
  [[nodiscard]] const dissem::BatchStore* batch_store() const {
    return batches_.get();
  }
  [[nodiscard]] const dissem::BatchBroadcaster* broadcaster() const {
    return broadcaster_.get();
  }
  [[nodiscard]] const dissem::AdmissionFrontend* frontend() const {
    return frontend_.get();
  }

  /// Simulates a crash now: stops the core and drops off the network.
  void crash();

  /// Inbound traffic delivered to this replica (exact frame bytes).
  [[nodiscard]] std::uint64_t inbound_messages() const {
    return inbound_messages_;
  }
  [[nodiscard]] std::uint64_t inbound_bytes() const { return inbound_bytes_; }

 private:
  void register_handler();
  void on_envelope(const net::Envelope& env);
  void make_broadcaster();

  ReplicaId id_;
  net::Transport& transport_;
  net::ChainedWireSet wires_;
  FaultSpec fault_;
  dissem::DissemConfig dissem_;
  std::uint64_t inbound_messages_ = 0;
  std::uint64_t inbound_bytes_ = 0;
  mempool::Mempool pool_;
  mempool::WorkloadGenerator workload_;
  // Data plane (dissem_.enabled only). The core holds a raw pointer into
  // *batches_, so the store object is reset by assignment, never re-seated.
  std::unique_ptr<dissem::BatchStore> batches_;
  std::unique_ptr<dissem::BatchBroadcaster> broadcaster_;
  std::unique_ptr<dissem::AdmissionFrontend> frontend_;
  std::unique_ptr<dissem::ClientSwarm> swarm_;
  std::unique_ptr<consensus::DiemBftCore> core_;
  CommitObserver observer_;
};

}  // namespace sftbft::replica
