#include "sftbft/sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace sftbft::sim {

TimerId Scheduler::schedule_at(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  const TimerId id = next_seq_++;
  heap_.push(Event{.time = t < now_ ? now_ : t, .seq = id, .id = id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

TimerId Scheduler::schedule_after(SimDuration delay, Callback cb) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(cb));
}

void Scheduler::cancel(TimerId id) {
  if (id == kInvalidTimer) return;
  if (callbacks_.erase(id) > 0) {
    cancelled_.insert(id);
  }
}

void Scheduler::dispatch(const Event& ev) {
  now_ = ev.time;
  auto it = callbacks_.find(ev.id);
  assert(it != callbacks_.end());
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  ++processed_;
  cb();
}

bool Scheduler::run_one() {
  while (!heap_.empty()) {
    const Event ev = heap_.top();
    heap_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;  // skip cancelled
    dispatch(ev);
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime deadline) {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    const Event ev = heap_.top();
    if (ev.time > deadline) break;
    heap_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    dispatch(ev);
  }
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::run_for(SimDuration duration) { run_until(now_ + duration); }

void Scheduler::run_until_idle(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (count < max_events && !stop_requested_ && run_one()) ++count;
}

}  // namespace sftbft::sim
