// Deterministic discrete-event scheduler.
//
// The whole experiment — network delivery, pacemaker timers, client arrivals
// — runs as callbacks on one scheduler. Events fire in (time, insertion
// sequence) order, so two runs with the same seed produce byte-identical
// traces. This determinism is load-bearing: the liveness tests assert the
// paper's exact theorem bounds (e.g. "(2f−c)-strong committed within n + 2
// rounds", Theorem 2).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sftbft/common/types.hpp"

namespace sftbft::sim {

/// Identifies a scheduled event so it can be cancelled (timer semantics).
using TimerId = std::uint64_t;

inline constexpr TimerId kInvalidTimer = 0;

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now). Returns a cancellable id.
  TimerId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after `delay` from now.
  TimerId schedule_after(SimDuration delay, Callback cb);

  /// Cancels a pending event; a no-op if it already fired or was cancelled.
  void cancel(TimerId id);

  /// Runs the next event, if any. Returns false when the queue is empty.
  bool run_one();

  /// Runs events until simulated time reaches `deadline` (events at exactly
  /// `deadline` are executed). Time advances to `deadline` even if the queue
  /// drains earlier.
  void run_until(SimTime deadline);

  /// Runs for `duration` of simulated time from now.
  void run_for(SimDuration duration);

  /// Runs until no events remain or `max_events` were processed.
  void run_until_idle(std::uint64_t max_events = UINT64_MAX);

  /// Requests that the current run_* call return after the active event.
  void request_stop() { stop_requested_ = true; }

  /// Number of events executed since construction (a cheap progress proxy).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Number of events currently queued (cancelled ones may still be counted
  /// until they would fire).
  [[nodiscard]] std::size_t pending() const {
    return heap_.size() - cancelled_.size();
  }

 private:
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  // tie-break: FIFO among equal times
    TimerId id = kInvalidTimer;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the top non-cancelled event; advances the clock.
  void dispatch(const Event& ev);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::unordered_map<TimerId, Callback> callbacks_;
  std::unordered_set<TimerId> cancelled_;
};

}  // namespace sftbft::sim
