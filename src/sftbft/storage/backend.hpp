// Storage backends: the byte-level durability substrate under the WAL and
// snapshot machinery (see sftbft/storage/wal.hpp, replica_store.hpp).
//
// A backend is a tiny named-object store with POSIX-file-like durability
// semantics: `append`/`write_atomic` stage bytes, `sync` makes everything
// staged so far durable, and a crash discards whatever was not synced —
// possibly keeping a *prefix* of the unsynced tail (a torn write), which is
// exactly the failure mode the WAL's CRC framing exists to detect. Two
// implementations:
//
//  * MemBackend  — deterministic, byte-faithful, lives inside the simulation;
//                  crash faults are injected via simulate_crash() (torn-tail
//                  behaviour driven by a seeded RNG);
//  * FileBackend — real files with fsync, for examples/benches and any future
//                  multi-process deployment.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "sftbft/common/bytes.hpp"

namespace sftbft::storage {

/// Thrown on I/O failures (FileBackend) or operations on missing objects.
class StorageError : public std::runtime_error {
 public:
  explicit StorageError(const std::string& what) : std::runtime_error(what) {}
};

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Appends `data` to the object named `name`, creating it if absent. The
  /// bytes are staged: durable only after the next sync(name).
  virtual void append(const std::string& name, BytesView data) = 0;

  /// Atomically replaces the full contents of `name` (write-temp + rename
  /// semantics: after a crash the object holds either the old or the new
  /// contents in full, never a mix). Durable after the next sync(name).
  virtual void write_atomic(const std::string& name, BytesView data) = 0;

  /// Makes all staged bytes of `name` durable (fsync). A no-op for an
  /// object with nothing staged.
  virtual void sync(const std::string& name) = 0;

  /// Truncates `name` to `size` bytes (WAL tail repair after recovery).
  virtual void truncate(const std::string& name, std::size_t size) = 0;

  /// Current contents (staged + durable). Empty if the object is absent.
  [[nodiscard]] virtual Bytes read(const std::string& name) const = 0;

  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;

  virtual void remove(const std::string& name) = 0;

  /// Crash-fault injection: discards every unsynced byte, except that an
  /// unsynced *append* tail may survive as a partial prefix (torn write).
  /// MemBackend implements this for the simulation; FileBackend is a no-op
  /// (real crashes only).
  virtual void simulate_crash() {}
};

}  // namespace sftbft::storage
