#include "sftbft/storage/file_backend.hpp"

#include <cstdio>
#include <fstream>

#if __has_include(<unistd.h>)
#include <fcntl.h>
#include <unistd.h>
#define SFTBFT_HAVE_FSYNC 1
#endif

namespace sftbft::storage {

namespace fs = std::filesystem;

namespace {

void fsync_path(const fs::path& path) {
#ifdef SFTBFT_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;  // vanished between write and sync; nothing to flush
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

void write_all(const fs::path& path, BytesView data, bool append) {
  std::ofstream out(path, std::ios::binary |
                              (append ? std::ios::app : std::ios::trunc));
  if (!out) {
    throw StorageError("FileBackend: cannot open " + path.string());
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) {
    throw StorageError("FileBackend: short write to " + path.string());
  }
}

}  // namespace

FileBackend::FileBackend(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

fs::path FileBackend::path_for(const std::string& name) const {
  const fs::path path = root_ / name;
  fs::create_directories(path.parent_path());
  return path;
}

void FileBackend::append(const std::string& name, BytesView data) {
  write_all(path_for(name), data, /*append=*/true);
}

void FileBackend::write_atomic(const std::string& name, BytesView data) {
  const fs::path target = path_for(name);
  const fs::path tmp = target.string() + ".tmp";
  write_all(tmp, data, /*append=*/false);
  fsync_path(tmp);
  fs::rename(tmp, target);
}

void FileBackend::sync(const std::string& name) {
  const fs::path path = path_for(name);
  if (fs::exists(path)) fsync_path(path);
  // Directory entry durability (the rename / file creation itself).
  fsync_path(path.parent_path());
}

void FileBackend::truncate(const std::string& name, std::size_t size) {
  const fs::path path = path_for(name);
  if (!fs::exists(path)) return;
  std::error_code ec;
  fs::resize_file(path, size, ec);
  if (ec) {
    throw StorageError("FileBackend: truncate failed for " + path.string());
  }
}

Bytes FileBackend::read(const std::string& name) const {
  const fs::path path = root_ / name;
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

bool FileBackend::exists(const std::string& name) const {
  return fs::exists(root_ / name);
}

void FileBackend::remove(const std::string& name) {
  std::error_code ec;
  fs::remove(root_ / name, ec);
}

}  // namespace sftbft::storage
