// File-system StorageBackend: real files under one directory, fsync'd.
//
// Object names map to files inside `root` (nested names like "r3/wal" create
// subdirectories). Durability follows the classic recipe: appends go through
// a buffered stream and become durable on sync() (fflush + fsync);
// write_atomic writes `<name>.tmp`, fsyncs it, and renames it over the
// target so a crash leaves either the old or the new contents. This backend
// serves the examples/benches and any future multi-process deployment; the
// simulation uses MemBackend.
#pragma once

#include <filesystem>

#include "sftbft/storage/backend.hpp"

namespace sftbft::storage {

class FileBackend final : public StorageBackend {
 public:
  /// Creates `root` (and parents) if missing.
  explicit FileBackend(std::filesystem::path root);

  void append(const std::string& name, BytesView data) override;
  void write_atomic(const std::string& name, BytesView data) override;
  void sync(const std::string& name) override;
  void truncate(const std::string& name, std::size_t size) override;
  [[nodiscard]] Bytes read(const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  void remove(const std::string& name) override;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  [[nodiscard]] std::filesystem::path path_for(const std::string& name) const;

  std::filesystem::path root_;
};

}  // namespace sftbft::storage
