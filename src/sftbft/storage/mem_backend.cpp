#include "sftbft/storage/mem_backend.hpp"

#include <algorithm>

namespace sftbft::storage {

void MemBackend::append(const std::string& name, BytesView data) {
  Object& o = obj(name);
  o.staged_append.insert(o.staged_append.end(), data.begin(), data.end());
}

void MemBackend::write_atomic(const std::string& name, BytesView data) {
  Object& o = obj(name);
  // A replace supersedes any staged appends (they targeted the old file).
  o.staged_append.clear();
  o.has_staged_replace = true;
  o.staged_replace.assign(data.begin(), data.end());
}

void MemBackend::sync(const std::string& name) {
  auto it = objects_.find(name);
  if (it == objects_.end()) return;
  Object& o = it->second;
  if (o.has_staged_replace) {
    o.durable = std::move(o.staged_replace);
    o.staged_replace.clear();
    o.has_staged_replace = false;
  }
  o.durable.insert(o.durable.end(), o.staged_append.begin(),
                   o.staged_append.end());
  o.staged_append.clear();
}

void MemBackend::truncate(const std::string& name, std::size_t size) {
  Object& o = obj(name);
  // Truncation applies to the synced image; staged bytes are discarded (the
  // only caller is WAL tail repair, which runs on a freshly recovered log).
  o.staged_append.clear();
  o.staged_replace.clear();
  o.has_staged_replace = false;
  if (o.durable.size() > size) o.durable.resize(size);
}

Bytes MemBackend::read(const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) return {};
  const Object& o = it->second;
  // Appends staged after a staged replace (write_atomic cleared the earlier
  // ones) target the new image, so they stack on top either way.
  Bytes out = o.has_staged_replace ? o.staged_replace : o.durable;
  out.insert(out.end(), o.staged_append.begin(), o.staged_append.end());
  return out;
}

bool MemBackend::exists(const std::string& name) const {
  return objects_.contains(name);
}

void MemBackend::remove(const std::string& name) { objects_.erase(name); }

void MemBackend::simulate_crash() {
  for (auto& [name, o] : objects_) {
    // Staged atomic replaces vanish (rename is all-or-nothing) — and take
    // any appends staged after them along (they targeted the new image).
    if (o.has_staged_replace) {
      o.staged_replace.clear();
      o.has_staged_replace = false;
      o.staged_append.clear();
      continue;
    }
    // A staged append tail may survive partially (torn write).
    if (!o.staged_append.empty() && config_.torn_tail) {
      const auto keep = static_cast<std::size_t>(rng_.uniform(
          0, static_cast<std::int64_t>(o.staged_append.size())));
      o.durable.insert(o.durable.end(), o.staged_append.begin(),
                       o.staged_append.begin() + static_cast<std::ptrdiff_t>(keep));
    }
    o.staged_append.clear();
  }
}

Bytes MemBackend::durable(const std::string& name) const {
  auto it = objects_.find(name);
  return it == objects_.end() ? Bytes{} : it->second.durable;
}

std::size_t MemBackend::staged_bytes(const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) return 0;
  const Object& o = it->second;
  return o.staged_append.size() +
         (o.has_staged_replace ? o.staged_replace.size() : 0);
}

void MemBackend::poke(const std::string& name, std::size_t offset,
                      std::uint8_t value) {
  Object& o = obj(name);
  if (offset >= o.durable.size()) {
    throw StorageError("MemBackend::poke: offset out of range");
  }
  o.durable[offset] = value;
}

void MemBackend::chop(const std::string& name, std::size_t count) {
  Object& o = obj(name);
  o.durable.resize(o.durable.size() - std::min(count, o.durable.size()));
}

}  // namespace sftbft::storage
