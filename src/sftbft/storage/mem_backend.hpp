// In-memory StorageBackend for the simulation.
//
// Deterministic and byte-faithful: every object is a pair of byte buffers —
// `durable` (what a crash preserves) and `staged` (bytes appended or
// atomically written since the last sync). simulate_crash() is the
// simulation's fault-injection point: staged appends are discarded except
// for a torn prefix whose length is drawn from the backend's seeded RNG
// (modelling a partial flush at the device's sync boundary), and staged
// atomic writes are dropped wholesale (rename is all-or-nothing).
//
// The poke/chop helpers exist for the WAL robustness tests: they corrupt or
// truncate *durable* bytes directly, modelling media faults that fsync
// cannot prevent.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sftbft/common/rng.hpp"
#include "sftbft/storage/backend.hpp"

namespace sftbft::storage {

class MemBackend final : public StorageBackend {
 public:
  struct Config {
    /// Crash behaviour for staged appends: keep a uniformly-drawn prefix
    /// (torn write). When false the whole staged tail is dropped cleanly.
    bool torn_tail = true;
  };

  explicit MemBackend(std::uint64_t seed = 0) : MemBackend(seed, Config{}) {}
  MemBackend(std::uint64_t seed, Config config)
      : config_(config), rng_(seed) {}

  void append(const std::string& name, BytesView data) override;
  void write_atomic(const std::string& name, BytesView data) override;
  void sync(const std::string& name) override;
  void truncate(const std::string& name, std::size_t size) override;
  [[nodiscard]] Bytes read(const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  void remove(const std::string& name) override;
  void simulate_crash() override;

  /// Durable bytes only (what read() would return after a crash).
  [[nodiscard]] Bytes durable(const std::string& name) const;

  /// Staged (unsynced) byte count — 0 means fully durable.
  [[nodiscard]] std::size_t staged_bytes(const std::string& name) const;

  // --- media-fault injection (tests) ---
  /// Flips one durable byte in place.
  void poke(const std::string& name, std::size_t offset, std::uint8_t value);
  /// Drops the last `count` durable bytes.
  void chop(const std::string& name, std::size_t count);

 private:
  struct Object {
    Bytes durable;
    Bytes staged_append;      ///< appended since last sync
    bool has_staged_replace = false;
    Bytes staged_replace;     ///< pending write_atomic contents
  };

  Object& obj(const std::string& name) { return objects_[name]; }

  Config config_;
  Rng rng_;
  std::unordered_map<std::string, Object> objects_;
};

}  // namespace sftbft::storage
