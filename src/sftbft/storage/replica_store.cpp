#include "sftbft/storage/replica_store.hpp"

#include <algorithm>

#include "sftbft/common/codec.hpp"
#include "sftbft/obs/observer.hpp"
#include "sftbft/sim/scheduler.hpp"

namespace sftbft::storage {

namespace {

// WAL record tags. The payload after the tag is type-specific.
enum class Tag : std::uint8_t {
  kVote = 1,    // VoteRecord
  kHighQc = 2,  // QuorumCert
  kHighTc = 3,  // TimeoutCert
  kCommit = 4,  // chain::Ledger::Entry (new commit or strength raise)
};

constexpr std::uint32_t kSnapshotMagic = 0x53465453;  // "SFTS"
constexpr std::uint32_t kSnapshotVersion = 1;

void encode_vote_record(Encoder& enc, const VoteRecord& record) {
  enc.raw(record.block_id.bytes);
  enc.u64(record.round);
  enc.u64(record.height);
}

VoteRecord decode_vote_record(Decoder& dec) {
  VoteRecord record;
  const Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), record.block_id.bytes.begin());
  record.round = dec.u64();
  record.height = dec.u64();
  return record;
}

void merge_vote(RecoveredState& state, const VoteRecord& record) {
  state.voted_round = std::max(state.voted_round, record.round);
  const bool has_block =
      record.block_id != types::BlockId{};  // timeout records carry no block
  if (!has_block) return;
  for (const VoteRecord& existing : state.frontier) {
    if (existing.block_id == record.block_id) return;  // replayed record
  }
  state.frontier.push_back(record);
}

void merge_high_qc(RecoveredState& state, const types::QuorumCert& qc) {
  if (qc.round >= state.high_qc.round) state.high_qc = qc;
  // The locking rule tracks the max parent round over *all* observed QCs,
  // not just the one that ends up highest (see Envelope::locked_round).
  state.locked_round = std::max(state.locked_round, qc.parent_round);
}

void merge_high_tc(RecoveredState& state, const types::TimeoutCert& tc) {
  if (!state.high_tc || tc.round >= state.high_tc->round) state.high_tc = tc;
}

void merge_commit(RecoveredState& state, const chain::Ledger::Entry& entry) {
  for (chain::Ledger::Entry& existing : state.ledger) {
    if (existing.height != entry.height) continue;
    if (entry.strength > existing.strength) existing = entry;
    return;
  }
  state.ledger.push_back(entry);
}

}  // namespace

ReplicaStore::ReplicaStore(StorageBackend& backend, ReplicaId id,
                           StoreConfig config)
    : backend_(&backend),
      id_(id),
      config_(config),
      wal_(backend, "r" + std::to_string(id) + "/wal"),
      snapshot_name_("r" + std::to_string(id) + "/snapshot") {}

void ReplicaStore::append_record(const Bytes& payload) {
  wal_.append(payload);
  // Counter only — WAL appends are too frequent to trace individually.
  if (obs::Observer* obs = config_.observer) {
    obs->count(id_, obs::Counter::kWalAppends);
  }
  if (++unsynced_records_ >= std::max(1u, config_.wal_sync_every)) {
    flush();
  }
}

void ReplicaStore::flush() {
  wal_.sync();
  unsynced_records_ = 0;
}

void ReplicaStore::record_vote(const VoteRecord& record) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(Tag::kVote));
  encode_vote_record(enc, record);
  append_record(enc.data());
  // WAL-before-wire: the cores send the vote right after this call, so it
  // must be durable *now* — wal_sync_every batching only covers watermark
  // records whose loss cannot cause equivocation.
  flush();
}

void ReplicaStore::record_high_qc(const types::QuorumCert& qc) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(Tag::kHighQc));
  qc.encode(enc);
  append_record(enc.data());
}

void ReplicaStore::record_high_tc(const types::TimeoutCert& tc) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(Tag::kHighTc));
  tc.encode(enc);
  append_record(enc.data());
}

void ReplicaStore::record_commit(const chain::Ledger::Entry& entry) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(Tag::kCommit));
  entry.encode(enc);
  append_record(enc.data());
}

void ReplicaStore::write_snapshot(
    const types::Block& tip, const std::vector<chain::Ledger::Entry>& ledger,
    const Envelope& envelope) {
  Encoder body;
  body.u64(envelope.voted_round);
  body.u64(envelope.locked_round);
  envelope.high_qc.encode(body);
  body.boolean(envelope.high_tc.has_value());
  if (envelope.high_tc) envelope.high_tc->encode(body);
  body.u32(static_cast<std::uint32_t>(envelope.frontier.size()));
  for (const VoteRecord& record : envelope.frontier) {
    encode_vote_record(body, record);
  }
  tip.encode(body);
  body.u32(static_cast<std::uint32_t>(ledger.size()));
  for (const chain::Ledger::Entry& entry : ledger) entry.encode(body);

  Encoder enc;
  enc.u32(kSnapshotMagic);
  enc.u32(kSnapshotVersion);
  enc.u32(crc32(body.data()));
  enc.bytes(body.data());

  // Order matters: the snapshot must be durable before the WAL truncation.
  // A crash in between leaves snapshot(new) + WAL(old), which recover()
  // merges idempotently.
  backend_->write_atomic(snapshot_name_, enc.data());
  backend_->sync(snapshot_name_);
  wal_.reset();
  unsynced_records_ = 0;
  last_snapshot_blocks_ = ledger.size();
  if (obs::Observer* obs = config_.observer) {
    obs->count(id_, obs::Counter::kSnapshots);
    if (obs->recording() && config_.sched != nullptr) {
      obs->emit(obs::instant_event("storage", "snapshot", id_,
                                   config_.sched->now(),
                                   {"blocks", ledger.size()},
                                   {"tip_height", tip.height}));
    }
  }
}

bool ReplicaStore::snapshot_due(std::uint64_t committed_blocks) const {
  return config_.snapshot_interval_blocks > 0 &&
         committed_blocks >=
             last_snapshot_blocks_ + config_.snapshot_interval_blocks;
}

RecoveredState ReplicaStore::recover() {
  RecoveredState state;

  // 1. Snapshot (if any): the base image.
  const Bytes snap = backend_->read(snapshot_name_);
  if (!snap.empty()) {
    try {
      Decoder dec(snap);
      if (dec.u32() != kSnapshotMagic) throw CodecError("bad snapshot magic");
      if (dec.u32() != kSnapshotVersion) {
        throw CodecError("unsupported snapshot version");
      }
      const std::uint32_t expected_crc = dec.u32();
      const Bytes body = dec.bytes();
      if (crc32(body) != expected_crc) throw CodecError("snapshot crc");
      Decoder bdec(body);
      state.voted_round = bdec.u64();
      state.locked_round = bdec.u64();
      state.high_qc = types::QuorumCert::decode(bdec);
      if (bdec.boolean()) state.high_tc = types::TimeoutCert::decode(bdec);
      const std::uint32_t frontier_count = bdec.u32();
      for (std::uint32_t i = 0; i < frontier_count; ++i) {
        state.frontier.push_back(decode_vote_record(bdec));
      }
      state.tip = types::Block::decode(bdec);
      const std::uint32_t ledger_count = bdec.u32();
      state.ledger.reserve(ledger_count);
      for (std::uint32_t i = 0; i < ledger_count; ++i) {
        state.ledger.push_back(chain::Ledger::Entry::decode(bdec));
      }
      state.found = true;
    } catch (const CodecError&) {
      // A damaged snapshot is treated as absent (write_atomic makes this
      // reachable only through media faults); the WAL below still applies.
      state = RecoveredState{};
      state.snapshot_corrupt = true;
    }
  }

  // 2. WAL: replay records on top with max/union merge semantics.
  const Wal::ReplayResult replayed = wal_.replay();
  state.wal_torn_tail = replayed.torn_tail;
  state.wal_corrupt = state.wal_corrupt || replayed.corrupt;
  state.wal_records = replayed.records.size();
  for (const Bytes& record : replayed.records) {
    try {
      Decoder dec(record);
      switch (static_cast<Tag>(dec.u8())) {
        case Tag::kVote:
          merge_vote(state, decode_vote_record(dec));
          state.found = true;
          break;
        case Tag::kHighQc:
          merge_high_qc(state, types::QuorumCert::decode(dec));
          state.found = true;
          break;
        case Tag::kHighTc:
          merge_high_tc(state, types::TimeoutCert::decode(dec));
          state.found = true;
          break;
        case Tag::kCommit:
          merge_commit(state, chain::Ledger::Entry::decode(dec));
          state.found = true;
          break;
        default:
          throw CodecError("unknown WAL record tag");
      }
    } catch (const CodecError&) {
      state.wal_corrupt = true;  // CRC passed but payload malformed
    }
  }

  // 3. Repair the tail so post-recovery appends start on a frame boundary
  // (the documented double-recovery state: recover, append, crash, recover
  // again always yields every synced record plus any surviving torn-tail
  // completions, never garbage).
  if (replayed.torn_tail || replayed.corrupt) wal_.repair_tail(replayed);
  unsynced_records_ = 0;
  last_snapshot_blocks_ = state.ledger.size();
  return state;
}

void ReplicaStore::simulate_crash() {
  backend_->simulate_crash();
  unsynced_records_ = 0;
}

}  // namespace sftbft::storage
