// ReplicaStore: one replica's durable state — the safety envelope in a WAL,
// the committed ledger in periodic snapshots.
//
// What must survive a crash for a restarted replica to be *safe* (never
// equivocate, never vote twice in a round) is small — the paper's voting
// rule state plus the strong-vote bookkeeping the SFT layer adds:
//
//   * the last voted round (Fig. 2 voting rule: r > r_vote),
//   * the locking-rule watermark (max parent round over observed QCs),
//   * the VoteHistory frontier — (block, round, height) of the highest voted
//     block per fork (Fig. 4 / Sec. 3.4; drives markers and intervals),
//   * the highest QC and TC seen (locking + round sync).
//
// Those are appended to the WAL as they change (one record per vote / QC /
// TC). Periodically — every `snapshot_interval_blocks` commits — the store
// writes a snapshot: the full envelope, the committed ledger entries, and
// the ledger-tip *block* (the restored BlockTree re-roots at it), then
// truncates the WAL. recover() merges snapshot + WAL with max/union
// semantics, so a crash between the two writes is harmless, and repairs any
// torn WAL tail in place.
//
// Liveness state (uncommitted block tree, pending votes, mempool) is
// deliberately NOT persisted: a recovered replica re-syncs missed blocks
// from its peers (see DiemBftCore::request_sync / StreamletCore counterpart).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sftbft/chain/ledger.hpp"
#include "sftbft/storage/backend.hpp"
#include "sftbft/storage/wal.hpp"
#include "sftbft/types/block.hpp"
#include "sftbft/types/timeout.hpp"

namespace sftbft::obs {
class Observer;
}  // namespace sftbft::obs
namespace sftbft::sim {
class Scheduler;
}  // namespace sftbft::sim

namespace sftbft::storage {

struct StoreConfig {
  /// Snapshot + WAL truncation cadence, in committed blocks. 0 = never
  /// snapshot (the WAL grows for the whole run).
  std::uint64_t snapshot_interval_blocks = 64;
  /// Records per WAL sync for *watermark* records (QCs, TCs, commits).
  /// Larger values batch syncs at the cost of a wider torn-tail window.
  /// Vote records always sync immediately regardless — the WAL-before-wire
  /// equivocation fence is non-negotiable.
  std::uint32_t wal_sync_every = 1;
  /// Observability (WAL append / snapshot metrics, attributed to the store's
  /// replica id); null = off. `sched` supplies sim-time trace timestamps and
  /// must be set whenever `observer` is.
  obs::Observer* observer = nullptr;
  const sim::Scheduler* sched = nullptr;
};

/// One vote's durable trace: enough to restore the voted-round watermark and
/// the voting-history frontier. A zero block id records a round the replica
/// abandoned via timeout (no frontier entry, but the watermark still moves).
struct VoteRecord {
  types::BlockId block_id{};
  Round round = 0;
  Height height = 0;

  friend bool operator==(const VoteRecord&, const VoteRecord&) = default;
};

/// The safety envelope a snapshot persists alongside the ledger: every
/// durable watermark the consensus core needs to restart without
/// equivocating or re-entering a round it already acted in.
struct Envelope {
  Round voted_round = 0;
  /// Fig. 2 locking rule state: max parent_round over every QC observed.
  /// Tracked separately from high_qc — a timeout-borne high QC can carry a
  /// *lower* parent round than an earlier chain QC, so restoring the lock
  /// from high_qc alone could regress it.
  Round locked_round = 0;
  types::QuorumCert high_qc;  ///< genesis-stub (round 0) when none recorded
  std::optional<types::TimeoutCert> high_tc;
  std::vector<VoteRecord> frontier;
};

/// Everything recover() can reconstruct. `found` is false when the store
/// holds no durable state at all (crash before the first sync).
struct RecoveredState {
  bool found = false;
  Round voted_round = 0;
  Round locked_round = 0;
  /// Frontier candidates: the snapshot's frontier plus every later vote
  /// record. May include blocks the restored tree does not contain yet —
  /// consumers must treat those conservatively (see VoteHistory docs).
  std::vector<VoteRecord> frontier;
  types::QuorumCert high_qc;  ///< genesis-stub (round 0) when none recorded
  std::optional<types::TimeoutCert> high_tc;
  /// The snapshot's ledger tip block — the restored BlockTree's root. Absent
  /// when no snapshot was ever written (restore from genesis instead).
  std::optional<types::Block> tip;
  std::vector<chain::Ledger::Entry> ledger;
  // --- recovery diagnostics ---
  bool wal_torn_tail = false;
  bool wal_corrupt = false;
  bool snapshot_corrupt = false;
  std::size_t wal_records = 0;
};

class ReplicaStore {
 public:
  /// `backend` must outlive the store. Objects are namespaced per replica
  /// ("r<id>/wal", "r<id>/snapshot") so one backend can serve a deployment.
  ReplicaStore(StorageBackend& backend, ReplicaId id, StoreConfig config = {});

  // --- write path (called by the consensus cores as state changes) ---
  void record_vote(const VoteRecord& record);
  void record_high_qc(const types::QuorumCert& qc);
  void record_high_tc(const types::TimeoutCert& tc);
  /// Commits and strength raises between snapshots. Without these, a
  /// strength ratcheted after the last snapshot would be forgotten across a
  /// restart — and blocks at or below the snapshot tip sit below the
  /// restored tree's root, where the endorsement tracker can never
  /// re-derive them.
  void record_commit(const chain::Ledger::Entry& entry);

  /// Writes a snapshot (envelope + ledger + tip block) and truncates the
  /// WAL. Durable on return regardless of wal_sync_every.
  void write_snapshot(const types::Block& tip,
                      const std::vector<chain::Ledger::Entry>& ledger,
                      const Envelope& envelope);

  /// True when `committed_blocks` crossed the snapshot cadence since the
  /// last snapshot (callers invoke write_snapshot in response).
  [[nodiscard]] bool snapshot_due(std::uint64_t committed_blocks) const;

  // --- read path ---
  /// Merges snapshot + WAL (idempotent under replays: voted rounds take the
  /// max, QCs/TCs the highest round, frontier records union). Repairs a
  /// torn WAL tail so the next append starts at a clean frame boundary.
  [[nodiscard]] RecoveredState recover();

  /// Crash-fault injection passthrough (MemBackend drops unsynced bytes,
  /// possibly leaving a torn tail). Resets write batching.
  void simulate_crash();

  [[nodiscard]] const StoreConfig& config() const { return config_; }
  [[nodiscard]] StorageBackend& backend() { return *backend_; }

 private:
  void append_record(const Bytes& payload);
  void flush();

  StorageBackend* backend_;
  ReplicaId id_;
  StoreConfig config_;
  Wal wal_;
  std::string snapshot_name_;
  std::uint32_t unsynced_records_ = 0;
  std::uint64_t last_snapshot_blocks_ = 0;
};

}  // namespace sftbft::storage
