#include "sftbft/storage/wal.hpp"

#include "sftbft/common/codec.hpp"
#include "sftbft/common/crc32.hpp"

namespace sftbft::storage {

namespace {

constexpr std::size_t kHeaderBytes = 8;  // u32 length + u32 crc

}  // namespace

std::uint32_t crc32(BytesView data) { return sftbft::crc32(data); }

Bytes Wal::frame(BytesView record) {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(record.size()));
  enc.u32(crc32(record));
  enc.raw(record);
  return enc.take();
}

void Wal::append(BytesView record) {
  backend_->append(name_, frame(record));
}

void Wal::sync() { backend_->sync(name_); }

Wal::ReplayResult Wal::replay() const {
  ReplayResult result;
  const Bytes log = backend_->read(name_);
  std::size_t pos = 0;
  while (pos < log.size()) {
    if (log.size() - pos < kHeaderBytes) {
      result.torn_tail = true;  // header itself is torn
      break;
    }
    Decoder dec(BytesView(log.data() + pos, kHeaderBytes));
    const std::uint32_t length = dec.u32();
    const std::uint32_t expected_crc = dec.u32();
    if (log.size() - pos - kHeaderBytes < length) {
      result.torn_tail = true;  // payload is torn
      break;
    }
    const BytesView payload(log.data() + pos + kHeaderBytes, length);
    if (crc32(payload) != expected_crc) {
      // A bad CRC on a *complete* frame is corruption, not a tear. Nothing
      // after it can be trusted (framing may be desynchronized) — stop.
      result.corrupt = true;
      break;
    }
    result.records.emplace_back(payload.begin(), payload.end());
    pos += kHeaderBytes + length;
    result.valid_bytes = pos;
  }
  return result;
}

void Wal::repair_tail(const ReplayResult& result) {
  backend_->truncate(name_, result.valid_bytes);
  backend_->sync(name_);
}

void Wal::reset(const std::vector<Bytes>& records) {
  Bytes image;
  for (const Bytes& record : records) {
    const Bytes framed = frame(record);
    image.insert(image.end(), framed.begin(), framed.end());
  }
  backend_->write_atomic(name_, image);
  backend_->sync(name_);
}

}  // namespace sftbft::storage
