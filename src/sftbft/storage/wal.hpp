// Record-oriented write-ahead log over a StorageBackend.
//
// Frame layout per record (little-endian, via common::codec):
//
//     u32 length | u32 crc32(payload) | payload bytes
//
// Appends stage the frame; sync() makes it durable. replay() walks the log
// from the start and returns every intact record, stopping at the first
// frame that is truncated (torn write at the sync boundary) or whose CRC
// mismatches (media corruption). Both conditions are reported, and
// `valid_bytes` marks the byte offset of the last intact frame so recovery
// can repair_tail() — truncate the log back to a clean state before
// appending again (the documented post-crash state: every record up to the
// tear survives byte-identically, everything after it is gone).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sftbft/common/bytes.hpp"
#include "sftbft/storage/backend.hpp"

namespace sftbft::storage {

/// CRC-32 (IEEE 802.3, reflected) — the WAL frame checksum. Exposed so tests
/// can forge/verify frames.
[[nodiscard]] std::uint32_t crc32(BytesView data);

class Wal {
 public:
  Wal(StorageBackend& backend, std::string name)
      : backend_(&backend), name_(std::move(name)) {}

  /// Frames and stages one record. Call sync() to make it durable.
  void append(BytesView record);

  /// Flushes staged frames to durable storage.
  void sync();

  struct ReplayResult {
    std::vector<Bytes> records;  ///< intact records, in append order
    /// True when the log ends in a torn (truncated) frame — expected after
    /// a crash between append and sync.
    bool torn_tail = false;
    /// True when a frame's CRC mismatched — media corruption, not a tear.
    bool corrupt = false;
    /// Offset one past the last intact frame (where repair truncates to).
    std::size_t valid_bytes = 0;
  };

  /// Reads the whole log and parses frames; never throws on a damaged tail.
  [[nodiscard]] ReplayResult replay() const;

  /// Truncates the log to `result.valid_bytes`, discarding the damaged tail
  /// so subsequent appends start from a clean frame boundary.
  void repair_tail(const ReplayResult& result);

  /// Atomically replaces the log with the given records (post-snapshot
  /// truncation: the safety envelope moves into the snapshot object and the
  /// log restarts empty or re-seeded). Durable on return.
  void reset(const std::vector<Bytes>& records = {});

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  [[nodiscard]] static Bytes frame(BytesView record);

  StorageBackend* backend_;
  std::string name_;
};

}  // namespace sftbft::storage
