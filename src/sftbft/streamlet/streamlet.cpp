#include "sftbft/streamlet/streamlet.hpp"

#include <algorithm>
#include <cassert>

#include "sftbft/common/codec.hpp"

namespace sftbft::streamlet {

using types::Block;
using types::BlockId;

Bytes SProposal::signing_bytes() const {
  Encoder enc;
  enc.str("sftbft/streamlet/proposal");
  enc.raw(block.id.bytes);
  enc.u64(block.round);
  return enc.take();
}

std::size_t SProposal::wire_size() const {
  Encoder enc;
  block.encode(enc);
  sig.encode(enc);
  return enc.data().size() + block.payload.total_bytes();
}

Bytes SVote::signing_bytes() const {
  Encoder enc;
  enc.str("sftbft/streamlet/vote");
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.u64(height);
  enc.u32(voter);
  enc.u64(marker);
  return enc.take();
}

std::size_t SVote::wire_size() const {
  // block id + round + height + voter + marker + signature.
  return 32 + 8 + 8 + 4 + 8 + 36;
}

StreamletCore::StreamletCore(
    StreamletConfig config, sim::Scheduler& sched,
    std::shared_ptr<const crypto::KeyRegistry> registry,
    mempool::Mempool& pool, Hooks hooks)
    : config_(config),
      sched_(sched),
      registry_(std::move(registry)),
      signer_(registry_->signer_for(config.id)),
      pool_(pool),
      hooks_(std::move(hooks)) {
  // Genesis is certified by definition and roots the longest chain.
  certified_.insert(tree_.genesis_id());
  longest_tip_ = tree_.genesis_id();
  longest_height_ = 0;
}

void StreamletCore::start() { on_round_tick(); }

void StreamletCore::stop() { stopped_ = true; }

void StreamletCore::on_round_tick() {
  if (stopped_) return;
  ++round_;
  voted_this_round_ = false;
  if (round_ % config_.n == config_.id) propose();
  sched_.schedule_after(2 * config_.delta_bound, [this] { on_round_tick(); });
}

const Block& StreamletCore::longest_certified_tip() const {
  const Block* tip = tree_.get(longest_tip_);
  assert(tip != nullptr);
  return *tip;
}

void StreamletCore::propose() {
  const Block& parent = longest_certified_tip();
  Block block;
  block.parent_id = parent.id;
  block.round = round_;
  block.height = parent.height + 1;
  block.proposer = config_.id;
  // Chaining metadata only: Streamlet certification is tracked from the
  // multicast votes, so the embedded QC is a stub naming the parent.
  block.qc.block_id = parent.id;
  block.qc.round = parent.round;
  block.qc.parent_id = parent.parent_id;
  block.payload = pool_.make_batch(config_.max_batch);
  block.created_at = sched_.now();
  block.seal();

  SProposal proposal;
  proposal.block = block;
  proposal.sig = signer_.sign(proposal.signing_bytes());
  hooks_.broadcast_proposal(proposal);
}

void StreamletCore::on_proposal(const SProposal& proposal) {
  if (stopped_) return;
  const Block& block = proposal.block;
  if (block.round == 0 || block.round % config_.n != block.proposer) return;
  if (!block.id_is_valid()) return;
  if (config_.verify_signatures &&
      (proposal.sig.signer != block.proposer ||
       !registry_->verify(proposal.sig, proposal.signing_bytes()))) {
    return;
  }
  const bool unseen = !tree_.contains(block.id);
  const auto inserted = tree_.insert(block);
  if (inserted == chain::BlockTree::InsertResult::Rejected) return;
  if (unseen && config_.echo && hooks_.echo) hooks_.echo(SMessage{proposal});
  if (inserted == chain::BlockTree::InsertResult::Inserted) {
    // Votes may have arrived (via echo) before the proposal.
    try_certify(block.id);
    maybe_vote(block);
  }
}

void StreamletCore::maybe_vote(const Block& block) {
  if (block.round != round_ || voted_this_round_) return;
  // Voting rule: the proposal must extend one of the longest certified
  // chains known to the replica.
  const Block* parent = tree_.get(block.parent_id);
  if (parent == nullptr) return;
  if (!certified_.contains(parent->id) || parent->height != longest_height_) {
    return;
  }
  voted_this_round_ = true;

  SVote vote;
  vote.block_id = block.id;
  vote.round = block.round;
  vote.height = block.height;
  vote.voter = config_.id;
  vote.marker = config_.sft ? marker_for(block) : 0;
  vote.sig = signer_.sign(vote.signing_bytes());

  // Update the voted frontier (one entry per fork).
  std::erase_if(voted_frontier_, [&](const BlockId& entry) {
    return tree_.extends(block.id, entry);
  });
  voted_frontier_.push_back(block.id);

  hooks_.broadcast_vote(vote);
}

Height StreamletCore::marker_for(const Block& block) const {
  Height marker = 0;
  for (const BlockId& entry : voted_frontier_) {
    if (tree_.extends(block.id, entry)) continue;  // same fork
    const Block* voted = tree_.get(entry);
    if (voted != nullptr && voted->height > marker) marker = voted->height;
  }
  return marker;
}

void StreamletCore::on_vote(const SVote& vote) {
  if (stopped_) return;
  if (config_.verify_signatures &&
      (vote.voter != vote.sig.signer ||
       !registry_->verify(vote.sig, vote.signing_bytes()))) {
    return;
  }
  auto& per_voter = votes_[vote.block_id];
  if (!per_voter.emplace(vote.voter, vote).second) return;  // duplicate
  if (config_.echo && hooks_.echo) hooks_.echo(SMessage{vote});
  if (config_.sft) record_endorsement(vote);
  try_certify(vote.block_id);
  // New endorsements can raise strengths of already-certified triples.
  if (config_.sft && tree_.contains(vote.block_id)) {
    check_commits(vote.block_id);
  }
}

void StreamletCore::try_certify(const BlockId& id) {
  if (certified_.contains(id)) return;
  auto it = votes_.find(id);
  if (it == votes_.end() || it->second.size() < config_.quorum()) return;
  const Block* block = tree_.get(id);
  if (block == nullptr) return;  // wait for the proposal

  certified_.insert(id);
  if (block->height > longest_height_) {
    longest_height_ = block->height;
    longest_tip_ = id;
  }
  check_commits(id);
}

void StreamletCore::record_endorsement(const SVote& vote) {
  const Block* block = tree_.get(vote.block_id);
  if (block == nullptr) return;
  // Direct votes always endorse their own block (the B = B' case): record
  // marker 0 so every k > 0 counts it.
  auto& own = min_marker_[block->id];
  auto [it, inserted] = own.try_emplace(vote.voter, 0);
  if (!inserted) it->second = 0;

  for (const Block* ancestor = tree_.parent_of(block->id);
       ancestor != nullptr && ancestor->height > 0;
       ancestor = tree_.parent_of(ancestor->id)) {
    auto& markers = min_marker_[ancestor->id];
    auto [mit, fresh] = markers.try_emplace(vote.voter, vote.marker);
    if (!fresh) {
      if (mit->second <= vote.marker) break;  // older vote was as permissive
      mit->second = vote.marker;
    }
  }
}

std::uint32_t StreamletCore::k_endorser_count(const BlockId& id,
                                              Height k) const {
  auto it = min_marker_.find(id);
  if (it == min_marker_.end()) return 0;
  std::uint32_t count = 0;
  for (const auto& [voter, marker] : it->second) {
    if (marker < k) ++count;
  }
  return count;
}

void StreamletCore::check_commits(const BlockId& id) {
  const Block* block = tree_.get(id);
  if (block == nullptr) return;
  // `id` can sit in a (parent, middle, child) triple in three positions.
  evaluate_triple(*block);
  if (const Block* parent = tree_.parent_of(id)) evaluate_triple(*parent);
  for (const Block* child : tree_.children_of(id)) evaluate_triple(*child);
}

void StreamletCore::evaluate_triple(const Block& middle) {
  if (middle.height == 0) return;
  const Block* parent = tree_.parent_of(middle.id);
  if (parent == nullptr) return;
  if (parent->round + 1 != middle.round) return;
  if (!certified_.contains(middle.id)) return;
  if (parent->height > 0 && !certified_.contains(parent->id)) return;

  for (const Block* child : tree_.children_of(middle.id)) {
    if (child->round != middle.round + 1) continue;
    if (!certified_.contains(child->id)) continue;

    // Plain Streamlet commit (strength f).
    std::uint32_t strength = config_.f();
    if (config_.sft) {
      // Strong commit rule: x + f + 1 k-endorsers on all three blocks,
      // with k the height of the committed (middle) block.
      const Height k = middle.height;
      const std::uint32_t count =
          std::min({parent->height == 0 ? config_.n
                                        : k_endorser_count(parent->id, k),
                    k_endorser_count(middle.id, k),
                    k_endorser_count(child->id, k)});
      if (count >= config_.f() + 1) {
        strength = std::max(
            strength, std::min(count - config_.f() - 1, 2 * config_.f()));
      }
    }
    std::uint32_t& recorded = triple_strength_[middle.id];
    if (strength > recorded || recorded == 0) {
      recorded = std::max(recorded, strength);
      commit_chain(middle, strength);
    }
  }
}

void StreamletCore::commit_chain(const Block& head, std::uint32_t strength) {
  for (const Block* block = &head; block != nullptr && block->height > 0;
       block = tree_.parent_of(block->id)) {
    const auto result = ledger_.commit(*block, strength, sched_.now());
    if (result == chain::Ledger::CommitResult::NoChange) break;
    if (result == chain::Ledger::CommitResult::New) {
      pool_.mark_committed(block->payload);
    }
    if (hooks_.on_commit) hooks_.on_commit(*block, strength, sched_.now());
  }
}

}  // namespace sftbft::streamlet
