#include "sftbft/streamlet/streamlet.hpp"

#include <algorithm>
#include <cassert>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/logging.hpp"
#include "sftbft/obs/observer.hpp"

namespace sftbft::streamlet {

using types::Block;
using types::BlockId;

Bytes SProposal::signing_bytes() const {
  Encoder enc;
  enc.str("sftbft/streamlet/proposal");
  enc.raw(block.id.bytes);
  enc.u64(block.round);
  return enc.take();
}

void SProposal::encode(Encoder& enc) const {
  block.encode(enc);
  sig.encode(enc);
}

SProposal SProposal::decode(Decoder& dec) {
  SProposal proposal;
  proposal.block = types::Block::decode(dec);
  proposal.sig = crypto::Signature::decode(dec);
  return proposal;
}

Bytes SVote::signing_bytes() const {
  return signing_bytes_for(block_id, round, height, voter, marker);
}

Bytes SVote::signing_bytes_for(const BlockId& block_id, Round round,
                               Height height, ReplicaId voter, Height marker) {
  Encoder enc;
  enc.str("sftbft/streamlet/vote");
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.u64(height);
  enc.u32(voter);
  enc.u64(marker);
  return enc.take();
}

void SVote::encode(Encoder& enc) const {
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.u64(height);
  enc.u32(voter);
  enc.u64(marker);
  sig.encode(enc);
}

SVote SVote::decode(Decoder& dec) {
  SVote vote;
  const Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), vote.block_id.bytes.begin());
  vote.round = dec.u64();
  vote.height = dec.u64();
  vote.voter = dec.u32();
  vote.marker = dec.u64();
  vote.sig = crypto::Signature::decode(dec);
  return vote;
}

bool SCert::add_vote(const SVote& vote) {
  if (!agg.fold(vote.sig)) return false;
  markers.push_back(vote.marker);
  return true;
}

bool SCert::verify(const crypto::KeyRegistry& registry, std::size_t quorum,
                   crypto::VerifyCache* cache) const {
  if (markers.size() < quorum) return false;
  const std::vector<ReplicaId> voters = agg.signers.ids();
  if (voters.size() != markers.size()) return false;
  crypto::Sha256Digest memo_key;
  if (cache != nullptr) {
    Encoder enc;
    enc.str("sftbft/scert-verified");
    encode(enc);
    memo_key = crypto::Sha256::hash(enc.data());
    if (cache->seen_cert(memo_key)) return true;
  }
  const bool ok = registry.verify_aggregate(
      agg,
      [this, &voters](ReplicaId voter) {
        const std::size_t i = static_cast<std::size_t>(
            std::lower_bound(voters.begin(), voters.end(), voter) -
            voters.begin());
        return SVote::signing_bytes_for(block_id, round, height, voter,
                                        markers[i]);
      },
      cache);
  if (ok && cache != nullptr) cache->note_cert(memo_key);
  return ok;
}

void SCert::encode(Encoder& enc) const {
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.u64(height);
  enc.u32(static_cast<std::uint32_t>(markers.size()));
  for (const Height marker : markers) enc.u64(marker);
  agg.encode(enc);
}

SCert SCert::decode(Decoder& dec) {
  SCert cert;
  const Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), cert.block_id.bytes.begin());
  cert.round = dec.u64();
  cert.height = dec.u64();
  const std::uint32_t count = dec.count(8);
  cert.markers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cert.markers.push_back(dec.u64());
  }
  cert.agg = crypto::AggregateSignature::decode(dec);
  if (cert.agg.signers.popcount() != cert.markers.size()) {
    throw CodecError("SCert: marker count does not match signer bitmap");
  }
  return cert;
}

void SSyncResponse::encode(Encoder& enc) const {
  enc.u32(static_cast<std::uint32_t>(blocks.size()));
  for (const types::Block& block : blocks) block.encode(enc);
  enc.u32(static_cast<std::uint32_t>(certs.size()));
  for (const SCert& cert : certs) cert.encode(enc);
}

net::Envelope to_envelope(ReplicaId sender, const SMessage& msg) {
  using net::Envelope;
  using net::WireType;
  if (const auto* proposal = std::get_if<SProposal>(&msg)) {
    return Envelope::pack(WireType::kSProposal, sender, *proposal);
  }
  if (const auto* vote = std::get_if<SVote>(&msg)) {
    return Envelope::pack(WireType::kSVote, sender, *vote);
  }
  if (const auto* req = std::get_if<SSyncRequest>(&msg)) {
    return Envelope::pack(WireType::kSSyncRequest, sender, *req);
  }
  return Envelope::pack(WireType::kSSyncResponse, sender,
                        std::get<SSyncResponse>(msg));
}

SSyncResponse SSyncResponse::decode(Decoder& dec) {
  SSyncResponse resp;
  const std::uint32_t block_count = dec.count(types::Block::kMinEncodedBytes);
  resp.blocks.reserve(block_count);
  for (std::uint32_t i = 0; i < block_count; ++i) {
    resp.blocks.push_back(types::Block::decode(dec));
  }
  const std::uint32_t cert_count = dec.count(SCert::kMinEncodedBytes);
  resp.certs.reserve(cert_count);
  for (std::uint32_t i = 0; i < cert_count; ++i) {
    resp.certs.push_back(SCert::decode(dec));
  }
  return resp;
}

StreamletCore::StreamletCore(
    StreamletConfig config, sim::Scheduler& sched,
    std::shared_ptr<const crypto::KeyRegistry> registry,
    mempool::Mempool& pool, Hooks hooks, storage::ReplicaStore* store)
    : config_(config),
      sched_(sched),
      registry_(std::move(registry)),
      signer_(registry_->signer_for(config.id)),
      pool_(pool),
      hooks_(std::move(hooks)),
      store_(store),
      history_(tree_),
      committer_(tree_, ledger_, pool, sched),
      sync_(core::SyncClient::Config{.id = config.id,
                                     .n = config.n,
                                     .retry_after = 8 * config.delta_bound,
                                     .observer = config.observer},
            sched,
            [this](ReplicaId to, const SSyncRequest& req) {
              if (hooks_.send_sync_request) hooks_.send_sync_request(to, req);
            },
            // Resume from the certified tip we hold: retries fetch only the
            // residual gap.
            [this] { return longest_height_; },
            [this] {
              // Re-request while the certified tip lags the lock-step
              // clock — a one-shot request can race with a block certified
              // right after the responses were built, and Streamlet has no
              // orphan buffer to self-heal a mid-chain gap from (every
              // later proposal fails the longest-chain check until the gap
              // block arrives).
              if (stopped_) return true;
              const Block* tip = tree_.get(longest_tip_);
              return !awaiting_sync_ && tip != nullptr &&
                     tip->round + 8 >= round_;
            }) {
  cache_ = crypto::VerifyCache(config_.observer, config_.id);
  committer_.set_store(store_);
  committer_.set_on_commit([this](const Block& block, std::uint32_t strength,
                                  SimTime now) {
    if (obs::Observer* obs = config_.observer) {
      const SimDuration latency = now - block.created_at;
      if (strength <= config_.f()) {
        obs->count(config_.id, obs::Counter::kCommits);
        obs->observe(config_.id, obs::Hist::kCommitLatencyUs, latency);
      } else {
        obs->count(config_.id, obs::Counter::kStrongCommits);
        obs->observe(config_.id, obs::Hist::kStrongCommitLatencyUs, latency);
      }
      if (obs->recording()) {
        obs->emit(obs::span_event(
            "block", strength <= config_.f() ? "committed" : "strong_commit",
            config_.id, block.height, block.created_at, now,
            {"round", block.round}, {"strength", strength}));
      }
    }
    if (hooks_.on_commit) hooks_.on_commit(block, strength, now);
  });
  committer_.set_snapshot_hook([this] { maybe_snapshot(); });
  endorsements_ = std::make_unique<core::StrengthTracker>(
      tree_, config_.n, config_.f(), config_.counting);

  // Genesis is certified by definition and roots the longest chain.
  certified_.insert(tree_.genesis_id());
  longest_tip_ = tree_.genesis_id();
  longest_height_ = 0;
}

void StreamletCore::start() { on_round_tick(); }

void StreamletCore::stop() {
  stopped_ = true;
  sched_.cancel(tick_timer_);
  tick_timer_ = sim::kInvalidTimer;
}

void StreamletCore::on_round_tick() {
  if (stopped_) return;
  ++round_;
  // Lock-step round entry is Streamlet's "pacemaker": same metric keys as
  // the chained cores' Pacemaker so cross-engine snapshots stay comparable.
  if (obs::Observer* obs = config_.observer) {
    obs->count(config_.id, obs::Counter::kRoundsEntered);
    obs->gauge(config_.id, obs::Gauge::kRound,
               static_cast<std::int64_t>(round_));
    if (obs->recording()) {
      obs->emit(obs::instant_event("pacemaker", "round_enter", config_.id,
                                   sched_.now(), {"round", round_}));
    }
    if (obs->tracing()) {
      obs->emit_trace_only(obs::counter_event("pacemaker", "round", config_.id,
                                              sched_.now(),
                                              {"round", round_}));
    }
  }
  voted_this_round_ = false;
  awaiting_batches_.reset();  // a deferred vote cannot cross rounds
  if (round_ % config_.n == config_.id && !awaiting_sync_) propose();
  schedule_tick(sched_.now() + 2 * config_.delta_bound);
}

void StreamletCore::schedule_tick(SimTime at) {
  tick_timer_ = sched_.schedule_at(at, [this] { on_round_tick(); });
}

// ------------------------------------------------------------ crash recovery

void StreamletCore::restore(const storage::RecoveredState& state) {
  votes_.clear();
  certified_.clear();
  certs_.clear();
  triple_strength_.clear();
  vote_clock_.clear();
  awaiting_batches_.reset();

  tree_ = state.tip ? chain::BlockTree::rooted_at(*state.tip)
                    : chain::BlockTree();
  ledger_.restore(state.ledger);
  certified_.insert(tree_.genesis_id());  // the root is trusted/certified
  longest_tip_ = tree_.genesis_id();
  longest_height_ = tree_.genesis().height;
  endorsements_ = std::make_unique<core::StrengthTracker>(
      tree_, config_.n, config_.f(), config_.counting);

  // Voted frontier: entries with known blocks are restored exactly; the
  // rest stay in the frontier as the kernel's conservative marker floor
  // until sync re-delivers their blocks.
  voted_round_ = state.voted_round;
  std::vector<core::VoteHistory::FrontierEntry> records;
  records.reserve(state.frontier.size());
  for (const storage::VoteRecord& record : state.frontier) {
    if (record.block_id == types::BlockId{}) continue;  // timeout record
    records.push_back({record.block_id, record.round, record.height});
  }
  history_.from_records(std::move(records));

  // Re-align to the global lock-step clock: round r spans [2Δ(r-1), 2Δr).
  const SimDuration span = 2 * config_.delta_bound;
  round_ = static_cast<Round>(sched_.now() / span) + 1;
  voted_this_round_ = voted_round_ >= round_;  // crashed mid-round, re-voted?
  awaiting_sync_ = true;  // no voting/proposing until a peer refreshes us
  sync_.reset();
  stopped_ = false;
  schedule_tick(static_cast<SimTime>(round_) * span);
}

void StreamletCore::request_sync() {
  if (!hooks_.send_sync_request || stopped_) return;
  sync_.request();
}

void StreamletCore::on_sync_request(const SSyncRequest& req) {
  if (stopped_ || !hooks_.send_sync_response) return;
  if (req.requester == config_.id) return;
  auto chain_blocks =
      core::collect_chain(tree_, longest_tip_, req.from_height);
  if (!chain_blocks) {
    return;  // our tree is rooted above the requested height; stay silent
  }
  SSyncResponse resp;
  for (const Block& b : *chain_blocks) {
    // Prefer a stored certificate (this replica may itself have recovered
    // via sync and hold no individual votes); else fold one from the vote
    // map — ascending voter order by construction, a quorum is enough.
    if (const auto cert_it = certs_.find(b.id); cert_it != certs_.end()) {
      resp.certs.push_back(cert_it->second);
      continue;
    }
    auto it = votes_.find(b.id);
    if (it == votes_.end() || it->second.size() < config_.quorum()) continue;
    SCert cert;
    cert.block_id = b.id;
    cert.round = b.round;
    cert.height = b.height;
    for (const auto& [voter, vote] : it->second) {
      // A Byzantine vote naming this block under a different round/height
      // would poison the fold (its signing bytes differ); skip it.
      if (vote.round != b.round || vote.height != b.height) continue;
      cert.add_vote(vote);
      if (cert.markers.size() >= config_.quorum()) break;
    }
    if (cert.markers.size() < config_.quorum()) continue;
    resp.certs.push_back(std::move(cert));
  }
  resp.blocks = std::move(*chain_blocks);
  hooks_.send_sync_response(req.requester, resp);
}

void StreamletCore::on_sync_response(const SSyncResponse& resp) {
  if (stopped_) return;
  // Insert the blocks structurally (no proposer signatures on raw blocks);
  // certification authority comes from the signature-checked votes below —
  // an uncertified synced block is inert.
  for (const Block& block : resp.blocks) {
    if (!block.id_is_valid()) return;
    if (tree_.insert(block) == chain::BlockTree::InsertResult::Inserted) {
      if (hooks_.on_block_seen) hooks_.on_block_seen(block);
      // Synced digest payloads may reference batches this replica missed
      // while down — pull them so commit-time materialization completes.
      if (hooks_.fetch_payload && block.payload.is_digests()) {
        hooks_.fetch_payload(block.payload);
      }
    }
  }
  for (const SCert& cert : resp.certs) {
    const Block* block = tree_.get(cert.block_id);
    // The cert must certify one of the blocks just inserted (or already
    // held) under exactly its round/height — the fields the votes signed.
    if (block == nullptr || block->round != cert.round ||
        block->height != cert.height) {
      continue;
    }
    // Structural sanity independent of signature checking: bitmap and
    // marker list aligned, quorum-sized.
    if (cert.markers.size() != cert.agg.signers.popcount() ||
        cert.markers.size() < config_.quorum()) {
      continue;
    }
    if (config_.verify_signatures &&
        !cert.verify(*registry_, config_.quorum(), &cache_)) {
      continue;
    }
    // Feed the per-voter markers to the audit tap and the endorser
    // accounting exactly as live votes would have (synthesized votes carry
    // no signature — the aggregate already attested them).
    const std::vector<ReplicaId> voters = cert.agg.signers.ids();
    for (std::size_t i = 0; i < voters.size(); ++i) {
      SVote vote;
      vote.block_id = cert.block_id;
      vote.round = cert.round;
      vote.height = cert.height;
      vote.voter = voters[i];
      vote.marker = cert.markers[i];
      if (hooks_.on_vote_seen) hooks_.on_vote_seen(vote);
      if (config_.sft) {
        endorsements_->ingest_height_vote(vote.block_id, vote.voter,
                                          vote.marker);
      }
    }
    certs_[cert.block_id] = cert;
    if (!certified_.contains(cert.block_id)) {
      certified_.insert(cert.block_id);
      mark_certified(*block);
    } else if (config_.sft) {
      // Already certified: the markers may still raise triple strengths.
      check_commits(cert.block_id);
    }
  }
  // A mid-run sync (orphan repair under an equivocating leader) can deliver
  // blocks whose quorum of votes this replica already held — so
  // certification must be re-checked explicitly now that the blocks exist.
  for (const Block& block : resp.blocks) {
    try_certify(block.id);
  }
  awaiting_sync_ = false;
}

void StreamletCore::retry_awaiting_payloads() {
  if (stopped_ || !awaiting_batches_) return;
  const Block block = *awaiting_batches_;
  awaiting_batches_.reset();
  // maybe_vote re-checks round/voted state (and may re-defer if still
  // incomplete — it re-registers the block itself in that case).
  maybe_vote(block);
}

const Block& StreamletCore::longest_certified_tip() const {
  const Block* tip = tree_.get(longest_tip_);
  assert(tip != nullptr);
  return *tip;
}

void StreamletCore::propose() {
  const log::Scope log_scope(sched_.now(), config_.id);
  const Block& parent = longest_certified_tip();
  Block block;
  block.parent_id = parent.id;
  block.round = round_;
  block.height = parent.height + 1;
  block.proposer = config_.id;
  // Chaining metadata only: Streamlet certification is tracked from the
  // multicast votes, so the embedded QC is a stub naming the parent.
  block.qc.block_id = parent.id;
  block.qc.round = parent.round;
  block.qc.parent_id = parent.parent_id;
  block.payload = hooks_.make_payload ? hooks_.make_payload(config_.max_batch)
                                      : pool_.make_batch(config_.max_batch);
  block.created_at = sched_.now();
  block.seal();

  SProposal proposal;
  proposal.block = block;
  proposal.sig = signer_.sign(proposal.signing_bytes());
  if (obs::Observer* obs = config_.observer) {
    obs->count(config_.id, obs::Counter::kProposalsSent);
    if (obs->recording()) {
      obs->emit(obs::span_event("block", "proposed", config_.id, block.height,
                                block.created_at, sched_.now(),
                                {"round", block.round},
                                {"height", block.height}));
    }
    if (obs->tracing()) {
      // Backpressure counter track: leader's mempool after draining the
      // batch for this block.
      obs->emit_trace_only(obs::counter_event(
          "mempool", "mempool_depth", config_.id, sched_.now(),
          {"pending", static_cast<std::uint64_t>(pool_.pending())}));
    }
  }
  hooks_.broadcast_proposal(proposal);
}

void StreamletCore::on_proposal(const SProposal& proposal) {
  if (stopped_) return;
  const Block& block = proposal.block;
  if (block.round == 0 || block.round % config_.n != block.proposer) return;
  if (!block.id_is_valid()) return;
  if (config_.verify_signatures &&
      (proposal.sig.signer != block.proposer ||
       !registry_->verify(proposal.sig, proposal.signing_bytes(), &cache_))) {
    return;
  }
  const bool unseen = !tree_.contains(block.id);
  const auto inserted = tree_.insert(block);
  if (inserted == chain::BlockTree::InsertResult::Rejected) return;
  if (unseen && config_.echo && hooks_.echo) hooks_.echo(SMessage{proposal});
  if (inserted == chain::BlockTree::InsertResult::Orphaned &&
      !orphan_repair_armed_) {
    // Orphan repair: an equivocating leader (Appendix C) may have shown this
    // replica only the losing fork, and with the echo disabled the winning
    // block never arrives by itself — every later proposal orphans behind
    // it. Fall back to block sync (the crash-recovery machinery; responses
    // carry a certifying vote quorum per block).
    orphan_repair_armed_ = true;
    sched_.schedule_after(4 * config_.delta_bound,
                          [this, parent_id = block.parent_id] {
      orphan_repair_armed_ = false;
      if (stopped_ || tree_.contains(parent_id)) return;
      request_sync();
    });
  }
  if (inserted == chain::BlockTree::InsertResult::Inserted) {
    if (hooks_.on_block_seen) hooks_.on_block_seen(block);
    // Proposal arrival milestone (critical-path "proposal transit");
    // proposer's own loopback delivery excluded.
    if (obs::Observer* obs = config_.observer;
        obs != nullptr && obs->recording() && block.proposer != config_.id) {
      obs->emit(obs::span_event("block", "received", config_.id, block.height,
                                block.created_at, sched_.now(),
                                {"round", block.round}));
    }
    // Votes may have arrived (via echo) before the proposal.
    try_certify(block.id);
    maybe_vote(block);
  }
}

void StreamletCore::maybe_vote(const Block& block) {
  if (block.round != round_ || voted_this_round_) return;
  // Restart fences: never vote twice in a round (durable watermark), and
  // never vote while the local longest-chain view is known-stale.
  if (block.round <= voted_round_ || awaiting_sync_) return;
  // Voting rule: the proposal must extend one of the longest certified
  // chains known to the replica.
  const Block* parent = tree_.get(block.parent_id);
  if (parent == nullptr) return;
  if (!certified_.contains(parent->id) || parent->height != longest_height_) {
    return;
  }
  // Vote-availability gate (dissemination mode): the vote waits for the
  // data plane to deliver every referenced batch. Deferred, not dropped —
  // retry_awaiting_payloads re-runs this when batches land, and the round
  // tick lapses a deferral that missed its window.
  if (hooks_.payload_available && !hooks_.payload_available(block.payload)) {
    awaiting_batches_ = block;
    if (hooks_.fetch_payload) hooks_.fetch_payload(block.payload);
    return;
  }
  // Dissem availability-wait milestone: the gate passed (immediately, or on
  // a retry after the missing batches landed).
  if (obs::Observer* obs = config_.observer;
      obs != nullptr && obs->recording() && hooks_.payload_available) {
    obs->emit(obs::instant_event("dissem", "payload_ready", config_.id,
                                 sched_.now(), {"round", block.round},
                                 {"height", block.height}));
  }
  voted_this_round_ = true;
  voted_round_ = block.round;
  if (store_) {
    // WAL before wire (same rule as the chained cores).
    store_->record_vote({block.id, block.round, block.height});
  }

  SVote vote;
  vote.block_id = block.id;
  vote.round = block.round;
  vote.height = block.height;
  vote.voter = config_.id;
  vote.marker = config_.sft ? history_.height_marker_for(block) : 0;
  vote.sig = signer_.sign(vote.signing_bytes());

  // Update the voted frontier (one entry per fork) — the kernel maintains
  // it and derives markers for later votes.
  history_.record_vote(block);

  if (obs::Observer* obs = config_.observer) {
    obs->count(config_.id, obs::Counter::kVotesSent);
    if (obs->recording()) {
      obs->emit(obs::span_event("block", "voted", config_.id, block.height,
                                block.created_at, sched_.now(),
                                {"round", block.round}));
    }
  }
  hooks_.broadcast_vote(vote);
}

void StreamletCore::on_vote(const SVote& vote) {
  ingest_vote(vote, /*allow_echo=*/true);
}

void StreamletCore::ingest_vote(const SVote& vote, bool allow_echo) {
  if (stopped_) return;
  if (config_.verify_signatures &&
      (vote.voter != vote.sig.signer ||
       !registry_->verify(vote.sig, vote.signing_bytes(), &cache_))) {
    return;
  }
  auto& per_voter = votes_[vote.block_id];
  if (!per_voter.emplace(vote.voter, vote).second) return;  // duplicate
  if (config_.observer != nullptr) {
    // Vote-arrival ordinals (strength clock); consumed at certification.
    const std::size_t distinct = per_voter.size();
    if (distinct == config_.f() + 1 || distinct == config_.quorum()) {
      VoteClock& clock = vote_clock_[vote.block_id];
      if (distinct == config_.f() + 1) clock.f1_at = sched_.now();
      if (distinct == config_.quorum()) clock.quorum_at = sched_.now();
    }
  }
  if (hooks_.on_vote_seen) hooks_.on_vote_seen(vote);
  if (allow_echo && config_.echo && hooks_.echo) hooks_.echo(SMessage{vote});
  if (config_.sft) {
    endorsements_->ingest_height_vote(vote.block_id, vote.voter, vote.marker);
  }
  try_certify(vote.block_id);
  // New endorsements can raise strengths of already-certified triples.
  if (config_.sft && tree_.contains(vote.block_id)) {
    check_commits(vote.block_id);
  }
}

void StreamletCore::try_certify(const BlockId& id) {
  if (certified_.contains(id)) return;
  auto it = votes_.find(id);
  if (it == votes_.end() || it->second.size() < config_.quorum()) return;
  const Block* block = tree_.get(id);
  if (block == nullptr) return;  // wait for the proposal

  certified_.insert(id);
  mark_certified(*block);
}

void StreamletCore::mark_certified(const Block& block_ref) {
  const Block* block = &block_ref;
  const BlockId id = block->id;
  if (obs::Observer* obs = config_.observer) {
    obs->count(config_.id, obs::Counter::kBlocksCertified);
    obs->observe(config_.id, obs::Hist::kCertifyLatencyUs,
                 sched_.now() - block->created_at);
    if (obs->recording()) {
      obs->emit(obs::span_event("block", "certified", config_.id,
                                block->height, block->created_at, sched_.now(),
                                {"round", block->round}));
    }
    if (const auto clock_it = vote_clock_.find(id);
        clock_it != vote_clock_.end()) {
      const VoteClock& clock = clock_it->second;
      if (clock.f1_at > 0) {
        obs->observe(config_.id, obs::Hist::kVoteF1LatencyUs,
                     clock.f1_at - block->created_at);
        if (obs->recording()) {
          obs->emit(obs::instant_event("block", "vote_f1", config_.id,
                                       clock.f1_at, {"round", block->round},
                                       {"height", block->height}));
        }
      }
      if (clock.quorum_at > 0) {
        obs->observe(config_.id, obs::Hist::kVoteQuorumLatencyUs,
                     clock.quorum_at - block->created_at);
        if (obs->recording()) {
          obs->emit(obs::instant_event("block", "vote_quorum", config_.id,
                                       clock.quorum_at,
                                       {"round", block->round},
                                       {"height", block->height}));
        }
      }
      vote_clock_.erase(clock_it);
    }
  }
  if (block->height > longest_height_) {
    longest_height_ = block->height;
    longest_tip_ = id;
  }
  check_commits(id);
}

std::uint32_t StreamletCore::k_endorser_count(const BlockId& id,
                                              Height k) const {
  return endorsements_->endorser_count(id, k);
}

void StreamletCore::check_commits(const BlockId& id) {
  const Block* block = tree_.get(id);
  if (block == nullptr) return;
  // `id` can sit in a (parent, middle, child) triple in three positions.
  evaluate_triple(*block);
  if (const Block* parent = tree_.parent_of(id)) evaluate_triple(*parent);
  for (const Block* child : tree_.children_of(id)) evaluate_triple(*child);
}

void StreamletCore::evaluate_triple(const Block& middle) {
  // The Fig. 11 rule itself is kernel machinery (shared with the auditor's
  // ground truth); this driver only ratchets and commits. nullopt = no
  // certified triple; a valid triple at strength f == 0 (n <= 3) still
  // commits.
  const std::optional<std::uint32_t> strength =
      core::streamlet_triple_strength(
          tree_, *endorsements_, middle,
          [this](const BlockId& id) { return certified_.contains(id); },
          config_.n, config_.f(), config_.sft);
  if (!strength) return;
  std::uint32_t& recorded = triple_strength_[middle.id];
  if (*strength > recorded || recorded == 0) {
    recorded = std::max(recorded, *strength);
    committer_.commit_chain(middle, *strength);
  }
}

void StreamletCore::maybe_snapshot() {
  if (!store_ || !store_->snapshot_due(ledger_.committed_blocks())) return;
  const std::optional<Height> tip_height = ledger_.tip();
  if (!tip_height) return;
  const Block* tip = tree_.get(ledger_.at(*tip_height).block_id);
  if (tip == nullptr) return;  // tip below the restored root; wait for sync
  // Streamlet has no chain-embedded QC or TC; the envelope carries stubs so
  // the shared snapshot format stays uniform. The kernel frontier includes
  // restored-but-never-resynced records, which must survive further
  // snapshots — a second crash would otherwise lose the marker floor they
  // impose (and reopen the over-endorsement hole the floor plugs).
  storage::Envelope envelope;
  envelope.voted_round = voted_round_;
  envelope.frontier.reserve(history_.frontier().size());
  for (const core::VoteHistory::FrontierEntry& entry : history_.frontier()) {
    envelope.frontier.push_back({entry.block_id, entry.round, entry.height});
  }
  store_->write_snapshot(*tip, ledger_.snapshot(), envelope);
}

}  // namespace sftbft::streamlet
