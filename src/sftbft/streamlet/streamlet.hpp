// Streamlet and SFT-Streamlet (paper Appendix D).
//
// Streamlet (Chan-Shi) trades performance for simplicity:
//  * lock-step rounds of duration 2Δ (no responsiveness);
//  * the leader proposes extending the longest certified chain it knows;
//  * replicas vote (multicast to everyone) iff the proposal extends one of
//    the longest certified chains they have seen;
//  * a block is certified once 2f + 1 votes are seen; commit the middle
//    block of three adjacent certified blocks with consecutive rounds;
//  * an echo mechanism forwards previously-unseen messages to all (O(n^3)
//    messages per round — measured, not hidden, by the benches).
//
// SFT-Streamlet (Fig. 11) strengthens votes with a *height* marker:
// marker = max{height(B') | B' conflicts B, replica voted for B'}. A
// strong-vote for B' k-endorses B iff B = B', or B' extends B and
// marker < k. The strong commit rule x-strong commits a height-k block B_k
// iff the three adjacent certified blocks B_{k-1}, B_k, B_{k+1} (consecutive
// rounds) each have >= x + f + 1 k-endorsers.
//
// D.4: because honest replicas vote only for the longest certified chain,
// reverting an x-strong committed block h blocks deep requires > x
// corruptions for ~h rounds (vs a single round in SFT-DiemBFT).
//
// The SFT machinery itself — vote-history frontier + markers, k-endorser
// strength accounting, the commit-chain walk, block-sync policy — is the
// shared sftbft::core kernel; this module keeps only Streamlet's lock-step
// protocol rules (round ticking, longest-chain voting, certification, the
// triple commit rule's driver).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "sftbft/chain/block_tree.hpp"
#include "sftbft/chain/ledger.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/core/block_sync.hpp"
#include "sftbft/core/committer.hpp"
#include "sftbft/core/strength.hpp"
#include "sftbft/core/vote_history.hpp"
#include "sftbft/crypto/aggregate.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/crypto/verify_cache.hpp"
#include "sftbft/mempool/mempool.hpp"
#include "sftbft/net/envelope.hpp"
#include "sftbft/sim/scheduler.hpp"
#include "sftbft/storage/replica_store.hpp"
#include "sftbft/types/block.hpp"

namespace sftbft::streamlet {

struct StreamletConfig {
  ReplicaId id = 0;
  std::uint32_t n = 4;
  /// The assumed maximum network delay Δ; rounds last 2Δ.
  SimDuration delta_bound = millis(50);
  /// Strong-votes + strong commit rule (Fig. 11); false = plain Streamlet.
  bool sft = true;
  /// How k-endorsers are counted (sft mode only): the Fig. 11 height-marker
  /// rule, or the Appendix-C NaiveAllIndirect strawman (every indirect vote
  /// counts, markers ignored) — the same comparison knob the chained cores
  /// expose, here so bench/tab_adversary can break the strawman on every
  /// engine. Markers are still *sent* truthfully; only counting changes.
  core::CountingRule counting = core::CountingRule::Sft;
  /// Forward unseen messages to all (the protocol's echo; expensive).
  bool echo = true;
  std::size_t max_batch = 100;
  bool verify_signatures = true;
  /// Observability (metrics + trace events, attributed to `id`); null = off.
  /// Stamped by the Deployment; the Observer outlives the core.
  obs::Observer* observer = nullptr;

  [[nodiscard]] std::uint32_t f() const { return (n - 1) / 3; }
  [[nodiscard]] std::uint32_t quorum() const { return 2 * f() + 1; }
};

/// Streamlet messages: a proposal is just a signed block; votes carry a
/// height marker in SFT mode. Every message has a canonical encoding (the
/// same Encoder/Decoder codec as the chained stacks) and travels in a
/// net::Envelope; the encoded size is the wire size.
struct SProposal {
  types::Block block;
  crypto::Signature sig{};

  [[nodiscard]] Bytes signing_bytes() const;

  void encode(Encoder& enc) const;
  static SProposal decode(Decoder& dec);

  friend bool operator==(const SProposal&, const SProposal&) = default;
};

struct SVote {
  types::BlockId block_id{};
  Round round = 0;
  Height height = 0;
  ReplicaId voter = kNoReplica;
  /// SFT: max height of any conflicting voted block (Fig. 11), else 0.
  Height marker = 0;
  crypto::Signature sig{};

  [[nodiscard]] Bytes signing_bytes() const;

  /// The signed bytes rebuilt from certificate parts — what an aggregate
  /// verifier recomputes per bitmap member.
  [[nodiscard]] static Bytes signing_bytes_for(const types::BlockId& block_id,
                                               Round round, Height height,
                                               ReplicaId voter, Height marker);

  void encode(Encoder& enc) const;
  static SVote decode(Decoder& dec);

  /// Exact encoded size (SVote is fixed-width): bounds untrusted vote
  /// counts while decoding vote containers.
  static constexpr std::size_t kEncodedBytes = 32 + 8 + 8 + 4 + 8 + (4 + 32);

  friend bool operator==(const SVote&, const SVote&) = default;
};

/// A Streamlet certificate: one block's certifying vote quorum, collapsed
/// to a voter bitmap + per-voter height markers (bit order, voters
/// implicit) + a single aggregate signature. Streamlet has no chain-embedded
/// QCs — this object exists for the sync path, where a responder used to
/// ship a quorum of full votes per block.
struct SCert {
  types::BlockId block_id{};
  Round round = 0;
  Height height = 0;
  /// Per-voter height markers, in bitmap-bit (voter id) order.
  std::vector<Height> markers;
  /// One aggregate over every voter's own vote signing-bytes.
  crypto::AggregateSignature agg;

  /// Folds a signed vote in (marker + signature); votes must be folded in
  /// ascending voter order and match (block_id, round, height). Returns
  /// false (no-op) on a duplicate voter.
  bool add_vote(const SVote& vote);

  /// >= quorum distinct voters and the aggregate refolds from every
  /// voter's recomputed MAC. Cache semantics as QuorumCert::verify.
  [[nodiscard]] bool verify(const crypto::KeyRegistry& registry,
                            std::size_t quorum,
                            crypto::VerifyCache* cache = nullptr) const;

  void encode(Encoder& enc) const;
  static SCert decode(Decoder& dec);

  /// Minimum encoded size (no voters): bounds untrusted cert counts while
  /// decoding sync responses.
  static constexpr std::size_t kMinEncodedBytes =
      32 + 8 + 8 + 4 + crypto::AggregateSignature::kMinEncodedBytes;

  friend bool operator==(const SCert&, const SCert&) = default;
};

/// Crash-recovery block sync (storage layer; not part of Appendix D): the
/// restarted replica asks peers for the certified chain above its durable
/// tip. The request is the kernel's shared types::SyncRequest (travelling
/// under the Streamlet wire tag); Streamlet has no chain-embedded QCs, so
/// the *response* carries one aggregate certificate per block — verified
/// whole, it re-certifies the block, so the responder needs no trust.
using SSyncRequest = types::SyncRequest;

struct SSyncResponse {
  /// Longest-certified-chain blocks above from_height, oldest first.
  std::vector<types::Block> blocks;
  /// One certifying aggregate per block (any order; matched by block_id).
  std::vector<SCert> certs;

  void encode(Encoder& enc) const;
  static SSyncResponse decode(Decoder& dec);

  friend bool operator==(const SSyncResponse&, const SSyncResponse&) = default;
};

using SMessage = std::variant<SProposal, SVote, SSyncRequest, SSyncResponse>;

/// Wraps whichever alternative `msg` holds in its wire envelope (the echo
/// path forwards previously-unseen messages of any type).
[[nodiscard]] net::Envelope to_envelope(ReplicaId sender, const SMessage& msg);

class StreamletCore {
 public:
  struct Hooks {
    std::function<void(const SProposal&)> broadcast_proposal;
    std::function<void(const SVote&)> broadcast_vote;
    /// Echo of a previously-unseen message (original sender attributed).
    std::function<void(const SMessage&)> echo;
    std::function<void(const types::Block&, std::uint32_t strength,
                       SimTime now)>
        on_commit;
    /// Crash recovery: block-sync traffic. May be empty.
    std::function<void(ReplicaId to, const SSyncRequest&)> send_sync_request;
    std::function<void(ReplicaId to, const SSyncResponse&)>
        send_sync_response;
    /// Auditing taps (harness::SafetyAuditor): every block admitted to the
    /// tree and every distinct vote ingested, fired *before* the vote feeds
    /// the local strength bookkeeping — a global observer is always at
    /// least as informed as the replica it audits. May be empty.
    std::function<void(const types::Block&)> on_block_seen;
    std::function<void(const SVote&)> on_vote_seen;
    /// --- dissemination (all may be empty = inline payloads) ---
    /// Leader-side payload source (digest-referencing proposals from the
    /// local BatchStore); no requeue twin: Streamlet is lock-step, an
    /// uncertified round's batches revert via the store's repropose window.
    std::function<types::Payload(std::size_t max_batch)> make_payload;
    /// Vote-availability gate: all referenced batches held locally?
    std::function<bool(const types::Payload&)> payload_available;
    /// Kick the pull protocol for a payload's missing batches.
    std::function<void(const types::Payload&)> fetch_payload;
  };

  /// `store` (optional) enables durability (WAL'd votes + ledger snapshots)
  /// and thereby restore() after a crash.
  StreamletCore(StreamletConfig config, sim::Scheduler& sched,
                std::shared_ptr<const crypto::KeyRegistry> registry,
                mempool::Mempool& pool, Hooks hooks,
                storage::ReplicaStore* store = nullptr);

  /// Starts the lock-step round ticks (round r spans [2Δ(r-1), 2Δr)).
  void start();
  void stop();

  /// Crash recovery: rebuilds from durable state — tree re-rooted at the
  /// snapshot tip, ledger restored, the voted-round fence re-armed (never
  /// vote twice in a round), voted-frontier records re-imported (entries
  /// whose blocks are missing become a conservative marker floor — the
  /// kernel VoteHistory's standard conservative treatment). The round
  /// counter realigns to the global lock-step clock (round = ⌊now/2Δ⌋ + 1).
  /// Voting stays suppressed until a sync response refreshes the longest
  /// certified chain — an honest replica must not vote for stale tips.
  void restore(const storage::RecoveredState& state);

  /// Asks a small rotating window of peers for blocks above the local tip,
  /// retrying on the kernel SyncClient's watchdog while the replica is
  /// still awaiting a response or its certified tip lags the lock-step
  /// clock.
  void request_sync();

  /// Dissemination mode: the committer resolves digest payloads against
  /// `batches` before ledger appends; `pull` fetches batches that sync
  /// delivered certified but undisseminated.
  void attach_batch_store(
      dissem::BatchStore* batches,
      std::function<void(const std::vector<crypto::Sha256Digest>&)> pull) {
    committer_.set_batch_store(batches, std::move(pull));
  }

  /// Re-runs the vote path for a proposal deferred on missing batches (call
  /// when new batches arrive). Lock-step rounds mean at most one proposal
  /// can be waiting; a deferral that missed its round lapses silently.
  void retry_awaiting_payloads();

  void on_proposal(const SProposal& proposal);
  void on_vote(const SVote& vote);
  void on_sync_request(const SSyncRequest& req);
  void on_sync_response(const SSyncResponse& resp);

  [[nodiscard]] Round current_round() const { return round_; }
  [[nodiscard]] const chain::BlockTree& tree() const { return tree_; }
  [[nodiscard]] const chain::Ledger& ledger() const { return ledger_; }
  [[nodiscard]] bool is_certified(const types::BlockId& id) const {
    return certified_.contains(id);
  }
  /// Tip (highest block) of the longest certified chain known.
  [[nodiscard]] const types::Block& longest_certified_tip() const;

  /// Number of voters whose strong-vote k-endorses `id` (SFT mode).
  [[nodiscard]] std::uint32_t k_endorser_count(const types::BlockId& id,
                                               Height k) const;

 private:
  void on_round_tick();
  void schedule_tick(SimTime at);
  void propose();
  void maybe_vote(const types::Block& block);
  /// on_vote minus the echo (sync responses replay old votes; re-echoing
  /// them would flood the network with stale traffic).
  void ingest_vote(const SVote& vote, bool allow_echo);
  void try_certify(const types::BlockId& id);
  /// Marks a block certified (obs, longest-tip update, commit checks) —
  /// shared by the vote-quorum path and the sync certificate path.
  void mark_certified(const types::Block& block);
  void check_commits(const types::BlockId& id);
  void evaluate_triple(const types::Block& middle);
  void maybe_snapshot();

  StreamletConfig config_;
  sim::Scheduler& sched_;
  std::shared_ptr<const crypto::KeyRegistry> registry_;
  crypto::Signer signer_;
  mempool::Mempool& pool_;
  Hooks hooks_;
  storage::ReplicaStore* store_;  // null = no persistence

  chain::BlockTree tree_;
  chain::Ledger ledger_;
  /// Kernel pieces: voted-fork frontier (height markers), k-endorser
  /// strength accounting, commit-chain walks, sync policy.
  core::VoteHistory history_;
  std::unique_ptr<core::StrengthTracker> endorsements_;
  core::Committer committer_;
  core::SyncClient sync_;
  Round round_ = 0;
  bool stopped_ = false;
  bool voted_this_round_ = false;
  /// Highest round this replica ever voted in (durable via store_): the
  /// restart equivocation fence.
  Round voted_round_ = 0;
  /// Restored-but-not-yet-synced: suppress voting (the longest certified
  /// chain known locally is stale until a peer responds).
  bool awaiting_sync_ = false;
  /// One orphan-repair timer at a time (see on_proposal).
  bool orphan_repair_armed_ = false;
  /// Dissemination: this round's proposal, vote deferred until its batches
  /// arrive (vote-availability gate). Cleared on every round tick.
  std::optional<types::Block> awaiting_batches_;
  sim::TimerId tick_timer_ = sim::kInvalidTimer;

  /// Verified-vote / certificate memo (obs-instrumented); one per replica.
  crypto::VerifyCache cache_;

  /// votes per block (by voter), and the certified set.
  std::unordered_map<types::BlockId, std::map<ReplicaId, SVote>> votes_;
  std::unordered_set<types::BlockId> certified_;
  /// Verified certificates received via sync, kept so this replica can
  /// re-serve sync even though it never saw the individual votes.
  std::unordered_map<types::BlockId, SCert> certs_;

  /// Vote-arrival ordinals per block (the paper's strength clock): when the
  /// (f+1)-th / (2f+1)-th distinct vote landed locally. Every replica
  /// tallies in Streamlet, so every replica carries its own clock; entries
  /// are consumed (erased) at certification.
  struct VoteClock {
    SimTime f1_at = 0;
    SimTime quorum_at = 0;
  };
  std::unordered_map<types::BlockId, VoteClock> vote_clock_;

  /// Longest certified tip (ties broken by lower id for determinism).
  types::BlockId longest_tip_{};
  Height longest_height_ = 0;

  /// committed strength already reached per middle block (ratchet).
  std::unordered_map<types::BlockId, std::uint32_t> triple_strength_;
};

}  // namespace sftbft::streamlet
