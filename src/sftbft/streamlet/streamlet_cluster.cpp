#include "sftbft/streamlet/streamlet_cluster.hpp"

#include <algorithm>
#include <cassert>

namespace sftbft::streamlet {

StreamletCluster::StreamletCluster(StreamletClusterConfig config,
                                   CommitObserver observer)
    : config_(std::move(config)) {
  assert(config_.topology.size() == config_.n);
  registry_ = std::make_shared<crypto::KeyRegistry>(config_.n, config_.seed);
  network_ = std::make_unique<StreamletNetwork>(
      sched_, config_.topology, config_.net, config_.seed ^ 0x51ee7);

  Rng workload_rng(config_.seed ^ 0x77aa);
  for (ReplicaId id = 0; id < config_.n; ++id) {
    const bool silent =
        std::find(config_.silent.begin(), config_.silent.end(), id) !=
        config_.silent.end();

    pools_.push_back(std::make_unique<mempool::Mempool>());
    workloads_.push_back(std::make_unique<mempool::WorkloadGenerator>(
        sched_, *pools_.back(), config_.workload, workload_rng.fork()));
    workloads_.back()->set_id_space(id);

    StreamletConfig core_config = config_.core;
    core_config.id = id;
    core_config.n = config_.n;

    StreamletCore::Hooks hooks;
    hooks.broadcast_proposal = [this, id, silent](const SProposal& proposal) {
      if (silent) return;
      network_->multicast(id, "proposal", proposal.wire_size(),
                          SMessage{proposal}, /*include_self=*/true);
    };
    hooks.broadcast_vote = [this, id, silent](const SVote& vote) {
      if (silent) return;
      network_->multicast(id, "vote", vote.wire_size(), SMessage{vote},
                          /*include_self=*/true);
    };
    hooks.echo = [this, id, silent](const SMessage& msg) {
      if (silent) return;
      const std::size_t size = std::visit(
          [](const auto& m) { return m.wire_size(); }, msg);
      network_->multicast(id, "echo", size, msg, /*include_self=*/false);
    };
    hooks.on_commit = [this, id, observer](const types::Block& block,
                                           std::uint32_t strength,
                                           SimTime now) {
      if (observer) observer(id, block, strength, now);
    };

    cores_.push_back(std::make_unique<StreamletCore>(
        core_config, sched_, registry_, *pools_.back(), std::move(hooks)));
  }
}

void StreamletCluster::start() {
  for (ReplicaId id = 0; id < config_.n; ++id) {
    workloads_[id]->top_up();
    StreamletCore* core = cores_[id].get();
    network_->set_handler(id, [core](ReplicaId, const SMessage& msg) {
      if (std::holds_alternative<SProposal>(msg)) {
        core->on_proposal(std::get<SProposal>(msg));
      } else {
        core->on_vote(std::get<SVote>(msg));
      }
    });
    core->start();
  }
}

void StreamletCluster::run_for(SimDuration duration) {
  sched_.run_for(duration);
}

}  // namespace sftbft::streamlet
