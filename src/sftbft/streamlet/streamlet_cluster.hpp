// A full Streamlet / SFT-Streamlet deployment on the simulated network,
// mirroring replica::Cluster for the DiemBFT stack (Appendix D benches and
// tests drive this).
#pragma once

#include <memory>
#include <vector>

#include "sftbft/net/sim_network.hpp"
#include "sftbft/sim/scheduler.hpp"
#include "sftbft/streamlet/streamlet.hpp"

namespace sftbft::streamlet {

using StreamletNetwork = net::SimNetwork<SMessage>;

struct StreamletClusterConfig {
  std::uint32_t n = 4;
  StreamletConfig core;  ///< template; id is filled per replica
  net::Topology topology = net::Topology::uniform(4, millis(1));
  net::NetConfig net;
  mempool::WorkloadConfig workload;
  std::uint64_t seed = 1;
  /// Replicas that never send anything (Byzantine-silent / crashed from t=0).
  std::vector<ReplicaId> silent;
};

class StreamletCluster {
 public:
  using CommitObserver = std::function<void(
      ReplicaId, const types::Block&, std::uint32_t, SimTime)>;

  explicit StreamletCluster(StreamletClusterConfig config,
                            CommitObserver observer = nullptr);

  void start();
  void run_for(SimDuration duration);

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] StreamletNetwork& network() { return *network_; }
  [[nodiscard]] StreamletCore& core(ReplicaId id) { return *cores_[id]; }
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(cores_.size());
  }

 private:
  StreamletClusterConfig config_;
  sim::Scheduler sched_;
  std::shared_ptr<const crypto::KeyRegistry> registry_;
  std::unique_ptr<StreamletNetwork> network_;
  std::vector<std::unique_ptr<mempool::Mempool>> pools_;
  std::vector<std::unique_ptr<mempool::WorkloadGenerator>> workloads_;
  std::vector<std::unique_ptr<StreamletCore>> cores_;
};

}  // namespace sftbft::streamlet
