#include "sftbft/types/block.hpp"

#include <cstdio>

namespace sftbft::types {

crypto::Sha256Digest Block::compute_id() const {
  Encoder enc;
  enc.str("sftbft/block");
  enc.raw(parent_id.bytes);
  enc.u64(round);
  enc.u64(height);
  enc.u32(proposer);
  enc.raw(qc.digest().bytes);
  // Payload is bound through its *record* encoding's digest (memoized in
  // the payload): the synthetic bodies are a pure function of the records,
  // so this binds the full wire bytes while header hashing stays O(txns),
  // not O(block bytes) — and only runs once per payload object.
  enc.raw(payload.records_digest().bytes);
  enc.raw(log_digest.bytes);
  enc.i64(created_at);
  return crypto::Sha256::hash(enc.data());
}

void Block::seal() { id = compute_id(); }

bool Block::id_is_valid() const {
  // Verifier side: never trust the payload memo — an in-process tamper of
  // the batch must be caught (decoded blocks arrive memo-less anyway, so
  // the honest receive path pays this exactly once; repeat calls and the
  // proposer-side seal reuse the now-fresh memo).
  payload.refresh_records_digest();
  return id == compute_id();
}

Block Block::genesis() {
  Block genesis_block;
  genesis_block.round = 0;
  genesis_block.height = 0;
  genesis_block.proposer = kNoReplica;
  genesis_block.qc = QuorumCert{};  // round-0 QC with no votes
  genesis_block.seal();
  return genesis_block;
}

void Block::encode(Encoder& enc) const {
  enc.raw(id.bytes);
  enc.raw(parent_id.bytes);
  enc.u64(round);
  enc.u64(height);
  enc.u32(proposer);
  qc.encode(enc);
  payload.encode(enc);
  enc.raw(log_digest.bytes);
  enc.i64(created_at);
}

Block Block::decode(Decoder& dec) {
  Block block;
  Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), block.id.bytes.begin());
  raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), block.parent_id.bytes.begin());
  block.round = dec.u64();
  block.height = dec.u64();
  block.proposer = dec.u32();
  block.qc = QuorumCert::decode(dec);
  block.payload = Payload::decode(dec);
  raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), block.log_digest.bytes.begin());
  block.created_at = dec.i64();
  return block;
}

std::string Block::brief() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "B(r=%llu,h=%llu,id=%s)",
                static_cast<unsigned long long>(round),
                static_cast<unsigned long long>(height),
                id.short_hex().c_str());
  return buf;
}

}  // namespace sftbft::types
