// Blocks (paper Sec. 2.1).
//
// B_k = (H(B_{k-1}), qc, txn): a block carries its parent hash, a (strong-)
// QC certifying the parent, and a transaction batch. Blocks are chained by
// hash; `round` positions the block in pacemaker time and `height` in the
// chain. The id is the SHA-256 of the canonical header so equivocating
// proposals (same round, different content) have distinct ids.
#pragma once

#include <string>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/types/quorum_cert.hpp"
#include "sftbft/types/transaction.hpp"
#include "sftbft/types/vote.hpp"

namespace sftbft::types {

struct Block {
  BlockId id{};          ///< derived: hash of the canonical header
  BlockId parent_id{};   ///< H(B_{k-1})
  Round round = 0;
  Height height = 0;
  ReplicaId proposer = kNoReplica;
  QuorumCert qc;         ///< certifies the parent block
  Payload payload;
  /// Digest of the proposal's Sec.-5 commit Log (zero when the proposal
  /// carries none). Sealing it into the header is what lets a QC vouch for
  /// the Log: votes sign the block id, so a corrupted proposer cannot
  /// rewrite the Log under an already-certified block — the binding
  /// StrongCommitProof verification depends on (see types::proposal and
  /// lightclient).
  crypto::Sha256Digest log_digest{};
  /// Simulation metadata: creation time at the proposer. The paper measures
  /// strong-commit latency "from when a block is created" (Sec. 4).
  SimTime created_at = 0;

  /// Recomputes `id` from the other fields. Must be called after any field
  /// changes; proposals are rejected if the id does not match.
  void seal();

  /// True iff `id` equals the hash of the current header fields.
  [[nodiscard]] bool id_is_valid() const;

  /// The genesis block: round 0, height 0, zero parent, empty QC/payload.
  static Block genesis();

  void encode(Encoder& enc) const;
  static Block decode(Decoder& dec);

  /// Minimum encoded size (empty QC/payload): bounds untrusted block counts
  /// while decoding sync responses.
  static constexpr std::size_t kMinEncodedBytes =
      32 + 32 + 8 + 8 + 4 + QuorumCert::kMinEncodedBytes + 5 + 32 + 8;

  [[nodiscard]] std::string brief() const;  ///< "B(r=5,h=3,id=1a2b3c4d)"

  friend bool operator==(const Block&, const Block&) = default;

 private:
  [[nodiscard]] crypto::Sha256Digest compute_id() const;
};

}  // namespace sftbft::types
