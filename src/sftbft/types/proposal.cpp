#include "sftbft/types/proposal.hpp"

#include "sftbft/crypto/sha256.hpp"

namespace sftbft::types {

crypto::Sha256Digest commit_log_digest(
    const std::vector<CommitLogEntry>& log) {
  if (log.empty()) return {};  // log-less blocks keep a zero digest
  Encoder enc;
  enc.str("sftbft/commit-log");
  enc.u32(static_cast<std::uint32_t>(log.size()));
  for (const CommitLogEntry& entry : log) entry.encode(enc);
  return crypto::Sha256::hash(enc.data());
}

void CommitLogEntry::encode(Encoder& enc) const {
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.u32(strength);
}

CommitLogEntry CommitLogEntry::decode(Decoder& dec) {
  CommitLogEntry entry;
  const Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), entry.block_id.bytes.begin());
  entry.round = dec.u64();
  entry.strength = dec.u32();
  return entry;
}

Bytes Proposal::signing_bytes() const {
  Encoder enc;
  enc.str("sftbft/proposal");
  enc.raw(block.id.bytes);
  enc.u64(block.round);
  // The commit log is covered by the signature so a light client can trust
  // a certified proposal's log entries (Sec. 5).
  enc.u32(static_cast<std::uint32_t>(commit_log.size()));
  for (const CommitLogEntry& entry : commit_log) entry.encode(enc);
  return enc.take();
}

void Proposal::encode(Encoder& enc) const {
  block.encode(enc);
  enc.boolean(tc.has_value());
  if (tc) tc->encode(enc);
  enc.u32(static_cast<std::uint32_t>(commit_log.size()));
  for (const CommitLogEntry& entry : commit_log) entry.encode(enc);
  sig.encode(enc);
}

Proposal Proposal::decode(Decoder& dec) {
  Proposal proposal;
  proposal.block = Block::decode(dec);
  if (dec.boolean()) proposal.tc = TimeoutCert::decode(dec);
  const std::uint32_t count = dec.count(CommitLogEntry::kEncodedBytes);
  proposal.commit_log.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    proposal.commit_log.push_back(CommitLogEntry::decode(dec));
  }
  proposal.sig = crypto::Signature::decode(dec);
  return proposal;
}

void SyncRequest::encode(Encoder& enc) const {
  enc.u32(requester);
  enc.u64(from_height);
}

SyncRequest SyncRequest::decode(Decoder& dec) {
  SyncRequest req;
  req.requester = dec.u32();
  req.from_height = dec.u64();
  return req;
}

void SyncResponse::encode(Encoder& enc) const {
  enc.u32(static_cast<std::uint32_t>(blocks.size()));
  for (const Block& block : blocks) block.encode(enc);
  high_qc.encode(enc);
}

SyncResponse SyncResponse::decode(Decoder& dec) {
  SyncResponse resp;
  const std::uint32_t count = dec.count(Block::kMinEncodedBytes);
  resp.blocks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    resp.blocks.push_back(Block::decode(dec));
  }
  resp.high_qc = QuorumCert::decode(dec);
  return resp;
}

const char* message_type_name(const Message& msg) {
  if (std::holds_alternative<Proposal>(msg)) return "proposal";
  if (std::holds_alternative<Vote>(msg)) return "vote";
  if (std::holds_alternative<TimeoutMsg>(msg)) return "timeout";
  if (std::holds_alternative<SyncRequest>(msg)) return "sync_req";
  return "sync_resp";
}

}  // namespace sftbft::types
