// Proposals and the top-level message variant.
//
// ⟨propose, B_k, r⟩_{L_r}: the round leader multicasts its block, optionally
// justified by a TC when the previous round timed out, plus the Sec. 5 commit
// Log — strong-commit level updates that, once the block is certified, a
// light client can trust (at least one honest replica among any 2f + 1
// signers vouches for them when faults ≤ 2f).
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/types/block.hpp"
#include "sftbft/types/timeout.hpp"

namespace sftbft::types {

/// One Sec.-5 Log record: "block `block_id` (round r) reached strength x".
struct CommitLogEntry {
  BlockId block_id{};
  Round round = 0;
  /// Strength as the number of tolerated faults x (f <= x <= 2f).
  std::uint32_t strength = 0;

  void encode(Encoder& enc) const;
  static CommitLogEntry decode(Decoder& dec);

  static constexpr std::size_t kEncodedBytes = 32 + 8 + 4;

  friend bool operator==(const CommitLogEntry&, const CommitLogEntry&) = default;
};

/// Canonical digest of a commit Log, sealed into Block::log_digest by the
/// proposer (zero for an empty Log). Because votes sign the block id, this
/// is what extends QC certification to the Log itself: a corrupted proposer
/// cannot re-sign a different Log under an already-certified block
/// (Sec. 5's "at least one honest replica agrees on the update" argument
/// needs the voters to be bound to the Log they validated).
[[nodiscard]] crypto::Sha256Digest commit_log_digest(
    const std::vector<CommitLogEntry>& log);

struct Proposal {
  Block block;
  /// Present when the proposal follows a timed-out round.
  std::optional<TimeoutCert> tc;
  /// Strong-commit level updates since the parent proposal (Sec. 5).
  std::vector<CommitLogEntry> commit_log;
  crypto::Signature sig{};

  [[nodiscard]] Round round() const { return block.round; }
  [[nodiscard]] Bytes signing_bytes() const;

  void encode(Encoder& enc) const;
  static Proposal decode(Decoder& dec);

  friend bool operator==(const Proposal&, const Proposal&) = default;
};

/// Block-sync request (crash recovery): a restarted replica asks peers for
/// the certified chain above its durable ledger tip. Not part of the paper's
/// protocol — recovery machinery for the storage layer (sftbft::storage).
struct SyncRequest {
  ReplicaId requester = kNoReplica;
  /// Send blocks with height > from_height (the requester's restored root).
  Height from_height = 0;

  void encode(Encoder& enc) const;
  static SyncRequest decode(Decoder& dec);

  friend bool operator==(const SyncRequest&, const SyncRequest&) = default;
};

/// Block-sync response: the responder's high-QC branch above the requested
/// height, oldest first. Each block's embedded QC certifies its parent; the
/// final block is certified by `high_qc` — so the whole chain is verifiable
/// without trusting the responder.
struct SyncResponse {
  std::vector<Block> blocks;
  QuorumCert high_qc;

  void encode(Encoder& enc) const;
  static SyncResponse decode(Decoder& dec);

  friend bool operator==(const SyncResponse&, const SyncResponse&) = default;
};

/// Everything a DiemBFT replica can receive (the demux set; on the wire
/// each alternative travels as its own net::Envelope type tag).
using Message = std::variant<Proposal, Vote, TimeoutMsg, SyncRequest,
                             SyncResponse>;

/// Stats label for a message ("proposal" / "vote" / "timeout" / "sync_req" /
/// "sync_resp").
[[nodiscard]] const char* message_type_name(const Message& msg);

}  // namespace sftbft::types
