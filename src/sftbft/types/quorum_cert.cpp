#include "sftbft/types/quorum_cert.hpp"

#include <algorithm>

#include "sftbft/crypto/signature.hpp"
#include "sftbft/crypto/verify_cache.hpp"

namespace sftbft::types {

bool QuorumCert::add_vote(const Vote& vote) {
  if (!agg.fold(vote.sig)) return false;
  votes.push_back({vote.voter, vote.meta()});
  digest_memo_.reset();
  return true;
}

void QuorumCert::canonicalize() {
  std::sort(votes.begin(), votes.end(),
            [](const QcVote& a, const QcVote& b) { return a.voter < b.voter; });
  digest_memo_.reset();  // content may have changed; recompute lazily
}

bool QuorumCert::verify(const crypto::KeyRegistry& registry,
                        std::size_t quorum,
                        crypto::VerifyCache* cache) const {
  if (is_genesis()) return votes.empty() && agg.empty();
  if (votes.size() < quorum) return false;
  // Metas must align 1:1 with the signer bitmap, ascending — this is free
  // for decoded QCs (the wire layout forces it) and catches an in-memory
  // duplicate or unsorted assembly.
  const std::vector<ReplicaId> signers = agg.signers.ids();
  if (signers.size() != votes.size()) return false;
  for (std::size_t i = 0; i < votes.size(); ++i) {
    if (votes[i].voter != signers[i]) return false;
  }
  crypto::Sha256Digest memo_key;
  if (cache != nullptr) {
    // Key the cert memo by the FULL canonical encoding (not digest(), which
    // deliberately omits interval sets): any tampered field must miss.
    Encoder enc;
    enc.str("sftbft/qc-verified");
    encode(enc);
    memo_key = crypto::Sha256::hash(enc.data());
    if (cache->seen_cert(memo_key)) return true;
  }
  const bool ok = registry.verify_aggregate(
      agg,
      [this](ReplicaId voter) {
        const auto it = std::lower_bound(
            votes.begin(), votes.end(), voter,
            [](const QcVote& v, ReplicaId id) { return v.voter < id; });
        return Vote::signing_bytes_for(block_id, round, voter, it->meta);
      },
      cache);
  if (ok && cache != nullptr) cache->note_cert(memo_key);
  return ok;
}

crypto::Sha256Digest QuorumCert::digest() const {
  if (digest_memo_) return *digest_memo_;
  // Identity digest: binds the certified block, the parent linkage, and the
  // voter set with per-vote markers. The votes' full contents (interval
  // sets, the aggregate tag) are attested by the signatures that verify()
  // refolds, so they do not need to be re-hashed here — this keeps the
  // digest O(votes) cheap (it is computed on every QC observation).
  Encoder enc;
  enc.str("sftbft/qc");
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.raw(parent_id.bytes);
  enc.u64(parent_round);
  enc.u32(static_cast<std::uint32_t>(votes.size()));
  for (const QcVote& vote : votes) {
    enc.u32(vote.voter);
    enc.u8(static_cast<std::uint8_t>(vote.meta.mode));
    enc.u64(vote.meta.marker);
  }
  digest_memo_ =
      std::make_shared<const crypto::Sha256Digest>(
          crypto::Sha256::hash(enc.data()));
  return *digest_memo_;
}

void QuorumCert::encode(Encoder& enc) const {
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.raw(parent_id.bytes);
  enc.u64(parent_round);
  // Metas ride in bitmap-bit order; voter ids are implicit in the bitmap.
  enc.u32(static_cast<std::uint32_t>(votes.size()));
  for (const QcVote& vote : votes) vote.meta.encode(enc);
  agg.encode(enc);
}

QuorumCert QuorumCert::decode(Decoder& dec) {
  QuorumCert qc;
  Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), qc.block_id.bytes.begin());
  qc.round = dec.u64();
  raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), qc.parent_id.bytes.begin());
  qc.parent_round = dec.u64();
  const std::uint32_t count = dec.count(VoteMeta::kMinEncodedBytes);
  std::vector<VoteMeta> metas;
  metas.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    metas.push_back(VoteMeta::decode(dec));
  }
  qc.agg = crypto::AggregateSignature::decode(dec);
  const std::vector<ReplicaId> signers = qc.agg.signers.ids();
  if (signers.size() != metas.size()) {
    throw CodecError("QuorumCert: meta count does not match signer bitmap");
  }
  qc.votes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    qc.votes.push_back({signers[i], std::move(metas[i])});
  }
  return qc;
}

bool ranks_higher(const QuorumCert& a, const QuorumCert& b) {
  return a.round > b.round;
}

}  // namespace sftbft::types
