#include "sftbft/types/quorum_cert.hpp"

#include <algorithm>
#include <unordered_set>

#include "sftbft/crypto/signature.hpp"

namespace sftbft::types {

void QuorumCert::canonicalize() {
  std::sort(votes.begin(), votes.end(),
            [](const Vote& a, const Vote& b) { return a.voter < b.voter; });
  digest_memo_.reset();  // content may have changed; recompute lazily
}

bool QuorumCert::verify(const crypto::KeyRegistry& registry,
                        std::size_t quorum) const {
  if (is_genesis()) return votes.empty();
  if (votes.size() < quorum) return false;
  std::unordered_set<ReplicaId> voters;
  for (const Vote& vote : votes) {
    if (vote.block_id != block_id || vote.round != round) return false;
    if (vote.voter != vote.sig.signer) return false;
    if (!voters.insert(vote.voter).second) return false;  // duplicate voter
    if (!registry.verify(vote.sig, vote.signing_bytes())) return false;
  }
  return true;
}

crypto::Sha256Digest QuorumCert::digest() const {
  if (digest_memo_) return *digest_memo_;
  // Identity digest: binds the certified block, the parent linkage, and the
  // voter set with per-vote markers. The votes' full contents (interval
  // sets, signatures) are individually attested by the vote signatures that
  // verify() checks, so they do not need to be re-hashed here — this keeps
  // the digest O(votes) cheap (it is computed on every QC observation).
  Encoder enc;
  enc.str("sftbft/qc");
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.raw(parent_id.bytes);
  enc.u64(parent_round);
  enc.u32(static_cast<std::uint32_t>(votes.size()));
  for (const Vote& vote : votes) {
    enc.u32(vote.voter);
    enc.u8(static_cast<std::uint8_t>(vote.mode));
    enc.u64(vote.marker);
  }
  digest_memo_ =
      std::make_shared<const crypto::Sha256Digest>(
          crypto::Sha256::hash(enc.data()));
  return *digest_memo_;
}

void QuorumCert::encode(Encoder& enc) const {
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.raw(parent_id.bytes);
  enc.u64(parent_round);
  enc.u32(static_cast<std::uint32_t>(votes.size()));
  for (const Vote& vote : votes) vote.encode(enc);
}

QuorumCert QuorumCert::decode(Decoder& dec) {
  QuorumCert qc;
  Bytes raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), qc.block_id.bytes.begin());
  qc.round = dec.u64();
  raw = dec.raw(32);
  std::copy(raw.begin(), raw.end(), qc.parent_id.bytes.begin());
  qc.parent_round = dec.u64();
  const std::uint32_t count = dec.count(Vote::kMinEncodedBytes);
  qc.votes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    qc.votes.push_back(Vote::decode(dec));
  }
  return qc;
}

bool ranks_higher(const QuorumCert& a, const QuorumCert& b) {
  return a.round > b.round;
}

}  // namespace sftbft::types
