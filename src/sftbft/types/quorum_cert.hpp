// Quorum certificates / strong-QCs (paper Sec. 2, Fig. 4).
//
// A QC certifies one block with >= 2f + 1 distinct signed votes. A strong-QC
// is the same object whose votes are strong-votes — the SFT layer reads the
// markers/intervals out of them to maintain endorser sets. With the Fig. 8
// extra-wait policy a leader may pack *more* than 2f + 1 votes into a QC
// (up to n), which is what accelerates strong commits.
//
// On the wire the signature portion is O(1)-in-n: the voter set is a
// ⌈n/8⌉-byte bitmap and all the votes' MACs fold into one 32-byte aggregate
// tag (crypto::AggregateSignature), instead of 36 bytes per signer. Only the
// per-voter SFT metadata (VoteMeta) still scales with the voter count —
// encoded in bitmap-bit order, so voter ids are implicit and a duplicate
// signer is unrepresentable on the wire.
#pragma once

#include <memory>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/aggregate.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/types/vote.hpp"

namespace sftbft::crypto {
class KeyRegistry;
class VerifyCache;
}

namespace sftbft::types {

/// One voter's contribution as a certificate keeps it: the identity plus
/// the SFT metadata. The signature lives in the aggregate.
struct QcVote {
  ReplicaId voter = kNoReplica;
  VoteMeta meta;

  friend bool operator==(const QcVote&, const QcVote&) = default;
};

struct QuorumCert {
  BlockId block_id{};       ///< the certified block
  Round round = 0;          ///< its round number
  BlockId parent_id{};      ///< parent of the certified block
  Round parent_round = 0;   ///< parent's round (drives the locking rule)
  /// Per-voter metadata, canonically sorted by voter id (= bitmap order).
  std::vector<QcVote> votes;
  /// One aggregate over every voter's own vote signing-bytes.
  crypto::AggregateSignature agg;

  /// The genesis QC certifies the genesis block at round 0 with no votes.
  [[nodiscard]] bool is_genesis() const { return round == 0; }

  /// Folds a signed vote in: meta into `votes`, signature into the
  /// aggregate. Returns false (no-op) if the voter is already aggregated.
  /// The vote's signature is presumed verified by the caller (leaders
  /// verify on receipt); call canonicalize() after the last fold.
  bool add_vote(const Vote& vote);

  /// Sorts voter metas by voter id — call after assembly so equal QCs
  /// encode identically regardless of vote arrival order. Also the memo
  /// refresh point: mutating a QC after its digest() was computed requires
  /// a canonicalize() before digest() is meaningful again (the receive path
  /// never mutates, so decoded QCs need nothing).
  void canonicalize();

  /// Structural + cryptographic validity: >= quorum voters, metas aligned
  /// with the signer bitmap (sorted, distinct), and the aggregate tag
  /// refolds from every voter's recomputed MAC over its own signing bytes.
  /// The genesis QC is valid by definition. With a cache, a certificate
  /// that already verified is admitted by its full-encoding digest — any
  /// tamper changes the encoding and forces (failing) fresh verification.
  [[nodiscard]] bool verify(const crypto::KeyRegistry& registry,
                            std::size_t quorum,
                            crypto::VerifyCache* cache = nullptr) const;

  /// Digest binding the QC content (used inside block ids and as the
  /// identity key of per-QC bookkeeping). Memoized per object: a canonical
  /// QC's digest is taken several times on the hot path (block-id sealing,
  /// strength-tracker dedupe, commit-log keying), and the memo survives
  /// copies (tree insertion, proposal embedding) so each QC encodes once.
  [[nodiscard]] crypto::Sha256Digest digest() const;

  void encode(Encoder& enc) const;
  static QuorumCert decode(Decoder& dec);

  /// Minimum encoded size (no votes, empty bitmap): bounds untrusted
  /// counts upstream.
  static constexpr std::size_t kMinEncodedBytes =
      32 + 8 + 32 + 8 + 4 + crypto::AggregateSignature::kMinEncodedBytes;

  /// Semantic equality (the digest memo is identity-irrelevant).
  friend bool operator==(const QuorumCert& a, const QuorumCert& b) {
    return a.block_id == b.block_id && a.round == b.round &&
           a.parent_id == b.parent_id && a.parent_round == b.parent_round &&
           a.votes == b.votes && a.agg == b.agg;
  }

 private:
  mutable std::shared_ptr<const crypto::Sha256Digest> digest_memo_;
};

/// QCs (certified blocks) are ranked by round number (paper Sec. 2).
[[nodiscard]] bool ranks_higher(const QuorumCert& a, const QuorumCert& b);

}  // namespace sftbft::types
