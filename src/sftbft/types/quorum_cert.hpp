// Quorum certificates / strong-QCs (paper Sec. 2, Fig. 4).
//
// A QC is a set of 2f + 1 distinct signed votes for one block. A strong-QC
// is the same object whose votes are strong-votes — the SFT layer reads the
// markers/intervals out of them to maintain endorser sets. With the Fig. 8
// extra-wait policy a leader may pack *more* than 2f + 1 votes into a QC
// (up to n), which is what accelerates strong commits.
#pragma once

#include <memory>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/types/vote.hpp"

namespace sftbft::crypto {
class KeyRegistry;
}

namespace sftbft::types {

struct QuorumCert {
  BlockId block_id{};       ///< the certified block
  Round round = 0;          ///< its round number
  BlockId parent_id{};      ///< parent of the certified block
  Round parent_round = 0;   ///< parent's round (drives the locking rule)
  /// The signed (strong-)votes, canonically sorted by voter id.
  std::vector<Vote> votes;

  /// The genesis QC certifies the genesis block at round 0 with no votes.
  [[nodiscard]] bool is_genesis() const { return round == 0; }

  /// Sorts votes by voter id — call after assembly so equal QCs encode
  /// identically regardless of vote arrival order. Also the memo refresh
  /// point: mutating a QC after its digest() was computed requires a
  /// canonicalize() before digest() is meaningful again (the receive path
  /// never mutates, so decoded QCs need nothing).
  void canonicalize();

  /// Structural + cryptographic validity: >= quorum distinct voters, every
  /// vote matches (block_id, round), every signature verifies. The genesis
  /// QC is valid by definition.
  [[nodiscard]] bool verify(const crypto::KeyRegistry& registry,
                            std::size_t quorum) const;

  /// Digest binding the QC content (used inside block ids and as the
  /// identity key of per-QC bookkeeping). Memoized per object: a canonical
  /// QC's digest is taken several times on the hot path (block-id sealing,
  /// strength-tracker dedupe, commit-log keying), and the memo survives
  /// copies (tree insertion, proposal embedding) so each QC encodes once.
  [[nodiscard]] crypto::Sha256Digest digest() const;

  void encode(Encoder& enc) const;
  static QuorumCert decode(Decoder& dec);

  /// Minimum encoded size (no votes): bounds untrusted counts upstream.
  static constexpr std::size_t kMinEncodedBytes = 32 + 8 + 32 + 8 + 4;

  /// Semantic equality (the digest memo is identity-irrelevant).
  friend bool operator==(const QuorumCert& a, const QuorumCert& b) {
    return a.block_id == b.block_id && a.round == b.round &&
           a.parent_id == b.parent_id && a.parent_round == b.parent_round &&
           a.votes == b.votes;
  }

 private:
  mutable std::shared_ptr<const crypto::Sha256Digest> digest_memo_;
};

/// QCs (certified blocks) are ranked by round number (paper Sec. 2).
[[nodiscard]] bool ranks_higher(const QuorumCert& a, const QuorumCert& b);

}  // namespace sftbft::types
