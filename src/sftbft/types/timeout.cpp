#include "sftbft/types/timeout.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "sftbft/crypto/signature.hpp"

namespace sftbft::types {

Bytes TimeoutMsg::signing_bytes() const {
  Encoder enc;
  enc.str("sftbft/timeout");
  enc.u64(round);
  enc.u32(sender);
  enc.raw(high_qc.digest().bytes);
  return enc.take();
}

void TimeoutMsg::encode(Encoder& enc) const {
  enc.u64(round);
  enc.u32(sender);
  high_qc.encode(enc);
  sig.encode(enc);
}

TimeoutMsg TimeoutMsg::decode(Decoder& dec) {
  TimeoutMsg msg;
  msg.round = dec.u64();
  msg.sender = dec.u32();
  msg.high_qc = QuorumCert::decode(dec);
  msg.sig = crypto::Signature::decode(dec);
  return msg;
}

const QuorumCert& TimeoutCert::highest_qc() const {
  assert(!timeouts.empty());
  const TimeoutMsg* best = &timeouts.front();
  for (const TimeoutMsg& msg : timeouts) {
    if (msg.high_qc.round > best->high_qc.round) best = &msg;
  }
  return best->high_qc;
}

bool TimeoutCert::verify(const crypto::KeyRegistry& registry,
                         std::size_t quorum) const {
  if (timeouts.size() < quorum) return false;
  std::unordered_set<ReplicaId> senders;
  for (const TimeoutMsg& msg : timeouts) {
    if (msg.round != round) return false;
    if (msg.sender != msg.sig.signer) return false;
    if (!senders.insert(msg.sender).second) return false;
    if (!registry.verify(msg.sig, msg.signing_bytes())) return false;
  }
  return true;
}

void TimeoutCert::encode(Encoder& enc) const {
  enc.u64(round);
  enc.u32(static_cast<std::uint32_t>(timeouts.size()));
  for (const TimeoutMsg& msg : timeouts) msg.encode(enc);
}

TimeoutCert TimeoutCert::decode(Decoder& dec) {
  TimeoutCert tc;
  tc.round = dec.u64();
  const std::uint32_t count = dec.count(TimeoutMsg::kMinEncodedBytes);
  tc.timeouts.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    tc.timeouts.push_back(TimeoutMsg::decode(dec));
  }
  return tc;
}

}  // namespace sftbft::types
