#include "sftbft/types/timeout.hpp"

#include <algorithm>

#include "sftbft/crypto/signature.hpp"
#include "sftbft/crypto/verify_cache.hpp"

namespace sftbft::types {

Bytes TimeoutMsg::signing_bytes() const {
  return signing_bytes_for(round, sender, high_qc.round);
}

Bytes TimeoutMsg::signing_bytes_for(Round round, ReplicaId sender,
                                    Round high_qc_round) {
  Encoder enc;
  enc.str("sftbft/timeout");
  enc.u64(round);
  enc.u32(sender);
  enc.u64(high_qc_round);
  return enc.take();
}

void TimeoutMsg::encode(Encoder& enc) const {
  enc.u64(round);
  enc.u32(sender);
  high_qc.encode(enc);
  sig.encode(enc);
}

TimeoutMsg TimeoutMsg::decode(Decoder& dec) {
  TimeoutMsg msg;
  msg.round = dec.u64();
  msg.sender = dec.u32();
  msg.high_qc = QuorumCert::decode(dec);
  msg.sig = crypto::Signature::decode(dec);
  return msg;
}

bool TimeoutCert::add_timeout(const TimeoutMsg& msg) {
  if (!agg.fold(msg.sig)) return false;
  hqc_rounds.push_back(msg.high_qc.round);
  if (hqc_rounds.size() == 1 ||
      ranks_higher(msg.high_qc, high_qc)) {
    high_qc = msg.high_qc;
  }
  return true;
}

bool TimeoutCert::verify(const crypto::KeyRegistry& registry,
                         std::size_t quorum,
                         crypto::VerifyCache* cache) const {
  if (hqc_rounds.size() < quorum) return false;
  const std::vector<ReplicaId> senders = agg.signers.ids();
  if (senders.size() != hqc_rounds.size()) return false;
  // The representative QC must be exactly the members' max: a lower one
  // would let a Byzantine leader hide the quorum's progress.
  const Round max_round =
      *std::max_element(hqc_rounds.begin(), hqc_rounds.end());
  if (high_qc.round != max_round) return false;
  crypto::Sha256Digest memo_key;
  if (cache != nullptr) {
    Encoder enc;
    enc.str("sftbft/tc-verified");
    encode(enc);
    memo_key = crypto::Sha256::hash(enc.data());
    if (cache->seen_cert(memo_key)) return true;
  }
  const bool ok =
      registry.verify_aggregate(
          agg,
          [this, &senders](ReplicaId sender) {
            const std::size_t i = static_cast<std::size_t>(
                std::lower_bound(senders.begin(), senders.end(), sender) -
                senders.begin());
            return TimeoutMsg::signing_bytes_for(round, sender,
                                                 hqc_rounds[i]);
          },
          cache) &&
      high_qc.verify(registry, quorum, cache);
  if (ok && cache != nullptr) cache->note_cert(memo_key);
  return ok;
}

void TimeoutCert::encode(Encoder& enc) const {
  enc.u64(round);
  high_qc.encode(enc);
  enc.u32(static_cast<std::uint32_t>(hqc_rounds.size()));
  for (const Round r : hqc_rounds) enc.u64(r);
  agg.encode(enc);
}

TimeoutCert TimeoutCert::decode(Decoder& dec) {
  TimeoutCert tc;
  tc.round = dec.u64();
  tc.high_qc = QuorumCert::decode(dec);
  const std::uint32_t count = dec.count(8);
  tc.hqc_rounds.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    tc.hqc_rounds.push_back(dec.u64());
  }
  tc.agg = crypto::AggregateSignature::decode(dec);
  if (tc.agg.signers.popcount() != tc.hqc_rounds.size()) {
    throw CodecError("TimeoutCert: round count does not match signer bitmap");
  }
  return tc;
}

}  // namespace sftbft::types
