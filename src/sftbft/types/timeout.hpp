// Timeout messages and timeout certificates (paper Fig. 2, "Timeout").
//
// When a round timer expires the replica multicasts ⟨timeout, r, qc_high⟩_i.
// 2f + 1 distinct timeout messages for round r form a timeout certificate
// (TC) which advances the pacemaker to round r + 1 and lets the next leader
// justify proposing on top of the highest QC seen by the quorum.
//
// A timeout signature binds (round, sender, high_qc.round) — the *round* of
// the attached QC, not its digest (the LibraBFT v4 / DiemBFT-production
// layout). That makes the TC aggregatable without carrying every member's
// QC: the cert keeps one representative high QC (independently verified),
// the per-sender high-qc rounds in bitmap order, and a single aggregate
// signature — ⌈n/8⌉ + 32 bytes of signature material instead of a full
// 36-byte signature plus an entire embedded QC per member. Safety is
// unaffected: the QC a leader extends is verified on its own; the signed
// round only attests which round each member had certified when timing out.
#pragma once

#include <optional>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/aggregate.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/types/quorum_cert.hpp"

namespace sftbft::crypto {
class KeyRegistry;
class VerifyCache;
}

namespace sftbft::types {

struct TimeoutMsg {
  Round round = 0;
  ReplicaId sender = kNoReplica;
  QuorumCert high_qc;  ///< highest QC known to the sender
  crypto::Signature sig{};

  [[nodiscard]] Bytes signing_bytes() const;

  /// The signed bytes rebuilt from certificate parts (see file comment:
  /// the signature covers the high QC's round, not its digest).
  [[nodiscard]] static Bytes signing_bytes_for(Round round, ReplicaId sender,
                                               Round high_qc_round);

  void encode(Encoder& enc) const;
  static TimeoutMsg decode(Decoder& dec);

  /// Minimum encoded size (genesis high_qc): bounds untrusted timeout
  /// counts while decoding containers.
  static constexpr std::size_t kMinEncodedBytes =
      8 + 4 + QuorumCert::kMinEncodedBytes + (4 + 32);

  friend bool operator==(const TimeoutMsg&, const TimeoutMsg&) = default;
};

struct TimeoutCert {
  Round round = 0;
  /// The highest QC among the members' — the one the next leader extends.
  QuorumCert high_qc;
  /// Each member's attested high-qc round, in bitmap-bit (sender id) order.
  std::vector<Round> hqc_rounds;
  /// One aggregate over every member's timeout signing-bytes.
  crypto::AggregateSignature agg;

  /// Folds one timeout message in: attested round + signature; keeps
  /// `high_qc` as the max over folded members. Members must be folded in
  /// ascending sender order (collectors iterate an ordered map). Returns
  /// false (no-op) on a duplicate sender.
  bool add_timeout(const TimeoutMsg& msg);

  /// Highest QC carried by any member timeout — the next leader extends it.
  [[nodiscard]] const QuorumCert& highest_qc() const { return high_qc; }

  /// >= quorum distinct senders, the aggregate refolds over the attested
  /// rounds, the representative QC verifies and matches the members' max.
  [[nodiscard]] bool verify(const crypto::KeyRegistry& registry,
                            std::size_t quorum,
                            crypto::VerifyCache* cache = nullptr) const;

  void encode(Encoder& enc) const;
  static TimeoutCert decode(Decoder& dec);

  /// Minimum encoded size (empty cert with a genesis high_qc).
  static constexpr std::size_t kMinEncodedBytes =
      8 + QuorumCert::kMinEncodedBytes + 4 +
      crypto::AggregateSignature::kMinEncodedBytes;

  friend bool operator==(const TimeoutCert&, const TimeoutCert&) = default;
};

}  // namespace sftbft::types
