// Timeout messages and timeout certificates (paper Fig. 2, "Timeout").
//
// When a round timer expires the replica multicasts ⟨timeout, r, qc_high⟩_i.
// 2f + 1 distinct timeout messages for round r form a timeout certificate
// (TC) which advances the pacemaker to round r + 1 and lets the next leader
// justify proposing on top of the highest QC seen by the quorum.
#pragma once

#include <optional>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/signature.hpp"
#include "sftbft/types/quorum_cert.hpp"

namespace sftbft::crypto {
class KeyRegistry;
}

namespace sftbft::types {

struct TimeoutMsg {
  Round round = 0;
  ReplicaId sender = kNoReplica;
  QuorumCert high_qc;  ///< highest QC known to the sender
  crypto::Signature sig{};

  [[nodiscard]] Bytes signing_bytes() const;

  void encode(Encoder& enc) const;
  static TimeoutMsg decode(Decoder& dec);

  /// Minimum encoded size (genesis high_qc): bounds untrusted timeout
  /// counts while decoding certificates.
  static constexpr std::size_t kMinEncodedBytes =
      8 + 4 + QuorumCert::kMinEncodedBytes + (4 + 32);

  friend bool operator==(const TimeoutMsg&, const TimeoutMsg&) = default;
};

struct TimeoutCert {
  Round round = 0;
  std::vector<TimeoutMsg> timeouts;  ///< >= 2f+1 distinct senders

  /// Highest QC carried by any member timeout — the next leader extends it.
  [[nodiscard]] const QuorumCert& highest_qc() const;

  [[nodiscard]] bool verify(const crypto::KeyRegistry& registry,
                            std::size_t quorum) const;

  void encode(Encoder& enc) const;
  static TimeoutCert decode(Decoder& dec);

  friend bool operator==(const TimeoutCert&, const TimeoutCert&) = default;
};

}  // namespace sftbft::types
