#include "sftbft/types/transaction.hpp"

#include <algorithm>
#include <cstring>

namespace sftbft::types {

/// Synthetic body: the little-endian id repeated across `size` bytes. A
/// pure function of the record, so decode can skip it and re-encode
/// regenerates it bit-identically. Written in place into the encoder's
/// buffer by doubling memcpys (every copy source is 8-aligned in the
/// pattern) — this is the broadcast hot path, no staging copy.
void append_synthetic_body(Encoder& enc, std::uint64_t id,
                           std::uint32_t size) {
  if (size == 0) return;
  std::uint8_t pattern[8];
  for (int i = 0; i < 8; ++i) {
    pattern[i] = static_cast<std::uint8_t>(id >> (8 * i));
  }
  std::uint8_t* body = enc.grow(size);
  const std::size_t head = std::min<std::size_t>(8, size);
  std::memcpy(body, pattern, head);
  std::size_t filled = head;
  while (filled < size) {
    const std::size_t chunk = std::min<std::size_t>(filled, size - filled);
    std::memcpy(body + filled, body, chunk);
    filled += chunk;
  }
}

void Transaction::encode(Encoder& enc) const {
  enc.u64(id);
  enc.i64(submitted_at);
  enc.u32(size_bytes);
}

Transaction Transaction::decode(Decoder& dec) {
  Transaction txn;
  txn.id = dec.u64();
  txn.submitted_at = dec.i64();
  txn.size_bytes = dec.u32();
  return txn;
}

Payload Payload::referencing(std::vector<crypto::Sha256Digest> digests) {
  Payload payload;
  payload.mode = Mode::kDigests;
  payload.batch_digests = std::move(digests);
  return payload;
}

std::uint64_t Payload::total_bytes() const {
  std::uint64_t total = 0;
  for (const Transaction& txn : txns) total += txn.size_bytes;
  return total;
}

void Payload::encode(Encoder& enc) const {
  if (mode == Mode::kDigests) {
    enc.reserve(1 + 4 + batch_digests.size() * 32);
    enc.u8(static_cast<std::uint8_t>(mode));
    enc.u32(static_cast<std::uint32_t>(batch_digests.size()));
    for (const crypto::Sha256Digest& digest : batch_digests) {
      enc.raw(digest.bytes);
    }
    return;
  }
  enc.reserve(1 + 4 + txns.size() * Transaction::kRecordBytes +
              total_bytes());
  enc.u8(static_cast<std::uint8_t>(mode));
  enc.u32(static_cast<std::uint32_t>(txns.size()));
  for (const Transaction& txn : txns) {
    txn.encode(enc);
    append_synthetic_body(enc, txn.id, txn.size_bytes);
  }
}

Payload Payload::decode(Decoder& dec) {
  Payload payload;
  const std::uint8_t mode = dec.u8();
  if (mode > static_cast<std::uint8_t>(Mode::kDigests)) {
    throw CodecError("Payload: unknown mode tag");
  }
  payload.mode = static_cast<Mode>(mode);
  if (payload.mode == Mode::kDigests) {
    const std::uint32_t count = dec.count(32);
    payload.batch_digests.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      crypto::Sha256Digest digest;
      const Bytes raw = dec.raw(32);
      std::copy(raw.begin(), raw.end(), digest.bytes.begin());
      payload.batch_digests.push_back(digest);
    }
    return payload;
  }
  const std::uint32_t count = dec.count(Transaction::kRecordBytes);
  payload.txns.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Transaction txn = Transaction::decode(dec);
    // The body is derived from the record; integrity of the raw bytes is
    // the Envelope CRC's job, so skip instead of materializing ~450 KB.
    dec.skip(txn.size_bytes);
    payload.txns.push_back(txn);
  }
  return payload;
}

void Payload::encode_records(Encoder& enc) const {
  enc.u8(static_cast<std::uint8_t>(mode));
  if (mode == Mode::kDigests) {
    enc.u32(static_cast<std::uint32_t>(batch_digests.size()));
    for (const crypto::Sha256Digest& digest : batch_digests) {
      enc.raw(digest.bytes);
    }
    return;
  }
  enc.u32(static_cast<std::uint32_t>(txns.size()));
  for (const Transaction& txn : txns) txn.encode(enc);
}

crypto::Sha256Digest Payload::records_digest() const {
  if (records_memo_) return *records_memo_;
  refresh_records_digest();
  return *records_memo_;
}

void Payload::refresh_records_digest() const {
  Encoder enc;
  enc.reserve(1 + 4 + txns.size() * Transaction::kRecordBytes +
              batch_digests.size() * 32);
  encode_records(enc);
  records_memo_ = std::make_shared<const crypto::Sha256Digest>(
      crypto::Sha256::hash(enc.data()));
}

}  // namespace sftbft::types
