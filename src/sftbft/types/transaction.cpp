#include "sftbft/types/transaction.hpp"

namespace sftbft::types {

void Transaction::encode(Encoder& enc) const {
  enc.u64(id);
  enc.i64(submitted_at);
  enc.u32(size_bytes);
}

Transaction Transaction::decode(Decoder& dec) {
  Transaction txn;
  txn.id = dec.u64();
  txn.submitted_at = dec.i64();
  txn.size_bytes = dec.u32();
  return txn;
}

std::uint64_t Payload::total_bytes() const {
  std::uint64_t total = 0;
  for (const Transaction& txn : txns) total += txn.size_bytes;
  return total;
}

void Payload::encode(Encoder& enc) const {
  enc.u32(static_cast<std::uint32_t>(txns.size()));
  for (const Transaction& txn : txns) txn.encode(enc);
}

Payload Payload::decode(Decoder& dec) {
  Payload payload;
  const std::uint32_t count = dec.u32();
  payload.txns.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    payload.txns.push_back(Transaction::decode(dec));
  }
  return payload;
}

}  // namespace sftbft::types
