// Client transactions and block payloads.
//
// The paper's workload batches ~1000 transactions (~450 KB) per block. The
// simulator tracks per-transaction identity and submission time (for
// throughput / latency accounting) but does not materialize the 450 bytes of
// body per transaction; payload wire size is modelled explicitly instead.
#pragma once

#include <cstdint>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"

namespace sftbft::types {

struct Transaction {
  std::uint64_t id = 0;
  SimTime submitted_at = 0;
  /// Modelled body size in bytes (counted toward proposal wire size).
  std::uint32_t size_bytes = 0;

  void encode(Encoder& enc) const;
  static Transaction decode(Decoder& dec);

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// The ordered batch of transactions inside one block.
struct Payload {
  std::vector<Transaction> txns;

  [[nodiscard]] std::uint64_t total_bytes() const;

  void encode(Encoder& enc) const;
  static Payload decode(Decoder& dec);

  friend bool operator==(const Payload&, const Payload&) = default;
};

}  // namespace sftbft::types
