// Client transactions and block payloads.
//
// The paper's workload batches ~100 transactions (~450 KB) per block. The
// simulator tracks per-transaction identity and submission time (for
// throughput / latency accounting) and keeps bodies *synthetic*: on the
// wire each transaction is its record followed by `size_bytes` of body
// bytes derived deterministically from the id, so encoded frames really
// are block-sized — the transport charges exactly what it encodes — while
// decoded blocks stay compact in memory (bodies are skipped on decode and
// regenerated bit-identically on re-encode).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/sha256.hpp"

namespace sftbft::types {

struct Transaction {
  std::uint64_t id = 0;
  SimTime submitted_at = 0;
  /// Body size in bytes; the wire encoding carries this many synthetic
  /// body bytes (derived from `id`) after the record.
  std::uint32_t size_bytes = 0;

  /// Record bytes per transaction on the wire (id + submitted_at +
  /// size_bytes), before the body.
  static constexpr std::size_t kRecordBytes = 8 + 8 + 4;

  /// Record only (no body) — the digest-input form.
  void encode(Encoder& enc) const;
  static Transaction decode(Decoder& dec);

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// The ordered batch of transactions inside one block.
struct Payload {
  std::vector<Transaction> txns;

  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Canonical wire encoding: count, then per transaction the record
  /// followed by `size_bytes` of deterministic body bytes. decode() skips
  /// the bodies (they are a pure function of the record) and re-encoding a
  /// decoded payload is byte-identical.
  void encode(Encoder& enc) const;
  static Payload decode(Decoder& dec);

  /// Records only (count + per-txn record, no bodies): the block-header
  /// digest input. Bodies are derived from the records, so binding the
  /// records binds the full wire bytes while keeping header hashing O(txns)
  /// instead of O(block bytes).
  void encode_records(Encoder& enc) const;

  /// Digest of the record encoding — the quantity Block::compute_id binds.
  /// Memoized per object and preserved across copies. Producers (sealing a
  /// block whose payload they built) trust the memo — re-sealing an edited
  /// header, or an equivocation twin sharing the payload, skips the
  /// re-encode; verifiers (Block::id_is_valid) always refresh first so a
  /// tampered batch can never hide behind a stale digest.
  [[nodiscard]] crypto::Sha256Digest records_digest() const;

  /// Recomputes the memo unconditionally (the seal-time refresh point).
  void refresh_records_digest() const;

  /// Semantic equality (the digest memo is identity-irrelevant).
  friend bool operator==(const Payload& a, const Payload& b) {
    return a.txns == b.txns;
  }

 private:
  mutable std::shared_ptr<const crypto::Sha256Digest> records_memo_;
};

}  // namespace sftbft::types
