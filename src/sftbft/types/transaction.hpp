// Client transactions and block payloads.
//
// The paper's workload batches ~100 transactions (~450 KB) per block. The
// simulator tracks per-transaction identity and submission time (for
// throughput / latency accounting) and keeps bodies *synthetic*: on the
// wire each transaction is its record followed by `size_bytes` of body
// bytes derived deterministically from the id, so encoded frames really
// are block-sized — the transport charges exactly what it encodes — while
// decoded blocks stay compact in memory (bodies are skipped on decode and
// regenerated bit-identically on re-encode).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/sha256.hpp"

namespace sftbft::types {

struct Transaction {
  std::uint64_t id = 0;
  SimTime submitted_at = 0;
  /// Body size in bytes; the wire encoding carries this many synthetic
  /// body bytes (derived from `id`) after the record.
  std::uint32_t size_bytes = 0;

  /// Record bytes per transaction on the wire (id + submitted_at +
  /// size_bytes), before the body.
  static constexpr std::size_t kRecordBytes = 8 + 8 + 4;

  /// Record only (no body) — the digest-input form.
  void encode(Encoder& enc) const;
  static Transaction decode(Decoder& dec);

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// Appends `size` synthetic body bytes for transaction `id` to the encoder
/// (the little-endian id repeated). A pure function of the record, so
/// decoders skip the body and re-encoding regenerates it bit-identically.
/// Shared by Payload and dissem::Batch — the two wire containers that carry
/// full transaction bodies.
void append_synthetic_body(Encoder& enc, std::uint64_t id, std::uint32_t size);

/// The ordered batch of transactions inside one block — either carried
/// inline (the classic mode: full transaction records + synthetic bodies on
/// the wire) or referenced by content digest (dissemination mode: the block
/// names batches already pushed through sftbft::dissem, so proposals shrink
/// from ~450 KB to a handful of 32-byte digests).
struct Payload {
  enum class Mode : std::uint8_t { kInline = 0, kDigests = 1 };

  Mode mode = Mode::kInline;
  /// Inline mode: the transactions themselves.
  std::vector<Transaction> txns;
  /// Digest mode: content addresses of dissem::Batch objects, in order.
  std::vector<crypto::Sha256Digest> batch_digests;

  [[nodiscard]] bool is_digests() const { return mode == Mode::kDigests; }

  /// Builds a digest-mode payload referencing `digests`, in order.
  static Payload referencing(std::vector<crypto::Sha256Digest> digests);

  [[nodiscard]] std::uint64_t total_bytes() const;

  /// Canonical wire encoding: a one-byte mode tag, then either the inline
  /// form (count, then per transaction the record followed by `size_bytes`
  /// of deterministic body bytes) or the digest form (count + 32-byte batch
  /// digests). decode() skips inline bodies (they are a pure function of
  /// the record) and re-encoding a decoded payload is byte-identical.
  void encode(Encoder& enc) const;
  static Payload decode(Decoder& dec);

  /// Digest input form (no bodies): mode tag + per-txn records in inline
  /// mode, mode tag + batch digests in digest mode. Bodies are derived from
  /// the records, so binding the records binds the full wire bytes while
  /// keeping header hashing O(txns) instead of O(block bytes); in digest
  /// mode the batch digests themselves are content addresses, so binding
  /// them binds every referenced transaction.
  void encode_records(Encoder& enc) const;

  /// Digest of the record encoding — the quantity Block::compute_id binds.
  /// Memoized per object and preserved across copies. Producers (sealing a
  /// block whose payload they built) trust the memo — re-sealing an edited
  /// header, or an equivocation twin sharing the payload, skips the
  /// re-encode; verifiers (Block::id_is_valid) always refresh first so a
  /// tampered batch can never hide behind a stale digest.
  [[nodiscard]] crypto::Sha256Digest records_digest() const;

  /// Recomputes the memo unconditionally (the seal-time refresh point).
  void refresh_records_digest() const;

  /// Semantic equality (the digest memo is identity-irrelevant).
  friend bool operator==(const Payload& a, const Payload& b) {
    return a.mode == b.mode && a.txns == b.txns &&
           a.batch_digests == b.batch_digests;
  }

 private:
  mutable std::shared_ptr<const crypto::Sha256Digest> records_memo_;
};

}  // namespace sftbft::types
