#include "sftbft/types/vote.hpp"

namespace sftbft::types {

bool VoteMeta::endorses(Round voted_round, Round ancestor_round) const {
  if (ancestor_round == voted_round) return true;  // direct vote
  switch (mode) {
    case VoteMode::Plain:
      // Plain votes carry no history; only the direct vote counts, which is
      // exactly the regular (f-strong) commit rule.
      return false;
    case VoteMode::Marker:
      return marker < ancestor_round;
    case VoteMode::Intervals:
      return endorsed.contains(ancestor_round);
  }
  return false;
}

void VoteMeta::encode(Encoder& enc) const {
  enc.u8(static_cast<std::uint8_t>(mode));
  enc.u64(marker);
  endorsed.encode(enc);
}

VoteMeta VoteMeta::decode(Decoder& dec) {
  VoteMeta meta;
  const std::uint8_t mode_raw = dec.u8();
  if (mode_raw > 2) throw CodecError("VoteMeta: invalid mode");
  meta.mode = static_cast<VoteMode>(mode_raw);
  meta.marker = dec.u64();
  meta.endorsed = IntervalSet::decode(dec);
  return meta;
}

Bytes Vote::signing_bytes() const {
  return signing_bytes_for(block_id, round, voter, meta());
}

Bytes Vote::signing_bytes_for(const BlockId& block_id, Round round,
                              ReplicaId voter, const VoteMeta& meta) {
  Encoder enc;
  enc.str("sftbft/vote");
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.u32(voter);
  meta.encode(enc);
  return enc.take();
}

bool Vote::endorses_round(Round ancestor_round) const {
  // Inline rather than via meta(): this is on the strength tracker's hot
  // loop, and meta() would copy the interval set per call.
  if (ancestor_round == round) return true;
  switch (mode) {
    case VoteMode::Plain:
      return false;
    case VoteMode::Marker:
      return marker < ancestor_round;
    case VoteMode::Intervals:
      return endorsed.contains(ancestor_round);
  }
  return false;
}

void Vote::encode(Encoder& enc) const {
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.u32(voter);
  meta().encode(enc);
  sig.encode(enc);
}

Vote Vote::decode(Decoder& dec) {
  Vote vote;
  const Bytes id_raw = dec.raw(32);
  std::copy(id_raw.begin(), id_raw.end(), vote.block_id.bytes.begin());
  vote.round = dec.u64();
  vote.voter = dec.u32();
  VoteMeta meta = VoteMeta::decode(dec);
  vote.mode = meta.mode;
  vote.marker = meta.marker;
  vote.endorsed = std::move(meta.endorsed);
  vote.sig = crypto::Signature::decode(dec);
  return vote;
}

}  // namespace sftbft::types
