#include "sftbft/types/vote.hpp"

namespace sftbft::types {

Bytes Vote::signing_bytes() const {
  Encoder enc;
  enc.str("sftbft/vote");
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.u32(voter);
  enc.u8(static_cast<std::uint8_t>(mode));
  enc.u64(marker);
  endorsed.encode(enc);
  return enc.take();
}

bool Vote::endorses_round(Round ancestor_round) const {
  if (ancestor_round == round) return true;  // direct vote for the block
  switch (mode) {
    case VoteMode::Plain:
      // Plain votes carry no history; only the direct vote counts, which is
      // exactly the regular (f-strong) commit rule.
      return false;
    case VoteMode::Marker:
      return marker < ancestor_round;
    case VoteMode::Intervals:
      return endorsed.contains(ancestor_round);
  }
  return false;
}

void Vote::encode(Encoder& enc) const {
  enc.raw(block_id.bytes);
  enc.u64(round);
  enc.u32(voter);
  enc.u8(static_cast<std::uint8_t>(mode));
  enc.u64(marker);
  endorsed.encode(enc);
  sig.encode(enc);
}

Vote Vote::decode(Decoder& dec) {
  Vote vote;
  const Bytes id_raw = dec.raw(32);
  std::copy(id_raw.begin(), id_raw.end(), vote.block_id.bytes.begin());
  vote.round = dec.u64();
  vote.voter = dec.u32();
  const std::uint8_t mode_raw = dec.u8();
  if (mode_raw > 2) throw CodecError("Vote: invalid mode");
  vote.mode = static_cast<VoteMode>(mode_raw);
  vote.marker = dec.u64();
  vote.endorsed = IntervalSet::decode(dec);
  vote.sig = crypto::Signature::decode(dec);
  return vote;
}

}  // namespace sftbft::types
