// Votes and strong-votes (paper Sec. 2.2, Fig. 4, Sec. 3.4).
//
// A plain DiemBFT vote is ⟨vote, B, r⟩_i. The SFT strong-vote additionally
// carries either
//   * a `marker` — the largest round of any block the voter ever voted for
//     that conflicts with B (Fig. 4), or
//   * an interval set `I` of round numbers the vote endorses (Sec. 3.4's
//     generalization, which buys liveness under Byzantine faults).
// The endorsement predicate implemented by `endorses_round()` is the paper's:
// a strong-vote for B' endorses a round-r block B iff B = B', or B' extends B
// and (marker < r | r ∈ I).
#pragma once

#include <cstdint>
#include <memory>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/interval_set.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/sha256.hpp"
#include "sftbft/crypto/signature.hpp"

namespace sftbft::types {

/// Block identity is the SHA-256 digest of the block's canonical header.
using BlockId = crypto::Sha256Digest;

/// How much voting-history information a vote carries.
enum class VoteMode : std::uint8_t {
  Plain = 0,        ///< original DiemBFT: no history
  Marker = 1,       ///< SFT with one marker (Fig. 4)
  Intervals = 2,    ///< SFT with an endorsed-interval set (Sec. 3.4)
};

struct Vote {
  BlockId block_id{};
  Round round = 0;
  ReplicaId voter = kNoReplica;
  VoteMode mode = VoteMode::Plain;
  /// Largest conflicting voted round (Marker mode); 0 if none.
  Round marker = 0;
  /// Endorsed rounds (Intervals mode); empty otherwise.
  IntervalSet endorsed;
  crypto::Signature sig{};

  /// Canonical bytes covered by the signature (everything except `sig`).
  /// Deliberately NOT memoized: signature verification must re-derive the
  /// bytes from the fields actually present, or an in-process tamper (the
  /// adversary layer's history forging, tests' lie-without-resigning
  /// probes) could verify against stale bytes. Digest memoization lives on
  /// the identity digests (QuorumCert::digest, Payload::records_digest)
  /// where no signature check depends on it.
  [[nodiscard]] Bytes signing_bytes() const;

  /// Whether this vote endorses an ancestor block at `ancestor_round`.
  /// Precondition: the caller has established that the voted block extends
  /// the ancestor (or equals it — a vote always endorses its own block).
  [[nodiscard]] bool endorses_round(Round ancestor_round) const;

  void encode(Encoder& enc) const;
  static Vote decode(Decoder& dec);

  /// Minimum encoded size (empty interval set): used to bound untrusted
  /// vote counts while decoding certificates.
  static constexpr std::size_t kMinEncodedBytes =
      32 + 8 + 4 + 1 + 8 + 4 + (4 + 32);

  friend bool operator==(const Vote&, const Vote&) = default;
};

}  // namespace sftbft::types
