// Votes and strong-votes (paper Sec. 2.2, Fig. 4, Sec. 3.4).
//
// A plain DiemBFT vote is ⟨vote, B, r⟩_i. The SFT strong-vote additionally
// carries either
//   * a `marker` — the largest round of any block the voter ever voted for
//     that conflicts with B (Fig. 4), or
//   * an interval set `I` of round numbers the vote endorses (Sec. 3.4's
//     generalization, which buys liveness under Byzantine faults).
// The endorsement predicate implemented by `endorses_round()` is the paper's:
// a strong-vote for B' endorses a round-r block B iff B = B', or B' extends B
// and (marker < r | r ∈ I).
//
// The SFT history a vote carries (mode/marker/intervals) is split out as
// `VoteMeta`: certificates keep one compact meta per voter — the strength
// tracker needs it per voter — while their signature portion collapses to a
// single aggregate (see quorum_cert.hpp).
#pragma once

#include <cstdint>
#include <memory>

#include "sftbft/common/codec.hpp"
#include "sftbft/common/interval_set.hpp"
#include "sftbft/common/types.hpp"
#include "sftbft/crypto/sha256.hpp"
#include "sftbft/crypto/signature.hpp"

namespace sftbft::types {

/// Block identity is the SHA-256 digest of the block's canonical header.
using BlockId = crypto::Sha256Digest;

/// How much voting-history information a vote carries.
enum class VoteMode : std::uint8_t {
  Plain = 0,        ///< original DiemBFT: no history
  Marker = 1,       ///< SFT with one marker (Fig. 4)
  Intervals = 2,    ///< SFT with an endorsed-interval set (Sec. 3.4)
};

/// The SFT metadata of one vote — everything the strength tracker reads,
/// and everything a certificate must keep per voter.
struct VoteMeta {
  VoteMode mode = VoteMode::Plain;
  /// Largest conflicting voted round (Marker mode); 0 if none.
  Round marker = 0;
  /// Endorsed rounds (Intervals mode); empty otherwise.
  IntervalSet endorsed;

  /// The paper's endorsement predicate for a vote cast at `voted_round`
  /// (see file comment; the caller established the chain relationship).
  [[nodiscard]] bool endorses(Round voted_round, Round ancestor_round) const;

  void encode(Encoder& enc) const;
  static VoteMeta decode(Decoder& dec);

  /// Minimum encoded size (empty interval set): bounds untrusted per-voter
  /// meta counts while decoding certificates.
  static constexpr std::size_t kMinEncodedBytes = 1 + 8 + 4;

  friend bool operator==(const VoteMeta&, const VoteMeta&) = default;
};

struct Vote {
  BlockId block_id{};
  Round round = 0;
  ReplicaId voter = kNoReplica;
  VoteMode mode = VoteMode::Plain;
  /// Largest conflicting voted round (Marker mode); 0 if none.
  Round marker = 0;
  /// Endorsed rounds (Intervals mode); empty otherwise.
  IntervalSet endorsed;
  crypto::Signature sig{};

  /// This vote's SFT metadata, as certificates carry it.
  [[nodiscard]] VoteMeta meta() const { return {mode, marker, endorsed}; }

  /// Canonical bytes covered by the signature (everything except `sig`).
  /// Deliberately NOT memoized: signature verification must re-derive the
  /// bytes from the fields actually present, or an in-process tamper (the
  /// adversary layer's history forging, tests' lie-without-resigning
  /// probes) could verify against stale bytes. Digest memoization lives on
  /// the identity digests (QuorumCert::digest, Payload::records_digest)
  /// where no signature check depends on it.
  [[nodiscard]] Bytes signing_bytes() const;

  /// The same canonical bytes rebuilt from certificate parts — what an
  /// aggregate verifier recomputes per bitmap member.
  [[nodiscard]] static Bytes signing_bytes_for(const BlockId& block_id,
                                               Round round, ReplicaId voter,
                                               const VoteMeta& meta);

  /// Whether this vote endorses an ancestor block at `ancestor_round`.
  /// Precondition: the caller has established that the voted block extends
  /// the ancestor (or equals it — a vote always endorses its own block).
  [[nodiscard]] bool endorses_round(Round ancestor_round) const;

  void encode(Encoder& enc) const;
  static Vote decode(Decoder& dec);

  /// Minimum encoded size (empty interval set): used to bound untrusted
  /// vote counts while decoding vote containers.
  static constexpr std::size_t kMinEncodedBytes =
      32 + 8 + 4 + VoteMeta::kMinEncodedBytes + (4 + 32);

  friend bool operator==(const Vote&, const Vote&) = default;
};

}  // namespace sftbft::types
