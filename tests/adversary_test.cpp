// The adversary subsystem end-to-end: programmable Byzantine coalitions
// running through the real engines (both protocols), the central FaultSpec
// validator, and the SafetyAuditor's verdicts — the live companion to the
// scripted Appendix-C regression in naive_counter_test.cpp.
#include <gtest/gtest.h>

#include "sftbft/adversary/strategy.hpp"
#include "sftbft/engine/deployment.hpp"
#include "sftbft/harness/auditor.hpp"
#include "sftbft/harness/scenario.hpp"

namespace sftbft {
namespace {

using adversary::ByzantineSpec;
using adversary::Strategy;
using engine::Deployment;
using engine::FaultSpec;
using engine::Protocol;

// ---------------------------------------------------------------------------
// Central FaultSpec validation (one shared validator for both engines).

TEST(FaultValidationTest, AcceptsWellFormedSpecs) {
  std::vector<FaultSpec> faults{
      FaultSpec::honest(), FaultSpec::crash_at_time(seconds(1)),
      FaultSpec::silent(), FaultSpec::crash_restart(seconds(1), seconds(2)),
      FaultSpec::byzantine({Strategy::EquivocatingLeader,
                            Strategy::AmnesiaVoter})};
  EXPECT_NO_THROW(engine::validate_faults(faults, 5));
}

TEST(FaultValidationTest, RejectsOversizedFaultList) {
  std::vector<FaultSpec> faults(5, FaultSpec::honest());
  EXPECT_THROW(engine::validate_faults(faults, 4), std::invalid_argument);
}

TEST(FaultValidationTest, RejectsRestartBeforeCrash) {
  std::vector<FaultSpec> faults{FaultSpec::crash_restart(seconds(2),
                                                         seconds(2))};
  EXPECT_THROW(engine::validate_faults(faults, 4), std::invalid_argument);
}

TEST(FaultValidationTest, RejectsByzantineWithoutStrategies) {
  std::vector<FaultSpec> faults{FaultSpec::byzantine(ByzantineSpec{})};
  EXPECT_THROW(engine::validate_faults(faults, 4), std::invalid_argument);
}

TEST(FaultValidationTest, RejectsDuplicateStrategies) {
  std::vector<FaultSpec> faults{FaultSpec::byzantine(
      {Strategy::AmnesiaVoter, Strategy::AmnesiaVoter})};
  EXPECT_THROW(engine::validate_faults(faults, 4), std::invalid_argument);
}

TEST(FaultValidationTest, RejectsWithholdWithoutDelay) {
  std::vector<FaultSpec> faults{
      FaultSpec::byzantine({Strategy::WithholdRelease})};
  EXPECT_THROW(engine::validate_faults(faults, 4), std::invalid_argument);
}

TEST(FaultValidationTest, RejectsMalformedSuppressionSets) {
  ByzantineSpec empty_set;
  empty_set.strategies = {Strategy::SelectiveSender};
  EXPECT_THROW(engine::validate_faults({FaultSpec::byzantine(empty_set)}, 4),
               std::invalid_argument);

  ByzantineSpec out_of_range;
  out_of_range.strategies = {Strategy::SelectiveSender};
  out_of_range.suppress_to = {9};
  EXPECT_THROW(
      engine::validate_faults({FaultSpec::byzantine(out_of_range)}, 4),
      std::invalid_argument);

  ByzantineSpec self_suppress;
  self_suppress.strategies = {Strategy::SelectiveSender};
  self_suppress.suppress_to = {0};  // replica 0 suppressing itself
  EXPECT_THROW(
      engine::validate_faults({FaultSpec::byzantine(self_suppress)}, 4),
      std::invalid_argument);

  ByzantineSpec stray_list;  // suppress_to without the strategy
  stray_list.strategies = {Strategy::AmnesiaVoter};
  stray_list.suppress_to = {1};
  EXPECT_THROW(engine::validate_faults({FaultSpec::byzantine(stray_list)}, 4),
               std::invalid_argument);
}

TEST(FaultValidationTest, DeploymentRunsTheSharedValidator) {
  engine::DeploymentConfig config;
  config.n = 4;
  config.topology = net::Topology::uniform(4, millis(1));
  config.faults = {FaultSpec::byzantine(ByzantineSpec{})};
  EXPECT_THROW(Deployment deployment(std::move(config)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Coalition scenarios through the engines, audited globally.

struct AuditedRun {
  std::unique_ptr<harness::SafetyAuditor> auditor;
  std::unique_ptr<Deployment> deployment;
};

AuditedRun run_coalition(Protocol protocol, consensus::CountingRule counting,
                         std::uint32_t n, std::uint32_t c,
                         ByzantineSpec spec, SimDuration duration) {
  harness::Scenario s;
  s.protocol = protocol;
  s.n = n;
  s.mode = consensus::CoreMode::SftMarker;
  s.counting = counting;
  s.topo = harness::Scenario::Topo::Uniform;
  s.delta = millis(20);
  s.jitter = millis(5);
  s.jitter_frac = 0;
  s.leader_processing = millis(10);
  s.streamlet_delta_bound = millis(50);
  s.streamlet_echo = true;  // fork-side replicas recover within the round
  s.verify_signatures = false;
  s.max_batch = 10;
  s.txn_size_bytes = 450;
  s.seed = 7;
  s.byzantine_count = c;
  s.byzantine = std::move(spec);

  AuditedRun run;
  run.auditor = std::make_unique<harness::SafetyAuditor>(
      harness::SafetyAuditor::Config{protocol, n});
  harness::SafetyAuditor& auditor = *run.auditor;
  engine::AuditTaps taps = auditor.taps();
  run.deployment = std::make_unique<Deployment>(
      s.to_deployment_config(),
      [&auditor](ReplicaId replica, const types::Block& block,
                 std::uint32_t strength, SimTime now) {
        auditor.on_commit(replica, block, strength, now);
      },
      std::move(taps));
  run.deployment->start();
  run.deployment->run_for(duration);
  return run;
}

ByzantineSpec fig9_playbook() {
  ByzantineSpec spec;
  spec.strategies = {Strategy::EquivocatingLeader, Strategy::AmnesiaVoter};
  return spec;
}

class CoalitionTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(CoalitionTest, VoteHistoryRuleStaysCleanUnderFig9Coalition) {
  constexpr std::uint32_t kN = 7, kF = 2, kC = 2;
  AuditedRun run = run_coalition(GetParam(), consensus::CountingRule::Sft, kN,
                                 kC, fig9_playbook(), seconds(10));

  const adversary::Coalition* coalition = run.deployment->coalition();
  ASSERT_NE(coalition, nullptr);
  EXPECT_EQ(coalition->size(), kC);
  EXPECT_GT(coalition->stats().equivocations, 0u);
  EXPECT_GT(coalition->stats().forged_votes, 0u);
  EXPECT_FALSE(coalition->forks().empty());

  // The attack ran, strong commits happened, and the paper's promise held:
  // no conflicting or unsound x-strong commit at any threshold x >= c.
  EXPECT_GT(run.auditor->claims(), 0u);
  EXPECT_EQ(run.auditor->max_claimed(), 2 * kF) << "strong commits expected";
  EXPECT_TRUE(run.auditor->clean_at(kC));
  EXPECT_TRUE(run.auditor->violations().empty());

  // Honest ledgers agree on the common prefix despite the forks.
  const auto& ledger0 = run.deployment->ledger(0);
  for (ReplicaId id = 1; id < kN; ++id) {
    const auto& ledger = run.deployment->ledger(id);
    const Height common =
        std::min(ledger0.tip().value_or(0), ledger.tip().value_or(0));
    for (Height h = 1; h <= common; ++h) {
      ASSERT_EQ(ledger0.at(h).block_id, ledger.at(h).block_id)
          << "conflicting commit at height " << h << " on replica " << id;
    }
  }
}

TEST_P(CoalitionTest, NaiveCountingIsCaughtByTheAuditor) {
  constexpr std::uint32_t kN = 7, kF = 2, kC = 2;
  AuditedRun run =
      run_coalition(GetParam(), consensus::CountingRule::NaiveAllIndirect, kN,
                    kC, fig9_playbook(), seconds(10));

  // The Appendix-C strawman claims strengths the truthful markers deny;
  // the auditor must detect at least one unsound claim above f.
  EXPECT_GT(run.auditor->violations_at(kF + 1), 0u);
  bool found_unsound = false;
  for (const auto& violation : run.auditor->violations()) {
    if (violation.kind ==
        harness::SafetyAuditor::Violation::Kind::UnsoundClaim) {
      found_unsound = true;
      EXPECT_GT(violation.claimed, violation.supported);
    }
  }
  EXPECT_TRUE(found_unsound);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, CoalitionTest,
                         ::testing::Values(Protocol::DiemBft,
                                           Protocol::Streamlet),
                         [](const auto& info) {
                           return std::string(
                               engine::protocol_name(info.param));
                         });

TEST(AdversaryTest, WithholdReleaseDelaysButDoesNotKillTheCluster) {
  ByzantineSpec spec;
  spec.strategies = {Strategy::WithholdRelease};
  spec.withhold_delay = millis(400);
  AuditedRun run = run_coalition(Protocol::DiemBft,
                                 consensus::CountingRule::Sft, 7, 1,
                                 std::move(spec), seconds(8));
  ASSERT_NE(run.deployment->coalition(), nullptr);
  EXPECT_GT(run.deployment->coalition()->stats().withheld, 0u);
  EXPECT_GT(run.deployment->ledger(0).tip().value_or(0), 0u);
  EXPECT_TRUE(run.auditor->violations().empty());
}

TEST(AdversaryTest, SelectiveSenderSuppressesWithoutBreakingSafety) {
  ByzantineSpec spec;
  spec.strategies = {Strategy::SelectiveSender};
  spec.suppress_to = {2, 3};
  AuditedRun run = run_coalition(Protocol::DiemBft,
                                 consensus::CountingRule::Sft, 7, 1,
                                 std::move(spec), seconds(8));
  ASSERT_NE(run.deployment->coalition(), nullptr);
  EXPECT_GT(run.deployment->coalition()->stats().suppressed, 0u);
  EXPECT_GT(run.deployment->ledger(0).tip().value_or(0), 0u);
  EXPECT_TRUE(run.auditor->violations().empty());
}

TEST(AdversaryTest, HonestCoreEscapeHatchesRefuseByzantineSlots) {
  engine::DeploymentConfig config;
  config.n = 4;
  config.topology = net::Topology::uniform(4, millis(1));
  config.faults = {FaultSpec::honest(),
                   FaultSpec::byzantine({Strategy::AmnesiaVoter})};
  Deployment deployment(std::move(config));
  EXPECT_NO_THROW(deployment.diem_core(0));
  EXPECT_THROW(deployment.diem_core(1), std::logic_error);
  EXPECT_THROW(deployment.engine(1).restart(), std::logic_error);
  EXPECT_EQ(deployment.honest_count(), 3u);
}

TEST(AdversaryTest, ScenarioPlacementKeepsTheMetricsAnchorHonest) {
  harness::Scenario s;
  s.n = 7;
  s.byzantine_count = 2;
  s.byzantine = fig9_playbook();
  const auto faults = s.effective_faults();
  ASSERT_EQ(faults.size(), 7u);
  EXPECT_EQ(faults[0].kind, FaultSpec::Kind::Honest);
  std::uint32_t byzantine = 0;
  for (const auto& fault : faults) {
    if (fault.kind == FaultSpec::Kind::Byzantine) ++byzantine;
  }
  EXPECT_EQ(byzantine, 2u);
}

}  // namespace
}  // namespace sftbft
