// BlockTree: fork-aware chain structure — insertion, orphan adoption,
// ancestry/conflict queries, common ancestors, 3-chain detection.
#include <gtest/gtest.h>

#include "sftbft/chain/block_tree.hpp"

namespace sftbft::chain {
namespace {

using types::Block;

Block child_of(const Block& parent, Round round) {
  Block block;
  block.parent_id = parent.id;
  block.round = round;
  block.height = parent.height + 1;
  block.proposer = static_cast<ReplicaId>(round % 4);
  block.qc.block_id = parent.id;
  block.qc.round = parent.round;
  block.seal();
  return block;
}

class BlockTreeTest : public ::testing::Test {
 protected:
  BlockTree tree_;
  Block genesis_ = tree_.genesis();
};

TEST_F(BlockTreeTest, StartsWithGenesisOnly) {
  EXPECT_EQ(tree_.size(), 1u);
  EXPECT_TRUE(tree_.contains(genesis_.id));
}

TEST_F(BlockTreeTest, InsertChain) {
  const Block b1 = child_of(genesis_, 1);
  const Block b2 = child_of(b1, 2);
  EXPECT_EQ(tree_.insert(b1), BlockTree::InsertResult::Inserted);
  EXPECT_EQ(tree_.insert(b2), BlockTree::InsertResult::Inserted);
  EXPECT_EQ(tree_.insert(b1), BlockTree::InsertResult::Duplicate);
  EXPECT_EQ(tree_.size(), 3u);
}

TEST_F(BlockTreeTest, RejectsBadHeight) {
  Block bad = child_of(genesis_, 1);
  bad.height = 5;
  bad.seal();
  EXPECT_EQ(tree_.insert(bad), BlockTree::InsertResult::Rejected);
}

TEST_F(BlockTreeTest, RejectsNonIncreasingRound) {
  const Block b1 = child_of(genesis_, 1);
  tree_.insert(b1);
  Block bad = child_of(b1, 1);  // same round as parent
  EXPECT_EQ(tree_.insert(bad), BlockTree::InsertResult::Rejected);
}

TEST_F(BlockTreeTest, OrphanAdoptedWhenParentArrives) {
  const Block b1 = child_of(genesis_, 1);
  const Block b2 = child_of(b1, 2);
  const Block b3 = child_of(b2, 3);
  EXPECT_EQ(tree_.insert(b3), BlockTree::InsertResult::Orphaned);
  EXPECT_EQ(tree_.insert(b2), BlockTree::InsertResult::Orphaned);
  EXPECT_EQ(tree_.orphan_count(), 2u);
  EXPECT_EQ(tree_.insert(b1), BlockTree::InsertResult::Inserted);
  // b2 and b3 adopted transitively.
  EXPECT_TRUE(tree_.contains(b2.id));
  EXPECT_TRUE(tree_.contains(b3.id));
  EXPECT_EQ(tree_.orphan_count(), 0u);
}

TEST_F(BlockTreeTest, ExtendsAndConflicts) {
  const Block b1 = child_of(genesis_, 1);
  const Block b2 = child_of(b1, 2);
  const Block fork = child_of(b1, 3);  // sibling of b2
  tree_.insert(b1);
  tree_.insert(b2);
  tree_.insert(fork);

  EXPECT_TRUE(tree_.extends(b2.id, b1.id));
  EXPECT_TRUE(tree_.extends(b2.id, genesis_.id));
  EXPECT_TRUE(tree_.extends(b2.id, b2.id));  // reflexive
  EXPECT_FALSE(tree_.extends(b1.id, b2.id));
  EXPECT_FALSE(tree_.conflicts(b2.id, b1.id));
  EXPECT_TRUE(tree_.conflicts(b2.id, fork.id));
  EXPECT_TRUE(tree_.conflicts(fork.id, b2.id));
}

TEST_F(BlockTreeTest, CommonAncestor) {
  const Block b1 = child_of(genesis_, 1);
  const Block b2 = child_of(b1, 2);
  const Block b3 = child_of(b2, 3);
  const Block fork2 = child_of(b1, 4);
  const Block fork3 = child_of(fork2, 5);
  for (const Block* blk : {&b1, &b2, &b3, &fork2, &fork3}) tree_.insert(*blk);

  EXPECT_EQ(tree_.common_ancestor(b3.id, fork3.id).id, b1.id);
  EXPECT_EQ(tree_.common_ancestor(b3.id, b2.id).id, b2.id);
  EXPECT_EQ(tree_.common_ancestor(b3.id, b3.id).id, b3.id);
}

TEST_F(BlockTreeTest, Path) {
  const Block b1 = child_of(genesis_, 1);
  const Block b2 = child_of(b1, 2);
  const Block b3 = child_of(b2, 3);
  for (const Block* blk : {&b1, &b2, &b3}) tree_.insert(*blk);

  const auto path = tree_.path(b1.id, b3.id);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0]->id, b2.id);
  EXPECT_EQ(path[1]->id, b3.id);

  EXPECT_TRUE(tree_.path(b3.id, b1.id).empty());  // wrong direction
}

TEST_F(BlockTreeTest, ThreeChainDetection) {
  const Block b1 = child_of(genesis_, 1);
  const Block b2 = child_of(b1, 2);
  const Block b3 = child_of(b2, 3);
  for (const Block* blk : {&b1, &b2, &b3}) tree_.insert(*blk);

  const auto chain = tree_.three_chain_from(b1.id);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->first->id, b2.id);
  EXPECT_EQ(chain->second->id, b3.id);
  EXPECT_FALSE(tree_.three_chain_from(b2.id).has_value());
}

TEST_F(BlockTreeTest, ThreeChainRequiresConsecutiveRounds) {
  const Block b1 = child_of(genesis_, 1);
  const Block b2 = child_of(b1, 2);
  const Block b4 = child_of(b2, 4);  // round gap
  for (const Block* blk : {&b1, &b2, &b4}) tree_.insert(*blk);
  EXPECT_FALSE(tree_.three_chain_from(b1.id).has_value());
}

TEST_F(BlockTreeTest, ChildrenTracksEquivocation) {
  const Block b1 = child_of(genesis_, 1);
  const Block c1 = child_of(b1, 2);
  Block c2 = child_of(b1, 2);
  c2.proposer = 3;  // different content, same round: equivocation
  c2.seal();
  tree_.insert(b1);
  tree_.insert(c1);
  tree_.insert(c2);
  EXPECT_EQ(tree_.children_of(b1.id).size(), 2u);
}

TEST_F(BlockTreeTest, QueriesOnUnknownIdsAreSafe) {
  types::BlockId unknown{};
  unknown.bytes[0] = 0xff;
  EXPECT_FALSE(tree_.contains(unknown));
  EXPECT_EQ(tree_.get(unknown), nullptr);
  EXPECT_FALSE(tree_.extends(unknown, genesis_.id));
  EXPECT_FALSE(tree_.conflicts(unknown, genesis_.id));
  EXPECT_TRUE(tree_.children_of(unknown).empty());
  EXPECT_FALSE(tree_.three_chain_from(unknown).has_value());
}

}  // namespace
}  // namespace sftbft::chain
