// Canonical binary codec: round-trips, bounds checking, canonical-bytes
// stability (signatures and digests depend on it).
#include <gtest/gtest.h>

#include "sftbft/common/codec.hpp"

namespace sftbft {
namespace {

TEST(Codec, ScalarRoundTrip) {
  Encoder enc;
  enc.u8(0xab);
  enc.u16(0xbeef);
  enc.u32(0xdeadbeef);
  enc.u64(0x0123456789abcdefULL);
  enc.i64(-42);
  enc.boolean(true);
  enc.boolean(false);

  Decoder dec(enc.data());
  EXPECT_EQ(dec.u8(), 0xab);
  EXPECT_EQ(dec.u16(), 0xbeef);
  EXPECT_EQ(dec.u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.i64(), -42);
  EXPECT_TRUE(dec.boolean());
  EXPECT_FALSE(dec.boolean());
  EXPECT_TRUE(dec.exhausted());
}

TEST(Codec, BytesAndStrings) {
  Encoder enc;
  enc.bytes(Bytes{1, 2, 3});
  enc.str("hello");
  enc.bytes({});  // empty is legal

  Decoder dec(enc.data());
  EXPECT_EQ(dec.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(dec.str(), "hello");
  EXPECT_TRUE(dec.bytes().empty());
  EXPECT_TRUE(dec.exhausted());
}

TEST(Codec, RawHasNoLengthPrefix) {
  Encoder enc;
  enc.raw(Bytes{9, 8, 7});
  EXPECT_EQ(enc.data().size(), 3u);
  Decoder dec(enc.data());
  EXPECT_EQ(dec.raw(3), (Bytes{9, 8, 7}));
}

TEST(Codec, TruncatedInputThrows) {
  Encoder enc;
  enc.u64(7);
  Decoder dec(enc.data());
  dec.u32();
  EXPECT_THROW(dec.u64(), CodecError);
}

TEST(Codec, TruncatedBytesThrows) {
  Encoder enc;
  enc.u32(100);  // claims 100 bytes follow
  enc.u8(1);
  Decoder dec(enc.data());
  EXPECT_THROW(dec.bytes(), CodecError);
}

TEST(Codec, InvalidBooleanThrows) {
  const Bytes raw = {2};
  Decoder dec(raw);
  EXPECT_THROW(dec.boolean(), CodecError);
}

TEST(Codec, LittleEndianLayout) {
  Encoder enc;
  enc.u32(0x01020304);
  EXPECT_EQ(enc.data(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(Codec, CanonicalBytesAreDeterministic) {
  auto encode = [] {
    Encoder enc;
    enc.u64(12345);
    enc.str("block");
    return enc.take();
  };
  EXPECT_EQ(encode(), encode());
}

TEST(Codec, RemainingTracksPosition) {
  Encoder enc;
  enc.u64(1);
  enc.u64(2);
  Decoder dec(enc.data());
  EXPECT_EQ(dec.remaining(), 16u);
  dec.u64();
  EXPECT_EQ(dec.remaining(), 8u);
}

}  // namespace
}  // namespace sftbft
