// Cross-engine conformance: the kernel extraction's acceptance suite. One
// identical Scenario — same topology, workload, fault list, Byzantine
// coalition — must run on ALL THREE engines (DiemBFT, chained HotStuff,
// Streamlet) with: commits and cross-replica agreement, a clean
// SafetyAuditor at strength thresholds >= the coalition size, identical
// validate_faults rejections, and exact wire parity (charged bytes ==
// Envelope::encode().size()) for the new HotStuff message tags.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "sftbft/engine/deployment.hpp"
#include "sftbft/harness/auditor.hpp"
#include "sftbft/harness/scenario.hpp"
#include "sftbft/hotstuff/hotstuff.hpp"
#include "sftbft/lightclient/light_client.hpp"

namespace sftbft {
namespace {

using engine::Deployment;
using engine::FaultSpec;
using engine::Protocol;

/// The one scenario every engine must run unmodified.
harness::Scenario base_scenario(Protocol protocol) {
  harness::Scenario s;
  s.name = "conformance";
  s.protocol = protocol;
  s.n = 7;  // f = 2
  s.mode = consensus::CoreMode::SftMarker;
  s.topo = harness::Scenario::Topo::Uniform;
  s.delta = millis(10);
  s.intra = millis(10);
  s.jitter = millis(2);
  s.jitter_frac = 0;
  s.leader_processing = millis(5);
  s.base_timeout = millis(500);
  s.streamlet_delta_bound = millis(30);
  s.max_batch = 10;
  s.txn_size_bytes = 100;
  s.verify_signatures = true;
  s.duration = seconds(10);
  s.warmup = seconds(1);
  s.tail = seconds(2);
  s.seed = 23;
  return s;
}

TEST(Conformance, IdenticalFaultScenarioRunsOnAllThreeEngines) {
  // Crash + silent faults in one list, identical across engines; surviving
  // replicas must agree on the committed prefix within each deployment.
  for (const Protocol protocol : engine::kAllProtocols) {
    harness::Scenario s = base_scenario(protocol);
    s.faults.resize(s.n);
    s.faults[3] = FaultSpec::crash_at_time(seconds(3));
    s.faults[5] = FaultSpec::silent();

    Deployment deployment(s.to_deployment_config());
    deployment.start();
    deployment.run_for(s.duration);

    const auto& ledger0 = deployment.ledger(0);
    ASSERT_GT(ledger0.committed_blocks(), 5u)
        << engine::protocol_name(protocol);
    for (ReplicaId id = 1; id < s.n; ++id) {
      if (id == 3) continue;  // crashed
      const auto& ledger = deployment.ledger(id);
      const Height common =
          std::min(ledger0.tip().value_or(0), ledger.tip().value_or(0));
      ASSERT_GT(common, 0u) << engine::protocol_name(protocol);
      for (Height h = 1; h <= common; ++h) {
        ASSERT_EQ(ledger0.at(h).block_id, ledger.at(h).block_id)
            << engine::protocol_name(protocol) << " height " << h
            << " replica " << id;
      }
    }
  }
}

TEST(Conformance, ByzantineCoalitionStaysAuditedCleanOnAllThreeEngines) {
  // The paper's acceptance bar, engine-generic: with a coalition of size
  // c = 2 running the Appendix-C playbook under the VoteHistory counting
  // rule, the global auditor must stay clean at every threshold x >= c.
  const std::uint32_t c = 2;
  for (const Protocol protocol : engine::kAllProtocols) {
    harness::Scenario s = base_scenario(protocol);
    s.verify_signatures = false;  // attack fidelity, not crypto, is tested
    s.byzantine_count = c;
    s.byzantine.strategies = {adversary::Strategy::EquivocatingLeader,
                              adversary::Strategy::AmnesiaVoter};

    harness::SafetyAuditor auditor({protocol, s.n});
    Deployment deployment(
        s.to_deployment_config(),
        [&auditor](ReplicaId replica, const types::Block& block,
                   std::uint32_t strength, SimTime now) {
          auditor.on_commit(replica, block, strength, now);
        },
        auditor.taps());
    deployment.start();
    deployment.run_for(s.duration);

    ASSERT_NE(deployment.coalition(), nullptr);
    EXPECT_EQ(deployment.coalition()->size(), c);
    EXPECT_GT(auditor.claims(), 0u) << engine::protocol_name(protocol);
    EXPECT_GT(deployment.ledger(0).committed_blocks(), 0u)
        << engine::protocol_name(protocol);
    // Clean at every threshold >= c (clean_at covers all higher levels).
    EXPECT_TRUE(auditor.clean_at(c)) << engine::protocol_name(protocol);
  }
}

TEST(Conformance, ValidateFaultsRejectionsIdenticalAcrossEngines) {
  // One malformed-fault catalogue; every engine must reject every entry at
  // Deployment construction (the single shared validator), and accept the
  // well-formed control.
  using Make = std::function<void(harness::Scenario&)>;
  const std::vector<Make> malformed = {
      [](harness::Scenario& s) {  // restart before crash
        s.faults[1] = FaultSpec::crash_restart(seconds(5), seconds(4));
      },
      [](harness::Scenario& s) {  // Byzantine with no strategies
        s.faults[1] = FaultSpec::byzantine(adversary::ByzantineSpec{});
      },
      [](harness::Scenario& s) {  // WithholdRelease without a delay
        adversary::ByzantineSpec spec;
        spec.strategies = {adversary::Strategy::WithholdRelease};
        s.faults[1] = FaultSpec::byzantine(std::move(spec));
      },
      [](harness::Scenario& s) {  // SelectiveSender suppressing itself
        adversary::ByzantineSpec spec;
        spec.strategies = {adversary::Strategy::SelectiveSender};
        spec.suppress_to = {1};
        s.faults[1] = FaultSpec::byzantine(std::move(spec));
      },
      [](harness::Scenario& s) {  // corrupt rate out of range
        s.gst = seconds(1);
        s.faults[1] =
            FaultSpec::corrupt_links({.rate = 1.5, .max_flips = 1,
                                      .peers = {}});
      },
  };

  for (const Protocol protocol : engine::kAllProtocols) {
    for (std::size_t i = 0; i < malformed.size(); ++i) {
      harness::Scenario s = base_scenario(protocol);
      s.faults.assign(s.n, FaultSpec::honest());
      malformed[i](s);
      EXPECT_THROW(Deployment deployment(s.to_deployment_config()),
                   std::invalid_argument)
          << engine::protocol_name(protocol) << " malformed case " << i;
    }
    // Control: a well-formed mixed list constructs fine on every engine.
    harness::Scenario s = base_scenario(protocol);
    s.faults.assign(s.n, FaultSpec::honest());
    s.faults[2] = FaultSpec::crash_restart(seconds(2), seconds(4));
    s.faults[4] = FaultSpec::silent();
    EXPECT_NO_THROW(Deployment deployment(s.to_deployment_config()))
        << engine::protocol_name(protocol);
  }
}

TEST(Conformance, HotStuffWireTagsChargeExactCanonicalBytes) {
  // Wire parity for the new 0x2x tag registry entries: the transport
  // charges (and the receiver is handed) exactly encode().size() for every
  // HotStuff-tagged frame, and the tags survive the Envelope decode path.
  sim::Scheduler sched;
  net::SimTransport transport(sched, net::Topology::uniform(4, millis(1)),
                              {}, 1);
  std::uint64_t received_bytes = 0;
  std::uint64_t received_frames = 0;
  transport.set_handler(1, [&](const net::Envelope& env, std::size_t bytes) {
    EXPECT_TRUE(net::wire_type_known(static_cast<std::uint8_t>(env.type)));
    received_bytes += bytes;
    ++received_frames;
  });

  crypto::KeyRegistry registry(4, 9);
  types::Proposal proposal;
  proposal.block = types::Block::genesis();
  proposal.sig = registry.signer_for(0).sign(proposal.signing_bytes());
  types::Vote vote;
  vote.voter = 0;
  vote.sig = registry.signer_for(0).sign(vote.signing_bytes());
  types::TimeoutMsg timeout;
  timeout.sender = 0;
  timeout.sig = registry.signer_for(0).sign(timeout.signing_bytes());
  types::SyncRequest sync_req{.requester = 0, .from_height = 0};
  types::SyncResponse sync_resp;

  std::vector<net::Envelope> frames = {
      net::Envelope::pack(net::WireType::kHProposal, 0, proposal),
      net::Envelope::pack(net::WireType::kHVote, 0, vote),
      net::Envelope::pack(net::WireType::kHTimeout, 0, timeout),
      net::Envelope::pack(net::WireType::kHSyncRequest, 0, sync_req),
      net::Envelope::pack(net::WireType::kHSyncResponse, 0, sync_resp),
  };
  std::uint64_t expected = 0;
  for (net::Envelope& env : frames) {
    expected += env.encode().size();
    transport.send(1, std::move(env));
  }
  sched.run_until_idle();

  EXPECT_EQ(received_frames, frames.size());
  EXPECT_EQ(received_bytes, expected);
  EXPECT_EQ(transport.stats().total_bytes(), expected);

  // The HotStuff tag set and the DiemBFT tag set never collide (a frame is
  // attributable to its stack), while stats labels stay comparable.
  EXPECT_NE(net::kHotStuffWires.proposal, net::kDiemBftWires.proposal);
  EXPECT_STREQ(net::wire_type_name(net::WireType::kHProposal), "proposal");
  EXPECT_STREQ(net::wire_type_name(net::WireType::kHVote), "vote");
}

TEST(Conformance, HotStuffEndToEndWireTrafficAndLightClientProofs) {
  // A full HotStuff run over the real transport: traffic flows under the
  // shared stats labels with zero decode drops, strong commits happen, and
  // the Sec.-5 light-client proof path (kernel machinery) verifies against
  // a HotStuff core exactly as it does on DiemBFT.
  harness::Scenario s = base_scenario(Protocol::HotStuff);
  const auto config = s.to_deployment_config();
  Deployment deployment(config);
  deployment.start();
  deployment.run_for(s.duration);

  const auto& stats = deployment.net_stats();
  EXPECT_GT(stats.for_type("proposal").count, 0u);
  EXPECT_GT(stats.for_type("vote").count, 0u);
  EXPECT_EQ(stats.decode_drops(), 0u);
  ASSERT_GT(deployment.ledger(0).committed_blocks(), 5u);

  // Strong commits above the regular level must have happened (SFT on the
  // HotStuff rules), and at least one must be provable to a light client.
  const auto entries = deployment.ledger(0).snapshot();
  const std::uint32_t f = s.f();
  lightclient::LightClient client(deployment.registry(), s.n);
  bool proved = false;
  for (const auto& entry : entries) {
    if (entry.strength <= f) continue;
    const auto proof = lightclient::build_proof(
        deployment.chained_core(0), entry.block_id, entry.strength);
    if (proof && client.verify(*proof)) {
      proved = true;
      break;
    }
  }
  EXPECT_TRUE(proved) << "no verifiable strong-commit proof on HotStuff";
}

TEST(Conformance, TinyStreamletDeploymentCommitsAtFZero) {
  // n = 3 => f = 0: a certified triple supports only strength 0, which is
  // still a commit (the kernel's triple helper distinguishes "no triple"
  // from "triple at strength 0" — regression guard).
  harness::Scenario s = base_scenario(Protocol::Streamlet);
  s.n = 3;
  s.mode = consensus::CoreMode::Plain;
  s.duration = seconds(6);
  Deployment deployment(s.to_deployment_config());
  deployment.start();
  deployment.run_for(s.duration);
  EXPECT_GT(deployment.ledger(0).committed_blocks(), 0u);
}

TEST(Conformance, ConcurrentScenarioRunsAreDeterministic) {
  // The bench --jobs contract: run_scenario calls are hermetic (each builds
  // its own scheduler/PKI/transport/engines; the only process-global is the
  // thread-safe logger), so concurrent runs of the same scenario must
  // reproduce the serial result bit-for-bit.
  harness::Scenario s = base_scenario(Protocol::HotStuff);
  s.duration = seconds(5);
  const harness::ScenarioResult serial = run_scenario(s);

  harness::ScenarioResult a, b;
  std::thread ta([&] { a = run_scenario(s); });
  std::thread tb([&] { b = run_scenario(s); });
  ta.join();
  tb.join();

  for (const harness::ScenarioResult* result : {&a, &b}) {
    EXPECT_EQ(result->summary.committed_blocks,
              serial.summary.committed_blocks);
    EXPECT_EQ(result->summary.committed_txns, serial.summary.committed_txns);
    EXPECT_EQ(result->total_messages, serial.total_messages);
    EXPECT_EQ(result->total_message_bytes, serial.total_message_bytes);
    EXPECT_EQ(result->window_blocks, serial.window_blocks);
  }
}

TEST(Conformance, PlacementHelperPinsSpread) {
  // Satellite: the shared placement policy, pinned. n = 10, count = 3 over
  // [1, 9] with stride 3 -> ids 1, 4, 7.
  const auto none = [](ReplicaId) { return false; };
  EXPECT_EQ(harness::spread_placements(10, 3, none),
            (std::vector<ReplicaId>{1, 4, 7}));
  // A taken slot probes forward to the next free id.
  EXPECT_EQ(harness::spread_placements(
                10, 3, [](ReplicaId id) { return id == 4; }),
            (std::vector<ReplicaId>{1, 5, 7}));
  // Collisions within one batch probe forward too (count > span/stride).
  EXPECT_EQ(harness::spread_placements(4, 3, none),
            (std::vector<ReplicaId>{1, 2, 3}));
  // id 0 is never placed, and full occupancy stops placement.
  const auto all_taken = [](ReplicaId) { return true; };
  EXPECT_TRUE(harness::spread_placements(10, 3, all_taken).empty());
  for (std::uint32_t count = 1; count < 12; ++count) {
    for (const ReplicaId id : harness::spread_placements(10, count, none)) {
      EXPECT_NE(id, 0u);
    }
  }
  // The three Scenario knobs all route through this helper: byzantine,
  // corrupt, and crash-restart placements land on distinct ids.
  harness::Scenario s;
  s.n = 10;
  s.gst = seconds(1);
  s.byzantine_count = 2;
  s.byzantine.strategies = {adversary::Strategy::AmnesiaVoter};
  s.corrupt_count = 2;
  s.corrupt = {.rate = 0.5, .max_flips = 2, .peers = {}};
  s.crash_restart_count = 2;
  const auto faults = s.effective_faults();
  EXPECT_EQ(faults[0].kind, FaultSpec::Kind::Honest);  // anchor stays
  std::uint32_t byz = 0, corrupt = 0, crash = 0;
  for (const auto& fault : faults) {
    byz += fault.kind == FaultSpec::Kind::Byzantine;
    corrupt += fault.kind == FaultSpec::Kind::Corrupt;
    crash += fault.kind == FaultSpec::Kind::CrashRestart;
  }
  EXPECT_EQ(byz, 2u);
  EXPECT_EQ(corrupt, 2u);
  EXPECT_EQ(crash, 2u);
}

TEST(Conformance, DisseminationModeConformanceOnAllThreeEngines) {
  // The dissemination acceptance pass: the SAME scenario as the fault +
  // coalition tests — crash churn, a silent replica, and an equivocating /
  // amnesiac coalition — but with digest-referencing proposals and the
  // batch data plane on. Every engine must still commit real transactions,
  // the honest replicas must agree on the committed prefix, the auditor
  // must stay clean, and no frame may be dropped at the demux (the 0x4x
  // tags are wired into every engine's envelope switch).
  const std::uint32_t c = 2;
  for (const Protocol protocol : engine::kAllProtocols) {
    harness::Scenario s = base_scenario(protocol);
    s.verify_signatures = false;
    s.dissemination = true;
    s.dissem.batch_max_txns = 50;
    s.byzantine_count = c;
    s.byzantine.strategies = {adversary::Strategy::EquivocatingLeader,
                              adversary::Strategy::AmnesiaVoter};
    s.faults.resize(s.n);
    s.faults[3] = FaultSpec::crash_at_time(seconds(5));
    s.faults[5] = FaultSpec::silent();

    harness::SafetyAuditor auditor({protocol, s.n});
    Deployment deployment(
        s.to_deployment_config(),
        [&auditor](ReplicaId replica, const types::Block& block,
                   std::uint32_t strength, SimTime now) {
          auditor.on_commit(replica, block, strength, now);
        },
        auditor.taps());
    deployment.start();
    deployment.run_for(s.duration);

    const auto& ledger0 = deployment.ledger(0);
    ASSERT_GT(ledger0.committed_blocks(), 0u)
        << engine::protocol_name(protocol);
    ASSERT_GT(ledger0.committed_txns(), 0u)
        << engine::protocol_name(protocol)
        << ": digest proposals committed no transactions";
    EXPECT_EQ(deployment.net_stats().decode_drops(), 0u)
        << engine::protocol_name(protocol);
    // Data plane actually ran: batches moved between replicas.
    EXPECT_GT(deployment.net_stats().for_type("batch_push").count, 0u)
        << engine::protocol_name(protocol);

    // Honest replicas agree on the committed prefix.
    for (ReplicaId id = 1; id < s.n; ++id) {
      const auto& fault = deployment.engine(id).fault();
      if (fault.kind != engine::FaultSpec::Kind::Honest) continue;
      const auto& ledger = deployment.ledger(id);
      const Height common =
          std::min(ledger0.tip().value_or(0), ledger.tip().value_or(0));
      for (Height h = 1; h <= common; ++h) {
        ASSERT_EQ(ledger0.at(h).block_id, ledger.at(h).block_id)
            << engine::protocol_name(protocol) << " height " << h
            << " replica " << id;
      }
    }
    EXPECT_TRUE(auditor.clean_at(c)) << engine::protocol_name(protocol);
  }
}

TEST(Conformance, BatchWithholdingLivenessViaPull) {
  // A coalition that packs batches and proposes their digests but never
  // pushes the bytes (Strategy::BatchWithholder). Honest replicas must not
  // stall on those proposals: the vote-availability gate parks the vote,
  // the pull protocol fetches the withheld batches (the withholder still
  // serves BatchRequest — refusing would just exclude its blocks), and
  // commits keep flowing on every engine.
  for (const Protocol protocol : engine::kAllProtocols) {
    harness::Scenario s = base_scenario(protocol);
    s.verify_signatures = false;
    s.dissemination = true;
    s.dissem.batch_max_txns = 50;
    // Ask every peer in the first pull window so a withheld batch is
    // recovered within one round-trip even in lock-step Streamlet rounds.
    s.dissem.pull_fanout = s.n - 1;
    s.dissem.pull_retry = millis(50);
    s.byzantine_count = 2;
    s.byzantine.strategies = {adversary::Strategy::BatchWithholder};

    Deployment deployment(s.to_deployment_config());
    deployment.start();
    deployment.run_for(s.duration);

    const auto& stats = deployment.net_stats();
    ASSERT_GT(deployment.ledger(0).committed_blocks(), 0u)
        << engine::protocol_name(protocol);
    EXPECT_GT(deployment.ledger(0).committed_txns(), 0u)
        << engine::protocol_name(protocol);
    // The pull path fired: withheld digests were requested and served.
    EXPECT_GT(stats.for_type("batch_req").count, 0u)
        << engine::protocol_name(protocol);
    EXPECT_GT(stats.for_type("batch_resp").count, 0u)
        << engine::protocol_name(protocol);
  }
}

}  // namespace
}  // namespace sftbft
