// obs::CriticalPathAnalyzer: segment attribution on a hand-built causal
// graph (every milestone controlled, every segment value pinned), the
// partition property — per committed block the segments sum EXACTLY to the
// measured commit latency (the ISSUE's 1% acceptance bound, met with zero
// slack) — on real traced runs of all three engines, and a Fig. 7b-style
// asymmetric-latency scenario where a known slow link must dominate the
// attributed critical path everywhere.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sftbft/harness/scenario.hpp"
#include "sftbft/obs/critical_path.hpp"
#include "sftbft/obs/trace.hpp"

namespace sftbft::obs {
namespace {

std::uint64_t seg(const BlockAttribution& attr, Segment segment) {
  return attr.segments[static_cast<std::size_t>(segment)];
}

// ---------------------------------------------------------------------------
// Synthetic causal graph: one committed block + one successor cycle

TEST(CriticalPathAnalyzer, AttributesEverySegmentOnAHandBuiltTrace) {
  std::vector<TraceEvent> events;
  // Block (height 1, round 1), created at t=1000 by replica 1.
  events.push_back(span_event("block", "proposed", 1, 1, 1000, 1000,
                              {"round", 1}, {"height", 1}));
  events.push_back(
      span_event("block", "received", 0, 1, 1000, 1400, {"round", 1}));
  events.push_back(instant_event("dissem", "payload_ready", 0, 1500,
                                 {"round", 1}, {"height", 1}));
  events.push_back(
      instant_event("block", "vote_f1", 2, 1800, {"round", 1}, {"height", 1}));
  events.push_back(instant_event("block", "vote_quorum", 2, 2600, {"round", 1},
                                 {"height", 1}));
  events.push_back(
      span_event("block", "certified", 2, 1, 1000, 3000, {"round", 1}));
  // Successor (height 2, round 2): created 500us later (pacemaker idle).
  events.push_back(span_event("block", "proposed", 2, 2, 3500, 3500,
                              {"round", 2}, {"height", 2}));
  events.push_back(
      span_event("block", "received", 0, 2, 3500, 3800, {"round", 2}));
  events.push_back(
      instant_event("block", "vote_f1", 3, 4000, {"round", 2}, {"height", 2}));
  events.push_back(instant_event("block", "vote_quorum", 3, 4400, {"round", 2},
                                 {"height", 2}));
  events.push_back(
      span_event("block", "certified", 3, 2, 3500, 4600, {"round", 2}));
  // The commit observation on replica 0, 5000 - 1000 = 4000us latency.
  events.push_back(span_event("block", "committed", 0, 1, 1000, 5000,
                              {"round", 1}, {"strength", 1}));

  const CriticalPathResult result = CriticalPathAnalyzer::analyze(events);
  ASSERT_EQ(result.blocks.size(), 1u);
  const BlockAttribution& attr = result.blocks[0];
  EXPECT_EQ(attr.height, 1u);
  EXPECT_EQ(attr.round, 1u);
  EXPECT_EQ(attr.latency(), 4000u);
  // Own cycle 400/100/300/800/400, successor folds in 300/0/200/400/200,
  // the creation gap is idle (500) and the rest is delivery (400).
  EXPECT_EQ(seg(attr, Segment::kProposalTransit), 400u + 300u);
  EXPECT_EQ(seg(attr, Segment::kDissemWait), 100u);
  EXPECT_EQ(seg(attr, Segment::kVoteGatherF1), 300u + 200u);
  EXPECT_EQ(seg(attr, Segment::kStragglerWait), 800u + 400u);
  EXPECT_EQ(seg(attr, Segment::kQcFormation), 400u + 200u);
  EXPECT_EQ(seg(attr, Segment::kPacemakerIdle), 500u);
  EXPECT_EQ(seg(attr, Segment::kCommitDelivery), 400u);
  EXPECT_EQ(attr.segment_sum(), attr.latency());
  EXPECT_EQ(result.dominant(), Segment::kStragglerWait);
  EXPECT_EQ(result.total_latency, 4000u);
}

TEST(CriticalPathAnalyzer, OutOfOrderMilestonesNeverBreakThePartition) {
  // A payload_ready AFTER the quorum (a straggler's batch arriving late)
  // must clamp to zero for the later milestones, not go negative.
  std::vector<TraceEvent> events;
  events.push_back(span_event("block", "proposed", 1, 1, 0, 0, {"round", 1},
                              {"height", 1}));
  events.push_back(span_event("block", "received", 0, 1, 0, 100, {"round", 1}));
  events.push_back(instant_event("dissem", "payload_ready", 0, 900,
                                 {"round", 1}, {"height", 1}));
  events.push_back(
      instant_event("block", "vote_f1", 2, 300, {"round", 1}, {"height", 1}));
  events.push_back(instant_event("block", "vote_quorum", 2, 500, {"round", 1},
                                 {"height", 1}));
  events.push_back(span_event("block", "certified", 2, 1, 0, 600, {"round", 1}));
  events.push_back(span_event("block", "committed", 0, 1, 0, 1000, {"round", 1},
                              {"strength", 1}));

  const CriticalPathResult result = CriticalPathAnalyzer::analyze(events);
  ASSERT_EQ(result.blocks.size(), 1u);
  const BlockAttribution& attr = result.blocks[0];
  EXPECT_EQ(seg(attr, Segment::kProposalTransit), 100u);
  EXPECT_EQ(seg(attr, Segment::kDissemWait), 800u);  // 100 -> 900
  EXPECT_EQ(seg(attr, Segment::kVoteGatherF1), 0u);  // clamped
  EXPECT_EQ(seg(attr, Segment::kStragglerWait), 0u);
  EXPECT_EQ(seg(attr, Segment::kQcFormation), 0u);
  EXPECT_EQ(seg(attr, Segment::kCommitDelivery), 100u);
  EXPECT_EQ(attr.segment_sum(), attr.latency());
}

// ---------------------------------------------------------------------------
// Real engines

harness::Scenario traced_scenario(engine::Protocol protocol) {
  harness::Scenario s;
  s.protocol = protocol;
  s.n = 7;
  s.topo = harness::Scenario::Topo::Uniform;
  s.delta = millis(20);
  s.jitter = millis(5);
  s.jitter_frac = 0;
  s.leader_processing = millis(10);
  s.streamlet_delta_bound = millis(50);
  s.verify_signatures = false;
  s.max_batch = 10;
  s.txn_size_bytes = 450;
  s.duration = seconds(12);
  s.warmup = seconds(1);
  s.tail = seconds(2);
  s.seed = 7;
  s.obs.enabled = true;
  s.obs.trace = true;
  return s;
}

TEST(CriticalPathConformance, SegmentsSumExactlyToCommitLatencyOnAllEngines) {
  for (const engine::Protocol protocol : engine::kAllProtocols) {
    const harness::ScenarioResult r =
        harness::run_scenario(traced_scenario(protocol));
    const CriticalPathResult& cp = r.critical_path;
    ASSERT_FALSE(cp.blocks.empty()) << engine::protocol_name(protocol);
    std::uint64_t latency_sum = 0;
    for (const BlockAttribution& attr : cp.blocks) {
      // The acceptance bound is 1%; the telescoping walk is an exact
      // partition, so pin equality outright.
      EXPECT_EQ(attr.segment_sum(), attr.latency())
          << engine::protocol_name(protocol) << " height " << attr.height;
      EXPECT_GT(attr.latency(), 0u);
      latency_sum += attr.latency();
    }
    EXPECT_EQ(cp.total_latency, latency_sum);
    // The milestone instrumentation explains the bulk of every commit: no
    // block leaves more than half its latency in the residual bucket.
    EXPECT_LT(cp.max_residual_frac(), 0.5)
        << engine::protocol_name(protocol);
  }
}

TEST(CriticalPathConformance, KnownSlowLinkDominatesTheAttributedPath) {
  // Fig. 7b in miniature: n = 7 (f = 2, quorum = 5) with four stragglers
  // (ids 1..4) behind 200ms-extra links over a 10ms base network. Only
  // three replicas are fast, so even with the leader's and collector's own
  // votes a quorum is short of 2f+1 until a vote crosses a straggler link:
  // the f+1 -> 2f+1 gap IS the slow link, every round, and the analyzer
  // must attribute the commit latency there on every engine.
  for (const engine::Protocol protocol : engine::kAllProtocols) {
    harness::Scenario s = traced_scenario(protocol);
    s.n = 7;
    s.delta = millis(10);
    s.jitter = 0;
    s.leader_processing = millis(5);
    s.straggler_count = 4;
    s.straggler_extra = millis(200);
    // Lock-step Streamlet: the 2-delta round must outlast the worst
    // proposal+vote leg (2 x 410ms) but no more — slack becomes idle.
    s.streamlet_delta_bound = millis(415);
    s.duration = seconds(30);
    const harness::ScenarioResult r = harness::run_scenario(s);
    const CriticalPathResult& cp = r.critical_path;
    ASSERT_FALSE(cp.blocks.empty()) << engine::protocol_name(protocol);
    EXPECT_EQ(cp.dominant(), Segment::kStragglerWait)
        << engine::protocol_name(protocol) << ": straggler share "
        << cp.share(Segment::kStragglerWait);
    EXPECT_GT(cp.share(Segment::kStragglerWait), 0.25)
        << engine::protocol_name(protocol);
  }
}

}  // namespace
}  // namespace sftbft::obs
