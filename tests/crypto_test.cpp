// Crypto substrate tests: SHA-256 against FIPS 180-4 vectors, HMAC-SHA-256
// against RFC 4231 vectors, and signature/PKI behaviour.
#include <gtest/gtest.h>

#include <string>

#include "sftbft/common/bytes.hpp"
#include "sftbft/crypto/sha256.hpp"
#include "sftbft/crypto/signature.hpp"

namespace sftbft::crypto {
namespace {

Bytes ascii(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(Sha256::hash({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::hash(ascii("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::hash(ascii("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: forces padding into a second block.
  const std::string block(64, 'a');
  EXPECT_EQ(Sha256::hash(ascii(block)).hex(),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes fits length in the same block; 56 does not.
  EXPECT_EQ(Sha256::hash(ascii(std::string(55, 'a'))).hex(),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(Sha256::hash(ascii(std::string(56, 'a'))).hex(),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(ascii(chunk));
  EXPECT_EQ(ctx.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = ascii("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha256 ctx;
    ctx.update(BytesView(data.data(), split));
    ctx.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(ctx.finalize(), Sha256::hash(data)) << "split=" << split;
  }
}

TEST(Sha256, ShortHexPrefix) {
  const Sha256Digest d = Sha256::hash(ascii("abc"));
  EXPECT_EQ(d.short_hex(), d.hex().substr(0, 8));
}

TEST(Sha256, DigestOrdering) {
  const Sha256Digest a = Sha256::hash(ascii("a"));
  const Sha256Digest b = Sha256::hash(ascii("b"));
  EXPECT_NE(a, b);
  EXPECT_TRUE((a < b) || (b < a));
}

// ------------------------------------------------------------ HMAC-SHA-256

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_sha256(key, ascii("Hi There")).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(
      hmac_sha256(ascii("Jefe"), ascii("what do ya want for nothing?")).hex(),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_sha256(key, data).hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);  // key longer than the block size gets hashed
  EXPECT_EQ(hmac_sha256(key, ascii("Test Using Larger Than Block-Size Key - "
                                   "Hash Key First"))
                .hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, DifferentKeysDiffer) {
  EXPECT_NE(hmac_sha256(ascii("k1"), ascii("msg")),
            hmac_sha256(ascii("k2"), ascii("msg")));
}

// -------------------------------------------------------------- signatures

TEST(Signature, SignVerifyRoundTrip) {
  KeyRegistry registry(4, 7);
  const Signer signer = registry.signer_for(2);
  const Bytes msg = ascii("vote for block 42");
  const Signature sig = signer.sign(msg);
  EXPECT_EQ(sig.signer, 2u);
  EXPECT_TRUE(registry.verify(sig, msg));
}

TEST(Signature, WrongMessageRejected) {
  KeyRegistry registry(4, 7);
  const Signature sig = registry.signer_for(0).sign(ascii("message A"));
  EXPECT_FALSE(registry.verify(sig, ascii("message B")));
}

TEST(Signature, ImpersonationRejected) {
  KeyRegistry registry(4, 7);
  const Bytes msg = ascii("msg");
  Signature sig = registry.signer_for(1).sign(msg);
  sig.signer = 3;  // claim to be replica 3 with replica 1's MAC
  EXPECT_FALSE(registry.verify(sig, msg));
}

TEST(Signature, TamperedMacRejected) {
  KeyRegistry registry(4, 7);
  const Bytes msg = ascii("msg");
  Signature sig = registry.signer_for(1).sign(msg);
  sig.mac[0] ^= 0x01;
  EXPECT_FALSE(registry.verify(sig, msg));
}

TEST(Signature, UnknownSignerRejected) {
  KeyRegistry registry(4, 7);
  Signature sig = registry.signer_for(1).sign(ascii("m"));
  sig.signer = 99;
  EXPECT_FALSE(registry.verify(sig, ascii("m")));
}

TEST(Signature, DeterministicAcrossRegistries) {
  // Two registries with the same (n, seed) must agree — replicas and the
  // test harness construct their own handles.
  KeyRegistry a(4, 123), b(4, 123);
  const Bytes msg = ascii("deterministic");
  EXPECT_EQ(a.signer_for(0).sign(msg), b.signer_for(0).sign(msg));
  EXPECT_TRUE(b.verify(a.signer_for(3).sign(msg), msg));
}

TEST(Signature, DistinctSeedsDistinctKeys) {
  KeyRegistry a(4, 1), b(4, 2);
  const Bytes msg = ascii("x");
  EXPECT_FALSE(b.verify(a.signer_for(0).sign(msg), msg));
}

TEST(Signature, SignerForOutOfRangeThrows) {
  KeyRegistry registry(4, 1);
  EXPECT_THROW((void)registry.signer_for(4), std::out_of_range);
}

}  // namespace
}  // namespace sftbft::crypto
