// DiemBftCore driven directly (no network): message-level validation,
// proposing, voting, QC formation, commit rules, stale-proposal handling —
// including the adversarial inputs a simulated honest network never sends.
#include <gtest/gtest.h>

#include "sftbft/consensus/diembft.hpp"

namespace sftbft::consensus {
namespace {

using types::Block;
using types::Proposal;
using types::QuorumCert;
using types::Vote;
using types::VoteMode;

constexpr std::uint32_t kN = 4;
constexpr std::uint32_t kF = 1;

struct Outbox {
  std::vector<std::pair<ReplicaId, Vote>> votes;
  std::vector<Proposal> proposals;
  std::vector<types::TimeoutMsg> timeouts;
  std::vector<std::tuple<types::BlockId, std::uint32_t, SimTime>> commits;
};

/// One core under test (replica `id`) with scripted peers.
class DiemBftCoreTest : public ::testing::Test {
 protected:
  DiemBftCoreTest() : registry_(std::make_shared<crypto::KeyRegistry>(kN, 2)) {
    CoreConfig config;
    config.id = 0;
    config.n = kN;
    config.mode = CoreMode::SftMarker;
    config.base_timeout = millis(1000);
    config.leader_processing = 0;
    config.max_batch = 5;
    DiemBftCore::Hooks hooks;
    hooks.send_vote = [this](ReplicaId to, const Vote& vote) {
      outbox_.votes.emplace_back(to, vote);
    };
    hooks.broadcast_proposal = [this](const Proposal& proposal) {
      outbox_.proposals.push_back(proposal);
    };
    hooks.broadcast_timeout = [this](const types::TimeoutMsg& msg) {
      outbox_.timeouts.push_back(msg);
    };
    hooks.on_commit = [this](const Block& block, std::uint32_t strength,
                             SimTime now) {
      outbox_.commits.emplace_back(block.id, strength, now);
    };
    core_ = std::make_unique<DiemBftCore>(config, sched_, registry_, pool_,
                                          std::move(hooks));
    core_->start();
  }

  /// Builds a valid signed proposal from scripted peer `proposer`.
  Proposal make_proposal(const Block& parent, Round round,
                         const QuorumCert& parent_qc) {
    Block block;
    block.parent_id = parent.id;
    block.round = round;
    block.height = parent.height + 1;
    block.proposer = static_cast<ReplicaId>(round % kN);
    block.qc = parent_qc;
    block.created_at = sched_.now();
    block.seal();
    Proposal proposal;
    proposal.block = block;
    proposal.sig = registry_->signer_for(block.proposer)
                       .sign(proposal.signing_bytes());
    return proposal;
  }

  /// QC for a block voted by all peers (markers 0).
  QuorumCert make_qc(const Block& block) {
    QuorumCert qc;
    qc.block_id = block.id;
    qc.round = block.round;
    qc.parent_id = block.parent_id;
    qc.parent_round = block.qc.round;
    for (ReplicaId voter = 0; voter < kN; ++voter) {
      Vote vote;
      vote.block_id = block.id;
      vote.round = block.round;
      vote.voter = voter;
      vote.mode = VoteMode::Marker;
      vote.marker = 0;
      vote.sig = registry_->signer_for(voter).sign(vote.signing_bytes());
      qc.add_vote(vote);
    }
    qc.canonicalize();
    return qc;
  }

  QuorumCert genesis_qc() {
    QuorumCert qc;
    qc.block_id = core_->tree().genesis_id();
    return qc;
  }

  sim::Scheduler sched_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  mempool::Mempool pool_;
  Outbox outbox_;
  std::unique_ptr<DiemBftCore> core_;
};

TEST_F(DiemBftCoreTest, VotesForValidProposal) {
  const auto proposal =
      make_proposal(core_->tree().genesis(), 1, genesis_qc());
  core_->on_proposal(proposal);
  ASSERT_EQ(outbox_.votes.size(), 1u);
  EXPECT_EQ(outbox_.votes[0].first, 2u);  // leader of round 2
  EXPECT_EQ(outbox_.votes[0].second.block_id, proposal.block.id);
  EXPECT_EQ(outbox_.votes[0].second.mode, VoteMode::Marker);
  EXPECT_EQ(core_->current_round(), 1u);
}

TEST_F(DiemBftCoreTest, RejectsWrongLeader) {
  auto proposal = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  proposal.block.proposer = 2;  // round 1's leader is 1
  proposal.block.seal();
  proposal.sig = registry_->signer_for(2).sign(proposal.signing_bytes());
  core_->on_proposal(proposal);
  EXPECT_TRUE(outbox_.votes.empty());
  EXPECT_FALSE(core_->tree().contains(proposal.block.id));
}

TEST_F(DiemBftCoreTest, RejectsBadSignature) {
  auto proposal = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  proposal.sig = registry_->signer_for(2).sign(proposal.signing_bytes());
  core_->on_proposal(proposal);
  EXPECT_TRUE(outbox_.votes.empty());
}

TEST_F(DiemBftCoreTest, RejectsTamperedBlockId) {
  auto proposal = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  proposal.block.payload.txns.push_back({.id = 1, .submitted_at = 0,
                                         .size_bytes = 1});
  // id no longer matches content; signature check also fails, but the id
  // check alone must reject.
  core_->on_proposal(proposal);
  EXPECT_TRUE(outbox_.votes.empty());
}

TEST_F(DiemBftCoreTest, NeverVotesTwicePerRound) {
  const auto proposal =
      make_proposal(core_->tree().genesis(), 1, genesis_qc());
  core_->on_proposal(proposal);
  // An equivocating leader sends a second round-1 block.
  auto second = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  second.block.created_at += 1;
  second.block.seal();
  second.sig = registry_->signer_for(1).sign(second.signing_bytes());
  core_->on_proposal(second);
  EXPECT_EQ(outbox_.votes.size(), 1u);  // voted only once in round 1
  // Both blocks are tracked, though (fork awareness).
  EXPECT_TRUE(core_->tree().contains(proposal.block.id));
  EXPECT_TRUE(core_->tree().contains(second.block.id));
}

TEST_F(DiemBftCoreTest, DropsStaleRoundProposal) {
  // Advance to round 3 via a chain of proposals.
  const auto p1 = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  core_->on_proposal(p1);
  const auto p2 = make_proposal(p1.block, 2, make_qc(p1.block));
  core_->on_proposal(p2);
  EXPECT_EQ(core_->current_round(), 2u);
  // A (different) round-1 proposal arrives now: stale, dropped entirely.
  auto stale = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  stale.block.created_at += 99;
  stale.block.seal();
  stale.sig = registry_->signer_for(1).sign(stale.signing_bytes());
  core_->on_proposal(stale);
  EXPECT_FALSE(core_->tree().contains(stale.block.id));
}

TEST_F(DiemBftCoreTest, OrphanProposalBufferedUntilParent) {
  const auto p1 = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  const auto p2 = make_proposal(p1.block, 2, make_qc(p1.block));
  core_->on_proposal(p2);  // parent unknown yet
  EXPECT_FALSE(core_->tree().contains(p2.block.id));
  core_->on_proposal(p1);  // parent arrives; p2 adopted and voted
  EXPECT_TRUE(core_->tree().contains(p2.block.id));
  EXPECT_EQ(outbox_.votes.size(), 2u);
}

TEST_F(DiemBftCoreTest, RegularCommitAtThreeChain) {
  // Chain rounds 1,2,3 then QC_3 via proposal 4: block 1 commits at f.
  const auto p1 = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  core_->on_proposal(p1);
  const auto p2 = make_proposal(p1.block, 2, make_qc(p1.block));
  core_->on_proposal(p2);
  const auto p3 = make_proposal(p2.block, 3, make_qc(p2.block));
  core_->on_proposal(p3);
  EXPECT_TRUE(outbox_.commits.empty());
  const auto p4 = make_proposal(p3.block, 4, make_qc(p3.block));
  core_->on_proposal(p4);
  ASSERT_FALSE(outbox_.commits.empty());
  EXPECT_EQ(std::get<0>(outbox_.commits[0]), p1.block.id);
  EXPECT_GE(std::get<1>(outbox_.commits[0]), kF);
  EXPECT_TRUE(core_->ledger().is_committed(1));
}

TEST_F(DiemBftCoreTest, StrengthRisesWithMoreQcs) {
  const auto p1 = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  core_->on_proposal(p1);
  const auto p2 = make_proposal(p1.block, 2, make_qc(p1.block));
  core_->on_proposal(p2);
  const auto p3 = make_proposal(p2.block, 3, make_qc(p2.block));
  core_->on_proposal(p3);
  const auto p4 = make_proposal(p3.block, 4, make_qc(p3.block));
  core_->on_proposal(p4);
  // Full-membership QCs (all 4 voters, markers 0): the 3-chain (1,2,3) has
  // n endorsers everywhere -> x = n - f - 1 = 2 = 2f immediately.
  EXPECT_EQ(core_->ledger().at(1).strength, 2 * kF);
}

TEST_F(DiemBftCoreTest, LeaderCollectsVotesAndProposes) {
  // Make replica 0 the collector: votes for a round-3 block (leader of
  // round 4 = 0). Build rounds 1..3 first.
  const auto p1 = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  core_->on_proposal(p1);
  const auto p2 = make_proposal(p1.block, 2, make_qc(p1.block));
  core_->on_proposal(p2);
  const auto p3 = make_proposal(p2.block, 3, make_qc(p2.block));
  core_->on_proposal(p3);
  ASSERT_TRUE(outbox_.proposals.empty());

  // Deliver the peers' round-3 votes (our own was sent via hook; feed it
  // back like the network would).
  for (const auto& [to, vote] : outbox_.votes) {
    if (vote.round == 3) core_->on_vote(vote);
  }
  for (ReplicaId voter = 1; voter < kN; ++voter) {
    Vote vote;
    vote.block_id = p3.block.id;
    vote.round = 3;
    vote.voter = voter;
    vote.mode = VoteMode::Marker;
    vote.sig = registry_->signer_for(voter).sign(vote.signing_bytes());
    core_->on_vote(vote);
  }
  sched_.run_until_idle();  // leader_processing = 0 -> immediate propose
  ASSERT_EQ(outbox_.proposals.size(), 1u);
  const Proposal& mine = outbox_.proposals[0];
  EXPECT_EQ(mine.block.round, 4u);
  EXPECT_EQ(mine.block.parent_id, p3.block.id);
  EXPECT_GE(mine.block.qc.votes.size(), 2 * kF + 1);
  EXPECT_EQ(core_->current_round(), 4u);
}

TEST_F(DiemBftCoreTest, IgnoresVotesWhenNotCollector) {
  const auto p1 = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  core_->on_proposal(p1);
  // Round-1 votes go to leader of round 2 (= replica 2), not to us.
  for (ReplicaId voter = 1; voter < kN; ++voter) {
    Vote vote;
    vote.block_id = p1.block.id;
    vote.round = 1;
    vote.voter = voter;
    vote.mode = VoteMode::Marker;
    vote.sig = registry_->signer_for(voter).sign(vote.signing_bytes());
    core_->on_vote(vote);
  }
  sched_.run_until_idle();
  EXPECT_TRUE(outbox_.proposals.empty());
}

TEST_F(DiemBftCoreTest, TimeoutBroadcastOnTimerExpiry) {
  sched_.run_for(millis(1100));  // round-1 timer (1000ms) fires
  ASSERT_EQ(outbox_.timeouts.size(), 1u);
  EXPECT_EQ(outbox_.timeouts[0].round, 1u);
  EXPECT_EQ(outbox_.timeouts[0].sender, 0u);
}

TEST_F(DiemBftCoreTest, TimeoutCertAdvancesRound) {
  for (ReplicaId sender = 1; sender < kN; ++sender) {
    types::TimeoutMsg msg;
    msg.round = 1;
    msg.sender = sender;
    msg.sig = registry_->signer_for(sender).sign(msg.signing_bytes());
    core_->on_timeout_msg(msg);
  }
  EXPECT_EQ(core_->current_round(), 2u);  // 3 = 2f+1 timeouts formed a TC
}

TEST_F(DiemBftCoreTest, StopSilencesEverything) {
  core_->stop();
  const auto p1 = make_proposal(core_->tree().genesis(), 1, genesis_qc());
  core_->on_proposal(p1);
  sched_.run_for(millis(2000));
  EXPECT_TRUE(outbox_.votes.empty());
  EXPECT_TRUE(outbox_.timeouts.empty());
}

}  // namespace
}  // namespace sftbft::consensus
