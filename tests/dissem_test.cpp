// sftbft::dissem — the dissemination data plane, unit by unit, plus an
// end-to-end digest-mode deployment smoke: batches are content-addressed
// (tampering is detected), the BatchStore's proposable state machine dedups
// commits across forks, the broadcaster's push/pull protocol moves batches
// between replicas over the real transport, the AdmissionFrontend enforces
// dedup / rate limits / backpressure, and a digest-mode run commits real
// transactions with proposal frames a fraction of the inline-mode size.
#include <gtest/gtest.h>

#include "sftbft/dissem/admission.hpp"
#include "sftbft/dissem/batch.hpp"
#include "sftbft/dissem/batch_store.hpp"
#include "sftbft/dissem/broadcaster.hpp"
#include "sftbft/harness/scenario.hpp"
#include "sftbft/net/sim_transport.hpp"

namespace sftbft::dissem {
namespace {

types::Transaction txn(std::uint64_t id, std::uint32_t size = 100) {
  return {.id = id, .submitted_at = 0, .size_bytes = size};
}

Batch make_batch(ReplicaId creator, std::uint64_t seq,
                 std::initializer_list<std::uint64_t> ids) {
  Batch batch;
  batch.creator = creator;
  batch.seq = seq;
  for (const std::uint64_t id : ids) batch.txns.push_back(txn(id));
  batch.seal();
  return batch;
}

// ------------------------------------------------------------------ Batch

TEST(Batch, DigestBindsContents) {
  const Batch batch = make_batch(1, 0, {1, 2, 3});
  EXPECT_TRUE(batch.digest_is_valid());

  // Same txns, different creator/seq: different content address.
  EXPECT_NE(batch.digest, make_batch(2, 0, {1, 2, 3}).digest);
  EXPECT_NE(batch.digest, make_batch(1, 1, {1, 2, 3}).digest);

  // Tampering with a transaction under the old digest is detectable.
  Batch tampered = batch;
  tampered.txns[0].id = 99;
  EXPECT_FALSE(tampered.digest_is_valid());
}

TEST(Batch, RoundTripsThroughCanonicalCodec) {
  const Batch batch = make_batch(3, 7, {10, 11, 12});
  Encoder enc;
  batch.encode(enc);
  Decoder dec(enc.data());
  const Batch back = Batch::decode(dec);
  EXPECT_EQ(back, batch);
  EXPECT_TRUE(back.digest_is_valid());
  // Bodies are synthetic: the wire form carries them, the decoded form is
  // compact, and re-encoding regenerates identical bytes.
  Encoder again;
  back.encode(again);
  EXPECT_EQ(again.data(), enc.data());
}

// ------------------------------------------------------------- BatchStore

TEST(BatchStore, ProposableStateMachine) {
  BatchStore store;
  const Batch a = make_batch(0, 0, {1});
  const Batch b = make_batch(0, 1, {2});
  EXPECT_TRUE(store.add(a));
  EXPECT_FALSE(store.add(a));  // idempotent by digest
  EXPECT_TRUE(store.add(b));
  EXPECT_EQ(store.proposable(), 2u);

  // make_payload drains oldest-first and marks the batches Proposed.
  const types::Payload p = store.make_payload(1, /*now=*/0, seconds(2));
  ASSERT_TRUE(p.is_digests());
  ASSERT_EQ(p.batch_digests.size(), 1u);
  EXPECT_EQ(p.batch_digests[0], a.digest);
  EXPECT_EQ(store.proposable(), 1u);

  // A timed-out proposal requeues its batches...
  store.requeue(p);
  EXPECT_EQ(store.proposable(), 2u);
  // ...and a stale Proposed reference becomes proposable again on its own
  // after repropose_after (the leader that named it evidently failed).
  const types::Payload p2 = store.make_payload(2, /*now=*/0, seconds(2));
  EXPECT_EQ(store.proposable(), 0u);
  const types::Payload p3 =
      store.make_payload(2, /*now=*/seconds(3), seconds(2));
  EXPECT_EQ(p3.batch_digests.size(), 2u);
  (void)p2;
}

TEST(BatchStore, ObserveReferenceParksBatchesProposed) {
  // Seeing another leader's proposal reference a batch must stop this
  // replica from re-proposing it while that proposal is in flight.
  BatchStore store;
  const Batch a = make_batch(1, 0, {5});
  store.add(a);
  store.observe_reference(types::Payload::referencing({a.digest}), 0);
  EXPECT_EQ(store.proposable(), 0u);
}

TEST(BatchStore, CommitResolutionDedupsAcrossForks) {
  BatchStore store;
  const Batch a = make_batch(0, 0, {1, 2});
  const Batch b = make_batch(0, 1, {3});
  store.add(a);
  store.add(b);

  // Two competing blocks referenced batch `a`; its txns count exactly once.
  std::vector<crypto::Sha256Digest> missing;
  const auto first = store.resolve_committed(
      types::Payload::referencing({a.digest, b.digest}), missing);
  EXPECT_EQ(first.size(), 3u);
  EXPECT_TRUE(missing.empty());
  const auto second = store.resolve_committed(
      types::Payload::referencing({a.digest}), missing);
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(store.committed_batches(), 2u);
}

TEST(BatchStore, LateBatchForCommittedDigestFilesAsCommitted) {
  // Block-sync path: the ordering can commit a digest before the bytes
  // arrive. The resolution reports it missing; when the pull completes, the
  // batch must go straight to Committed (never re-proposed).
  BatchStore store;
  const Batch late = make_batch(2, 9, {42});
  std::vector<crypto::Sha256Digest> missing;
  const auto txns = store.resolve_committed(
      types::Payload::referencing({late.digest}), missing);
  EXPECT_TRUE(txns.empty());
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], late.digest);

  EXPECT_TRUE(store.add(late));
  EXPECT_EQ(store.proposable(), 0u);
  EXPECT_EQ(store.committed_batches(), 1u);
  // Re-resolving is a no-op (the digest is already counted).
  std::vector<crypto::Sha256Digest> missing2;
  EXPECT_TRUE(store
                  .resolve_committed(
                      types::Payload::referencing({late.digest}), missing2)
                  .empty());
  EXPECT_TRUE(missing2.empty());
}

// -------------------------------------------------------- BatchBroadcaster

struct Plane {
  mempool::Mempool pool;
  BatchStore store;
  std::unique_ptr<BatchBroadcaster> broadcaster;
  std::uint32_t arrivals = 0;

  void wire(ReplicaId id, net::SimTransport& transport, DissemConfig config,
            BatchBroadcaster::Options options = {.silent = false,
                                                 .withhold_push = false}) {
    broadcaster = std::make_unique<BatchBroadcaster>(
        id, transport, pool, store, config, [this] { ++arrivals; }, options);
    transport.set_handler(id, [this](const net::Envelope& env, std::size_t) {
      switch (env.type) {
        case net::WireType::kBatchPush:
          broadcaster->on_push(env.unpack<BatchPush>());
          break;
        case net::WireType::kBatchRequest:
          broadcaster->on_request(env.unpack<BatchRequest>());
          break;
        case net::WireType::kBatchResponse:
          broadcaster->on_response(env.unpack<BatchResponse>());
          break;
        default:
          FAIL() << "unexpected wire type";
      }
    });
  }
};

TEST(BatchBroadcaster, PacksAndPushesToAllPeers) {
  sim::Scheduler sched;
  net::SimTransport transport(sched, net::Topology::uniform(3, millis(1)),
                              {}, 1);
  DissemConfig config;
  config.batch_max_txns = 4;
  Plane planes[3];
  for (ReplicaId id = 0; id < 3; ++id) planes[id].wire(id, transport, config);

  for (std::uint64_t i = 0; i < 6; ++i) planes[0].pool.submit(txn(i));
  planes[0].broadcaster->start();
  sched.run_for(millis(100));

  // Two batches (4 + 2 txns) packed and replicated to both peers.
  EXPECT_EQ(planes[0].broadcaster->batches_packed(), 2u);
  for (const Plane& plane : planes) EXPECT_EQ(plane.store.size(), 2u);
  EXPECT_EQ(planes[1].arrivals, 2u);
  EXPECT_EQ(transport.stats().for_type("batch_push").count, 4u);
}

TEST(BatchBroadcaster, PullRecoversWithheldBatch) {
  // Replica 0 packs but never pushes (the BatchWithholder posture). A peer
  // that learns the digest pulls it: request goes out, the withholder still
  // serves the pull, the arrival callback fires.
  sim::Scheduler sched;
  net::SimTransport transport(sched, net::Topology::uniform(3, millis(1)),
                              {}, 2);
  DissemConfig config;
  config.pull_fanout = 2;
  config.pull_retry = millis(50);
  Plane planes[3];
  planes[0].wire(0, transport, config,
                 {.silent = false, .withhold_push = true});
  planes[1].wire(1, transport, config);
  planes[2].wire(2, transport, config);

  for (std::uint64_t i = 0; i < 3; ++i) planes[0].pool.submit(txn(i));
  planes[0].broadcaster->start();
  sched.run_for(millis(50));
  ASSERT_EQ(planes[0].store.size(), 1u);
  ASSERT_EQ(planes[1].store.size(), 0u);  // withheld

  const crypto::Sha256Digest digest =
      planes[0].store.make_payload(1, 0, seconds(2)).batch_digests.at(0);
  planes[1].broadcaster->want({digest});
  sched.run_for(millis(500));

  EXPECT_TRUE(planes[1].store.has(digest));
  EXPECT_GE(planes[1].arrivals, 1u);
  EXPECT_EQ(planes[1].broadcaster->missing_count(), 0u);
  EXPECT_GT(transport.stats().for_type("batch_req").count, 0u);
  EXPECT_GT(transport.stats().for_type("batch_resp").count, 0u);
}

TEST(BatchBroadcaster, TamperedBatchIsRejected) {
  sim::Scheduler sched;
  net::SimTransport transport(sched, net::Topology::uniform(2, millis(1)),
                              {}, 3);
  DissemConfig config;
  Plane planes[2];
  planes[0].wire(0, transport, config);
  planes[1].wire(1, transport, config);

  Batch forged = make_batch(0, 0, {1, 2});
  forged.txns[0].id = 77;  // bytes no longer match the content address
  transport.send(1, net::Envelope::pack(net::WireType::kBatchPush, 0,
                                        BatchPush{forged}));
  sched.run_until_idle();
  EXPECT_EQ(planes[1].store.size(), 0u);
  EXPECT_EQ(planes[1].arrivals, 0u);
}

// -------------------------------------------------------- AdmissionFrontend

TEST(AdmissionFrontend, DedupsRetriesPerClient) {
  mempool::Mempool pool;
  DissemConfig config;
  config.client_dedup_window = 4;
  AdmissionFrontend frontend(pool, config);

  EXPECT_EQ(frontend.submit(1, txn(10), 0), AdmissionFrontend::Outcome::kAdmitted);
  // The client retries (timeout on its side): rejected, not double-queued.
  EXPECT_EQ(frontend.submit(1, txn(10), 0),
            AdmissionFrontend::Outcome::kDuplicate);
  EXPECT_EQ(pool.pending(), 1u);
  EXPECT_EQ(frontend.stats().duplicates, 1u);
}

TEST(AdmissionFrontend, RateLimitsPerClientPerSecond) {
  mempool::Mempool pool;
  DissemConfig config;
  config.client_rate_limit = 2;
  AdmissionFrontend frontend(pool, config);

  EXPECT_EQ(frontend.submit(7, txn(1), 0), AdmissionFrontend::Outcome::kAdmitted);
  EXPECT_EQ(frontend.submit(7, txn(2), 0), AdmissionFrontend::Outcome::kAdmitted);
  EXPECT_EQ(frontend.submit(7, txn(3), 0),
            AdmissionFrontend::Outcome::kRateLimited);
  // Another client has its own bucket.
  EXPECT_EQ(frontend.submit(8, txn(4), 0), AdmissionFrontend::Outcome::kAdmitted);
  // The window rolls over after a second.
  EXPECT_EQ(frontend.submit(7, txn(5), seconds(1)),
            AdmissionFrontend::Outcome::kAdmitted);
  EXPECT_EQ(frontend.stats().rate_limited, 1u);
}

TEST(AdmissionFrontend, BackpressuresOnFullMempool) {
  mempool::Mempool pool;
  DissemConfig config;
  config.mempool_capacity = 2;
  AdmissionFrontend frontend(pool, config);
  pool.set_capacity(config.mempool_capacity);

  EXPECT_EQ(frontend.submit(1, txn(1), 0), AdmissionFrontend::Outcome::kAdmitted);
  EXPECT_EQ(frontend.submit(1, txn(2), 0), AdmissionFrontend::Outcome::kAdmitted);
  EXPECT_EQ(frontend.submit(1, txn(3), 0),
            AdmissionFrontend::Outcome::kBackpressure);
  EXPECT_EQ(frontend.stats().backpressured, 1u);
  // Consensus drains the pool; the retry now lands.
  (void)pool.make_batch(2);
  EXPECT_EQ(frontend.submit(1, txn(3), 0), AdmissionFrontend::Outcome::kAdmitted);
}

TEST(ClientSwarm, KeepsBacklogSaturated) {
  sim::Scheduler sched;
  mempool::Mempool pool;
  DissemConfig config;
  config.clients = 8;
  config.batch_interval = millis(10);
  AdmissionFrontend frontend(pool, config);
  ClientSwarm swarm(sched, frontend,
                    {.mean_interarrival = 0, .target_pool_size = 40}, config,
                    Rng(5));
  swarm.set_id_space(3);
  swarm.start();
  sched.run_for(millis(5));
  EXPECT_EQ(pool.pending(), 40u);

  // Consensus keeps draining; the swarm refills on its cadence.
  (void)pool.make_batch(40);
  sched.run_for(millis(50));
  EXPECT_EQ(pool.pending(), 40u);
  EXPECT_EQ(frontend.stats().admitted, swarm.submitted());
  swarm.stop();
}

// ----------------------------------------------------- end-to-end (smoke)

TEST(Dissemination, DigestModeDeploymentCommitsRealTransactions) {
  // One scenario, run inline and digest-mode: both commit, and digest-mode
  // proposal frames are a small fraction of the inline (block-sized) ones
  // while committed txns flow through the BatchStore resolution path.
  harness::Scenario s;
  s.protocol = engine::Protocol::DiemBft;
  s.n = 4;
  s.topo = harness::Scenario::Topo::Uniform;
  s.delta = millis(10);
  s.jitter = millis(2);
  s.jitter_frac = 0;
  s.leader_processing = millis(5);
  s.base_timeout = millis(500);
  s.max_batch = 100;
  s.txn_size_bytes = 450;
  s.duration = seconds(10);
  s.warmup = seconds(1);
  s.tail = seconds(2);
  s.seed = 11;
  // Sustained arrivals: without them the legacy one-shot top-up drains
  // after ~4 blocks and inline proposals degenerate to empty payloads,
  // which would make the size comparison below meaningless.
  s.mean_interarrival = micros(100);

  const harness::ScenarioResult inline_run = run_scenario(s);

  s.dissemination = true;
  s.dissem.batch_max_txns = 100;
  s.dissem.batch_interval = millis(20);
  const harness::ScenarioResult digest_run = run_scenario(s);

  ASSERT_GT(inline_run.summary.committed_txns, 0u);
  ASSERT_GT(digest_run.summary.committed_txns, 0u);

  const auto mean_bytes = [](const net::MessageStats::TypeStats& t) {
    return t.count == 0 ? 0.0
                        : static_cast<double>(t.bytes) /
                              static_cast<double>(t.count);
  };
  const double inline_prop =
      mean_bytes(inline_run.traffic_by_type.at("proposal"));
  const double digest_prop =
      mean_bytes(digest_run.traffic_by_type.at("proposal"));
  EXPECT_LT(digest_prop, inline_prop / 10.0)
      << "digest proposals " << digest_prop << "B vs inline " << inline_prop;

  // The egress accounting (satellite): per-replica totals exist and their
  // max matches the reported bound.
  ASSERT_FALSE(digest_run.egress_by_replica.empty());
  std::uint64_t max = 0;
  for (const std::uint64_t bytes : digest_run.egress_by_replica) {
    max = std::max(max, bytes);
  }
  EXPECT_EQ(max, digest_run.max_egress_bytes);
  EXPECT_GT(max, 0u);
}

}  // namespace
}  // namespace sftbft::dissem
